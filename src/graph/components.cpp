#include "graph/components.h"

#include <algorithm>
#include <vector>

namespace disco {

std::vector<std::uint32_t> ComponentLabels(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> label(n, 0xFFFFFFFFu);
  std::vector<NodeId> stack;
  std::uint32_t next = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != 0xFFFFFFFFu) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Neighbor& nb : g.neighbors(v)) {
        if (label[nb.to] == 0xFFFFFFFFu) {
          label[nb.to] = next;
          stack.push_back(nb.to);
        }
      }
    }
    ++next;
  }
  return label;
}

std::uint32_t NumComponents(const Graph& g) {
  const auto labels = ComponentLabels(g);
  std::uint32_t max_label = 0;
  for (const auto l : labels) max_label = std::max(max_label, l);
  return g.num_nodes() == 0 ? 0 : max_label + 1;
}

bool IsConnected(const Graph& g) {
  return g.num_nodes() <= 1 || NumComponents(g) == 1;
}

Graph LargestComponent(const Graph& g, std::vector<NodeId>* old_to_new) {
  const auto labels = ComponentLabels(g);
  std::vector<std::size_t> sizes;
  for (const auto l : labels) {
    if (l >= sizes.size()) sizes.resize(l + 1, 0);
    ++sizes[l];
  }
  if (sizes.empty()) {
    if (old_to_new) old_to_new->clear();
    return Graph();
  }
  const std::uint32_t best = static_cast<std::uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> map(g.num_nodes(), kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (labels[v] == best) map[v] = next++;
  }
  std::vector<WeightedEdge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    if (map[we.a] != kInvalidNode && map[we.b] != kInvalidNode) {
      edges.push_back({map[we.a], map[we.b], we.weight});
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return Graph::FromEdges(next, edges);
}

}  // namespace disco
