// Graph I/O: text edge lists, binary snapshots, and fingerprints.
//
// Edge lists let real topology snapshots (e.g. the CAIDA maps the paper
// uses) be dropped into any experiment in place of the synthetic
// stand-ins. Format: one edge per line, "a b [weight]", ids are arbitrary
// non-negative integers (remapped densely), '#' starts a comment. Weight
// defaults to 1.
//
// Binary snapshots are the lossless, fast-loading form the artifact store
// (src/store/) uses: edge order and float weights survive bit-exactly, so
// a reloaded graph is indistinguishable from the generated original —
// same CSR, same EdgeIds, same fingerprint.
//
// Snapshot format v2 ("DGSNv02\n") is the packed CSR layout, written so a
// mapped file can back a Graph with zero copies (Graph::FromSections):
//
//   page 0 (4096 B): magic[8], endian tag[4] (the bytes of uint32
//     0x01020304 in the writer's native order — a reader whose order
//     differs rejects the file instead of silently mis-decoding),
//     n (u32 LE), m (u64 LE), total size (u64 LE), then 5 section entries
//     {offset u64 LE, length u64 LE, sha256[32]}, then the SHA-256 of the
//     header bytes before it; zero padding to the page boundary.
//   sections, each starting on a 4096-byte boundary, zero-padded:
//     offsets  u64[n+1]   CSR row starts
//     arc_to   u32[2m]    neighbor per arc
//     arc_edge u32[2m]    edge id per arc
//     ends     u32[2m]    (a, b) per edge, construction order
//     weights  f64[m]     one weight per edge
//
// Loading verifies the header and every section checksum, then validates
// the CSR invariants (monotone offsets, in-range node/edge ids, positive
// weights), so a borrowed Graph can trust the arrays outright. v1
// snapshots ("DGSNv01\n", the edge-list form) still load — decoded
// through the regular builder — so stores populated before the v2 bump
// keep working.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "obs/metrics.h"
#include "util/span.h"

namespace disco {

/// Loads an edge list; returns std::nullopt on open/parse failure.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes g as an edge list. Returns false on I/O failure.
bool SaveEdgeList(const Graph& g, const std::string& path);

/// SHA-256 (hex) over the graph's defining data: node count and the exact
/// edge list, weights as IEEE-754 bit patterns. Stable across processes
/// and thread counts; the artifact store keys every graph-derived object
/// by it, so a one-bit topology change can never alias a cached artifact.
/// (Unchanged by the v2 snapshot format: the fingerprint hashes the edge
/// list, not the container.)
std::string GraphFingerprintHex(const Graph& g);

/// Lossless binary snapshot of g in format v2. The bytes round-trip
/// through LoadGraphSnapshotBytes / ViewGraphSnapshot to an identical
/// graph (same CSR, same EdgeIds, same fingerprint).
std::string GraphSnapshotBytes(const Graph& g);

/// Rebuilds an owned graph from snapshot bytes (v2 or v1); std::nullopt
/// if the buffer is truncated, mislabeled, foreign-endian, or fails a
/// checksum. The bytes are copied — the caller's buffer may go away.
std::optional<Graph> LoadGraphSnapshotBytes(Span<const char> bytes);
std::optional<Graph> LoadGraphSnapshotBytes(const std::string& bytes);

/// Zero-copy load: validates `bytes` as a v2 snapshot and returns a
/// borrowed Graph whose arrays point straight into it, with `backing`
/// (e.g. an open store::ArtifactReader or an mmap) held alive for the
/// graph's lifetime. Validation on this path is the header hash (which
/// covers the section table) plus the structural CSR scan that bounds
/// every index — the per-section SHA-256 pass is skipped so a view does
/// not hash-fault the whole mapping in; use LoadGraphSnapshotBytes when
/// full cryptographic verification is wanted. Falls back to a copying
/// load when `bytes` is a v1 snapshot or is not 8-byte aligned;
/// std::nullopt on any validation failure.
std::optional<Graph> ViewGraphSnapshot(std::shared_ptr<const void> backing,
                                       Span<const char> bytes);

/// File convenience wrappers. SaveGraphSnapshot writes v2;
/// LoadGraphSnapshot memory-maps a v2 file into a borrowed Graph (the
/// page cache shares the physical pages across every process mapping the
/// same file) and falls back to a copying read for v1 files or when mmap
/// is unavailable.
bool SaveGraphSnapshot(const Graph& g, const std::string& path);
std::optional<Graph> LoadGraphSnapshot(const std::string& path);

/// Process-wide graph provenance counters, registered in the unified
/// metrics registry (the "[metrics] graph sources:" dump line): how many
/// graphs this process generated from scratch, loaded zero-copy from a
/// mapped snapshot, and rebuilt by decoding snapshot bytes. The bench
/// harness prints them to stderr at exit on --store= runs, which is how
/// fig09 --xl's warm path proves it did zero generator work (the
/// graph-tier analogue of the store smoke's dijkstra=0 check).
struct GraphLoadStats {
  obs::Counter& generated;
  obs::Counter& mmap_loads;
  obs::Counter& decode_loads;
  GraphLoadStats();
};
GraphLoadStats& GraphLoadCounters();

}  // namespace disco
