// Edge-list I/O so real topology snapshots (e.g. the CAIDA maps the paper
// uses) can be dropped into any experiment in place of the synthetic
// stand-ins.
//
// Format: one edge per line, "a b [weight]", ids are arbitrary non-negative
// integers (remapped densely), '#' starts a comment. Weight defaults to 1.
#pragma once

#include <optional>
#include <string>

#include "graph/graph.h"

namespace disco {

/// Loads an edge list; returns std::nullopt on open/parse failure.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes g as an edge list. Returns false on I/O failure.
bool SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace disco
