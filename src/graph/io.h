// Graph I/O: text edge lists, binary snapshots, and fingerprints.
//
// Edge lists let real topology snapshots (e.g. the CAIDA maps the paper
// uses) be dropped into any experiment in place of the synthetic
// stand-ins. Format: one edge per line, "a b [weight]", ids are arbitrary
// non-negative integers (remapped densely), '#' starts a comment. Weight
// defaults to 1.
//
// Binary snapshots are the lossless, fast-loading form the artifact store
// (src/store/) uses: edge order and float weights survive bit-exactly, so
// a reloaded graph is indistinguishable from the generated original —
// same CSR, same EdgeIds, same fingerprint.
#pragma once

#include <optional>
#include <string>

#include "graph/graph.h"

namespace disco {

/// Loads an edge list; returns std::nullopt on open/parse failure.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Writes g as an edge list. Returns false on I/O failure.
bool SaveEdgeList(const Graph& g, const std::string& path);

/// SHA-256 (hex) over the graph's defining data: node count and the exact
/// edge list, weights as IEEE-754 bit patterns. Stable across processes
/// and thread counts; the artifact store keys every graph-derived object
/// by it, so a one-bit topology change can never alias a cached artifact.
std::string GraphFingerprintHex(const Graph& g);

/// Lossless binary snapshot of g (node count + exact edge list). The
/// bytes round-trip through LoadGraphSnapshotBytes to an identical graph.
std::string GraphSnapshotBytes(const Graph& g);

/// Rebuilds a graph from GraphSnapshotBytes output; std::nullopt if the
/// buffer is truncated, mislabeled, or fails its checksum.
std::optional<Graph> LoadGraphSnapshotBytes(const std::string& bytes);

/// File convenience wrappers around the two above.
bool SaveGraphSnapshot(const Graph& g, const std::string& path);
std::optional<Graph> LoadGraphSnapshot(const std::string& path);

}  // namespace disco
