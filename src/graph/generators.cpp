#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/components.h"
#include "graph/io.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_stream.h"
#include "util/rng.h"

namespace disco {
namespace {

std::uint64_t EdgeKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

// Chunk width for the parallel generators. The chunking is a pure function
// of the problem size — never of the thread count — so per-chunk RNG
// streams (runtime::TaskRng) and chunk-major result concatenation make the
// generated graph bit-identical however many threads ran.
constexpr std::size_t kGenGrain = 8192;

// Every generator streams its edges straight into a GraphBuilder (which
// lays the CSR out in place) instead of materializing a WeightedEdge list
// and copying it through FromEdges — at a million nodes the discarded
// intermediate was as large as the graph itself. Emission order is
// unchanged, so EdgeIds and fingerprints are too.
void CountGenerated() { GraphLoadCounters().generated.Inc(); }

}  // namespace

Graph Gnm(NodeId n, std::size_t m, std::uint64_t seed) {
  DISCO_TRACE_SPAN("graph.generate");
  assert(n >= 2);
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  assert(m <= max_edges);
  (void)max_edges;

  // KaGen-style chunked sampling: the edge-index range is cut into fixed
  // chunks, chunk c draws its quota of distinct candidate edges from its
  // own per-chunk stream, and chunks merge in index order. Cross-chunk
  // duplicates are discarded during the ordered merge and replaced from a
  // dedicated top-up stream, so the graph has exactly m edges. Chunk 0
  // deliberately continues the legacy single-stream Rng(seed): graphs
  // small enough for one chunk — every unit-test topology — come out
  // bit-identical to the original sequential generator.
  const std::size_t num_chunks = (m + kGenGrain - 1) / kGenGrain;
  // Candidates are unweighted, so a chunk stores one packed (a, b) word
  // per edge, orientation as drawn.
  std::vector<std::vector<std::uint64_t>> chunk_edges(num_chunks);
  runtime::ParallelForTasks(num_chunks, [&](std::size_t c) {
    const std::size_t quota = std::min(kGenGrain, m - c * kGenGrain);
    Rng rng = c == 0 ? Rng(seed) : runtime::TaskRng(seed, c);
    std::unordered_set<std::uint64_t> used;
    used.reserve(quota * 2);
    auto& edges = chunk_edges[c];
    edges.reserve(quota);
    while (edges.size() < quota) {
      const NodeId a = static_cast<NodeId>(rng.NextBelow(n));
      const NodeId b = static_cast<NodeId>(rng.NextBelow(n));
      if (a == b) continue;
      if (!used.insert(EdgeKey(a, b)).second) continue;
      edges.push_back((std::uint64_t{a} << 32) | b);
    }
  });

  std::unordered_set<std::uint64_t> used;
  used.reserve(m * 2);
  GraphBuilder gb(n, m);
  for (const auto& chunk : chunk_edges) {
    for (const std::uint64_t packed : chunk) {
      const NodeId a = static_cast<NodeId>(packed >> 32);
      const NodeId b = static_cast<NodeId>(packed);
      if (used.insert(EdgeKey(a, b)).second) gb.Add(a, b, 1.0);
    }
  }
  Rng top_up = runtime::TaskRng(seed, num_chunks);
  while (gb.num_edges() < m) {
    const NodeId a = static_cast<NodeId>(top_up.NextBelow(n));
    const NodeId b = static_cast<NodeId>(top_up.NextBelow(n));
    if (a == b) continue;
    if (!used.insert(EdgeKey(a, b)).second) continue;
    gb.Add(a, b, 1.0);
  }
  CountGenerated();
  return std::move(gb).Build();
}

Graph ConnectedGnm(NodeId n, std::size_t m, std::uint64_t seed) {
  return LargestComponent(Gnm(n, m, seed));
}

Graph RandomGeometric(NodeId n, double target_avg_degree,
                      std::uint64_t seed) {
  DISCO_TRACE_SPAN("graph.generate");
  assert(n >= 2);
  // Coordinates: each fixed chunk of the node range draws from its own
  // stream, so placement is reproducible at any thread count. Chunk 0
  // continues the legacy single-stream Rng(seed), keeping every graph
  // that fits one chunk bit-identical to the original sequential
  // generator (the edge pass below is RNG-free and v-major either way).
  std::vector<double> x(n), y(n);
  runtime::ParallelFor(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        Rng rng = lo < kGenGrain ? Rng(seed)
                                 : runtime::TaskRng(seed, lo / kGenGrain);
        for (std::size_t v = lo; v < hi; ++v) {
          x[v] = rng.NextDouble();
          y[v] = rng.NextDouble();
        }
      },
      nullptr, kGenGrain);
  // Expected neighbors within radius r is ~ n * pi * r^2 (ignoring border
  // effects), so solve for the target degree.
  const double r =
      std::sqrt(target_avg_degree / (M_PI * static_cast<double>(n)));

  // Grid buckets of side r: candidate partners live in the 3x3 neighborhood.
  const int cells = std::max(1, static_cast<int>(1.0 / r));
  const double cell = 1.0 / cells;
  std::vector<std::vector<NodeId>> bucket(
      static_cast<std::size_t>(cells) * cells);
  auto bucket_of = [&](double px, double py) {
    int cx = std::min(cells - 1, static_cast<int>(px / cell));
    int cy = std::min(cells - 1, static_cast<int>(py / cell));
    return static_cast<std::size_t>(cy) * cells + cx;
  };
  for (NodeId v = 0; v < n; ++v) bucket[bucket_of(x[v], y[v])].push_back(v);

  // Neighbor search (the hot loop): chunk-local edge lists streamed into
  // the builder in chunk order reproduce the sequential v-major edge
  // order exactly.
  const std::size_t num_chunks = (n + kGenGrain - 1) / kGenGrain;
  std::vector<std::vector<WeightedEdge>> chunk_edges(num_chunks);
  const double r2 = r * r;
  runtime::ParallelFor(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        auto& out = chunk_edges[lo / kGenGrain];
        for (std::size_t vi = lo; vi < hi; ++vi) {
          const NodeId v = static_cast<NodeId>(vi);
          const int cx = std::min(cells - 1, static_cast<int>(x[v] / cell));
          const int cy = std::min(cells - 1, static_cast<int>(y[v] / cell));
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx = cx + dx, ny = cy + dy;
              if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
              for (const NodeId u :
                   bucket[static_cast<std::size_t>(ny) * cells + nx]) {
                if (u <= v) continue;  // each pair once
                const double ddx = x[v] - x[u], ddy = y[v] - y[u];
                const double d2 = ddx * ddx + ddy * ddy;
                if (d2 <= r2) out.push_back({v, u, std::sqrt(d2)});
              }
            }
          }
        }
      },
      nullptr, kGenGrain);
  std::size_t total = 0;
  for (const auto& chunk : chunk_edges) total += chunk.size();
  GraphBuilder gb(n, total);
  for (const auto& chunk : chunk_edges) gb.Add(chunk);
  CountGenerated();
  return std::move(gb).Build();
}

Graph ConnectedGeometric(NodeId n, double target_avg_degree,
                         std::uint64_t seed) {
  return LargestComponent(RandomGeometric(n, target_avg_degree, seed));
}

Graph BarabasiAlbert(NodeId n, int m_per_node, std::uint64_t seed) {
  DISCO_TRACE_SPAN("graph.generate");
  assert(n >= 2);
  assert(m_per_node >= 1);
  Rng rng(seed);
  GraphBuilder gb(n, static_cast<std::size_t>(n) * m_per_node);
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is sampling proportionally to degree.
  std::vector<NodeId> targets;
  targets.reserve(2 * static_cast<std::size_t>(n) * m_per_node);

  const NodeId seed_nodes =
      std::min<NodeId>(n, static_cast<NodeId>(m_per_node) + 1);
  for (NodeId v = 1; v < seed_nodes; ++v) {  // small initial clique
    for (NodeId u = 0; u < v; ++u) {
      gb.Add(u, v, 1.0);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (NodeId v = seed_nodes; v < n; ++v) {
    // m_per_node distinct targets; a sorted vector (not a hash set) keeps
    // the emission order — which feeds the degree-biased `targets` stream
    // and hence the whole topology — independent of stdlib bucket layout.
    std::vector<NodeId> chosen;
    while (chosen.size() < static_cast<std::size_t>(m_per_node)) {
      const NodeId u = targets[rng.NextBelow(targets.size())];
      if (u != v &&
          std::find(chosen.begin(), chosen.end(), u) == chosen.end()) {
        chosen.push_back(u);
      }
    }
    std::sort(chosen.begin(), chosen.end());
    for (const NodeId u : chosen) {
      gb.Add(u, v, 1.0);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  CountGenerated();
  return std::move(gb).Build();
}

Graph AsLevelInternet(NodeId n, std::uint64_t seed) {
  return BarabasiAlbert(n, 2, seed);
}

Graph RouterLevelInternet(NodeId n, std::uint64_t seed) {
  assert(n >= 64);
  Rng rng(seed);

  // PoPs hold ~16 routers on average (geometric sizes in [4, 48]).
  std::vector<NodeId> pop_size;
  NodeId assigned = 0;
  while (assigned < n) {
    NodeId size = 4;
    while (size < 48 && assigned + size < n && rng.NextDouble() < 0.92) {
      ++size;
    }
    size = std::min<NodeId>(size, n - assigned);
    pop_size.push_back(size);
    assigned += size;
  }
  const NodeId num_pops = static_cast<NodeId>(pop_size.size());

  std::vector<NodeId> pop_start(num_pops);
  NodeId next = 0;
  for (NodeId p = 0; p < num_pops; ++p) {
    pop_start[p] = next;
    next += pop_size[p];
  }

  GraphBuilder gb(n, 2 * static_cast<std::size_t>(n));
  // Intra-PoP: a ring plus a chord, giving redundancy without hub blowup.
  for (NodeId p = 0; p < num_pops; ++p) {
    const NodeId s = pop_start[p], sz = pop_size[p];
    if (sz == 1) continue;
    for (NodeId i = 0; i < sz; ++i) {
      gb.Add(s + i, s + (i + 1) % sz, 1.0);
    }
    if (sz >= 6) {
      for (NodeId i = 0; i < sz / 3; ++i) {
        const NodeId a = s + static_cast<NodeId>(rng.NextBelow(sz));
        const NodeId b = s + static_cast<NodeId>(rng.NextBelow(sz));
        if (a != b) gb.Add(a, b, 1.0);
      }
    }
  }

  // Inter-PoP: preferential attachment at the PoP level; each inter-PoP
  // link lands on uniform-random routers inside the two PoPs.
  std::vector<NodeId> pop_targets;
  auto random_router = [&](NodeId p) {
    return pop_start[p] + static_cast<NodeId>(rng.NextBelow(pop_size[p]));
  };
  for (NodeId p = 1; p < num_pops; ++p) {
    const int links = (p < 3) ? 1 : 2;
    // Sorted-vector emission for the same determinism reason as in
    // BarabasiAlbert above.
    std::vector<NodeId> chosen;
    while (chosen.size() < static_cast<std::size_t>(links) &&
           chosen.size() < p) {
      NodeId q;
      if (pop_targets.empty() || rng.NextDouble() < 0.2) {
        q = static_cast<NodeId>(rng.NextBelow(p));
      } else {
        q = pop_targets[rng.NextBelow(pop_targets.size())];
        if (q >= p) continue;
      }
      if (std::find(chosen.begin(), chosen.end(), q) == chosen.end()) {
        chosen.push_back(q);
      }
    }
    std::sort(chosen.begin(), chosen.end());
    for (const NodeId q : chosen) {
      // Two rng draws: sequence them explicitly (function arguments are
      // unsequenced; the historical brace-init emission drew p's router
      // first, and the golden fingerprints pin that order).
      const NodeId pr = random_router(p);
      const NodeId qr = random_router(q);
      gb.Add(pr, qr, 1.0);
      pop_targets.push_back(p);
      pop_targets.push_back(q);
    }
  }
  CountGenerated();
  return std::move(gb).Build();
}

Graph Ring(NodeId n) {
  assert(n >= 3);
  GraphBuilder gb(n, n);
  for (NodeId v = 0; v < n; ++v) gb.Add(v, (v + 1) % n, 1.0);
  CountGenerated();
  return std::move(gb).Build();
}

Graph Grid(NodeId rows, NodeId cols) {
  assert(rows >= 1 && cols >= 1);
  GraphBuilder gb(rows * cols, 2 * static_cast<std::size_t>(rows) * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) gb.Add(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) gb.Add(id(r, c), id(r + 1, c), 1.0);
    }
  }
  CountGenerated();
  return std::move(gb).Build();
}

Graph S4WorstCaseTree(NodeId branching) {
  assert(branching >= 1);
  const NodeId n = 1 + branching + branching * branching;
  GraphBuilder gb(n, static_cast<std::size_t>(n) - 1);
  // Node 0 is the root; children are 1..branching; grandchildren follow.
  for (NodeId c = 1; c <= branching; ++c) gb.Add(0, c, 1.0);
  NodeId next = branching + 1;
  for (NodeId c = 1; c <= branching; ++c) {
    for (NodeId i = 0; i < branching; ++i) {
      gb.Add(c, next++, 2.0);
    }
  }
  CountGenerated();
  return std::move(gb).Build();
}

}  // namespace disco
