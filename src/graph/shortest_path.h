// Shortest-path machinery: full Dijkstra (landmark trees), truncated
// k-nearest Dijkstra (vicinities, §4.2), and multi-source Dijkstra (the
// closest-landmark forest that yields every node's address in one pass).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace disco {

/// Result of a single-source Dijkstra: distances and parent pointers toward
/// the source. Unreachable nodes have dist == kInfDist, parent ==
/// kInvalidNode.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Dist> dist;
  std::vector<NodeId> parent;

  bool reachable(NodeId v) const { return dist[v] < kInfDist; }

  /// Path source -> v (inclusive of both endpoints). Empty if unreachable.
  std::vector<NodeId> PathTo(NodeId v) const;
};

ShortestPathTree Dijkstra(const Graph& g, NodeId source);

/// One settled node of a truncated Dijkstra, in settling order.
struct NearNode {
  NodeId node = kInvalidNode;
  Dist dist = 0;
  NodeId parent = kInvalidNode;  // previous hop toward the source
};

/// The k nodes closest to `source` (including `source` itself at distance
/// 0), in nondecreasing distance order with ties broken by node id. Returns
/// fewer than k entries only if the component of `source` is smaller.
///
/// Deterministic tie-breaking matters: two nodes computing "the k closest"
/// must agree on the boundary, and tests rely on it.
std::vector<NearNode> KNearest(const Graph& g, NodeId source, std::size_t k);

/// Every node within distance `radius` (inclusive) of `source`, in
/// nondecreasing distance order with ties broken by id — the "ball" used
/// for S4 cluster computations (C(v) membership is a radius test).
std::vector<NearNode> WithinRadius(const Graph& g, NodeId source,
                                   Dist radius);

/// Reusable-buffer variant of WithinRadius for tight loops (S4 computes one
/// ball per node of the network). Uses version-stamped state, so repeated
/// searches cost O(ball) instead of O(n).
class RadiusSearcher {
 public:
  explicit RadiusSearcher(const Graph& g);

  /// Equivalent to out = WithinRadius(g, source, radius).
  void Search(NodeId source, Dist radius, std::vector<NearNode>& out);

 private:
  const Graph& g_;
  std::uint64_t version_ = 0;
  std::vector<std::uint64_t> stamp_;
  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<char> settled_;
};

/// Multi-source Dijkstra: for every node, the distance and parent toward its
/// closest source (ties broken by smaller source id). `closest[v]` names
/// that source. This is exactly the "closest landmark forest": the parent
/// chain from v is the explicit route of v's address, reversed.
struct MultiSourceTree {
  std::vector<Dist> dist;
  std::vector<NodeId> parent;
  std::vector<NodeId> closest;

  /// Path from the closest source of v down to v (inclusive).
  std::vector<NodeId> PathFromSource(NodeId v) const;
};

MultiSourceTree MultiSourceDijkstra(const Graph& g,
                                    const std::vector<NodeId>& sources);

/// Length of a node path under g's weights; kInfDist if any hop is missing.
Dist PathLength(const Graph& g, const std::vector<NodeId>& path);

}  // namespace disco
