// Topology generators for every network family in the paper's evaluation
// (§5.1), plus the worst-case constructions used in proofs and tests.
//
// The two CAIDA Internet maps are not redistributable, so AsLevelInternet
// and RouterLevelInternet are synthetic stand-ins that reproduce the
// properties the evaluation actually exercises (heavy-tailed degrees with
// central hubs; two-level structure with longer paths). See DESIGN.md §2.
// Real maps can be loaded with LoadEdgeList (graph/io.h) and dropped into
// any experiment.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace disco {

/// G(n,m): n nodes, m uniform-random distinct edges, unit weights
/// (the paper uses m = 4n for average degree 8). May be disconnected;
/// see ConnectedGnm.
Graph Gnm(NodeId n, std::size_t m, std::uint64_t seed);

/// Largest connected component of G(n,m) (paper topology (3)).
Graph ConnectedGnm(NodeId n, std::size_t m, std::uint64_t seed);

/// Random geometric graph: n uniform points in the unit square, edges
/// between pairs within the radius that yields the target average degree,
/// edge weight = Euclidean distance (this is the latency-annotated topology
/// of the paper, (4)). May be disconnected; see ConnectedGeometric.
Graph RandomGeometric(NodeId n, double target_avg_degree, std::uint64_t seed);

/// Largest connected component of RandomGeometric.
Graph ConnectedGeometric(NodeId n, double target_avg_degree,
                         std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_per_node` existing nodes chosen proportionally to degree. Produces
/// the heavy-tailed, hub-dominated degree distribution of AS-level maps.
/// Always connected. Unit weights.
Graph BarabasiAlbert(NodeId n, int m_per_node, std::uint64_t seed);

/// Synthetic stand-in for the 30,610-node CAIDA AS-level map (paper
/// topology (1)): BarabasiAlbert(n, 2). Unit weights.
Graph AsLevelInternet(NodeId n, std::uint64_t seed);

/// Synthetic stand-in for the 192,244-node CAIDA router-level map (paper
/// topology (2)): a two-level construction — a preferential-attachment
/// PoP-level core whose supernodes are expanded into small router rings,
/// with inter-PoP links landing on random routers of each PoP. Gives
/// moderate hubs plus the longer paths characteristic of router-level maps
/// (which drive the explicit-route address sizes of §4.2). Unit weights.
Graph RouterLevelInternet(NodeId n, std::uint64_t seed);

/// Cycle of n nodes, unit weights (worst case for address length: the
/// explicit route l_v ; v can be Θ(sqrt(n~)) hops).
Graph Ring(NodeId n);

/// rows x cols grid, unit weights.
Graph Grid(NodeId rows, NodeId cols);

/// The footnote-6 tree of the paper: a root with `branching` children at
/// distance 1, each child with `branching` children at distance 2. With
/// branching = sqrt(n), S4's cluster at the root contains almost every
/// grandchild, i.e. Θ(n) entries — the worst case that breaks S4's state
/// bound while Disco's vicinities stay fixed.
Graph S4WorstCaseTree(NodeId branching);

}  // namespace disco
