#include "graph/shortest_path.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace disco {
namespace {

struct QueueItem {
  Dist dist;
  NodeId node;
  // Min-heap by (dist, node id); the id tie-break makes settling order (and
  // therefore truncated vicinities) deterministic across runs.
  bool operator>(const QueueItem& o) const {
    return dist > o.dist || (dist == o.dist && node > o.node);
  }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

}  // namespace

std::vector<NodeId> ShortestPathTree::PathTo(NodeId v) const {
  if (!reachable(v)) return {};
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kInvalidNode; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree Dijkstra(const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, kInvalidNode);
  t.dist[source] = 0;

  MinQueue q;
  q.push({0, source});
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (d > t.dist[v]) continue;  // stale entry
    for (const Neighbor& nb : g.neighbors(v)) {
      const Dist nd = d + nb.weight;
      if (nd < t.dist[nb.to] ||
          (nd == t.dist[nb.to] && v < t.parent[nb.to])) {
        t.dist[nb.to] = nd;
        t.parent[nb.to] = v;
        q.push({nd, nb.to});
      }
    }
  }
  return t;
}

std::vector<NearNode> KNearest(const Graph& g, NodeId source, std::size_t k) {
  std::vector<NearNode> out;
  if (k == 0) return out;
  out.reserve(k);

  // Sparse bookkeeping: the search typically touches O(k) nodes, far fewer
  // than n, so distances live in a hash-free "touched" list.
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> touched;

  MinQueue q;
  dist[source] = 0;
  touched.push_back(source);
  q.push({0, source});

  std::vector<char> settled(g.num_nodes(), 0);
  while (!q.empty() && out.size() < k) {
    const auto [d, v] = q.top();
    q.pop();
    if (settled[v] || d > dist[v]) continue;
    settled[v] = 1;
    out.push_back({v, d, parent[v]});
    for (const Neighbor& nb : g.neighbors(v)) {
      const Dist nd = d + nb.weight;
      if (nd < dist[nb.to] || (nd == dist[nb.to] && v < parent[nb.to])) {
        if (dist[nb.to] == kInfDist) touched.push_back(nb.to);
        dist[nb.to] = nd;
        parent[nb.to] = v;
        q.push({nd, nb.to});
      }
    }
  }
  return out;
}

std::vector<NearNode> WithinRadius(const Graph& g, NodeId source,
                                   Dist radius) {
  std::vector<NearNode> out;
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::vector<char> settled(g.num_nodes(), 0);

  MinQueue q;
  dist[source] = 0;
  q.push({0, source});
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (settled[v] || d > dist[v]) continue;
    settled[v] = 1;
    out.push_back({v, d, parent[v]});
    for (const Neighbor& nb : g.neighbors(v)) {
      const Dist nd = d + nb.weight;
      if (nd > radius) continue;
      if (nd < dist[nb.to] || (nd == dist[nb.to] && v < parent[nb.to])) {
        dist[nb.to] = nd;
        parent[nb.to] = v;
        q.push({nd, nb.to});
      }
    }
  }
  return out;
}

RadiusSearcher::RadiusSearcher(const Graph& g)
    : g_(g), stamp_(g.num_nodes(), 0), dist_(g.num_nodes(), kInfDist),
      parent_(g.num_nodes(), kInvalidNode), settled_(g.num_nodes(), 0) {}

void RadiusSearcher::Search(NodeId source, Dist radius,
                            std::vector<NearNode>& out) {
  out.clear();
  ++version_;
  auto touch = [this](NodeId v) {
    if (stamp_[v] != version_) {
      stamp_[v] = version_;
      dist_[v] = kInfDist;
      parent_[v] = kInvalidNode;
      settled_[v] = 0;
    }
  };

  MinQueue q;
  touch(source);
  dist_[source] = 0;
  q.push({0, source});
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (settled_[v] || d > dist_[v]) continue;
    settled_[v] = 1;
    out.push_back({v, d, parent_[v]});
    for (const Neighbor& nb : g_.neighbors(v)) {
      const Dist nd = d + nb.weight;
      if (nd > radius) continue;
      touch(nb.to);
      if (nd < dist_[nb.to] ||
          (nd == dist_[nb.to] && v < parent_[nb.to])) {
        dist_[nb.to] = nd;
        parent_[nb.to] = v;
        q.push({nd, nb.to});
      }
    }
  }
}

std::vector<NodeId> MultiSourceTree::PathFromSource(NodeId v) const {
  if (dist[v] >= kInfDist) return {};
  std::vector<NodeId> path;
  for (NodeId cur = v; cur != kInvalidNode; cur = parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

MultiSourceTree MultiSourceDijkstra(const Graph& g,
                                    const std::vector<NodeId>& sources) {
  const NodeId n = g.num_nodes();
  MultiSourceTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, kInvalidNode);
  t.closest.assign(n, kInvalidNode);

  MinQueue q;
  for (const NodeId s : sources) {
    // Smaller source id wins ties at the seed level.
    if (t.dist[s] == 0 && t.closest[s] != kInvalidNode &&
        t.closest[s] < s) {
      continue;
    }
    t.dist[s] = 0;
    t.closest[s] = s;
    q.push({0, s});
  }
  while (!q.empty()) {
    const auto [d, v] = q.top();
    q.pop();
    if (d > t.dist[v]) continue;
    for (const Neighbor& nb : g.neighbors(v)) {
      const Dist nd = d + nb.weight;
      const bool better =
          nd < t.dist[nb.to] ||
          (nd == t.dist[nb.to] && t.closest[v] < t.closest[nb.to]);
      if (better) {
        t.dist[nb.to] = nd;
        t.parent[nb.to] = v;
        t.closest[nb.to] = t.closest[v];
        q.push({nd, nb.to});
      }
    }
  }
  return t;
}

Dist PathLength(const Graph& g, const std::vector<NodeId>& path) {
  if (path.size() < 2) return 0;
  Dist total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Dist best = kInfDist;
    for (const Neighbor& nb : g.neighbors(path[i])) {
      if (nb.to == path[i + 1]) best = std::min(best, nb.weight);
    }
    if (best == kInfDist) return kInfDist;
    total += best;
  }
  return total;
}

}  // namespace disco
