// Weighted undirected graph in compressed sparse row (CSR) form.
//
// This is the substrate every protocol routes over (§4.1 of the paper: an
// undirected connected network with arbitrary structure and link distances).
// Nodes are dense 32-bit indices; each undirected edge has a stable EdgeId
// shared by both directions (used by the congestion experiments to count how
// many routes cross each physical link).
//
// Storage is struct-of-arrays, packed for million-node topologies:
//   offsets[n+1]  uint64   CSR row starts (arc indices)
//   arc_to[2m]    uint32   neighbor node per arc
//   arc_edge[2m]  uint32   undirected edge id per arc
//   ends[2m]      uint32   (a, b) per edge, construction order preserved
//   weights[m]    double   one weight per undirected edge
// — ~28 bytes/arc-pair + 8/node instead of the former 24-byte padded
// Neighbor AoS plus a duplicate WeightedEdge list. A Graph either *owns*
// these arrays (vectors, built by GraphBuilder) or *borrows* them from an
// mmap'd v2 snapshot (graph/io.h) — zero-copy load, and the physical pages
// are shared read-only across every process that maps the same file. Both
// modes sit behind the same API; algorithms cannot tell them apart.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/span.h"

namespace disco {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Dist = double;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr Dist kInfDist = 1e300;

/// An undirected edge for graph construction.
struct WeightedEdge {
  NodeId a = 0;
  NodeId b = 0;
  Dist weight = 1.0;
};

/// One directed arc in the CSR adjacency of a node.
struct Neighbor {
  NodeId to = 0;
  Dist weight = 1.0;
  EdgeId edge = 0;  // undirected edge id, shared with the reverse arc
};

/// The adjacency of one node: a lightweight view over the packed CSR
/// columns that materializes Neighbor records on access. Indexing and
/// iteration yield by value (the arrays behind it may be a read-only
/// mmap); range-for over `const Neighbor&` still works via lifetime
/// extension, so call sites read exactly as they did over the old
/// Span<const Neighbor>.
class NeighborView {
 public:
  NeighborView(const NodeId* to, const EdgeId* edge, const double* weights,
               std::size_t size)
      : to_(to), edge_(edge), weights_(weights), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Neighbor operator[](std::size_t i) const {
    return {to_[i], weights_[edge_[i]], edge_[i]};
  }

  class iterator {
   public:
    using value_type = Neighbor;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;
    using pointer = void;
    using reference = Neighbor;

    iterator(const NeighborView* view, std::size_t i)
        : view_(view), i_(i) {}
    Neighbor operator*() const { return (*view_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const NeighborView* view_;
    std::size_t i_;
  };

  iterator begin() const { return {this, 0}; }
  iterator end() const { return {this, size_}; }

 private:
  const NodeId* to_;
  const EdgeId* edge_;
  const double* weights_;
  std::size_t size_;
};

class Graph {
 public:
  Graph() = default;

  // Owned vectors move with their buffers, so the raw section pointers
  // stay valid; copies must rebind them (or share the mmap backing).
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;
  Graph(const Graph& other) { *this = other; }
  Graph& operator=(const Graph& other);

  /// Builds a graph with `n` nodes from an undirected edge list.
  /// Self-loops are dropped; parallel edges are kept (they are harmless to
  /// every algorithm here). Edge weights must be positive.
  static Graph FromEdges(NodeId n, Span<const WeightedEdge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }

  NeighborView neighbors(NodeId v) const {
    const std::uint64_t lo = offsets_[v];
    return {arc_to_ + lo, arc_edge_ + lo, weights_,
            static_cast<std::size_t>(offsets_[v + 1] - lo)};
  }

  /// The neighbor node ids of `v` as one contiguous slice of the CSR
  /// column — the zero-copy replacement for the old AdjacencyLists()
  /// materialization (gossip simulation et al. iterate this directly).
  Span<const NodeId> neighbor_ids(NodeId v) const {
    const std::uint64_t lo = offsets_[v];
    return {arc_to_ + lo, static_cast<std::size_t>(offsets_[v + 1] - lo)};
  }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// The `i`-th undirected edge as given at construction. By value: the
  /// SoA layout has no WeightedEdge record to reference.
  WeightedEdge edge(EdgeId e) const {
    return {ends_[2 * static_cast<std::size_t>(e)],
            ends_[2 * static_cast<std::size_t>(e) + 1], weights_[e]};
  }

  /// Index of the arc (v -> to) within neighbors(v), or -1 if absent.
  /// Interface indices are what the compact label codec encodes.
  int InterfaceTo(NodeId v, NodeId to) const;

  /// Sum of edge weights (diagnostics).
  Dist total_weight() const;

  /// True when the arrays are a borrowed view (an mmap'd snapshot kept
  /// alive by the backing handle) rather than owned vectors.
  bool borrowed() const { return backing_ != nullptr; }

  // Raw packed sections, in the exact on-disk order of the v2 snapshot
  // format (graph/io.h) — the writer serializes these verbatim.
  Span<const std::uint64_t> csr_offsets() const {
    return {offsets_, static_cast<std::size_t>(num_nodes_) + 1};
  }
  Span<const NodeId> csr_to() const { return {arc_to_, 2 * num_edges_}; }
  Span<const EdgeId> csr_edge() const {
    return {arc_edge_, 2 * num_edges_};
  }
  Span<const NodeId> edge_ends() const { return {ends_, 2 * num_edges_}; }
  Span<const double> edge_weights() const { return {weights_, num_edges_}; }

  /// Wraps pre-validated packed sections without copying — the zero-copy
  /// load path (graph/io.h). `backing` keeps the storage (an mmap or an
  /// open artifact reader) alive for the graph's lifetime; the sections
  /// must satisfy every CSR invariant (io.cpp validates before calling).
  static Graph FromSections(NodeId n, std::size_t m,
                            const std::uint64_t* offsets,
                            const NodeId* arc_to, const EdgeId* arc_edge,
                            const NodeId* ends, const double* weights,
                            std::shared_ptr<const void> backing);

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  std::size_t num_edges_ = 0;

  // Section pointers — into the own_* vectors (owned mode) or into
  // backing_'s storage (borrowed mode). Never null for a built graph; a
  // default-constructed Graph has n = 0 and no valid sections.
  const std::uint64_t* offsets_ = nullptr;  // n + 1
  const NodeId* arc_to_ = nullptr;          // 2m
  const EdgeId* arc_edge_ = nullptr;        // 2m
  const NodeId* ends_ = nullptr;            // 2m, (a, b) per edge
  const double* weights_ = nullptr;         // m

  std::vector<std::uint64_t> own_offsets_;
  std::vector<NodeId> own_arc_to_;
  std::vector<EdgeId> own_arc_edge_;
  std::vector<NodeId> own_ends_;
  std::vector<double> own_weights_;
  std::shared_ptr<const void> backing_;

  void BindOwned();
};

/// Streaming CSR construction: generators Add() edges one (or a chunk) at
/// a time — no intermediate WeightedEdge list — and Build() lays out the
/// adjacency with a two-pass count/placement that parallelizes over the
/// shared pool for large graphs. Edge ids are assignment order of the
/// kept (non-self-loop) edges, bit-identical to the sequential fill at
/// any thread count.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n, std::size_t reserve_edges = 0);

  /// Appends one undirected edge. Self-loops are dropped (they carry no
  /// routing information); weights must be positive.
  void Add(NodeId a, NodeId b, Dist weight);

  void Add(Span<const WeightedEdge> edges) {
    for (const WeightedEdge& e : edges) Add(e.a, e.b, e.weight);
  }

  /// Edges kept so far (self-loops excluded).
  std::size_t num_edges() const { return weights_.size(); }

  /// Finalizes the CSR arrays. The builder is consumed.
  Graph Build() &&;

 private:
  NodeId n_;
  std::vector<NodeId> ends_;      // 2 per kept edge
  std::vector<double> weights_;   // 1 per kept edge
};

}  // namespace disco
