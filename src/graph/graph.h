// Weighted undirected graph in compressed sparse row (CSR) form.
//
// This is the substrate every protocol routes over (§4.1 of the paper: an
// undirected connected network with arbitrary structure and link distances).
// Nodes are dense 32-bit indices; each undirected edge has a stable EdgeId
// shared by both directions (used by the congestion experiments to count how
// many routes cross each physical link).
#pragma once

#include <cstdint>
#include <vector>

#include "util/span.h"

namespace disco {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Dist = double;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr Dist kInfDist = 1e300;

/// An undirected edge for graph construction.
struct WeightedEdge {
  NodeId a = 0;
  NodeId b = 0;
  Dist weight = 1.0;
};

/// One directed arc in the CSR adjacency of a node.
struct Neighbor {
  NodeId to = 0;
  Dist weight = 1.0;
  EdgeId edge = 0;  // undirected edge id, shared with the reverse arc
};

class Graph {
 public:
  Graph() = default;

  /// Builds a graph with `n` nodes from an undirected edge list.
  /// Self-loops are dropped; parallel edges are kept (they are harmless to
  /// every algorithm here). Edge weights must be positive.
  static Graph FromEdges(NodeId n, Span<const WeightedEdge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  Span<const Neighbor> neighbors(NodeId v) const {
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// The `i`-th undirected edge as given at construction.
  const WeightedEdge& edge(EdgeId e) const { return edges_[e]; }

  /// Index of the arc (v -> to) within neighbors(v), or -1 if absent.
  /// Interface indices are what the compact label codec encodes.
  int InterfaceTo(NodeId v, NodeId to) const;

  /// Sum of edge weights (diagnostics).
  Dist total_weight() const;

  /// Adjacency as plain index lists (for gossip simulation etc.).
  std::vector<std::vector<NodeId>> AdjacencyLists() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::size_t> offsets_;  // size num_nodes_ + 1
  std::vector<Neighbor> arcs_;        // 2 * num_edges
  std::vector<WeightedEdge> edges_;
};

}  // namespace disco
