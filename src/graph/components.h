// Connected components and largest-component extraction. Generators that
// can produce disconnected graphs (G(n,m), random geometric) are reduced to
// their largest connected component, matching the paper's assumption of a
// connected network (§4.1).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace disco {

/// Component label per node (labels are dense, starting at 0).
std::vector<std::uint32_t> ComponentLabels(const Graph& g);

std::uint32_t NumComponents(const Graph& g);

bool IsConnected(const Graph& g);

/// The largest connected component of `g`, with nodes relabeled densely.
/// `old_to_new` (optional out) maps original ids to new ids, kInvalidNode
/// for dropped nodes.
Graph LargestComponent(const Graph& g,
                       std::vector<NodeId>* old_to_new = nullptr);

}  // namespace disco
