#include "graph/graph.h"

#include <cassert>

namespace disco {

Graph Graph::FromEdges(NodeId n, Span<const WeightedEdge> edges) {
  Graph g;
  g.num_nodes_ = n;
  g.edges_.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    assert(e.a < n && e.b < n);
    assert(e.weight > 0);
    if (e.a == e.b) continue;  // self-loops carry no routing information
    g.edges_.push_back(e);
  }

  std::vector<std::uint32_t> deg(n, 0);
  for (const WeightedEdge& e : g.edges_) {
    ++deg[e.a];
    ++deg[e.b];
  }
  g.offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.arcs_.resize(g.offsets_[n]);

  std::vector<std::size_t> fill(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId i = 0; i < g.edges_.size(); ++i) {
    const WeightedEdge& e = g.edges_[i];
    g.arcs_[fill[e.a]++] = {e.b, e.weight, i};
    g.arcs_[fill[e.b]++] = {e.a, e.weight, i};
  }
  return g;
}

int Graph::InterfaceTo(NodeId v, NodeId to) const {
  const auto ns = neighbors(v);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (ns[i].to == to) return static_cast<int>(i);
  }
  return -1;
}

Dist Graph::total_weight() const {
  Dist sum = 0;
  for (const WeightedEdge& e : edges_) sum += e.weight;
  return sum;
}

std::vector<std::vector<NodeId>> Graph::AdjacencyLists() const {
  std::vector<std::vector<NodeId>> adj(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    adj[v].reserve(degree(v));
    for (const Neighbor& nb : neighbors(v)) adj[v].push_back(nb.to);
  }
  return adj;
}

}  // namespace disco
