#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "runtime/parallel_for.h"

namespace disco {
namespace {

// Edge count above which GraphBuilder::Build lays the CSR out with the
// parallel two-pass plan. Below it the sequential fill is both faster and
// trivially identical to the historical FromEdges; above it the parallel
// plan reproduces the same arrays bit for bit (see Build).
constexpr std::size_t kParallelBuildEdges = std::size_t{1} << 15;

}  // namespace

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  if (other.backing_ != nullptr) {
    // Borrowed graphs alias immutable storage; copies share it.
    own_offsets_.clear();
    own_arc_to_.clear();
    own_arc_edge_.clear();
    own_ends_.clear();
    own_weights_.clear();
    backing_ = other.backing_;
    offsets_ = other.offsets_;
    arc_to_ = other.arc_to_;
    arc_edge_ = other.arc_edge_;
    ends_ = other.ends_;
    weights_ = other.weights_;
  } else {
    backing_.reset();
    own_offsets_ = other.own_offsets_;
    own_arc_to_ = other.own_arc_to_;
    own_arc_edge_ = other.own_arc_edge_;
    own_ends_ = other.own_ends_;
    own_weights_ = other.own_weights_;
    BindOwned();
  }
  return *this;
}

void Graph::BindOwned() {
  offsets_ = own_offsets_.data();
  arc_to_ = own_arc_to_.data();
  arc_edge_ = own_arc_edge_.data();
  ends_ = own_ends_.data();
  weights_ = own_weights_.data();
}

Graph Graph::FromEdges(NodeId n, Span<const WeightedEdge> edges) {
  GraphBuilder b(n, edges.size());
  b.Add(edges);
  return std::move(b).Build();
}

Graph Graph::FromSections(NodeId n, std::size_t m,
                          const std::uint64_t* offsets,
                          const NodeId* arc_to, const EdgeId* arc_edge,
                          const NodeId* ends, const double* weights,
                          std::shared_ptr<const void> backing) {
  Graph g;
  g.num_nodes_ = n;
  g.num_edges_ = m;
  g.offsets_ = offsets;
  g.arc_to_ = arc_to;
  g.arc_edge_ = arc_edge;
  g.ends_ = ends;
  g.weights_ = weights;
  g.backing_ = std::move(backing);
  return g;
}

int Graph::InterfaceTo(NodeId v, NodeId to) const {
  const auto ns = neighbor_ids(v);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (ns[i] == to) return static_cast<int>(i);
  }
  return -1;
}

Dist Graph::total_weight() const {
  Dist sum = 0;
  for (std::size_t e = 0; e < num_edges_; ++e) sum += weights_[e];
  return sum;
}

GraphBuilder::GraphBuilder(NodeId n, std::size_t reserve_edges) : n_(n) {
  ends_.reserve(2 * reserve_edges);
  weights_.reserve(reserve_edges);
}

void GraphBuilder::Add(NodeId a, NodeId b, Dist weight) {
  assert(a < n_ && b < n_);
  assert(weight > 0);
  if (a == b) return;  // self-loops carry no routing information
  ends_.push_back(a);
  ends_.push_back(b);
  weights_.push_back(weight);
}

Graph GraphBuilder::Build() && {
  const NodeId n = n_;
  const std::size_t m = weights_.size();
  Graph g;
  g.num_nodes_ = n;
  g.num_edges_ = m;
  g.own_ends_ = std::move(ends_);
  g.own_weights_ = std::move(weights_);
  g.own_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.own_arc_to_.resize(2 * m);
  g.own_arc_edge_.resize(2 * m);
  const NodeId* const ends = g.own_ends_.data();
  std::uint64_t* const offsets = g.own_offsets_.data();

  if (m < kParallelBuildEdges) {
    // Sequential two-pass fill — the historical FromEdges layout: arcs of
    // each node appear in ascending edge-id order because edges are
    // scanned in id order.
    std::vector<std::uint32_t> deg(n, 0);
    for (std::size_t e = 0; e < m; ++e) {
      ++deg[ends[2 * e]];
      ++deg[ends[2 * e + 1]];
    }
    for (NodeId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + deg[v];
    std::vector<std::uint64_t> fill(offsets, offsets + n);
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId a = ends[2 * e], b = ends[2 * e + 1];
      const EdgeId id = static_cast<EdgeId>(e);
      g.own_arc_to_[fill[a]] = b;
      g.own_arc_edge_[fill[a]++] = id;
      g.own_arc_to_[fill[b]] = a;
      g.own_arc_edge_[fill[b]++] = id;
    }
    g.BindOwned();
    return g;
  }

  // Parallel plan: atomic degree histogram -> prefix sum -> atomic
  // placement of (edge id, to) pairs -> per-node sort by edge id. Within
  // one node's slice every edge id is distinct (self-loops were dropped;
  // parallel edges have distinct ids), so ascending edge id is a unique
  // total order — exactly the order the sequential fill produces — and
  // the result is bit-identical at any thread count. The atomics use the
  // default (sequentially consistent) order; on the architectures this
  // repo targets a contended fetch_add costs the same as a relaxed one,
  // and it keeps the determinism linter's relaxed-atomic rule moot.
  std::vector<std::atomic<std::uint32_t>> deg(n);
  runtime::ParallelFor(0, m, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      deg[ends[2 * e]].fetch_add(1);
      deg[ends[2 * e + 1]].fetch_add(1);
    }
  });
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + deg[v].load();

  std::vector<std::atomic<std::uint64_t>> cursor(n);
  runtime::ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) cursor[v].store(offsets[v]);
  });
  // One packed word per arc: (edge id << 32) | to. Placement order is
  // schedule-dependent; the sort below erases it.
  std::vector<std::uint64_t> packed(2 * m);
  runtime::ParallelFor(0, m, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      const NodeId a = ends[2 * e], b = ends[2 * e + 1];
      const std::uint64_t id = static_cast<std::uint64_t>(e) << 32;
      packed[cursor[a].fetch_add(1)] = id | b;
      packed[cursor[b].fetch_add(1)] = id | a;
    }
  });
  runtime::ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      std::sort(packed.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                packed.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    }
  });
  runtime::ParallelFor(0, 2 * m, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      g.own_arc_to_[i] = static_cast<NodeId>(packed[i]);
      g.own_arc_edge_[i] = static_cast<EdgeId>(packed[i] >> 32);
    }
  });
  g.BindOwned();
  return g;
}

}  // namespace disco
