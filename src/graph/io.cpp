#include "graph/io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/sha256.h"

namespace disco {

std::optional<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;

  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<WeightedEdge> edges;
  auto intern = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    return it->second;
  };

  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t a, b;
    if (!(ls >> a >> b)) continue;  // blank or comment-only line
    double w = 1.0;
    ls >> w;
    if (w <= 0) return std::nullopt;
    edges.push_back({intern(a), intern(b), w});
  }
  return Graph::FromEdges(static_cast<NodeId>(remap.size()), edges);
}

bool SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# " << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    f << we.a << ' ' << we.b << ' ' << we.weight << '\n';
  }
  return static_cast<bool>(f);
}

namespace {

constexpr char kSnapshotMagic[8] = {'D', 'G', 'S', 'N', 'v', '0', '1',
                                    '\n'};

std::uint64_t WeightBits(Dist w) {
  std::uint64_t bits;
  static_assert(sizeof(Dist) == sizeof bits, "Dist must be a 64-bit float");
  std::memcpy(&bits, &w, sizeof bits);
  return bits;
}

// The defining data both the fingerprint and the snapshot serialize: node
// count, edge count, then each edge as (a, b, weight bit pattern) in
// EdgeId order. Everything downstream (CSR, interface indices, EdgeIds)
// is a deterministic function of exactly this.
void AppendDefinition(std::string* out, const Graph& g) {
  PutU32Le(out, g.num_nodes());
  PutU64Le(out, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    PutU32Le(out, we.a);
    PutU32Le(out, we.b);
    PutU64Le(out, WeightBits(we.weight));
  }
}

}  // namespace

std::string GraphFingerprintHex(const Graph& g) {
  std::string def;
  def.reserve(12 + 16 * g.num_edges());
  AppendDefinition(&def, g);
  Sha256 h;
  h.Update("disco-graph-v1");
  h.Update(def);
  return Sha256HexOf(h.Finalize());
}

std::string GraphSnapshotBytes(const Graph& g) {
  std::string out;
  out.reserve(sizeof kSnapshotMagic + 12 + 16 * g.num_edges() + 32);
  out.append(kSnapshotMagic, sizeof kSnapshotMagic);
  AppendDefinition(&out, g);
  const Sha256Digest d = Sha256Hash(out);
  out.append(reinterpret_cast<const char*>(d.data()), d.size());
  return out;
}

std::optional<Graph> LoadGraphSnapshotBytes(const std::string& bytes) {
  const std::size_t header = sizeof kSnapshotMagic + 4 + 8;
  if (bytes.size() < header + 32) return std::nullopt;
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof kSnapshotMagic) !=
      0) {
    return std::nullopt;
  }
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::uint32_t n = ReadU32Le(p + sizeof kSnapshotMagic);
  const std::uint64_t m = ReadU64Le(p + sizeof kSnapshotMagic + 4);
  if (m > (bytes.size() - header - 32) / 16) return std::nullopt;
  if (bytes.size() != header + 16 * m + 32) return std::nullopt;
  const Sha256Digest d = Sha256Hash(
      std::string_view(bytes.data(), bytes.size() - 32));
  if (std::memcmp(d.data(), bytes.data() + bytes.size() - 32, 32) != 0) {
    return std::nullopt;
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(m);
  const std::uint8_t* e = p + header;
  for (std::uint64_t i = 0; i < m; ++i, e += 16) {
    WeightedEdge we;
    we.a = ReadU32Le(e);
    we.b = ReadU32Le(e + 4);
    const std::uint64_t bits = ReadU64Le(e + 8);
    std::memcpy(&we.weight, &bits, sizeof we.weight);
    if (we.a >= n || we.b >= n || !(we.weight > 0)) return std::nullopt;
    edges.push_back(we);
  }
  return Graph::FromEdges(n, edges);
}

bool SaveGraphSnapshot(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string bytes = GraphSnapshotBytes(g);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

std::optional<Graph> LoadGraphSnapshot(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return LoadGraphSnapshotBytes(bytes);
}

}  // namespace disco
