#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace disco {

std::optional<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;

  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<WeightedEdge> edges;
  auto intern = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    return it->second;
  };

  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t a, b;
    if (!(ls >> a >> b)) continue;  // blank or comment-only line
    double w = 1.0;
    ls >> w;
    if (w <= 0) return std::nullopt;
    edges.push_back({intern(a), intern(b), w});
  }
  return Graph::FromEdges(static_cast<NodeId>(remap.size()), edges);
}

bool SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# " << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    f << we.a << ' ' << we.b << ' ' << we.weight << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace disco
