#include "graph/io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "util/bytes.h"
#include "util/sha256.h"

#if defined(__unix__) || defined(__APPLE__)
#define DISCO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace disco {

GraphLoadStats::GraphLoadStats()
    : generated(obs::Global().RegisterCounter(
          "disco_graph_loads_total",
          "Graphs obtained by this process, by provenance.",
          "graph sources", "generated", {{"source", "generated"}})),
      mmap_loads(obs::Global().RegisterCounter(
          "disco_graph_loads_total",
          "Graphs obtained by this process, by provenance.",
          "graph sources", "mmap", {{"source", "mmap"}})),
      decode_loads(obs::Global().RegisterCounter(
          "disco_graph_loads_total",
          "Graphs obtained by this process, by provenance.",
          "graph sources", "decode", {{"source", "decode"}})) {}

GraphLoadStats& GraphLoadCounters() {
  static GraphLoadStats* stats = new GraphLoadStats();
  return *stats;
}

std::optional<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;

  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<WeightedEdge> edges;
  auto intern = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    return it->second;
  };

  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t a, b;
    if (!(ls >> a >> b)) continue;  // blank or comment-only line
    double w = 1.0;
    ls >> w;
    if (w <= 0) return std::nullopt;
    edges.push_back({intern(a), intern(b), w});
  }
  return Graph::FromEdges(static_cast<NodeId>(remap.size()), edges);
}

bool SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# " << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge we = g.edge(e);
    f << we.a << ' ' << we.b << ' ' << we.weight << '\n';
  }
  return static_cast<bool>(f);
}

namespace {

constexpr char kSnapshotMagicV1[8] = {'D', 'G', 'S', 'N', 'v', '0', '1',
                                      '\n'};
constexpr char kSnapshotMagicV2[8] = {'D', 'G', 'S', 'N', 'v', '0', '2',
                                      '\n'};

// v2 layout constants (see the header comment in io.h). The header page
// holds: magic[8], endian tag[4], n u32, m u64, total u64, five 48-byte
// section entries, then the header SHA-256.
constexpr std::size_t kPage = 4096;
constexpr std::size_t kNumSections = 5;
constexpr std::size_t kSectionEntryBytes = 8 + 8 + 32;
constexpr std::size_t kSectionTableOff = 8 + 4 + 4 + 8 + 8;  // = 32
constexpr std::size_t kHeaderHashOff =
    kSectionTableOff + kNumSections * kSectionEntryBytes;  // = 272
static_assert(kHeaderHashOff + 32 <= kPage, "v2 header must fit one page");

std::size_t PageAlignUp(std::size_t x) {
  return (x + kPage - 1) / kPage * kPage;
}

// The writer's byte order, embedded verbatim so a reader on a
// different-endian machine rejects the file instead of mis-decoding the
// raw arrays.
struct EndianTag {
  char bytes[4];
};
EndianTag NativeEndianTag() {
  const std::uint32_t probe = 0x01020304u;
  EndianTag t;
  std::memcpy(t.bytes, &probe, sizeof t.bytes);
  return t;
}

// True when p can back the typed section pointers (u64/double need
// 8-byte alignment; the sections themselves sit at page multiples from
// the base).
bool Aligned8(const char* p) {
  // disco-lint: allow(pointer-order): alignment probe; the address is reduced mod 8, never ordered, hashed, or emitted
  return reinterpret_cast<std::uintptr_t>(p) % 8 == 0;
}

std::uint64_t WeightBits(Dist w) {
  std::uint64_t bits;
  static_assert(sizeof(Dist) == sizeof bits, "Dist must be a 64-bit float");
  std::memcpy(&bits, &w, sizeof bits);
  return bits;
}

// The defining data the fingerprint serializes (and the v1 snapshot
// stored): node count, edge count, then each edge as (a, b, weight bit
// pattern) in EdgeId order. Everything downstream (CSR, interface
// indices, EdgeIds) is a deterministic function of exactly this, which is
// why the fingerprint is unchanged by the v2 container format.
void AppendDefinition(std::string* out, const Graph& g) {
  PutU32Le(out, g.num_nodes());
  PutU64Le(out, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge we = g.edge(e);
    PutU32Le(out, we.a);
    PutU32Le(out, we.b);
    PutU64Le(out, WeightBits(we.weight));
  }
}

// --- v1 (legacy) decode ------------------------------------------------

std::optional<Graph> LoadV1SnapshotBytes(Span<const char> bytes) {
  const std::size_t header = sizeof kSnapshotMagicV1 + 4 + 8;
  if (bytes.size() < header + 32) return std::nullopt;
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::uint32_t n = ReadU32Le(p + sizeof kSnapshotMagicV1);
  const std::uint64_t m = ReadU64Le(p + sizeof kSnapshotMagicV1 + 4);
  if (m > (bytes.size() - header - 32) / 16) return std::nullopt;
  if (bytes.size() != header + 16 * m + 32) return std::nullopt;
  const Sha256Digest d = Sha256Hash(
      std::string_view(bytes.data(), bytes.size() - 32));
  if (std::memcmp(d.data(), bytes.data() + bytes.size() - 32, 32) != 0) {
    return std::nullopt;
  }
  GraphBuilder b(n, static_cast<std::size_t>(m));
  const std::uint8_t* e = p + header;
  for (std::uint64_t i = 0; i < m; ++i, e += 16) {
    const NodeId ea = ReadU32Le(e);
    const NodeId eb = ReadU32Le(e + 4);
    const std::uint64_t bits = ReadU64Le(e + 8);
    Dist w;
    std::memcpy(&w, &bits, sizeof w);
    if (ea >= n || eb >= n || !(w > 0)) return std::nullopt;
    b.Add(ea, eb, w);
  }
  GraphLoadCounters().decode_loads.Inc();
  return std::move(b).Build();
}

// --- v2 validation -----------------------------------------------------

struct V2Sections {
  NodeId n = 0;
  std::uint64_t m = 0;
  const std::uint64_t* offsets = nullptr;
  const NodeId* arc_to = nullptr;
  const EdgeId* arc_edge = nullptr;
  const NodeId* ends = nullptr;
  const double* weights = nullptr;
};

// Verification of a v2 buffer: header hash, optionally the per-section
// hashes, and the CSR invariants that make every later array access
// in-bounds. The returned pointers alias `bytes`, which must be 8-byte
// aligned. Zero-copy views pass verify_section_hashes=false: the header
// hash still covers the section table, the structural scan still bounds
// every index, but the load stays memory-bandwidth-limited instead of
// SHA-256-limited (owned decode keeps the full cryptographic check).
std::optional<V2Sections> ValidateV2(Span<const char> bytes,
                                     bool verify_section_hashes) {
  if (bytes.size() < kPage) return std::nullopt;
  const char* base = bytes.data();
  if (std::memcmp(base, kSnapshotMagicV2, sizeof kSnapshotMagicV2) != 0) {
    return std::nullopt;
  }
  const EndianTag native = NativeEndianTag();
  if (std::memcmp(base + 8, native.bytes, sizeof native.bytes) != 0) {
    return std::nullopt;  // foreign byte order
  }
  const auto* p = reinterpret_cast<const std::uint8_t*>(base);
  V2Sections s;
  s.n = ReadU32Le(p + 12);
  s.m = ReadU64Le(p + 16);
  const std::uint64_t total = ReadU64Le(p + 24);
  if (total != bytes.size()) return std::nullopt;
  // EdgeId (and the packed build words) hold edge ids in 32 bits.
  if (s.m > 0xFFFFFFFFull) return std::nullopt;

  const Sha256Digest header_hash =
      Sha256Hash(std::string_view(base, kHeaderHashOff));
  if (std::memcmp(header_hash.data(), base + kHeaderHashOff, 32) != 0) {
    return std::nullopt;
  }

  const std::uint64_t arc_bytes = 8 * s.m;  // 2m entries x 4 bytes
  const std::uint64_t expected_len[kNumSections] = {
      8 * (static_cast<std::uint64_t>(s.n) + 1),  // offsets
      arc_bytes,                                  // arc_to
      arc_bytes,                                  // arc_edge
      arc_bytes,                                  // ends
      8 * s.m,                                    // weights
  };
  const char* section[kNumSections];
  for (std::size_t i = 0; i < kNumSections; ++i) {
    const std::uint8_t* entry =
        p + kSectionTableOff + i * kSectionEntryBytes;
    const std::uint64_t off = ReadU64Le(entry);
    const std::uint64_t len = ReadU64Le(entry + 8);
    if (len != expected_len[i]) return std::nullopt;
    if (off % kPage != 0 || off < kPage || off > total ||
        len > total - off) {
      return std::nullopt;
    }
    if (verify_section_hashes) {
      const Sha256Digest d = Sha256Hash(
          std::string_view(base + off, static_cast<std::size_t>(len)));
      if (std::memcmp(d.data(), entry + 16, 32) != 0) return std::nullopt;
    }
    section[i] = base + off;
  }

  s.offsets = reinterpret_cast<const std::uint64_t*>(section[0]);
  s.arc_to = reinterpret_cast<const NodeId*>(section[1]);
  s.arc_edge = reinterpret_cast<const EdgeId*>(section[2]);
  s.ends = reinterpret_cast<const NodeId*>(section[3]);
  s.weights = reinterpret_cast<const double*>(section[4]);

  if (s.offsets[0] != 0) return std::nullopt;
  for (NodeId v = 0; v < s.n; ++v) {
    if (s.offsets[v + 1] < s.offsets[v]) return std::nullopt;
  }
  if (s.offsets[s.n] != 2 * s.m) return std::nullopt;
  for (std::uint64_t i = 0; i < 2 * s.m; ++i) {
    if (s.arc_to[i] >= s.n || s.arc_edge[i] >= s.m || s.ends[i] >= s.n) {
      return std::nullopt;
    }
  }
  for (std::uint64_t e = 0; e < s.m; ++e) {
    if (!(s.weights[e] > 0)) return std::nullopt;
  }
  return s;
}

bool LooksLikeV2(Span<const char> bytes) {
  return bytes.size() >= sizeof kSnapshotMagicV2 &&
         std::memcmp(bytes.data(), kSnapshotMagicV2,
                     sizeof kSnapshotMagicV2) == 0;
}

// Zero-copy view over a validated v2 buffer. No counter bump — callers
// attribute the load to mmap or decode themselves.
std::optional<Graph> ViewV2(std::shared_ptr<const void> backing,
                            Span<const char> bytes,
                            bool verify_section_hashes) {
  const std::optional<V2Sections> s =
      ValidateV2(bytes, verify_section_hashes);
  if (!s) return std::nullopt;
  return Graph::FromSections(s->n, static_cast<std::size_t>(s->m),
                             s->offsets, s->arc_to, s->arc_edge, s->ends,
                             s->weights, std::move(backing));
}

}  // namespace

std::string GraphFingerprintHex(const Graph& g) {
  std::string def;
  def.reserve(12 + 16 * g.num_edges());
  AppendDefinition(&def, g);
  Sha256 h;
  h.Update("disco-graph-v1");
  h.Update(def);
  return Sha256HexOf(h.Finalize());
}

std::string GraphSnapshotBytes(const Graph& g) {
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  struct Section {
    const void* data;
    std::size_t len;
  };
  const Section sections[kNumSections] = {
      {g.csr_offsets().data(), static_cast<std::size_t>(8 * (n + 1))},
      {g.csr_to().data(), static_cast<std::size_t>(8 * m)},
      {g.csr_edge().data(), static_cast<std::size_t>(8 * m)},
      {g.edge_ends().data(), static_cast<std::size_t>(8 * m)},
      {g.edge_weights().data(), static_cast<std::size_t>(8 * m)},
  };
  std::size_t offset[kNumSections];
  std::size_t total = kPage;
  for (std::size_t i = 0; i < kNumSections; ++i) {
    offset[i] = total;
    total = PageAlignUp(total + sections[i].len);
  }

  std::string out(total, '\0');
  for (std::size_t i = 0; i < kNumSections; ++i) {
    if (sections[i].data != nullptr && sections[i].len != 0) {
      std::memcpy(&out[offset[i]], sections[i].data, sections[i].len);
    }
  }

  std::string header;
  header.reserve(kHeaderHashOff);
  header.append(kSnapshotMagicV2, sizeof kSnapshotMagicV2);
  const EndianTag tag = NativeEndianTag();
  header.append(tag.bytes, sizeof tag.bytes);
  PutU32Le(&header, static_cast<std::uint32_t>(n));
  PutU64Le(&header, m);
  PutU64Le(&header, total);
  for (std::size_t i = 0; i < kNumSections; ++i) {
    PutU64Le(&header, offset[i]);
    PutU64Le(&header, sections[i].len);
    const Sha256Digest d = Sha256Hash(
        std::string_view(out.data() + offset[i], sections[i].len));
    header.append(reinterpret_cast<const char*>(d.data()), d.size());
  }
  out.replace(0, header.size(), header);
  const Sha256Digest hh =
      Sha256Hash(std::string_view(out.data(), kHeaderHashOff));
  std::memcpy(&out[kHeaderHashOff], hh.data(), hh.size());
  return out;
}

std::optional<Graph> LoadGraphSnapshotBytes(Span<const char> bytes) {
  if (LooksLikeV2(bytes)) {
    DISCO_TRACE_SPAN("graph.decode");
    // Owned load of a v2 buffer: one aligned copy of the bytes, then the
    // same zero-copy view over our own copy. (vector's heap block is
    // always 8-byte aligned; the caller's buffer may not be.)
    auto copy = std::make_shared<std::vector<char>>(
        bytes.begin(), bytes.begin() + bytes.size());
    const Span<const char> view(copy->data(), copy->size());
    std::optional<Graph> g =
        ViewV2(copy, view, /*verify_section_hashes=*/true);
    if (g) GraphLoadCounters().decode_loads.Inc();
    return g;
  }
  if (bytes.size() >= sizeof kSnapshotMagicV1 &&
      std::memcmp(bytes.data(), kSnapshotMagicV1,
                  sizeof kSnapshotMagicV1) == 0) {
    return LoadV1SnapshotBytes(bytes);
  }
  return std::nullopt;
}

std::optional<Graph> LoadGraphSnapshotBytes(const std::string& bytes) {
  return LoadGraphSnapshotBytes(Span<const char>(bytes.data(), bytes.size()));
}

std::optional<Graph> ViewGraphSnapshot(std::shared_ptr<const void> backing,
                                       Span<const char> bytes) {
  if (LooksLikeV2(bytes) && Aligned8(bytes.data())) {
    DISCO_TRACE_SPAN("graph.mmap");
    // Views skip the per-section SHA-256 pass: hashing every byte would
    // fault in the whole mapping at ~SHA speed, defeating the point of
    // an out-of-core view. The header hash and the structural scan still
    // run; use LoadGraphSnapshotBytes for full cryptographic checking.
    std::optional<Graph> g =
        ViewV2(std::move(backing), bytes, /*verify_section_hashes=*/false);
    if (g) GraphLoadCounters().mmap_loads.Inc();
    return g;
  }
  // v1 bytes, or a base the typed views cannot legally alias: decode into
  // owned storage instead. The backing is only needed for the copy.
  return LoadGraphSnapshotBytes(bytes);
}

bool SaveGraphSnapshot(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string bytes = GraphSnapshotBytes(g);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

std::optional<Graph> LoadGraphSnapshot(const std::string& path) {
#if DISCO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      const std::size_t len = static_cast<std::size_t>(st.st_size);
      void* p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        std::shared_ptr<const void> backing(
            p, [len](const void* q) {
              ::munmap(const_cast<void*>(q), len);
            });
        return ViewGraphSnapshot(
            std::move(backing),
            Span<const char>(static_cast<const char*>(p), len));
      }
    } else {
      ::close(fd);
    }
    return std::nullopt;
  }
  return std::nullopt;
#else
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return LoadGraphSnapshotBytes(bytes);
#endif
}

}  // namespace disco
