#include "api/sweep.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "api/registry.h"
#include "graph/generators.h"
#include "runtime/parallel_for.h"
#include "sim/campaign.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace disco::api {

const std::vector<std::string>& SweepTopologyFamilies() {
  static const std::vector<std::string> families = {"gnm", "geo", "as",
                                                    "router"};
  return families;
}

Graph MakeSweepTopology(const std::string& family, NodeId n,
                        std::uint64_t seed) {
  if (family == "gnm") return ConnectedGnm(n, 4ull * n, seed);
  if (family == "geo") return ConnectedGeometric(n, 8.0, seed);
  if (family == "as") return AsLevelInternet(n, seed);
  if (family == "router") return RouterLevelInternet(n, seed);
  return Graph{};
}

std::vector<SweepCell> ExpandGrid(const SweepSpec& spec) {
  std::vector<SweepCell> grid;
  for (const std::string& topology : spec.topologies) {
    for (const NodeId n : spec.sizes) {
      for (const std::uint64_t seed : spec.seeds) {
        for (const std::string& scheme : spec.schemes) {
          for (const std::string& scenario : spec.scenarios) {
            SweepCell cell;
            cell.index = grid.size();
            cell.topology = topology;
            cell.n = n;
            cell.seed = seed;
            cell.scheme = scheme;
            cell.scenario = scenario;
            grid.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return grid;
}

std::vector<SweepCell> ShardOf(const std::vector<SweepCell>& grid,
                               std::size_t shard, std::size_t num_shards) {
  std::vector<SweepCell> mine;
  for (const SweepCell& cell : grid) {
    if (cell.index % num_shards == shard) mine.push_back(cell);
  }
  return mine;
}

std::string SweepSignature(const SweepSpec& spec) {
  const auto join = [](const std::vector<std::string>& v) {
    std::string out;
    for (const std::string& s : v) {
      if (!out.empty()) out += ",";
      out += s;
    }
    return out;
  };
  std::string sizes, seeds;
  for (const NodeId n : spec.sizes) {
    if (!sizes.empty()) sizes += ",";
    sizes += std::to_string(n);
  }
  for (const std::uint64_t s : spec.seeds) {
    if (!seeds.empty()) seeds += ",";
    seeds += std::to_string(s);
  }
  char knobs[240];
  std::snprintf(knobs, sizeof knobs,
                " pairs=%zu gbits=%d lmf=%g vf=%g fingers=%d"
                " replicas=%zu scn=%zux%g@%g+%g%s",
                spec.pairs, spec.base.group_bits_offset,
                spec.base.landmark_prob_factor, spec.base.vicinity_factor,
                spec.base.fingers, spec.replicas,
                spec.scenario_base.events, spec.scenario_base.fraction,
                spec.scenario_base.start, spec.scenario_base.spacing,
                spec.scenario_base.heal ? "" : "-noheal");
  return "#spec topos=" + join(spec.topologies) + " sizes=" + sizes +
         " seeds=" + seeds + " schemes=" + join(spec.schemes) +
         " scenarios=" + join(spec.scenarios) + knobs + "\n";
}

std::string SweepHeader() {
  return "cell\ttopology\tn\tm\tseed\tscheme\tscenario\t"
         "stretch_first_mean\tstretch_first_p95\tstretch_first_max\t"
         "stretch_later_mean\tstretch_later_p95\tstretch_later_max\t"
         "failed_routes\tstate_mean\tstate_max\t"
         "conv_time_mean\tconv_time_sd\tdes_msgs_node_mean\t"
         "des_msgs_node_sd\tdes_table_stretch_mean\n";
}

std::string RunSweepCell(const SweepCell& cell, const SweepSpec& spec) {
  const Graph g = MakeSweepTopology(cell.topology, cell.n, cell.seed);
  Params params = spec.base;
  params.seed = cell.seed;
  const auto scheme = MakeScheme(cell.scheme, g, params);
  if (!scheme || g.num_nodes() == 0) return "";

  scheme->PrewarmFor(scheme->AllNodes());

  StretchOptions opt;
  opt.num_pairs = spec.pairs;
  opt.seed = cell.seed;
  std::vector<StretchSample> first_details, later_details;
  const Summary later = Summarize(
      SampleStretch(g, scheme->route_fn(Phase::kLater), opt,
                    &later_details));
  // For schemes with no first-packet distinction both passes route the
  // same packets; reuse the later summary instead of routing them twice.
  const Summary first =
      scheme->distinguishes_first_packet()
          ? Summarize(SampleStretch(g, scheme->route_fn(Phase::kFirst),
                                    opt, &first_details))
          : later;
  const Summary state = Summarize(scheme->CollectState());
  std::size_t failed = 0;
  for (const auto& d : first_details) failed += d.failed;
  for (const auto& d : later_details) failed += d.failed;

  // The dynamics axis: a non-null scenario runs a replicated DES campaign
  // of the scheme's protocol plane through the scripted disturbance.
  // Replicas run in-process — the cell itself is already an independent
  // executor task, and nested process pools must not spawn here.
  MeanSd conv, des_msgs, des_stretch;
  if (cell.scenario != "null") {
    CampaignSpec campaign;
    campaign.graph = &g;
    campaign.base.mode = PvModeForScheme(cell.scheme);
    campaign.base.params = params;
    campaign.scenario = spec.scenario_base;
    campaign.scenario.kind = cell.scenario;
    campaign.stretch_pairs = spec.pairs;
    std::vector<ReplicaResult> replicas;
    for (std::size_t r = 0; r < std::max<std::size_t>(1, spec.replicas);
         ++r) {
      replicas.push_back(RunReplica(campaign, r));
    }
    conv = ReduceConvergenceTime(replicas);
    des_msgs = ReduceMessagesPerNode(replicas);
    des_stretch = ReduceTableStretch(replicas);
  }

  char line[640];
  std::snprintf(line, sizeof line,
                "%zu\t%s\t%u\t%zu\t%llu\t%s\t%s\t"
                "%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%zu\t%.6g\t%.6g\t"
                "%.6g\t%.6g\t%.6g\t%.6g\t%.6g\n",
                cell.index, cell.topology.c_str(), g.num_nodes(),
                g.num_edges(),
                static_cast<unsigned long long>(cell.seed),
                cell.scheme.c_str(), cell.scenario.c_str(), first.mean,
                first.p95, first.max, later.mean, later.p95, later.max,
                failed, state.mean, state.max, conv.mean, conv.sd,
                des_msgs.mean, des_msgs.sd, des_stretch.mean);
  return line;
}

std::string RunSweepCells(const std::vector<SweepCell>& cells,
                          const SweepSpec& spec,
                          runtime::ThreadPool* pool) {
  std::vector<std::string> rows(cells.size());
  runtime::ParallelForTasks(
      cells.size(),
      [&](std::size_t i) { rows[i] = RunSweepCell(cells[i], spec); }, pool);
  std::string out;
  for (const std::string& row : rows) out += row;
  return out;
}

std::string ShardFileName(std::size_t shard, std::size_t num_shards) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sweep_shard_%zu_of_%zu.tsv", shard,
                num_shards);
  return buf;
}

namespace {

// Explains how two "#spec" fingerprint lines differ, naming the first
// mismatching field ("schemes=s4,disco" vs "schemes=disco,s4" is an
// ordering mismatch in `schemes`, not an anonymous "spec differs") so a
// refused merge tells the operator which knob — or which list order — to
// fix. Inputs include the trailing newline; either may be empty (unsigned
// shard).
std::string DescribeSignatureMismatch(const std::string& reference,
                                      const std::string& other) {
  if (reference.empty() != other.empty()) {
    return other.empty() ? "it has no #spec line but shard 0 has one"
                         : "it has a #spec line but shard 0 has none";
  }
  const auto fields = [](const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < line.size()) {
      std::size_t end = line.find_first_of(" \n", pos);
      if (end == std::string::npos) end = line.size();
      if (end > pos) out.push_back(line.substr(pos, end - pos));
      pos = end + 1;
    }
    return out;
  };
  const std::vector<std::string> a = fields(reference), b = fields(other);
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) continue;
    const std::size_t eq = a[i].find('=');
    const std::string name =
        eq != std::string::npos ? a[i].substr(0, eq) : a[i];
    return "field \"" + name + "\" differs (shard 0: " + a[i] +
           ", this shard: " + b[i] + ")";
  }
  return a.size() != b.size() ? "fingerprints have different field counts"
                              : "fingerprints differ";
}

}  // namespace

std::string MergeShardContents(const std::vector<std::string>& shards,
                               std::string* error) {
  const std::string header = SweepHeader();
  struct Row {
    std::size_t cell;
    std::string line;
  };
  std::vector<Row> rows;
  std::string signature;  // shard 0's "#spec" line, if any
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const std::string& content = shards[si];
    std::size_t pos = 0;
    bool saw_header = false;
    std::string my_signature;
    while (pos < content.size()) {
      auto nl = content.find('\n', pos);
      if (nl == std::string::npos) nl = content.size();
      const std::string line = content.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) continue;
      if (!saw_header) {
        if (line[0] == '#' && my_signature.empty()) {
          my_signature = line + "\n";
          continue;
        }
        if (line + "\n" != header) {
          if (error) *error = "shard " + std::to_string(si) +
                              ": unexpected header line";
          return "";
        }
        saw_header = true;
        continue;
      }
      char* end = nullptr;
      errno = 0;  // a cell overflowing ULLONG_MAX is malformed, not 2^64-1
      const unsigned long long cell = std::strtoull(line.c_str(), &end, 10);
      if (end == line.c_str() || *end != '\t' || errno == ERANGE) {
        if (error) *error = "shard " + std::to_string(si) +
                            ": malformed row: " + line;
        return "";
      }
      rows.push_back({static_cast<std::size_t>(cell), line});
    }
    if (!saw_header) {
      if (error) *error = "shard " + std::to_string(si) + ": empty file";
      return "";
    }
    // Every shard of one sweep carries the same grid fingerprint; a stale
    // shard from a different sweep must fail here instead of merging into
    // a silently mixed table.
    if (si == 0) {
      signature = my_signature;
    } else if (my_signature != signature) {
      if (error) *error = "shard " + std::to_string(si) +
                          ": #spec fingerprint differs from shard 0 "
                          "(shards come from different sweeps): " +
                          DescribeSignatureMismatch(signature, my_signature);
      return "";
    }
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.cell < b.cell; });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].cell != i) {
      if (error) {
        *error = rows[i].cell < i
                     ? "duplicate cell " + std::to_string(rows[i].cell)
                     : "missing cell " + std::to_string(i);
      }
      return "";
    }
  }

  std::string out = signature + header;
  for (const Row& row : rows) {
    out += row.line;
    out += '\n';
  }
  return out;
}

}  // namespace disco::api
