// The unified protocol surface of the evaluation: every routing scheme the
// paper compares (Disco, NDDisco, S4, VRR, shortest-path) behind one
// polymorphic interface, so harnesses, examples and the sweep driver can
// select and drive protocols by name instead of wiring concrete classes.
//
// A scheme is a *converged* protocol instance on one graph: construction
// runs the (static-simulator) control plane; the virtual methods expose the
// data plane the figures measure — routing (first packet of a flow vs
// packets after the handshake), per-node state in table entries, and the
// Fig. 7 byte model. Schemes for which the first packet routes no
// differently (VRR, shortest-path) return the same route from both entry
// points and report distinguishes_first_packet() == false so harnesses can
// collapse the two rows.
//
// Determinism contract: every method is a pure function of (graph, Params)
// — two instances built from the same inputs return identical routes,
// state, and bytes, regardless of call order, sharing, or thread count.
#pragma once

#include <string>
#include <vector>

#include "core/route.h"
#include "core/state.h"
#include "graph/graph.h"
#include "routing/params.h"
#include "sim/metrics.h"

namespace disco::api {

/// Which packet of a flow a route_fn should simulate.
enum class Phase { kFirst, kLater };

class RoutingScheme {
 public:
  virtual ~RoutingScheme() = default;

  /// Registry key ("disco", "nddisco", "s4", "vrr", "spf").
  virtual const std::string& name() const = 0;

  /// Display label for figure rows ("Disco", "ND-Disco", "Path-vector").
  virtual const std::string& label() const = 0;

  /// Compact label for table columns and TSV keys ("Disco", "ND", "S4").
  virtual const std::string& short_name() const = 0;

  virtual const Graph& graph() const = 0;

  /// First packet of a flow (destination known only by flat name where the
  /// protocol makes that distinction).
  virtual Route RouteFirst(NodeId s, NodeId t) = 0;

  /// Packets after the handshake.
  virtual Route RouteLater(NodeId s, NodeId t) = 0;

  /// False when RouteFirst and RouteLater are the same function (VRR,
  /// shortest-path), so harnesses print one row instead of two.
  virtual bool distinguishes_first_packet() const { return true; }

  /// Data-plane state of node v, in table entries (§4.5 accounting).
  virtual StateBreakdown State(NodeId v) = 0;

  /// State(v).total() for every node, fanned out over the runtime thread
  /// pool (thread-count-invariant). Overrides may bulk-compute shared
  /// structures first (S4 cluster sizes).
  virtual std::vector<double> CollectState();

  /// Bytes of routing state at v under `name_bytes`-byte node names — the
  /// Fig. 7 byte model. The default charges name + 1B next-hop per route
  /// entry and 1B per forwarding-label entry; Disco-family overrides add
  /// the stored-address records (which include explicit-route bytes).
  virtual double StateBytes(NodeId v, double name_bytes);

  /// Bulk-computes whatever converged structures a sweep from `sources`
  /// to arbitrary destinations will fault in anyway (landmark trees,
  /// source vicinities). Wall-clock only; never changes results. With a
  /// process artifact store attached (--store=, src/store/), prewarming
  /// resolves landmark trees from disk instead of recomputing them —
  /// loaded structures are bit-identical, so the contract is unchanged.
  virtual void PrewarmFor(const std::vector<NodeId>& sources);

  /// Bridges to the sim/metrics.h harness (SampleStretch,
  /// CongestionCounts). The returned callable borrows `this`.
  RouteFn route_fn(Phase phase);

  /// Convenience: every node id, the natural PrewarmFor argument for
  /// whole-graph sweeps.
  std::vector<NodeId> AllNodes() const;
};

}  // namespace disco::api
