// Concrete RoutingScheme adapters for every protocol in the repo. Generic
// harnesses should obtain these through the registry (api/registry.h);
// benches that need paper-specific internals (the overlay, the DES
// cross-check) can hold the concrete adapter and reach the underlying
// protocol object via impl().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/routing_scheme.h"
#include "baselines/s4.h"
#include "baselines/spf.h"
#include "baselines/vrr.h"
#include "core/disco.h"

namespace disco::api {

/// Disco (§4.4): name-independent routing, first-packet stretch ≤ 7.
class DiscoScheme : public RoutingScheme {
 public:
  DiscoScheme(const Graph& g, const Params& params);
  /// Shares an already-built protocol instance (see MakeSchemes, which
  /// builds one Disco for the "disco" and "nddisco" entries of a batch).
  explicit DiscoScheme(std::shared_ptr<Disco> impl);

  Disco& impl() { return *impl_; }
  std::shared_ptr<Disco> shared_impl() { return impl_; }

  const std::string& name() const override;
  const std::string& label() const override;
  const std::string& short_name() const override;
  const Graph& graph() const override { return impl_->graph(); }
  Route RouteFirst(NodeId s, NodeId t) override;
  Route RouteLater(NodeId s, NodeId t) override;
  StateBreakdown State(NodeId v) override;
  double StateBytes(NodeId v, double name_bytes) override;
  void PrewarmFor(const std::vector<NodeId>& sources) override;

 private:
  std::shared_ptr<Disco> impl_;
  std::vector<std::size_t> route_bytes_;  // lazy, for StateBytes
};

/// NDDisco (§4.2): the name-dependent layer, measured with the resolution
/// records its landmarks would host in the full system — the accounting of
/// Fig. 2/7. Wraps a full Disco instance so that accounting is exactly the
/// composite's (and so a batch can share one instance with DiscoScheme).
class NdDiscoScheme : public RoutingScheme {
 public:
  NdDiscoScheme(const Graph& g, const Params& params);
  explicit NdDiscoScheme(std::shared_ptr<Disco> impl);

  NdDisco& impl() { return owner_->nd(); }

  const std::string& name() const override;
  const std::string& label() const override;
  const std::string& short_name() const override;
  const Graph& graph() const override { return owner_->graph(); }
  Route RouteFirst(NodeId s, NodeId t) override;
  Route RouteLater(NodeId s, NodeId t) override;
  StateBreakdown State(NodeId v) override;
  double StateBytes(NodeId v, double name_bytes) override;
  void PrewarmFor(const std::vector<NodeId>& sources) override;

 private:
  std::shared_ptr<Disco> owner_;
  std::vector<std::size_t> route_bytes_;
};

/// S4 (Mao et al., NSDI'07): the closest prior compact routing protocol.
class S4Scheme : public RoutingScheme {
 public:
  S4Scheme(const Graph& g, const Params& params);

  S4& impl() { return *impl_; }

  const std::string& name() const override;
  const std::string& label() const override;
  const std::string& short_name() const override;
  const Graph& graph() const override { return impl_->graph(); }
  Route RouteFirst(NodeId s, NodeId t) override;
  Route RouteLater(NodeId s, NodeId t) override;
  StateBreakdown State(NodeId v) override;
  std::vector<double> CollectState() override;
  double StateBytes(NodeId v, double name_bytes) override;
  void PrewarmFor(const std::vector<NodeId>& sources) override;

 private:
  std::unique_ptr<S4> impl_;
  std::vector<std::size_t> route_bytes_;
};

/// VRR (Caesar et al., SIGCOMM'06): every packet routes the same way.
class VrrScheme : public RoutingScheme {
 public:
  VrrScheme(const Graph& g, const Params& params);

  Vrr& impl() { return *impl_; }

  const std::string& name() const override;
  const std::string& label() const override;
  const std::string& short_name() const override;
  const Graph& graph() const override { return impl_->graph(); }
  Route RouteFirst(NodeId s, NodeId t) override;
  Route RouteLater(NodeId s, NodeId t) override;
  bool distinguishes_first_packet() const override { return false; }
  StateBreakdown State(NodeId v) override;

 private:
  std::unique_ptr<Vrr> impl_;
};

/// Shortest-path / path-vector: the stretch-1, Ω(n)-state reference.
class SpfScheme : public RoutingScheme {
 public:
  SpfScheme(const Graph& g, const Params& params);

  ShortestPathRouting& impl() { return *impl_; }

  const std::string& name() const override;
  const std::string& label() const override;
  const std::string& short_name() const override;
  const Graph& graph() const override { return *g_; }
  Route RouteFirst(NodeId s, NodeId t) override;
  Route RouteLater(NodeId s, NodeId t) override;
  bool distinguishes_first_packet() const override { return false; }
  StateBreakdown State(NodeId v) override;

 private:
  const Graph* g_;
  std::unique_ptr<ShortestPathRouting> impl_;
};

}  // namespace disco::api
