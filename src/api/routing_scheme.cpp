#include "api/routing_scheme.h"

#include "runtime/parallel_for.h"

namespace disco::api {

std::vector<double> RoutingScheme::CollectState() {
  std::vector<double> out(graph().num_nodes());
  // Disjoint index-addressed slots over converged tables: the series is
  // thread-count-invariant (the PR-1 determinism contract).
  runtime::ParallelFor(0, out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t vi = lo; vi < hi; ++vi) {
      out[vi] = static_cast<double>(State(static_cast<NodeId>(vi)).total());
    }
  });
  return out;
}

double RoutingScheme::StateBytes(NodeId v, double name_bytes) {
  const StateBreakdown b = State(v);
  const std::size_t route_entries =
      b.total() - b.label_entries - b.overlay_entries;
  return (name_bytes + 1) * static_cast<double>(route_entries) +
         static_cast<double>(b.label_entries) +
         name_bytes * static_cast<double>(b.overlay_entries);
}

void RoutingScheme::PrewarmFor(const std::vector<NodeId>& sources) {
  (void)sources;  // nothing to prewarm by default
}

RouteFn RoutingScheme::route_fn(Phase phase) {
  if (phase == Phase::kFirst) {
    return [this](NodeId s, NodeId t) { return RouteFirst(s, t); };
  }
  return [this](NodeId s, NodeId t) { return RouteLater(s, t); };
}

std::vector<NodeId> RoutingScheme::AllNodes() const {
  std::vector<NodeId> all(graph().num_nodes());
  for (NodeId v = 0; v < graph().num_nodes(); ++v) all[v] = v;
  return all;
}

}  // namespace disco::api
