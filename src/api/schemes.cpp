#include "api/schemes.h"

namespace disco::api {
namespace {

// Explicit-route bytes of every node's address under `book` — the part of
// a stored address record that varies per destination (Fig. 7 byte model).
std::vector<std::size_t> RouteBytesOf(const AddressBook& book, NodeId n) {
  std::vector<std::size_t> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = book.AddressOf(v).route_bytes();
  return out;
}

// Bytes of the address records for `stored` destinations: two names (key
// and landmark) plus the explicit route.
double RecordBytes(const std::vector<NodeId>& stored,
                   const std::vector<std::size_t>& route_bytes,
                   double name_bytes) {
  double total = 0;
  for (const NodeId t : stored) {
    total += 2 * name_bytes + static_cast<double>(route_bytes[t]);
  }
  return total;
}

const std::string kDiscoName = "disco", kDiscoLabel = "Disco";
const std::string kNdName = "nddisco", kNdLabel = "ND-Disco", kNdShort = "ND";
const std::string kS4Name = "s4", kS4Label = "S4";
const std::string kVrrName = "vrr", kVrrLabel = "VRR";
const std::string kSpfName = "spf", kSpfLabel = "Path-vector",
                  kSpfShort = "SPF";

}  // namespace

// ----------------------------------------------------------------- Disco

DiscoScheme::DiscoScheme(const Graph& g, const Params& params)
    : impl_(std::make_shared<Disco>(g, params)) {}

DiscoScheme::DiscoScheme(std::shared_ptr<Disco> impl)
    : impl_(std::move(impl)) {}

const std::string& DiscoScheme::name() const { return kDiscoName; }
const std::string& DiscoScheme::label() const { return kDiscoLabel; }
const std::string& DiscoScheme::short_name() const { return kDiscoLabel; }

Route DiscoScheme::RouteFirst(NodeId s, NodeId t) {
  return impl_->RouteFirst(s, t);
}

Route DiscoScheme::RouteLater(NodeId s, NodeId t) {
  return impl_->RouteLater(s, t);
}

StateBreakdown DiscoScheme::State(NodeId v) { return impl_->State(v); }

double DiscoScheme::StateBytes(NodeId v, double name_bytes) {
  if (route_bytes_.empty()) {
    route_bytes_ = RouteBytesOf(impl_->nd().addresses(), graph().num_nodes());
  }
  const StateBreakdown b = State(v);
  return (name_bytes + 1) * static_cast<double>(b.landmark_entries +
                                                b.vicinity_entries) +
         static_cast<double>(b.label_entries) +
         RecordBytes(impl_->resolution().OwnedNodes(v), route_bytes_,
                     name_bytes) +
         RecordBytes(impl_->groups().StoredAddresses(v), route_bytes_,
                     name_bytes) +
         name_bytes * static_cast<double>(b.overlay_entries);
}

void DiscoScheme::PrewarmFor(const std::vector<NodeId>& sources) {
  impl_->nd().PrewarmLandmarkTrees();
  impl_->nd().PrewarmVicinities(sources);
}

// --------------------------------------------------------------- NDDisco

NdDiscoScheme::NdDiscoScheme(const Graph& g, const Params& params)
    : owner_(std::make_shared<Disco>(g, params)) {}

NdDiscoScheme::NdDiscoScheme(std::shared_ptr<Disco> impl)
    : owner_(std::move(impl)) {}

const std::string& NdDiscoScheme::name() const { return kNdName; }
const std::string& NdDiscoScheme::label() const { return kNdLabel; }
const std::string& NdDiscoScheme::short_name() const { return kNdShort; }

Route NdDiscoScheme::RouteFirst(NodeId s, NodeId t) {
  return owner_->nd().RouteFirst(s, t);
}

Route NdDiscoScheme::RouteLater(NodeId s, NodeId t) {
  return owner_->nd().RouteLater(s, t);
}

StateBreakdown NdDiscoScheme::State(NodeId v) {
  return owner_->nd().State(v, &owner_->resolution());
}

double NdDiscoScheme::StateBytes(NodeId v, double name_bytes) {
  if (route_bytes_.empty()) {
    route_bytes_ = RouteBytesOf(owner_->nd().addresses(),
                                graph().num_nodes());
  }
  const StateBreakdown b = State(v);
  return (name_bytes + 1) * static_cast<double>(b.landmark_entries +
                                                b.vicinity_entries) +
         static_cast<double>(b.label_entries) +
         RecordBytes(owner_->resolution().OwnedNodes(v), route_bytes_,
                     name_bytes);
}

void NdDiscoScheme::PrewarmFor(const std::vector<NodeId>& sources) {
  owner_->nd().PrewarmLandmarkTrees();
  owner_->nd().PrewarmVicinities(sources);
}

// -------------------------------------------------------------------- S4

S4Scheme::S4Scheme(const Graph& g, const Params& params)
    : impl_(std::make_unique<S4>(g, params)) {}

const std::string& S4Scheme::name() const { return kS4Name; }
const std::string& S4Scheme::label() const { return kS4Label; }
const std::string& S4Scheme::short_name() const { return kS4Label; }

Route S4Scheme::RouteFirst(NodeId s, NodeId t) {
  return impl_->RouteFirst(s, t);
}

Route S4Scheme::RouteLater(NodeId s, NodeId t) {
  return impl_->RouteLater(s, t);
}

StateBreakdown S4Scheme::State(NodeId v) { return impl_->State(v); }

std::vector<double> S4Scheme::CollectState() {
  impl_->ClusterSizes();  // one parallel pass instead of a lazy first State
  return RoutingScheme::CollectState();
}

double S4Scheme::StateBytes(NodeId v, double name_bytes) {
  if (route_bytes_.empty()) {
    route_bytes_ = RouteBytesOf(impl_->addresses(), graph().num_nodes());
  }
  const StateBreakdown b = State(v);
  return (name_bytes + 1) * static_cast<double>(b.landmark_entries +
                                                b.cluster_entries) +
         static_cast<double>(b.label_entries) +
         RecordBytes(impl_->resolution().OwnedNodes(v), route_bytes_,
                     name_bytes);
}

void S4Scheme::PrewarmFor(const std::vector<NodeId>& sources) {
  (void)sources;  // balls are per-destination and memoized on demand
  impl_->PrewarmLandmarkTrees();
}

// ------------------------------------------------------------------- VRR

VrrScheme::VrrScheme(const Graph& g, const Params& params)
    : impl_(std::make_unique<Vrr>(g, params)) {}

const std::string& VrrScheme::name() const { return kVrrName; }
const std::string& VrrScheme::label() const { return kVrrLabel; }
const std::string& VrrScheme::short_name() const { return kVrrLabel; }

Route VrrScheme::RouteFirst(NodeId s, NodeId t) {
  return impl_->RoutePacket(s, t);
}

Route VrrScheme::RouteLater(NodeId s, NodeId t) {
  return impl_->RoutePacket(s, t);
}

StateBreakdown VrrScheme::State(NodeId v) { return impl_->State(v); }

// ------------------------------------------------------------------- SPF

SpfScheme::SpfScheme(const Graph& g, const Params& params)
    // Destination-tree cache: every tree on the ~1k comparison graphs
    // (each is O(n) memory, so all of them fit), the fig10-style 512-entry
    // LRU on Internet-scale maps where n trees would not.
    : g_(&g),
      impl_(std::make_unique<ShortestPathRouting>(
          g, g.num_nodes() <= 2048 ? g.num_nodes() : 512)) {
  (void)params;  // shortest-path routing has no protocol knobs
}

const std::string& SpfScheme::name() const { return kSpfName; }
const std::string& SpfScheme::label() const { return kSpfLabel; }
const std::string& SpfScheme::short_name() const { return kSpfShort; }

Route SpfScheme::RouteFirst(NodeId s, NodeId t) {
  return impl_->RoutePacket(s, t);
}

Route SpfScheme::RouteLater(NodeId s, NodeId t) {
  return impl_->RoutePacket(s, t);
}

StateBreakdown SpfScheme::State(NodeId v) { return impl_->State(v); }

}  // namespace disco::api
