// String-keyed factory over the RoutingScheme adapters: protocols become
// data ("disco,s4,vrr" on a command line), not code. Built-ins are
// registered on first use; experiments can add their own variants (e.g. a
// re-parameterized Disco) with RegisterScheme before parsing flags.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/routing_scheme.h"

namespace disco::api {

using SchemeFactory = std::function<std::unique_ptr<RoutingScheme>(
    const Graph& g, const Params& params)>;

/// Static metadata about a registered scheme — what a harness needs to lay
/// out columns before (or without) building an instance.
struct SchemeInfo {
  std::string name;        // registry key
  std::string label;       // display label ("ND-Disco")
  std::string short_name;  // column/TSV key ("ND")
  bool distinguishes_first_packet = true;
};

/// Metadata for `name`, or nullptr if unregistered. The pointer stays
/// valid for the process lifetime.
const SchemeInfo* GetSchemeInfo(const std::string& name);

/// Registered keys in registration order; built-ins first:
/// disco, nddisco, s4, vrr, spf.
std::vector<std::string> RegisteredSchemes();

bool IsRegisteredScheme(const std::string& name);

/// Adds (or replaces) a factory under `name`. Not thread-safe; call during
/// startup, before any MakeScheme. The overload without `info` labels the
/// scheme by its key and assumes it distinguishes first packets.
void RegisterScheme(const std::string& name, SchemeFactory factory);
void RegisterScheme(const std::string& name, SchemeInfo info,
                    SchemeFactory factory);

/// Builds one converged scheme instance. Returns nullptr for an unknown
/// name (callers print RegisteredSchemes() in their usage message).
std::unique_ptr<RoutingScheme> MakeScheme(const std::string& name,
                                          const Graph& g,
                                          const Params& params);

/// Builds one instance per name, in order. Unlike per-name MakeScheme
/// calls, a batch containing both "disco" and "nddisco" shares a single
/// underlying Disco (same results — every scheme is a pure function of
/// (graph, params) — but the landmark/vicinity work is done once).
/// Returns an empty vector if any name is unknown.
std::vector<std::unique_ptr<RoutingScheme>> MakeSchemes(
    const std::vector<std::string>& names, const Graph& g,
    const Params& params);

/// Splits "disco,s4,vrr" into {"disco","s4","vrr"} (empty pieces dropped).
/// Does not validate against the registry.
std::vector<std::string> SplitSchemeList(const std::string& csv);

}  // namespace disco::api
