#include "api/registry.h"

#include <deque>
#include <utility>

#include "api/schemes.h"

namespace disco::api {
namespace {

struct Entry {
  SchemeInfo info;
  SchemeFactory factory;
  bool stock = true;  // false once RegisterScheme replaces the built-in
};

// A deque so SchemeInfo pointers handed out by GetSchemeInfo survive later
// RegisterScheme calls.
std::deque<Entry>& TheRegistry() {
  static std::deque<Entry> entries = [] {
    std::deque<Entry> e;
    e.push_back({{"disco", "Disco", "Disco", true},
                 [](const Graph& g, const Params& p) {
                   return std::unique_ptr<RoutingScheme>(
                       std::make_unique<DiscoScheme>(g, p));
                 }});
    e.push_back({{"nddisco", "ND-Disco", "ND", true},
                 [](const Graph& g, const Params& p) {
                   return std::unique_ptr<RoutingScheme>(
                       std::make_unique<NdDiscoScheme>(g, p));
                 }});
    e.push_back({{"s4", "S4", "S4", true},
                 [](const Graph& g, const Params& p) {
                   return std::unique_ptr<RoutingScheme>(
                       std::make_unique<S4Scheme>(g, p));
                 }});
    e.push_back({{"vrr", "VRR", "VRR", false},
                 [](const Graph& g, const Params& p) {
                   return std::unique_ptr<RoutingScheme>(
                       std::make_unique<VrrScheme>(g, p));
                 }});
    e.push_back({{"spf", "Path-vector", "SPF", false},
                 [](const Graph& g, const Params& p) {
                   return std::unique_ptr<RoutingScheme>(
                       std::make_unique<SpfScheme>(g, p));
                 }});
    return e;
  }();
  return entries;
}

}  // namespace

std::vector<std::string> RegisteredSchemes() {
  std::vector<std::string> names;
  for (const Entry& e : TheRegistry()) names.push_back(e.info.name);
  return names;
}

bool IsRegisteredScheme(const std::string& name) {
  return GetSchemeInfo(name) != nullptr;
}

const SchemeInfo* GetSchemeInfo(const std::string& name) {
  for (const Entry& e : TheRegistry()) {
    if (e.info.name == name) return &e.info;
  }
  return nullptr;
}

void RegisterScheme(const std::string& name, SchemeFactory factory) {
  RegisterScheme(name, SchemeInfo{name, name, name, true},
                 std::move(factory));
}

void RegisterScheme(const std::string& name, SchemeInfo info,
                    SchemeFactory factory) {
  info.name = name;
  for (Entry& e : TheRegistry()) {
    if (e.info.name == name) {
      e.info = std::move(info);
      e.factory = std::move(factory);
      e.stock = false;
      return;
    }
  }
  TheRegistry().push_back({std::move(info), std::move(factory), false});
}

std::unique_ptr<RoutingScheme> MakeScheme(const std::string& name,
                                          const Graph& g,
                                          const Params& params) {
  for (const Entry& e : TheRegistry()) {
    if (e.info.name == name) return e.factory(g, params);
  }
  return nullptr;
}

std::vector<std::unique_ptr<RoutingScheme>> MakeSchemes(
    const std::vector<std::string>& names, const Graph& g,
    const Params& params) {
  // "disco" and "nddisco" are two views of one composite protocol; build
  // that composite once per batch — but only while their factories are the
  // stock ones (a RegisterScheme replacement must win over the shortcut).
  const auto is_stock = [](const std::string& name) {
    for (const Entry& e : TheRegistry()) {
      if (e.info.name == name) return e.stock;
    }
    return false;
  };
  std::shared_ptr<Disco> shared_disco;
  const auto disco_of = [&] {
    if (!shared_disco) shared_disco = std::make_shared<Disco>(g, params);
    return shared_disco;
  };

  std::vector<std::unique_ptr<RoutingScheme>> out;
  for (const std::string& name : names) {
    std::unique_ptr<RoutingScheme> scheme;
    if (name == "disco" && is_stock(name)) {
      scheme = std::make_unique<DiscoScheme>(disco_of());
    } else if (name == "nddisco" && is_stock(name)) {
      scheme = std::make_unique<NdDiscoScheme>(disco_of());
    } else {
      scheme = MakeScheme(name, g, params);
    }
    if (!scheme) return {};
    out.push_back(std::move(scheme));
  }
  return out;
}

std::vector<std::string> SplitSchemeList(const std::string& csv) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace disco::api
