// Sharded multi-graph experiment sweeps (the ROADMAP driver): expands a
// (topology × n × seed × scheme × scenario) grid into independent cells,
// runs each cell's measurements through the runtime thread pool, and
// merges per-shard TSVs into one deterministic table. Cells with a
// non-null scenario additionally run a replicated DES campaign
// (sim/campaign.h) of the scheme's protocol plane through the scripted
// disturbance and report reduced convergence columns.
//
// Sharding contract: the grid expansion is a pure function of the spec, so
// every process of a multi-process run derives the same cell indexing;
// shard i of m takes the cells with index % m == i (round-robin, so equal
// topologies spread across shards). Each cell is self-contained — it
// builds its own graph and converged scheme from (topology, n, seed) — so
// merged output is byte-identical to a single-process run of the whole
// grid, no matter how cells were partitioned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "routing/params.h"
#include "runtime/thread_pool.h"
#include "sim/scenario.h"

namespace disco::api {

struct SweepSpec {
  std::vector<std::string> topologies;  // from SweepTopologyFamilies()
  std::vector<NodeId> sizes;
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> schemes;  // registry keys
  /// Dynamics scenario kinds (sim/scenario.h); "null" cells measure the
  /// static scheme only, other kinds add a DES re-convergence campaign.
  std::vector<std::string> scenarios = {"null"};
  /// DES replicas per non-null-scenario cell (run in-process inside the
  /// cell, so sweep cells stay independent executor tasks).
  std::size_t replicas = 1;
  /// Shared scenario knobs (events, fraction, spacing, ...); `kind` is
  /// overridden by the cell's scenario axis value.
  ScenarioSpec scenario_base;
  /// Sampled source-destination pairs per cell (stretch measurement).
  std::size_t pairs = 200;
  /// Protocol sizing knobs; `base.seed` is overridden per cell.
  Params base;
};

/// One grid point: a converged scheme on one generated topology.
struct SweepCell {
  std::size_t index = 0;  // position in the full grid; the merge sort key
  std::string topology;
  NodeId n = 0;
  std::uint64_t seed = 1;
  std::string scheme;
  std::string scenario = "null";
};

/// The synthetic topology families a sweep can draw from:
/// gnm, geo, as, router.
const std::vector<std::string>& SweepTopologyFamilies();

/// Builds one topology instance; returns an empty graph for an unknown
/// family (validate against SweepTopologyFamilies() first).
Graph MakeSweepTopology(const std::string& family, NodeId n,
                        std::uint64_t seed);

/// Expands the spec into cells, nested topology -> n -> seed -> scheme ->
/// scenario, with index = position. Deterministic: every shard of a
/// multi-process run computes the same expansion.
std::vector<SweepCell> ExpandGrid(const SweepSpec& spec);

/// The cells shard `shard` of `num_shards` is responsible for
/// (index % num_shards == shard).
std::vector<SweepCell> ShardOf(const std::vector<SweepCell>& grid,
                               std::size_t shard, std::size_t num_shards);

/// TSV column header (with trailing newline) shared by shard files and the
/// merged table.
std::string SweepHeader();

/// One "#spec ..." comment line (with trailing newline) fingerprinting the
/// grid: topologies, sizes, seeds, schemes, pairs and the sizing knobs.
/// Shard files written by the driver start with it, and MergeShardContents
/// refuses to combine shards whose fingerprints differ — stale shard files
/// from an earlier, different sweep in the same --out directory must not
/// merge into a silently mixed table.
std::string SweepSignature(const SweepSpec& spec);

/// Runs one cell: builds the topology and scheme, samples first/later
/// stretch (spec.pairs pairs, the cell seed), collects per-node state, and
/// renders one TSV row (with trailing newline). Returns "" for an
/// unregistered scheme or unknown/empty topology — the row is simply
/// absent, which a later MergeShardContents reports as a missing cell, so
/// validate the spec against RegisteredSchemes()/SweepTopologyFamilies()
/// up front (the disco_sweep driver does).
std::string RunSweepCell(const SweepCell& cell, const SweepSpec& spec);

/// Runs `cells` as independent trials over the thread pool and returns
/// their rows concatenated in cell order (no header). Pass `pool` (e.g. a
/// ThreadPool(1)) to bound trial-level concurrency when cells are large;
/// fan-outs inside a cell still use the shared pool.
std::string RunSweepCells(const std::vector<SweepCell>& cells,
                          const SweepSpec& spec,
                          runtime::ThreadPool* pool = nullptr);

/// "sweep_shard_<shard>_of_<num_shards>.tsv".
std::string ShardFileName(std::size_t shard, std::size_t num_shards);

/// Merges whole shard files (each an optional SweepSignature() line, then
/// SweepHeader() + rows) into the final table: rows sorted by cell index,
/// each index 0..N-1 present exactly once, signature (when present)
/// identical across shards and reproduced in the output. On any
/// inconsistency (bad header, mismatched signatures, duplicate or missing
/// cell) returns an empty string and sets *error; a fingerprint mismatch
/// names the first differing field (e.g. a reordered `schemes=` list),
/// not just "spec differs".
std::string MergeShardContents(const std::vector<std::string>& shards,
                               std::string* error);

}  // namespace disco::api
