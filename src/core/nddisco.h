// NDDisco (§4.2): the name-dependent distributed compact routing protocol
// underlying Disco, a distributed realization of Thorup–Zwick's
// handshaking-based scheme [44].
//
// Converged state per node: shortest paths to all Θ(sqrt(n ln n)) landmarks
// and to the k = Θ(sqrt(n ln n)) closest nodes (the vicinity). A node's
// address is (l_v, explicit route l_v ; v). Given the destination's
// address, the first packet takes s ; l_t ; t (stretch ≤ 5); the handshake
// then lets t install the direct path when s ∈ V(t), and every later packet
// has stretch ≤ 3 (often 1).
//
// This class is the static simulator's view: it materializes the routes the
// converged distributed protocol would use, with the shortcutting
// heuristics of Fig. 6 applied on top. The DES in src/sim/ reproduces the
// convergence messaging of the same protocol.
#pragma once

#include <memory>

#include "core/name_resolution.h"
#include "core/route.h"
#include "core/shortcut.h"
#include "core/state.h"
#include "graph/graph.h"
#include "routing/address.h"
#include "routing/landmark_trees.h"
#include "routing/landmarks.h"
#include "routing/params.h"
#include "routing/vicinity.h"

namespace disco {

class NdDisco {
 public:
  NdDisco(const Graph& g, const Params& params);

  /// Operator-chosen landmarks (§6): any set works as long as each node
  /// keeps a landmark in its vicinity; the stretch machinery is unchanged.
  NdDisco(const Graph& g, const Params& params, LandmarkSet landmarks);

  const Graph& graph() const { return *g_; }
  const Params& params() const { return params_; }
  const LandmarkSet& landmarks() const { return landmarks_; }
  const AddressBook& addresses() const { return addresses_; }
  std::size_t vicinity_size() const { return vicinities_.k(); }

  /// The converged vicinity of v (memoized).
  std::shared_ptr<const Vicinity> vicinity(NodeId v) {
    return vicinities_.Get(v);
  }

  /// Bulk-computes the vicinities of `nodes` over the runtime thread pool
  /// (wall-clock only; contents are deterministic). Use before a sweep
  /// that routes from a known set of sources.
  void PrewarmVicinities(const std::vector<NodeId>& nodes) {
    vicinities_.Prewarm(nodes);
  }

  /// Fans every landmark-tree Dijkstra out over the thread pool up front
  /// (when the whole set fits in the cache). For sweeps that will touch
  /// most landmarks anyway; ad-hoc routing should stay lazy/LRU.
  void PrewarmLandmarkTrees() { trees_.Prewarm(); }

  /// The Dijkstra tree of landmark l (memoized); how every node knows its
  /// shortest path to l.
  std::shared_ptr<const ShortestPathTree> LandmarkTree(NodeId l) {
    return trees_.Tree(l);
  }

  /// Whether u can route to t with no extra information: t is a landmark
  /// or t ∈ V(u).
  bool KnowsDirect(NodeId u, NodeId t);

  /// The shortest path u -> t if KnowsDirect(u, t); empty otherwise.
  std::vector<NodeId> DirectPath(NodeId u, NodeId t);

  /// The planned first-packet path (before shortcutting): direct if s knows
  /// t, else s ; l_t ; t via t's address.
  std::vector<NodeId> FirstPacketPlan(NodeId s, NodeId t);

  /// Routes the first packet of a flow, s knowing t's address
  /// (name-dependent model). Worst-case stretch 5.
  Route RouteFirst(NodeId s, NodeId t,
                   Shortcut mode = Shortcut::kNoPathKnowledge);

  /// Routes packets after the handshake: direct if either endpoint has the
  /// other in its vicinity, else via l_t. Worst-case stretch 3 w.h.p.
  Route RouteLater(NodeId s, NodeId t,
                   Shortcut mode = Shortcut::kNoPathKnowledge);

  /// Data-plane state of node v (§4.5): landmark routes, vicinity routes,
  /// forwarding-label map, plus hosted resolution records when `resolution`
  /// is provided and v is a landmark.
  StateBreakdown State(NodeId v, const ResolutionDb* resolution = nullptr);

  /// Shortcut oracles shared with Disco (which plans longer routes but
  /// shortcuts through the same converged tables).
  DirectPathFn MakeDirectOracle();
  VicinityFn MakeVicinityOracle();

  /// Finishes a plan: applies the shortcut mode and packages a Route.
  Route FinishPlan(std::vector<NodeId> plan,
                   const std::function<std::vector<NodeId>()>& reverse_plan,
                   Shortcut mode);

 private:
  const Graph* g_;
  Params params_;
  LandmarkSet landmarks_;
  AddressBook addresses_;
  VicinityCache vicinities_;
  LandmarkTreeCache trees_;
};

}  // namespace disco
