// Per-node routing-state accounting, in table entries — the unit of the
// paper's Fig. 2/4/5/7/9. Every protocol fills the components that apply
// to it; total() is the data-plane number the CDFs plot.
#pragma once

#include <cstddef>

namespace disco {

struct StateBreakdown {
  std::size_t landmark_entries = 0;    // routes to all landmarks
  std::size_t vicinity_entries = 0;    // NDDisco/Disco: the k closest nodes
  std::size_t cluster_entries = 0;     // S4: the (unbounded) cluster
  std::size_t label_entries = 0;       // compact-label -> interface map
  std::size_t resolution_entries = 0;  // landmark-hosted resolution records
  std::size_t group_entries = 0;       // Disco: stored sloppy-group addresses
  std::size_t overlay_entries = 0;     // Disco: overlay neighbor set
  std::size_t vset_entries = 0;        // VRR: path entries through this node
  std::size_t fib_entries = 0;         // shortest-path/path-vector: per-dest

  std::size_t total() const {
    return landmark_entries + vicinity_entries + cluster_entries +
           label_entries + resolution_entries + group_entries +
           overlay_entries + vset_entries + fib_entries;
  }
};

}  // namespace disco
