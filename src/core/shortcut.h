// Shortcutting heuristics (§4.2 and Fig. 6 of the paper).
//
// A compact-routing route s ; l_t ; t is a plan, not a commitment: nodes
// along the way often know better. The paper evaluates six levels of
// opportunism, from none to full "Path Knowledge":
//
//   kNone                     follow the planned route verbatim
//   kToDestination            any on-path node that knows a direct path to
//                             the destination (vicinity or landmark) cuts
//                             over to it (S4's built-in behavior)
//   kShorterOfForwardReverse  also plan the reverse route t ; s and use
//                             whichever direction is shorter
//   kNoPathKnowledge          To-Destination + forward/reverse choice; the
//                             paper's default for all headline results
//   kUpDownStream             the first packet carries the planned node
//                             list; each on-path node may splice in a
//                             shorter vicinity path to *any* downstream
//                             node, not just the destination
//   kPathKnowledge            Up-Down-Stream + forward/reverse choice
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "routing/vicinity.h"

namespace disco {

enum class Shortcut {
  kNone,
  kToDestination,
  kShorterOfForwardReverse,
  kNoPathKnowledge,
  kUpDownStream,
  kPathKnowledge,
};

const char* ShortcutName(Shortcut mode);

/// All six modes, in the order of the paper's Fig. 6 table.
inline constexpr Shortcut kAllShortcuts[] = {
    Shortcut::kNone,
    Shortcut::kToDestination,
    Shortcut::kShorterOfForwardReverse,
    Shortcut::kNoPathKnowledge,
    Shortcut::kUpDownStream,
    Shortcut::kPathKnowledge,
};

/// Direct-knowledge oracle: the shortest path u -> t if u knows one
/// (t is a landmark or t ∈ V(u)); empty otherwise.
using DirectPathFn =
    std::function<std::vector<NodeId>(NodeId u, NodeId t)>;

/// Vicinity oracle for Up-Down-Stream splicing.
using VicinityFn =
    std::function<std::shared_ptr<const Vicinity>(NodeId u)>;

/// Walks `path` from the source; the first node whose oracle knows the
/// destination truncates the plan there and appends the direct path.
/// Never lengthens the route (a direct path is shortest from that node).
std::vector<NodeId> ApplyToDestination(std::vector<NodeId> path,
                                       const DirectPathFn& direct);

/// Up-Down-Stream: scanning forward, each reached node looks for the
/// farthest downstream plan node to which its vicinity knows a strictly
/// shorter path, and splices that path in. Subsumes To-Destination (the
/// destination is the last downstream node).
std::vector<NodeId> ApplyUpDownStream(const Graph& g,
                                      const std::vector<NodeId>& path,
                                      const VicinityFn& vicinity);

/// Applies `mode` given the forward plan and a lazy reverse plan (invoked
/// only for the modes that compare directions; it must return the t -> s
/// plan, which is reversed internally). Returns the chosen s -> t path.
std::vector<NodeId> ApplyShortcutMode(
    Shortcut mode, const Graph& g, std::vector<NodeId> forward_plan,
    const std::function<std::vector<NodeId>()>& reverse_plan,
    const DirectPathFn& direct, const VicinityFn& vicinity);

}  // namespace disco
