#include "core/nddisco.h"

#include <algorithm>
#include <cassert>

#include "graph/shortest_path.h"

namespace disco {

NdDisco::NdDisco(const Graph& g, const Params& params)
    : NdDisco(g, params, SelectLandmarks(g.num_nodes(), params)) {}

NdDisco::NdDisco(const Graph& g, const Params& params, LandmarkSet landmarks)
    : g_(&g), params_(params), landmarks_(std::move(landmarks)),
      addresses_(g, landmarks_),
      vicinities_(g, VicinitySize(g.num_nodes(), params.vicinity_factor)),
      trees_(g, landmarks_, params.tree_cache_capacity) {}

bool NdDisco::KnowsDirect(NodeId u, NodeId t) {
  if (u == t) return true;
  if (landmarks_.Contains(t)) return true;
  return vicinities_.Get(u)->Contains(t);
}

std::vector<NodeId> NdDisco::DirectPath(NodeId u, NodeId t) {
  if (u == t) return {u};
  const auto vic = vicinities_.Get(u);
  if (vic->Contains(t)) return vic->PathTo(t);
  if (landmarks_.Contains(t)) {
    // u's landmark table holds the shortest path to t; materialized from
    // t's tree (t ; u reversed, same length in an undirected graph).
    std::vector<NodeId> p = trees_.Tree(t)->PathTo(u);
    std::reverse(p.begin(), p.end());
    return p;
  }
  return {};
}

std::vector<NodeId> NdDisco::FirstPacketPlan(NodeId s, NodeId t) {
  std::vector<NodeId> direct = DirectPath(s, t);
  if (!direct.empty()) return direct;

  const Address addr = addresses_.AddressOf(t);
  // Segment s ; l_t from s's landmark table.
  std::vector<NodeId> to_landmark = trees_.Tree(addr.landmark)->PathTo(s);
  std::reverse(to_landmark.begin(), to_landmark.end());
  // Segment l_t ; t is the explicit route in t's address.
  return JoinPaths(std::move(to_landmark), addr.route);
}

Route NdDisco::FinishPlan(
    std::vector<NodeId> plan,
    const std::function<std::vector<NodeId>()>& reverse_plan,
    Shortcut mode) {
  Route r;
  r.path = ApplyShortcutMode(mode, *g_, std::move(plan), reverse_plan,
                             MakeDirectOracle(), MakeVicinityOracle());
  r.length = PathLength(*g_, r.path);
  return r;
}

Route NdDisco::RouteFirst(NodeId s, NodeId t, Shortcut mode) {
  return FinishPlan(
      FirstPacketPlan(s, t), [this, s, t] { return FirstPacketPlan(t, s); },
      mode);
}

Route NdDisco::RouteLater(NodeId s, NodeId t, Shortcut mode) {
  // Handshake (§4.2): t checked whether s ∈ V(t); if so it told s the
  // direct path, which is simply the shortest path.
  if (vicinities_.Get(t)->Contains(s)) {
    Route r;
    r.path = vicinities_.Get(t)->PathTo(s);
    std::reverse(r.path.begin(), r.path.end());
    r.length = PathLength(*g_, r.path);
    return r;
  }
  // Otherwise later packets keep using the first-packet route (stretch ≤ 3
  // once both t ∉ V(s) and s ∉ V(t)).
  return RouteFirst(s, t, mode);
}

StateBreakdown NdDisco::State(NodeId v, const ResolutionDb* resolution) {
  StateBreakdown b;
  b.landmark_entries = landmarks_.count();
  b.vicinity_entries = std::min<std::size_t>(vicinities_.k(),
                                             g_->num_nodes());
  // §4.5: forwarding-label mappings are needed only for interfaces on
  // shortest paths to landmarks or vicinity members.
  b.label_entries = std::min<std::size_t>(
      g_->degree(v), b.landmark_entries + b.vicinity_entries);
  if (resolution != nullptr) b.resolution_entries = resolution->EntriesAt(v);
  return b;
}

DirectPathFn NdDisco::MakeDirectOracle() {
  return [this](NodeId u, NodeId t) { return DirectPath(u, t); };
}

VicinityFn NdDisco::MakeVicinityOracle() {
  return [this](NodeId u) { return vicinities_.Get(u); };
}

}  // namespace disco
