#include "core/churn.h"

#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace disco {

ChurnSimulator::ChurnSimulator(NodeId initial_n, const Params& params)
    : params_(params), n_(initial_n) {
  assert(initial_n >= 1);
  state_.resize(initial_n);
  Rng base(params.seed ^ 0xc0125eedULL);
  const double p = LandmarkProbability(n_, params_.landmark_prob_factor);
  for (NodeId v = 0; v < initial_n; ++v) {
    state_[v].coin = base.Fork(v).NextDouble();
    state_[v].last_eval_n = n_;
    state_[v].is_landmark = state_[v].coin < p;
    num_landmarks_ += state_[v].is_landmark ? 1 : 0;
  }
  group_bits_ = SloppyGroupBits(static_cast<double>(n_)) +
                params_.group_bits_offset;
  if (group_bits_ < 0) group_bits_ = 0;
  n_at_group_change_ = static_cast<double>(n_);
}

bool ChurnSimulator::EvaluateLandmark(NodeId v) {
  return state_[v].coin <
         LandmarkProbability(n_, params_.landmark_prob_factor);
}

ChurnSimulator::StepResult ChurnSimulator::ProcessTriggers() {
  StepResult r;

  // Landmark re-evaluation: only nodes whose last evaluation is a factor
  // of 2 away from the current n act (the §4.2 amortization rule).
  for (NodeId v = 0; v < n_; ++v) {
    NodeState& st = state_[v];
    const double ratio = static_cast<double>(n_) /
                         static_cast<double>(st.last_eval_n);
    if (ratio < 2.0 && ratio > 0.5) continue;
    ++r.nodes_reevaluated;
    st.last_eval_n = n_;
    const bool now = EvaluateLandmark(v);
    if (now == st.is_landmark) continue;
    st.is_landmark = now;
    num_landmarks_ += now ? 1 : -1;
    ++(now ? r.landmark_gained : r.landmark_lost);
  }
  total_flips_ += r.landmark_flips();

  // Group prefix length: re-derive only once the estimate has drifted ≥10%
  // from where the grouping was last changed (footnote 4's hysteresis).
  const double drift = static_cast<double>(n_) / n_at_group_change_;
  if (drift >= 1.1 || drift <= 1.0 / 1.1) {
    int candidate = SloppyGroupBits(static_cast<double>(n_)) +
                    params_.group_bits_offset;
    if (candidate < 0) candidate = 0;
    if (candidate != group_bits_) {
      r.group_bits_delta = candidate - group_bits_;
      group_bits_ = candidate;
      n_at_group_change_ = static_cast<double>(n_);
      ++total_group_changes_;
    }
  }
  return r;
}

ChurnSimulator::StepResult ChurnSimulator::AddNode() {
  ++total_events_;
  const NodeId v = n_;
  ++n_;
  if (state_.size() < n_) state_.resize(n_);
  Rng base(params_.seed ^ 0xc0125eedULL);
  NodeState& st = state_[v];
  st.coin = base.Fork(v).NextDouble();
  st.last_eval_n = n_;
  st.is_landmark = EvaluateLandmark(v);
  num_landmarks_ += st.is_landmark ? 1 : 0;

  StepResult r = ProcessTriggers();
  if (st.is_landmark) ++r.landmark_gained;  // the newcomer's own status
  total_flips_ += st.is_landmark ? 1 : 0;
  return r;
}

ChurnSimulator::StepResult ChurnSimulator::RemoveNode() {
  assert(n_ >= 2);
  ++total_events_;
  const NodeId v = n_ - 1;
  const bool was_landmark = state_[v].is_landmark;
  num_landmarks_ -= was_landmark ? 1 : 0;
  --n_;

  StepResult r = ProcessTriggers();
  if (was_landmark) ++r.landmark_lost;
  total_flips_ += was_landmark ? 1 : 0;
  return r;
}

}  // namespace disco
