#include "core/shortcut.h"

#include <algorithm>
#include <cassert>

#include "core/route.h"
#include "graph/shortest_path.h"

namespace disco {
namespace {

// Weight of the (cheapest) edge between adjacent nodes a and b.
Dist HopWeight(const Graph& g, NodeId a, NodeId b) {
  Dist best = kInfDist;
  for (const Neighbor& nb : g.neighbors(a)) {
    if (nb.to == b) best = std::min(best, nb.weight);
  }
  assert(best < kInfDist && "plan contains a non-edge");
  return best;
}

std::vector<NodeId> Reversed(std::vector<NodeId> p) {
  std::reverse(p.begin(), p.end());
  return p;
}

}  // namespace

const char* ShortcutName(Shortcut mode) {
  switch (mode) {
    case Shortcut::kNone:
      return "No Shortcutting";
    case Shortcut::kToDestination:
      return "To-Destination Shortcuts";
    case Shortcut::kShorterOfForwardReverse:
      return "Shorter{ReversePath, ForwardPath}";
    case Shortcut::kNoPathKnowledge:
      return "No Path Knowledge";
    case Shortcut::kUpDownStream:
      return "Up-Down Stream";
    case Shortcut::kPathKnowledge:
      return "Using Path Knowledge";
  }
  return "?";
}

std::vector<NodeId> ApplyToDestination(std::vector<NodeId> path,
                                       const DirectPathFn& direct) {
  if (path.size() < 2) return path;
  const NodeId t = path.back();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    std::vector<NodeId> cut = direct(path[i], t);
    if (cut.empty()) continue;
    assert(cut.front() == path[i] && cut.back() == t);
    path.resize(i + 1);
    return JoinPaths(std::move(path), cut);
  }
  return path;
}

std::vector<NodeId> ApplyUpDownStream(const Graph& g,
                                      const std::vector<NodeId>& path,
                                      const VicinityFn& vicinity) {
  if (path.size() < 3) return path;

  // Cumulative plan distance from the source to each plan position.
  std::vector<Dist> cum(path.size(), 0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    cum[i] = cum[i - 1] + HopWeight(g, path[i - 1], path[i]);
  }

  std::vector<NodeId> result{path[0]};
  std::size_t i = 0;
  while (i + 1 < path.size()) {
    const NodeId u = path[i];
    const auto vic = vicinity(u);
    std::size_t cut_j = 0;
    std::vector<NodeId> cut_path;
    // Prefer the farthest strictly improving splice.
    for (std::size_t j = path.size() - 1; j > i; --j) {
      const Dist dv = vic->DistanceTo(path[j]);
      if (dv < cum[j] - cum[i]) {
        cut_j = j;
        cut_path = vic->PathTo(path[j]);
        break;
      }
    }
    if (!cut_path.empty()) {
      result.insert(result.end(), cut_path.begin() + 1, cut_path.end());
      i = cut_j;
    } else {
      result.push_back(path[i + 1]);
      ++i;
    }
  }
  return result;
}

std::vector<NodeId> ApplyShortcutMode(
    Shortcut mode, const Graph& g, std::vector<NodeId> forward_plan,
    const std::function<std::vector<NodeId>()>& reverse_plan,
    const DirectPathFn& direct, const VicinityFn& vicinity) {
  auto pick_shorter = [&g](std::vector<NodeId> a,
                           std::vector<NodeId> b) {
    if (b.empty()) return a;
    if (a.empty()) return b;
    return PathLength(g, a) <= PathLength(g, b) ? a : b;
  };

  switch (mode) {
    case Shortcut::kNone:
      return forward_plan;
    case Shortcut::kToDestination:
      return ApplyToDestination(std::move(forward_plan), direct);
    case Shortcut::kShorterOfForwardReverse:
      return pick_shorter(std::move(forward_plan),
                          Reversed(reverse_plan()));
    case Shortcut::kNoPathKnowledge:
      return pick_shorter(
          ApplyToDestination(std::move(forward_plan), direct),
          Reversed(ApplyToDestination(reverse_plan(), direct)));
    case Shortcut::kUpDownStream:
      return ApplyUpDownStream(g, forward_plan, vicinity);
    case Shortcut::kPathKnowledge:
      return pick_shorter(
          ApplyUpDownStream(g, forward_plan, vicinity),
          Reversed(ApplyUpDownStream(g, reverse_plan(), vicinity)));
  }
  return forward_plan;
}

}  // namespace disco
