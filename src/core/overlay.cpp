#include "core/overlay.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_set>

#include "runtime/parallel_for.h"
#include "util/hashring.h"
#include "util/rng.h"

namespace disco {
namespace {

struct RingEntry {
  HashValue hash;
  NodeId node;
  bool operator<(const RingEntry& o) const {
    return hash < o.hash || (hash == o.hash && node < o.node);
  }
};

// The contiguous hash block of v's group under v's own rule. `full` marks
// the k == 0 case where the block is the whole ring.
struct Block {
  HashValue start = 0;
  HashValue span = 0;  // 0 means 2^64 when full
  bool full = false;
};

Block BlockOf(HashValue h, int bits) {
  Block b;
  if (bits <= 0) {
    b.full = true;
    return b;
  }
  b.span = (bits >= 64) ? 1 : (HashValue{1} << (64 - bits));
  b.start = GroupId(h, bits) << (64 - bits);
  return b;
}

}  // namespace

Overlay::Overlay(const NameTable& names, const SloppyGroups& groups,
                 const Params& params)
    : names_(&names), groups_(&groups) {
  const NodeId n = names.size();
  adjacency_.assign(n, {});
  if (n < 2) return;

  std::vector<RingEntry> ring;
  ring.reserve(n);
  for (NodeId v = 0; v < n; ++v) ring.push_back({names.hash(v), v});
  std::sort(ring.begin(), ring.end());

  auto link = [&](NodeId a, NodeId b) {
    if (a == b) return;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  };

  // Ring links: every node to its global successor (predecessor links come
  // from the successor's side of the same connection).
  for (std::size_t i = 0; i < ring.size(); ++i) {
    link(ring[i].node, ring[(i + 1) % ring.size()].node);
  }

  // Fingers: per node, `params.fingers` draws with hash-space offsets
  // distributed log-uniformly inside the node's own group block, resolved
  // to the group member whose hash is closest to the drawn value (the
  // landmark resolution DB performs that lookup in the real protocol).
  Rng base(params.seed ^ 0x0f1e2d3c4b5a6978ULL);
  auto member_closest_to = [&](const Block& b, HashValue target) -> NodeId {
    // Ring is sorted; the group block is a contiguous range of it.
    auto lo = ring.begin(), hi = ring.end();
    if (!b.full) {
      lo = std::lower_bound(ring.begin(), ring.end(),
                            RingEntry{b.start, 0});
      const HashValue end = b.start + b.span;  // may wrap to 0 when k==0
      hi = (end == 0) ? ring.end()
                      : std::lower_bound(ring.begin(), ring.end(),
                                         RingEntry{end, 0});
    }
    if (lo == hi) return kInvalidNode;
    auto it = std::lower_bound(lo, hi, RingEntry{target, 0});
    // Closest of the two bracketing members.
    if (it == hi) --it;
    if (it != lo) {
      auto prev = std::prev(it);
      if (RingDistance(prev->hash, target) <= RingDistance(it->hash, target))
        it = prev;
    }
    return it->node;
  };

  // Finger selection is a per-node decision seeded by (seed, v), so the
  // draws fan out over the thread pool into per-node slots; the links are
  // then added sequentially in node order, which keeps the adjacency
  // byte-identical to a single-threaded construction.
  std::vector<std::vector<NodeId>> finger_choices(n);
  runtime::ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t vi = lo; vi < hi; ++vi) {
      const NodeId v = static_cast<NodeId>(vi);
      Rng rng = base.Fork(v);
      const HashValue hv = names.hash(v);
      const int bits = groups.bits_of(v);
      const Block b = BlockOf(hv, bits);
      const int width = b.full ? 64 : (64 - bits);
      // Symphony draws harmonic distances no smaller than the expected
      // member spacing — otherwise most fingers collapse onto the ring
      // successor and add nothing.
      const double group_size_est =
          std::max(2.0, static_cast<double>(n) / std::exp2(bits));
      const double min_exponent = std::max(
          0.0, static_cast<double>(width) - std::log2(group_size_est));
      for (int f = 0; f < params.fingers; ++f) {
        NodeId target_node = kInvalidNode;
        for (int attempt = 0; attempt < 8 && target_node == kInvalidNode;
             ++attempt) {
          // Log-uniform offset: P(offset near x) ∝ 1/x, Symphony-style.
          const double u = rng.NextDouble();
          const double exponent =
              min_exponent + u * (static_cast<double>(width) - min_exponent);
          const HashValue offset = static_cast<HashValue>(
              std::min(std::exp2(exponent),
                       std::exp2(static_cast<double>(width)) - 1.0));
          HashValue target;
          if (b.full) {
            target = hv + std::max<HashValue>(offset, 1);
          } else {
            const HashValue rel = (hv - b.start + std::max<HashValue>(
                                                      offset, 1)) %
                                  b.span;
            target = b.start + rel;
          }
          const NodeId cand = member_closest_to(b, target);
          if (cand != kInvalidNode && cand != v) target_node = cand;
        }
        if (target_node != kInvalidNode) {
          finger_choices[vi].push_back(target_node);
        }
      }
    }
  });
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId target : finger_choices[v]) link(v, target);
  }

  for (auto& neigh : adjacency_) {
    std::sort(neigh.begin(), neigh.end());
    neigh.erase(std::unique(neigh.begin(), neigh.end()), neigh.end());
  }
}

Overlay::Dissemination Overlay::Disseminate(
    NodeId v, std::vector<std::pair<NodeId, NodeId>>* sends) const {
  Dissemination out;

  // Nodes that would store v's address, and the guaranteed core group
  // (matching v on the largest prefix length any node uses).
  int max_bits = 0;
  for (NodeId u = 0; u < names_->size(); ++u) {
    max_bits = std::max(max_bits, groups_->bits_of(u));
  }
  std::unordered_set<NodeId> should_store, core;
  for (NodeId u = 0; u < names_->size(); ++u) {
    if (u == v) continue;
    if (groups_->Stores(u, v)) {
      should_store.insert(u);
      if (CommonPrefixLength(names_->hash(u), names_->hash(v)) >=
          max_bits) {
        core.insert(u);
      }
    }
  }
  out.group_size = should_store.size();
  out.core_size = core.size();

  // u relays v's announcement to w iff u accepted it (u believes v shares
  // its group; the origin always relays) and u believes w shares its group,
  // and the hash direction is preserved.
  auto relays = [&](NodeId u) {
    return u == v || groups_->Stores(u, v);
  };
  auto believes_groupmate = [&](NodeId u, NodeId w) {
    return CommonPrefixLength(names_->hash(u), names_->hash(w)) >=
           groups_->bits_of(u);
  };

  // Ordered: both maps are iterated below to build the aggregates, so the
  // iteration order must be a function of the node ids, not of the hash.
  std::map<NodeId, std::size_t> hops;
  for (const int dir : {+1, -1}) {
    std::map<NodeId, std::size_t> level{{v, 0}};
    std::deque<NodeId> queue{v};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      if (!relays(u)) continue;
      const HashValue hu = names_->hash(u);
      for (const NodeId w : adjacency_[u]) {
        const HashValue hw = names_->hash(w);
        const bool forward = dir > 0 ? hw > hu : hw < hu;
        if (!forward || !believes_groupmate(u, w)) continue;
        ++out.messages;
        if (sends != nullptr) sends->emplace_back(u, w);
        if (!level.count(w)) {
          level[w] = level[u] + 1;
          queue.push_back(w);
        }
      }
    }
    for (const auto& [w, l] : level) {
      if (w == v || !should_store.count(w)) continue;
      auto [it, inserted] = hops.emplace(w, l);
      if (!inserted) it->second = std::min(it->second, l);
    }
  }

  double hop_sum = 0;
  for (const auto& [w, l] : hops) {
    hop_sum += static_cast<double>(l);
    out.max_hops = std::max(out.max_hops, l);
    if (core.count(w)) ++out.core_reached;
  }
  out.reached = hops.size();
  out.covered_group = (out.reached == out.group_size);
  out.covered_core = (out.core_reached == out.core_size);
  out.mean_hops = hops.empty() ? 0 : hop_sum /
                                         static_cast<double>(hops.size());
  return out;
}

}  // namespace disco
