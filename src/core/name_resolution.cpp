#include "core/name_resolution.h"

namespace disco {

ResolutionDb::ResolutionDb(const NameTable& names,
                           const LandmarkSet& landmarks, int virtual_points)
    : names_(&names), ring_(landmarks.landmarks, virtual_points) {
  for (NodeId v = 0; v < names.size(); ++v) {
    owned_[ring_.Owner(names.hash(v))].push_back(v);
  }
}

NodeId ResolutionDb::OwnerLandmark(HashValue h) const {
  return ring_.Owner(h);
}

std::size_t ResolutionDb::EntriesAt(NodeId landmark) const {
  const auto it = owned_.find(landmark);
  return it == owned_.end() ? 0 : it->second.size();
}

std::vector<NodeId> ResolutionDb::OwnedNodes(NodeId landmark) const {
  const auto it = owned_.find(landmark);
  return it == owned_.end() ? std::vector<NodeId>{} : it->second;
}

}  // namespace disco
