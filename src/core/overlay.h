// The address-dissemination overlay (§4.4).
//
// Every node keeps its successor and predecessor in the circular ordering
// of all nodes by h(·), plus a small number of long-distance "fingers"
// drawn inside its own sloppy group with probability inversely proportional
// to hash distance (the Symphony construction [32]). Address announcements
// flow over these links like a distance-vector protocol with one twist:
// a node relays an announcement only to neighbors that keep it moving in
// the same hash direction, so its hash distance from the origin strictly
// increases and count-to-infinity is structurally impossible.
//
// The static simulator models the converged overlay: Disseminate() floods
// one node's announcement under exactly those rules and reports coverage,
// message count, and hop distances — the §5.2 numbers (5.77/24 mean/max
// hops with 1 finger, 3.04/16 with 3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/names.h"
#include "core/sloppy_group.h"
#include "routing/params.h"

namespace disco {

class Overlay {
 public:
  Overlay(const NameTable& names, const SloppyGroups& groups,
          const Params& params);

  /// Overlay neighbors of v (successor, predecessor, fingers, plus links
  /// other nodes opened to v — connections are bidirectional TCP).
  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adjacency_[v];
  }

  /// |N(v)|: the overlay component of v's state (≈4 with 1 finger,
  /// ≈8 with 3, counting both directions).
  std::size_t degree(NodeId v) const { return adjacency_[v].size(); }

  struct Dissemination {
    std::size_t group_size = 0;    // nodes that would store the address
    std::size_t reached = 0;       // of those, how many the flood reached
    bool covered_group = false;    // reached == group_size
    // The §4.4 guarantee is for the *core group* G'(v): nodes matching v
    // on the maximum prefix length in use anywhere, which all agree they
    // share a group. With exact n the core group IS the group; with
    // divergent estimates only the core is guaranteed.
    std::size_t core_size = 0;
    std::size_t core_reached = 0;
    bool covered_core = false;
    std::size_t messages = 0;      // announcement copies sent
    double mean_hops = 0;          // overlay hops to reach a group member
    std::size_t max_hops = 0;
  };

  /// Floods v's address announcement under the directional relay rules and
  /// measures the result. When `sends` is non-null, every overlay-link
  /// transmission (u -> w) is appended to it (the messaging simulator costs
  /// each one by its underlay hop count).
  Dissemination Disseminate(
      NodeId v,
      std::vector<std::pair<NodeId, NodeId>>* sends = nullptr) const;

 private:
  const NameTable* names_;
  const SloppyGroups* groups_;
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace disco
