// Name resolution (§4.3): a consistent-hashing database over the globally
// known landmark set. Node v inserts (h(name_v) -> address_v) at the owner
// landmark; any node can query it. On its own this gives unbounded
// first-packet stretch (the owner may be across the world), which is why
// Disco uses it only to bootstrap overlay fingers and as a w.h.p.-never-
// taken routing fallback, while S4-style first packets go through it —
// the contrast the stretch figures measure.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/names.h"
#include "routing/landmarks.h"
#include "util/consistent_hash.h"

namespace disco {

class ResolutionDb {
 public:
  ResolutionDb(const NameTable& names, const LandmarkSet& landmarks,
               int virtual_points = 8);

  /// The landmark storing the address record for ring position `h`.
  NodeId OwnerLandmark(HashValue h) const;

  /// Number of address records hosted by `landmark` (0 for non-landmarks);
  /// the resolution-DB component of a landmark's state (§4.5).
  std::size_t EntriesAt(NodeId landmark) const;

  /// The nodes whose records `landmark` hosts (for byte-level state
  /// accounting, which needs each stored address's explicit-route size).
  std::vector<NodeId> OwnedNodes(NodeId landmark) const;

 private:
  const NameTable* names_;
  ConsistentHashRing ring_;
  std::unordered_map<NodeId, std::vector<NodeId>> owned_;
};

}  // namespace disco
