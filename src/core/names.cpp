#include "core/names.h"

#include <cassert>

namespace disco {

NameTable NameTable::Default(NodeId n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (NodeId v = 0; v < n; ++v) names.push_back(DefaultName(v));
  return FromNames(std::move(names));
}

NameTable NameTable::FromNames(std::vector<std::string> names) {
  NameTable t;
  t.names_ = std::move(names);
  t.hashes_.reserve(t.names_.size());
  t.index_.reserve(t.names_.size());
  for (NodeId v = 0; v < t.names_.size(); ++v) {
    t.hashes_.push_back(HashName(t.names_[v]));
    const bool inserted = t.index_.emplace(t.names_[v], v).second;
    assert(inserted && "names must be unique");
    (void)inserted;
  }
  return t;
}

std::optional<NodeId> NameTable::Find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace disco
