// Disco (§4.4): name-independent compact routing — the paper's headline
// system. Composition of:
//   * NDDisco          (name-dependent routing on addresses, §4.2)
//   * ResolutionDb     (consistent hashing over landmarks, §4.3)
//   * SloppyGroups     (hash-prefix groups of ~sqrt(n) log n nodes, §4.4)
//   * Overlay          (Symphony-style dissemination of addresses, §4.4)
//
// To route to a flat name t, a source s that doesn't know t directly finds
// the vicinity member w with the longest hash-prefix match against h(t);
// w.h.p. w belongs to t's sloppy group and stores t's current address, so
// the first packet travels s ; w ; l_t ; t — stretch ≤ 7 (Theorem 1).
// After the handshake, packets take the NDDisco route: stretch ≤ 3.
// If no group member sits in the vicinity (w.h.p. never), the landmark
// resolution DB answers as a fallback.
#pragma once

#include <memory>
#include <string_view>

#include "core/name_resolution.h"
#include "core/names.h"
#include "core/nddisco.h"
#include "core/overlay.h"
#include "core/route.h"
#include "core/sloppy_group.h"
#include "core/state.h"
#include "graph/graph.h"
#include "routing/params.h"

namespace disco {

class Disco {
 public:
  /// Builds the full protocol with default ("node-<i>") names and exact
  /// knowledge of n.
  Disco(const Graph& g, const Params& params);

  /// Custom names and (optionally) per-node estimates of n; pass estimates
  /// to reproduce the §5.2 error-injection experiment. An empty estimate
  /// vector means every node knows n exactly.
  Disco(const Graph& g, const Params& params, NameTable names,
        std::vector<double> n_estimates = {});

  const Graph& graph() const { return nd_.graph(); }
  NdDisco& nd() { return nd_; }
  const NameTable& names() const { return names_; }
  const SloppyGroups& groups() const { return groups_; }
  const Overlay& overlay() const { return overlay_; }
  const ResolutionDb& resolution() const { return resolution_; }

  /// First packet of a flow toward a flat name (stretch ≤ 7 w.h.p.).
  Route RouteFirst(NodeId s, NodeId t,
                   Shortcut mode = Shortcut::kNoPathKnowledge);

  /// Packets after the handshake (stretch ≤ 3 w.h.p.).
  Route RouteLater(NodeId s, NodeId t,
                   Shortcut mode = Shortcut::kNoPathKnowledge);

  /// Name-keyed convenience API (the public face a deployment would use).
  /// Returns a failed Route if either name is unknown.
  Route RouteFirstByName(std::string_view from, std::string_view to,
                         Shortcut mode = Shortcut::kNoPathKnowledge);

  /// Full per-node state (§4.5): NDDisco state + stored sloppy-group
  /// addresses + overlay neighbors + hosted resolution records.
  StateBreakdown State(NodeId v);

 private:
  /// The forward plan (before shortcutting) for the first packet s -> t.
  std::vector<NodeId> FirstPacketPlan(NodeId s, NodeId t, NodeId* contact,
                                      bool* fallback);

  NameTable names_;
  NdDisco nd_;
  SloppyGroups groups_;
  ResolutionDb resolution_;
  Overlay overlay_;
};

}  // namespace disco
