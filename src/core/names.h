// Flat names (§2): arbitrary, location-independent bit strings — DNS names,
// MAC addresses, self-certifying key hashes. The protocol never interprets
// a name; it only hashes it. NameTable binds the dense simulation node ids
// to their names and caches h(name) for the whole network.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/hashring.h"

namespace disco {

class NameTable {
 public:
  /// Synthetic names "node-<i>" for an n-node network.
  static NameTable Default(NodeId n);

  /// Arbitrary user-supplied names (must be unique).
  static NameTable FromNames(std::vector<std::string> names);

  NodeId size() const { return static_cast<NodeId>(names_.size()); }

  const std::string& name(NodeId v) const { return names_[v]; }
  HashValue hash(NodeId v) const { return hashes_[v]; }

  /// Reverse lookup; nullopt if the name is unknown.
  std::optional<NodeId> Find(std::string_view name) const;

  /// All hashes (for consistent-hashing ownership accounting).
  const std::vector<HashValue>& hashes() const { return hashes_; }

 private:
  std::vector<std::string> names_;
  std::vector<HashValue> hashes_;
  std::unordered_map<std::string, NodeId> index_;
};

}  // namespace disco
