// The result of routing one packet in the static simulator: the concrete
// node path the packet would traverse, plus provenance flags used by the
// evaluation (whether the sloppy-group contact was found or the resolution
// fallback fired).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace disco {

struct Route {
  std::vector<NodeId> path;  // source .. destination inclusive; empty = fail
  Dist length = kInfDist;

  /// Disco only: the vicinity contact w that supplied the address, or
  /// kInvalidNode when the route was direct / via fallback.
  NodeId contact = kInvalidNode;

  /// Disco only: true if no vicinity group member held the destination's
  /// address and the landmark resolution DB had to be consulted (§4.4 says
  /// this is w.h.p. never; the error-injection bench provokes it).
  bool via_fallback = false;

  bool ok() const { return !path.empty() && length < kInfDist; }
};

/// Concatenates `tail` onto `head` where head.back() == tail.front().
/// Either side may be empty.
std::vector<NodeId> JoinPaths(std::vector<NodeId> head,
                              const std::vector<NodeId>& tail);

/// Stretch of a route against the true shortest distance; 1.0 for
/// zero-distance (s == t) pairs.
double StretchOf(Dist route_length, Dist shortest);

}  // namespace disco
