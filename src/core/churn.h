// Dynamics of the protocol's global parameters under membership churn —
// the amortization arguments of §4.2 and §4.4 made executable.
//
// Two kinds of derived state depend on n and must not thrash as nodes join
// and leave:
//
//  * Landmark status (§4.2): each node's coin threshold p = sqrt(ln n / n)
//    moves with n, but a node only re-flips once n has changed by a factor
//    of 2 since its last evaluation, amortizing landmark churn over Ω(n)
//    membership events.
//  * Sloppy-group prefix length (§4.4, footnote 4): k = floor(log2(
//    sqrt(n)/log2 n)) changes only at octave boundaries, and a hysteresis
//    band (re-evaluate only when the estimate moved ≥10% since the last
//    change) prevents flapping when n sits near a boundary. A k change is
//    exactly a split (k+1) or merge (k-1) of every group.
//
// ChurnSimulator tracks a growing/shrinking membership and counts these
// events, driving the `dynamics_churn` bench and the churn tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/params.h"

namespace disco {

class ChurnSimulator {
 public:
  /// Starts with `initial_n` members (ids 0..initial_n-1), all evaluated
  /// at the initial size.
  ChurnSimulator(NodeId initial_n, const Params& params);

  struct StepResult {
    std::size_t nodes_reevaluated = 0;  // nodes whose 2x trigger fired
    std::size_t landmark_gained = 0;    // non-landmark -> landmark
    std::size_t landmark_lost = 0;      // landmark -> non-landmark
    int group_bits_delta = 0;           // +1 split, -1 merge, 0 stable

    std::size_t landmark_flips() const {
      return landmark_gained + landmark_lost;
    }
  };

  /// Adds one member and processes every node's (local, lazy) triggers.
  StepResult AddNode();

  /// Removes the most recently added member.
  StepResult RemoveNode();

  NodeId n() const { return n_; }
  std::size_t num_landmarks() const { return num_landmarks_; }
  int group_bits() const { return group_bits_; }
  bool IsLandmark(NodeId v) const { return state_[v].is_landmark; }

  /// Lifetime totals (for amortized-cost accounting).
  std::uint64_t total_landmark_flips() const { return total_flips_; }
  std::uint64_t total_group_changes() const { return total_group_changes_; }
  std::uint64_t total_membership_events() const { return total_events_; }

 private:
  struct NodeState {
    double coin = 0;          // the node's fixed uniform draw
    NodeId last_eval_n = 0;   // n when the node last evaluated its status
    bool is_landmark = false;
  };

  StepResult ProcessTriggers();
  bool EvaluateLandmark(NodeId v);  // returns new status under current n_

  Params params_;
  NodeId n_ = 0;
  std::vector<NodeState> state_;  // index = node id; only [0, n_) live
  std::size_t num_landmarks_ = 0;

  int group_bits_ = 0;
  double n_at_group_change_ = 0;

  std::uint64_t total_flips_ = 0;
  std::uint64_t total_group_changes_ = 0;
  std::uint64_t total_events_ = 0;
};

}  // namespace disco
