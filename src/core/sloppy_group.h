// Sloppy groups (§4.4): G(v) is the set of nodes sharing the first
// k = floor(log2(sqrt(n)/log2 n)) bits of h(v), so a group holds
// Θ(sqrt(n) log n) nodes — big enough that every vicinity intersects every
// group w.h.p., small enough to keep the state bound.
//
// The grouping is "sloppy" because k derives from each node's own estimate
// of n. Estimates within a factor of 2 differ by at most one bit, and the
// dissemination protocol only relays between nodes that agree they share a
// group; this class models the converged result: w stores t's address iff
// their hashes agree on max(k_w, k_t) bits (each side's own grouping rule
// admits the other).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/names.h"
#include "routing/params.h"
#include "routing/vicinity.h"

namespace disco {

class SloppyGroups {
 public:
  /// All nodes know n exactly (the default evaluation setting, §5.2).
  /// `bits_offset` is the "+O(1)" of §4.5: extra prefix bits shrinking the
  /// groups (Params::group_bits_offset).
  SloppyGroups(const NameTable& names, NodeId n, int bits_offset = 0);

  /// Per-node estimates of n (the error-injection experiment, §5.2).
  SloppyGroups(const NameTable& names, const std::vector<double>& estimates,
               int bits_offset = 0);

  /// k_v: the number of leading hash bits node v matches on, derived from
  /// v's own estimate of n.
  int bits_of(NodeId v) const { return bits_[v]; }

  /// v's group identifier under its own rule.
  std::uint64_t group_of(NodeId v) const;

  /// Whether w ends up storing t's address after dissemination converges.
  bool Stores(NodeId w, NodeId t) const;

  /// Number of addresses node w stores (its sloppy-group state component).
  std::size_t StoredAddressCount(NodeId w) const;

  /// The nodes whose addresses w stores (for byte-level accounting).
  std::vector<NodeId> StoredAddresses(NodeId w) const;

  /// Members of v's group under v's own rule (the set the overlay must
  /// cover when v announces its address).
  std::vector<NodeId> GroupMembers(NodeId v) const;

  /// The routing step of §4.4: the contact w in s's vicinity with the
  /// longest prefix match against h(t) (ties broken by proximity, i.e. the
  /// first such member in distance order). Returns nullopt only for an
  /// empty vicinity. The caller must still check Stores(w, t): if the best
  /// prefix match does not hold t's address, Disco falls back to the
  /// resolution DB (a w.h.p.-never event that the nerror bench provokes).
  std::optional<NodeId> FindContact(const Vicinity& vic, NodeId t) const;

  const NameTable& names() const { return *names_; }

 private:
  const NameTable* names_;
  std::vector<int> bits_;   // k_v per node
  bool uniform_bits_;       // fast path: every node uses the same k
  // Uniform fast path: group id -> member list (ids ascending).
  std::vector<std::vector<NodeId>> members_by_group_;
  std::vector<std::uint32_t> group_index_;  // node -> group (uniform only)
};

}  // namespace disco
