#include "core/disco.h"

#include <utility>

#include "graph/shortest_path.h"

namespace disco {

Disco::Disco(const Graph& g, const Params& params)
    : Disco(g, params, NameTable::Default(g.num_nodes())) {}

Disco::Disco(const Graph& g, const Params& params, NameTable names,
             std::vector<double> n_estimates)
    : names_(std::move(names)), nd_(g, params),
      groups_(n_estimates.empty()
                  ? SloppyGroups(names_, g.num_nodes(),
                                 params.group_bits_offset)
                  : SloppyGroups(names_, n_estimates,
                                 params.group_bits_offset)),
      resolution_(names_, nd_.landmarks(),
                  params.resolution_virtual_points),
      overlay_(names_, groups_, params) {}

std::vector<NodeId> Disco::FirstPacketPlan(NodeId s, NodeId t,
                                           NodeId* contact, bool* fallback) {
  std::vector<NodeId> direct = nd_.DirectPath(s, t);
  if (!direct.empty()) return direct;

  // Find the sloppy-group contact: the vicinity member with the longest
  // hash-prefix match against h(t).
  const auto vic = nd_.vicinity(s);
  const auto w = groups_.FindContact(*vic, t);
  if (w.has_value() && groups_.Stores(*w, t)) {
    if (contact) *contact = *w;
    // s ; w via the vicinity, then w routes on t's address: w ; l_t ; t.
    return JoinPaths(vic->PathTo(*w), nd_.FirstPacketPlan(*w, t));
  }

  // w.h.p.-never fallback (§4.4): query the landmark resolution DB. The
  // packet rides to the owner landmark, which knows t's address.
  if (fallback) *fallback = true;
  const NodeId owner = resolution_.OwnerLandmark(names_.hash(t));
  std::vector<NodeId> to_owner = nd_.LandmarkTree(owner)->PathTo(s);
  std::reverse(to_owner.begin(), to_owner.end());
  return JoinPaths(std::move(to_owner), nd_.FirstPacketPlan(owner, t));
}

Route Disco::RouteFirst(NodeId s, NodeId t, Shortcut mode) {
  NodeId contact = kInvalidNode;
  bool fallback = false;
  std::vector<NodeId> plan = FirstPacketPlan(s, t, &contact, &fallback);
  Route r = nd_.FinishPlan(
      std::move(plan),
      [this, s, t] {
        return FirstPacketPlan(t, s, nullptr, nullptr);
      },
      mode);
  r.contact = contact;
  r.via_fallback = fallback;
  return r;
}

Route Disco::RouteLater(NodeId s, NodeId t, Shortcut mode) {
  // After the first packet s holds t's address (NDDisco routing) *and*
  // remembers the route the first packet actually took; the flow keeps
  // whichever is shorter, so later packets never regress.
  Route later = nd_.RouteLater(s, t, mode);
  Route first = RouteFirst(s, t, mode);
  return first.length < later.length ? first : later;
}

Route Disco::RouteFirstByName(std::string_view from, std::string_view to,
                              Shortcut mode) {
  const auto s = names_.Find(from);
  const auto t = names_.Find(to);
  if (!s || !t) return Route{};
  return RouteFirst(*s, *t, mode);
}

StateBreakdown Disco::State(NodeId v) {
  StateBreakdown b = nd_.State(v, &resolution_);
  b.group_entries = groups_.StoredAddressCount(v);
  b.overlay_entries = overlay_.degree(v);
  return b;
}

}  // namespace disco
