#include "core/sloppy_group.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/hashring.h"

namespace disco {

SloppyGroups::SloppyGroups(const NameTable& names, NodeId n,
                           int bits_offset)
    : SloppyGroups(names,
                   std::vector<double>(names.size(),
                                       static_cast<double>(n)),
                   bits_offset) {
  (void)n;
}

SloppyGroups::SloppyGroups(const NameTable& names,
                           const std::vector<double>& estimates,
                           int bits_offset)
    : names_(&names) {
  assert(estimates.size() == names.size());
  bits_.reserve(names.size());
  for (const double est : estimates) {
    bits_.push_back(
        std::clamp(SloppyGroupBits(est) + bits_offset, 0, 62));
  }
  uniform_bits_ =
      std::all_of(bits_.begin(), bits_.end(),
                  [&](int b) { return b == bits_.front(); }) &&
      !bits_.empty();

  if (uniform_bits_) {
    const int k = bits_.front();
    std::unordered_map<std::uint64_t, std::uint32_t> gid_index;
    group_index_.resize(names.size());
    for (NodeId v = 0; v < names.size(); ++v) {
      const std::uint64_t gid = GroupId(names.hash(v), k);
      auto [it, inserted] = gid_index.emplace(
          gid, static_cast<std::uint32_t>(members_by_group_.size()));
      if (inserted) members_by_group_.emplace_back();
      group_index_[v] = it->second;
      members_by_group_[it->second].push_back(v);
    }
  }
}

std::uint64_t SloppyGroups::group_of(NodeId v) const {
  return GroupId(names_->hash(v), bits_[v]);
}

bool SloppyGroups::Stores(NodeId w, NodeId t) const {
  const int need = std::max(bits_[w], bits_[t]);
  return CommonPrefixLength(names_->hash(w), names_->hash(t)) >= need;
}

std::size_t SloppyGroups::StoredAddressCount(NodeId w) const {
  if (uniform_bits_) return members_by_group_[group_index_[w]].size();
  std::size_t count = 0;
  for (NodeId t = 0; t < names_->size(); ++t) {
    if (Stores(w, t)) ++count;
  }
  return count;
}

std::vector<NodeId> SloppyGroups::StoredAddresses(NodeId w) const {
  if (uniform_bits_) return members_by_group_[group_index_[w]];
  std::vector<NodeId> out;
  for (NodeId t = 0; t < names_->size(); ++t) {
    if (Stores(w, t)) out.push_back(t);
  }
  return out;
}

std::vector<NodeId> SloppyGroups::GroupMembers(NodeId v) const {
  if (uniform_bits_) return members_by_group_[group_index_[v]];
  std::vector<NodeId> out;
  const std::uint64_t gid = group_of(v);
  for (NodeId w = 0; w < names_->size(); ++w) {
    if (GroupId(names_->hash(w), bits_[v]) == gid) out.push_back(w);
  }
  return out;
}

std::optional<NodeId> SloppyGroups::FindContact(const Vicinity& vic,
                                                NodeId t) const {
  const HashValue ht = names_->hash(t);
  int best_prefix = -1;
  NodeId best = kInvalidNode;
  // Members are in distance order, so on prefix ties the closest wins —
  // the paper's "closest node with a long enough prefix match" refinement.
  for (const NearNode& m : vic.members()) {
    const int p = CommonPrefixLength(names_->hash(m.node), ht);
    if (p > best_prefix) {
      best_prefix = p;
      best = m.node;
    }
  }
  if (best == kInvalidNode) return std::nullopt;
  return best;
}

}  // namespace disco
