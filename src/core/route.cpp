#include "core/route.h"

#include <cassert>

namespace disco {

std::vector<NodeId> JoinPaths(std::vector<NodeId> head,
                              const std::vector<NodeId>& tail) {
  if (head.empty()) return tail;
  if (tail.empty()) return head;
  assert(head.back() == tail.front());
  head.insert(head.end(), tail.begin() + 1, tail.end());
  return head;
}

double StretchOf(Dist route_length, Dist shortest) {
  if (shortest <= 0) return 1.0;
  return route_length / shortest;
}

}  // namespace disco
