#include "routing/vicinity.h"

#include <algorithm>
#include <cassert>

#include "runtime/parallel_for.h"

namespace disco {

Vicinity::Vicinity(NodeId owner, std::vector<NearNode> members)
    : owner_(owner), members_(std::move(members)) {
  index_.reserve(members_.size());
  for (std::uint32_t i = 0; i < members_.size(); ++i) {
    index_.emplace(members_[i].node, i);
  }
}

Dist Vicinity::DistanceTo(NodeId v) const {
  const auto it = index_.find(v);
  return it == index_.end() ? kInfDist : members_[it->second].dist;
}

std::vector<NodeId> Vicinity::PathTo(NodeId v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return {};
  std::vector<NodeId> path;
  // Parents point toward the owner and were settled earlier, so they are
  // always present in the member index.
  NodeId cur = v;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    if (cur == owner_) break;
    const auto pit = index_.find(cur);
    assert(pit != index_.end());
    cur = members_[pit->second].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

VicinityCache::VicinityCache(const Graph& g, std::size_t k,
                             std::size_t capacity)
    : g_(g), k_(std::min<std::size_t>(k, g.num_nodes())),
      capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const Vicinity> VicinityCache::Get(NodeId v) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(v);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.vicinity;
    }
  }
  // Miss: truncated Dijkstra runs unlocked so concurrent misses on
  // distinct nodes parallelize. A racing duplicate of the same vicinity is
  // harmless — Insert keeps the first.
  return Insert(v, std::make_shared<const Vicinity>(v, KNearest(g_, v, k_)));
}

std::shared_ptr<const Vicinity> VicinityCache::Insert(
    NodeId v, std::shared_ptr<const Vicinity> vic) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(v);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.vicinity;
  }
  ++computed_;
  lru_.push_front(v);
  cache_.emplace(v, Entry{vic, lru_.begin()});
  if (cache_.size() > capacity_) {
    const NodeId evict = lru_.back();
    lru_.pop_back();
    cache_.erase(evict);
  }
  return vic;
}

void VicinityCache::Prewarm(const std::vector<NodeId>& nodes) {
  std::vector<NodeId> missing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const NodeId v : nodes) {
      if (cache_.find(v) == cache_.end()) missing.push_back(v);
    }
  }
  if (missing.size() > capacity_) missing.resize(capacity_);
  std::vector<std::shared_ptr<const Vicinity>> built(missing.size());
  runtime::ParallelForTasks(missing.size(), [&](std::size_t i) {
    built[i] = std::make_shared<const Vicinity>(
        missing[i], KNearest(g_, missing[i], k_));
  });
  for (std::size_t i = 0; i < missing.size(); ++i) {
    Insert(missing[i], std::move(built[i]));
  }
}

std::size_t VicinityCache::computed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return computed_;
}

}  // namespace disco
