#include "routing/vicinity.h"

#include <algorithm>
#include <cassert>

namespace disco {

Vicinity::Vicinity(NodeId owner, std::vector<NearNode> members)
    : owner_(owner), members_(std::move(members)) {
  index_.reserve(members_.size());
  for (std::uint32_t i = 0; i < members_.size(); ++i) {
    index_.emplace(members_[i].node, i);
  }
}

Dist Vicinity::DistanceTo(NodeId v) const {
  const auto it = index_.find(v);
  return it == index_.end() ? kInfDist : members_[it->second].dist;
}

std::vector<NodeId> Vicinity::PathTo(NodeId v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return {};
  std::vector<NodeId> path;
  // Parents point toward the owner and were settled earlier, so they are
  // always present in the member index.
  NodeId cur = v;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    if (cur == owner_) break;
    const auto pit = index_.find(cur);
    assert(pit != index_.end());
    cur = members_[pit->second].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

VicinityCache::VicinityCache(const Graph& g, std::size_t k,
                             std::size_t capacity)
    : g_(g), k_(std::min<std::size_t>(k, g.num_nodes())),
      capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const Vicinity> VicinityCache::Get(NodeId v) {
  auto it = cache_.find(v);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.vicinity;
  }
  auto vic = std::make_shared<const Vicinity>(v, KNearest(g_, v, k_));
  ++computed_;
  lru_.push_front(v);
  cache_.emplace(v, Entry{vic, lru_.begin()});
  if (cache_.size() > capacity_) {
    const NodeId evict = lru_.back();
    lru_.pop_back();
    cache_.erase(evict);
  }
  return vic;
}

}  // namespace disco
