// The fixed-width address alternative sketched (and rejected) in §4.2.
//
// Instead of embedding an explicit route, an address could be a fixed
// O(log n)-bit value: each landmark partitions a block of address space
// among its tree neighbors in proportion to their number of descendants,
// recursively down its shortest-path tree — a dynamic, hierarchical
// assignment analogous to IP prefixes. Forwarding then needs only a range
// comparison per hop instead of carried labels.
//
// The paper keeps explicit routes because the block scheme complicates the
// protocol and, once provisioned with the slack a *dynamic* partition needs
// to absorb churn without renumbering, its mean address is no smaller in
// practice. This module implements both the exact partition and the slack
// knob so the addr_size bench can reproduce that comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/address.h"

namespace disco {

class BlockAddressing {
 public:
  /// Assigns every node a fixed-width address inside its closest
  /// landmark's region of the forest in `book`.
  ///
  /// `slack_bits_per_level`: extra bits reserved at every tree level so a
  /// dynamic implementation could grow subtrees without renumbering; 0
  /// gives the exact (static) partition whose width is
  /// ceil(log2(largest region)).
  BlockAddressing(const Graph& g, const AddressBook& book,
                  int slack_bits_per_level = 0);

  /// Address width in bits (uniform across the network — the wire format).
  int bits() const { return bits_; }

  /// Bytes on the wire (excluding the landmark identifier), the number
  /// comparable with Address::route_bytes().
  std::size_t address_bytes() const { return (bits_ + 7) / 8; }

  std::uint64_t AddressOf(NodeId v) const { return address_[v]; }

  /// Forwards hop by hop from v's landmark using only range comparisons;
  /// returns the node path (landmark .. v). Used to prove the assignment
  /// routes correctly.
  std::vector<NodeId> FollowTo(NodeId v) const;

  /// True when the requested slack overflowed 64-bit addresses and the
  /// assignment degraded to the exact partition for some regions.
  bool slack_saturated() const { return slack_saturated_; }

 private:
  const Graph* g_;
  const AddressBook* book_;
  int bits_ = 0;
  bool slack_saturated_ = false;
  std::vector<std::uint64_t> address_;     // per node
  std::vector<std::uint64_t> range_end_;   // exclusive end of v's range
  std::vector<std::vector<NodeId>> children_;  // forest children lists
};

}  // namespace disco
