// Vicinities (§4.2): V(v) is the k = Θ(sqrt(n log n)) nodes closest to v,
// learned by the bounded path-vector protocol. The fixed size — rather than
// S4's unbounded clusters — is what enforces Disco's per-node state bound.
//
// The static simulator computes a vicinity with one truncated Dijkstra and
// memoizes it: the evaluation touches vicinities of sampled sources and of
// nodes along routes (shortcutting), with heavy reuse, so an LRU cache keyed
// by node id backs every protocol object. The cache is thread-safe, so
// parallel route sampling computes the vicinities of distinct sources
// concurrently; Prewarm() bulk-computes a known working set up front.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace disco {

/// The converged vicinity of one node: its k closest nodes (including
/// itself at distance 0) with distances and truncated-tree parents.
class Vicinity {
 public:
  Vicinity(NodeId owner, std::vector<NearNode> members);

  NodeId owner() const { return owner_; }

  /// Members in nondecreasing distance order (ties by id); first is owner.
  const std::vector<NearNode>& members() const { return members_; }

  std::size_t size() const { return members_.size(); }

  bool Contains(NodeId v) const { return index_.count(v) > 0; }

  /// Distance to a member; kInfDist if v is not in the vicinity.
  Dist DistanceTo(NodeId v) const;

  /// Distance to the farthest member (the vicinity "radius" that the
  /// control-plane optimization of §4.2 would advertise to neighbors).
  Dist radius() const {
    return members_.empty() ? 0 : members_.back().dist;
  }

  /// Shortest path owner -> member (inclusive); empty if not a member.
  std::vector<NodeId> PathTo(NodeId v) const;

 private:
  NodeId owner_;
  std::vector<NearNode> members_;
  std::unordered_map<NodeId, std::uint32_t> index_;  // node -> members_ idx
};

/// LRU-memoized vicinity computation over a fixed graph.
/// Get() returns shared ownership because callers routinely hold several
/// vicinities at once (source + every node along a route) while the cache
/// keeps evicting.
class VicinityCache {
 public:
  /// `k` is the vicinity size; `capacity` the number of vicinities kept.
  VicinityCache(const Graph& g, std::size_t k, std::size_t capacity = 4096);

  /// Safe to call concurrently; misses on distinct nodes run their
  /// truncated Dijkstras in parallel.
  std::shared_ptr<const Vicinity> Get(NodeId v);

  /// Computes the vicinities of `nodes` in parallel over the runtime pool
  /// (skipping ones already cached). A wall-clock optimization only:
  /// vicinity contents are a deterministic function of the graph.
  void Prewarm(const std::vector<NodeId>& nodes);

  std::size_t k() const { return k_; }
  std::size_t computed_count() const;

 private:
  std::shared_ptr<const Vicinity> Insert(
      NodeId v, std::shared_ptr<const Vicinity> vic);

  const Graph& g_;
  std::size_t k_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::size_t computed_ = 0;
  std::list<NodeId> lru_;  // front = most recent
  struct Entry {
    std::shared_ptr<const Vicinity> vicinity;
    std::list<NodeId>::iterator lru_pos;
  };
  std::unordered_map<NodeId, Entry> cache_;
};

}  // namespace disco
