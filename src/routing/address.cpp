#include "routing/address.h"

#include <cassert>

namespace disco {

AddressBook::AddressBook(const Graph& g, const LandmarkSet& landmarks)
    : g_(&g), landmarks_(&landmarks),
      forest_(MultiSourceDijkstra(g, landmarks.landmarks)) {}

Address AddressBook::AddressOf(NodeId v) const {
  Address a;
  a.node = v;
  a.landmark = forest_.closest[v];
  a.landmark_dist = forest_.dist[v];
  a.route = forest_.PathFromSource(v);
  std::vector<HopLabel> hops;
  hops.reserve(a.route.empty() ? 0 : a.route.size() - 1);
  for (std::size_t i = 0; i + 1 < a.route.size(); ++i) {
    const int iface = g_->InterfaceTo(a.route[i], a.route[i + 1]);
    assert(iface >= 0);
    hops.push_back({static_cast<std::uint32_t>(iface),
                    g_->degree(a.route[i])});
  }
  a.labels = EncodeRoute(hops);
  return a;
}

std::vector<NodeId> FollowEncodedRoute(const Graph& g, NodeId start,
                                       const EncodedRoute& route) {
  std::vector<NodeId> path{start};
  LabelDecoder dec(route);
  NodeId cur = start;
  while (dec.HasNext()) {
    const std::uint32_t iface = dec.Next(g.degree(cur));
    assert(iface < g.degree(cur));
    cur = g.neighbors(cur)[iface].to;
    path.push_back(cur);
  }
  return path;
}

}  // namespace disco
