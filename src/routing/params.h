// Protocol sizing knobs and the formulas behind them.
//
// The paper fixes three interlocking quantities (§4.2, §4.4):
//   landmark probability  p = sqrt(ln n / n)      -> ~sqrt(n ln n) landmarks
//   vicinity size         k = ceil(sqrt(n ln n))  -> every vicinity holds a
//                                                    landmark w.h.p.
//   sloppy-group bits     b = floor(log2(sqrt(n)/log2 n))
//                                                 -> groups of ~sqrt(n) log n
//                                                    nodes, so every vicinity
//                                                    intersects every group
//                                                    w.h.p.
// All three are scaled by Params factors so ablation benches can probe the
// constants.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace disco {

struct Params {
  /// Multiplier on the landmark probability sqrt(ln n / n).
  double landmark_prob_factor = 1.0;
  /// Multiplier on the vicinity size sqrt(n ln n).
  double vicinity_factor = 1.0;
  /// Long-distance overlay links per node (the paper evaluates 1 and 3).
  int fingers = 1;
  /// Extra bits added to the sloppy-group prefix length — the "+O(1)" in
  /// §4.5's b = floor(log2(sqrt(n)/log2 n) + O(1)). Positive values make
  /// groups smaller (less state, thinner vicinity∩group margin).
  int group_bits_offset = 0;
  /// Virtual points per landmark on the resolution ring (§4.5 suggests
  /// multiple hash functions to tame consistent hashing's imbalance).
  int resolution_virtual_points = 8;
  /// Landmark Dijkstra trees kept resident in the static simulator
  /// (each is O(n) memory; lower this for paper-scale --full runs).
  std::size_t tree_cache_capacity = 2048;
  /// Master seed; all randomness (landmark flips, finger draws, sampling)
  /// derives from it.
  std::uint64_t seed = 1;
};

/// p = factor * sqrt(ln n / n), clamped to [0, 1].
double LandmarkProbability(NodeId n, double factor = 1.0);

/// k = ceil(factor * sqrt(n ln n)), clamped to [1, n].
std::size_t VicinitySize(NodeId n, double factor = 1.0);

/// b = floor(log2(sqrt(n)/log2 n)) for a node's own estimate of n,
/// clamped to [0, 62]. Nodes whose estimates differ by <2x differ by at
/// most one bit here — the property sloppy grouping relies on (§4.4).
int SloppyGroupBits(double n_estimate);

}  // namespace disco
