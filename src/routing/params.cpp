#include "routing/params.h"

#include <algorithm>
#include <cmath>

namespace disco {

double LandmarkProbability(NodeId n, double factor) {
  if (n <= 1) return 1.0;
  const double p =
      factor * std::sqrt(std::log(static_cast<double>(n)) /
                         static_cast<double>(n));
  return std::clamp(p, 0.0, 1.0);
}

std::size_t VicinitySize(NodeId n, double factor) {
  if (n <= 1) return 1;
  const double k = factor * std::sqrt(static_cast<double>(n) *
                                      std::log(static_cast<double>(n)));
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::ceil(k)), 1,
                                 n);
}

int SloppyGroupBits(double n_estimate) {
  if (n_estimate <= 4) return 0;
  const double ratio = std::sqrt(n_estimate) / std::log2(n_estimate);
  if (ratio <= 1) return 0;
  const int b = static_cast<int>(std::floor(std::log2(ratio)));
  return std::clamp(b, 0, 62);
}

}  // namespace disco
