#include "routing/landmarks.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "runtime/parallel_for.h"
#include "util/rng.h"

namespace disco {

LandmarkSet SelectLandmarks(NodeId n, const Params& params) {
  const double p = LandmarkProbability(n, params.landmark_prob_factor);
  LandmarkSet set;
  set.is_landmark.assign(n, 0);

  // Fork per node: each node's coin depends only on (seed, v), mirroring
  // the local and independent decision of the protocol — which also makes
  // the draws embarrassingly parallel with thread-count-invariant results.
  const Rng base(params.seed);
  std::vector<double> draws(n);
  runtime::ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      draws[v] = base.Fork(v).NextDouble();
    }
  });

  double min_draw = 2.0;
  NodeId min_node = 0;
  for (NodeId v = 0; v < n; ++v) {
    const double draw = draws[v];
    if (draw < p) {
      set.is_landmark[v] = 1;
      set.landmarks.push_back(v);
    }
    if (draw < min_draw) {
      min_draw = draw;
      min_node = v;
    }
  }
  if (set.landmarks.empty() && n > 0) {
    set.is_landmark[min_node] = 1;
    set.landmarks.push_back(min_node);
  }
  return set;
}

LandmarkSet LandmarksFromList(NodeId n, std::vector<NodeId> chosen) {
  assert(!chosen.empty());
  LandmarkSet set;
  set.is_landmark.assign(n, 0);
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  for (const NodeId l : chosen) {
    assert(l < n);
    set.is_landmark[l] = 1;
  }
  set.landmarks = std::move(chosen);
  return set;
}

LandmarkSet SelectDegreeBasedLandmarks(const Graph& g,
                                       const Params& params) {
  const NodeId n = g.num_nodes();
  const std::size_t want = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             n * LandmarkProbability(n, params.landmark_prob_factor))));

  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b) ||
           (g.degree(a) == g.degree(b) && a < b);
  });
  order.resize(std::min<std::size_t>(want, n));
  return LandmarksFromList(n, std::move(order));
}

}  // namespace disco
