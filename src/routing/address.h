// Addresses (§4.2): a node v's address is (l_v, explicit route l_v ; v),
// where l_v is its closest landmark. The explicit route is carried as
// compact per-hop labels (ceil(log2 d) bits at a degree-d node).
//
// AddressBook derives every node's address from a single multi-source
// Dijkstra over the landmark set — the "closest landmark forest". Addresses
// are location-dependent but internal to the protocol; flat names map to
// them via the resolution database and sloppy groups (core/).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "routing/landmarks.h"
#include "util/compact_label.h"

namespace disco {

/// A node's routing address.
struct Address {
  NodeId node = kInvalidNode;      // whose address this is
  NodeId landmark = kInvalidNode;  // l_v, the closest landmark
  Dist landmark_dist = 0;          // d(l_v, v)
  std::vector<NodeId> route;       // l_v .. v inclusive (route.front()==l_v)
  EncodedRoute labels;             // compact encoding of the hops

  std::size_t num_hops() const { return labels.num_hops; }

  /// Bytes of the explicit-route part when carried in a header (§4.2's
  /// 2.93-byte mean on the router map counts exactly this).
  std::size_t route_bytes() const { return labels.byte_size(); }

  /// Full address size given a fixed landmark-identifier width.
  std::size_t total_bytes(std::size_t landmark_id_bytes) const {
    return landmark_id_bytes + route_bytes();
  }
};

class AddressBook {
 public:
  AddressBook(const Graph& g, const LandmarkSet& landmarks);

  NodeId closest_landmark(NodeId v) const { return forest_.closest[v]; }
  Dist landmark_distance(NodeId v) const { return forest_.dist[v]; }

  /// Materializes v's address (route + labels).
  Address AddressOf(NodeId v) const;

  /// The closest-landmark forest (for protocols that only need distances).
  const MultiSourceTree& forest() const { return forest_; }

  const LandmarkSet& landmarks() const { return *landmarks_; }

 private:
  const Graph* g_;
  const LandmarkSet* landmarks_;
  MultiSourceTree forest_;
};

/// Replays an encoded explicit route from `start`, returning the node path
/// (used by tests to prove the label codec round-trips through the graph).
std::vector<NodeId> FollowEncodedRoute(const Graph& g, NodeId start,
                                       const EncodedRoute& route);

}  // namespace disco
