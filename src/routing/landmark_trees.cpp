#include "routing/landmark_trees.h"

#include <cassert>

namespace disco {

LandmarkTreeCache::LandmarkTreeCache(const Graph& g,
                                     const LandmarkSet& landmarks,
                                     std::size_t capacity)
    : g_(g), landmarks_(landmarks),
      capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const ShortestPathTree> LandmarkTreeCache::Tree(NodeId l) {
  assert(landmarks_.Contains(l));
  auto it = cache_.find(l);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.tree;
  }
  auto tree = std::make_shared<const ShortestPathTree>(Dijkstra(g_, l));
  ++computed_;
  lru_.push_front(l);
  cache_.emplace(l, Entry{tree, lru_.begin()});
  if (cache_.size() > capacity_) {
    const NodeId evict = lru_.back();
    lru_.pop_back();
    cache_.erase(evict);
  }
  return tree;
}

}  // namespace disco
