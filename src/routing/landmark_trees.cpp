#include "routing/landmark_trees.h"

#include <cassert>

#include "runtime/parallel_for.h"

namespace disco {

LandmarkTreeCache::LandmarkTreeCache(const Graph& g,
                                     const LandmarkSet& landmarks,
                                     std::size_t capacity)
    : g_(g), landmarks_(landmarks),
      capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const ShortestPathTree> LandmarkTreeCache::Tree(NodeId l) {
  assert(landmarks_.Contains(l));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(l);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.tree;
    }
  }
  // Miss: run the Dijkstra unlocked so concurrent misses on distinct
  // landmarks proceed in parallel. A racing duplicate computation of the
  // same tree is possible but harmless — Insert keeps the first one.
  return Insert(l, std::make_shared<const ShortestPathTree>(Dijkstra(g_, l)));
}

std::shared_ptr<const ShortestPathTree> LandmarkTreeCache::Insert(
    NodeId l, std::shared_ptr<const ShortestPathTree> tree) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(l);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.tree;
  }
  ++computed_;
  lru_.push_front(l);
  cache_.emplace(l, Entry{tree, lru_.begin()});
  if (cache_.size() > capacity_) {
    const NodeId evict = lru_.back();
    lru_.pop_back();
    cache_.erase(evict);
  }
  return tree;
}

void LandmarkTreeCache::Prewarm(std::size_t max_resident_entries) {
  const std::vector<NodeId>& all = landmarks_.landmarks;
  if (all.empty() || all.size() > capacity_) return;
  if (all.size() * static_cast<std::size_t>(g_.num_nodes()) >
      max_resident_entries) {
    return;
  }
  if (runtime::ThreadPool::Shared().parallelism() == 1) return;  // stay lazy
  std::vector<std::shared_ptr<const ShortestPathTree>> trees(all.size());
  runtime::ParallelForTasks(all.size(), [&](std::size_t i) {
    trees[i] = std::make_shared<const ShortestPathTree>(
        Dijkstra(g_, all[i]));
  });
  for (std::size_t i = 0; i < all.size(); ++i) {
    Insert(all[i], std::move(trees[i]));
  }
}

std::size_t LandmarkTreeCache::computed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return computed_;
}

}  // namespace disco
