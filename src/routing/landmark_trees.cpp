#include "routing/landmark_trees.h"

// disco-lint: allow-file(relaxed-atomic): cache statistics only (hits,
// dijkstras, writebacks) — commutative increments read after the owning
// parallel section has joined; they never feed routing output.

#include <cassert>
#include <cstdlib>

#include "graph/io.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "store/tree_codec.h"
#include "util/sha256.h"

namespace disco {

// Fingerprint of the landmark id list — the "landmark set" component of
// every tree artifact's key (keying: graph fingerprint, landmark set,
// root, codec version). Two runs agree on it iff they selected the same
// set, e.g. by deriving it from the same (n, seed, Params).
std::string LandmarkSetFingerprintHex(const LandmarkSet& landmarks) {
  Sha256 h;
  h.Update("disco-landmark-set-v1");
  for (const NodeId l : landmarks.landmarks) {
    const std::uint32_t v = l;
    h.Update(&v, sizeof v);
  }
  return Sha256HexOf(h.Finalize());
}

store::ArtifactKey LandmarkTreeArtifactKey(const std::string& graph_fp_hex,
                                           const std::string& set_fp_hex,
                                           NodeId root) {
  store::ArtifactKey key;
  key.kind = "ltree";
  key.graph = graph_fp_hex;
  key.scope = "set=" + set_fp_hex + ";root=" + std::to_string(root);
  key.version = store::kTreeCodecVersion;
  return key;
}

LandmarkTreeCache::LandmarkTreeCache(const Graph& g,
                                     const LandmarkSet& landmarks,
                                     std::size_t capacity)
    : g_(g), landmarks_(landmarks),
      capacity_(std::max<std::size_t>(capacity, 1)) {
  store_ = store::ProcessStore();
  if (store_ != nullptr) {
    // One O(m) fingerprint pass buys every tree of this graph a store
    // key; negligible next to a single landmark Dijkstra.
    graph_fp_ = GraphFingerprintHex(g_);
    set_fp_ = LandmarkSetFingerprintHex(landmarks_);
  }
}

store::ArtifactKey LandmarkTreeCache::KeyFor(NodeId l) const {
  return LandmarkTreeArtifactKey(graph_fp_, set_fp_, l);
}

std::shared_ptr<const ShortestPathTree> LandmarkTreeCache::LoadOrCompute(
    NodeId l) {
  if (store_ != nullptr) {
    if (const auto reader = store_->Open(KeyFor(l))) {
      DISCO_TRACE_SPAN("store.decode");
      auto tree = std::make_shared<ShortestPathTree>();
      // The root check closes the last unvalidated field: a valid tree of
      // this graph but another root (misfiled object) must read as a
      // miss, not silently poison every route through this landmark.
      if (reader->frame_count() >= 1 &&
          store::DecodeTree(g_, reader->frame(0).data(),
                            reader->frame(0).size(), tree.get()) &&
          tree->source == l) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        store::Counters().tree_store_hits.Inc();
        return tree;
      }
      // Structurally invalid for this graph (or torn): fall through and
      // recompute; the write-back below republishes a good object.
    }
  }
  std::shared_ptr<const ShortestPathTree> tree;
  {
    DISCO_TRACE_SPAN("store.dijkstra");
    tree = std::make_shared<const ShortestPathTree>(Dijkstra(g_, l));
  }
  dijkstras_.fetch_add(1, std::memory_order_relaxed);
  store::Counters().tree_dijkstras.Inc();
  if (store_ != nullptr) {
    DISCO_TRACE_SPAN("store.writeback");
    const std::string frame = store::EncodeTree(g_, *tree);
    if (!frame.empty() && store_->Put(KeyFor(l), {frame})) {
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      store::Counters().tree_writebacks.Inc();
    }
  }
  return tree;
}

std::shared_ptr<const ShortestPathTree> LandmarkTreeCache::Tree(NodeId l) {
  assert(landmarks_.Contains(l));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(l);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      ram_hits_.fetch_add(1, std::memory_order_relaxed);
      store::Counters().tree_ram_hits.Inc();
      return it->second.tree;
    }
  }
  // Miss: resolve from the store (or run the Dijkstra) unlocked so
  // concurrent misses on distinct landmarks proceed in parallel. A racing
  // duplicate resolution of the same tree is possible but harmless —
  // Insert keeps the first one.
  return Insert(l, LoadOrCompute(l));
}

std::shared_ptr<const ShortestPathTree> LandmarkTreeCache::Insert(
    NodeId l, std::shared_ptr<const ShortestPathTree> tree) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(l);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.tree;
  }
  ++computed_;
  lru_.push_front(l);
  cache_.emplace(l, Entry{tree, lru_.begin()});
  if (cache_.size() > capacity_) {
    const NodeId evict = lru_.back();
    lru_.pop_back();
    cache_.erase(evict);
  }
  return tree;
}

void LandmarkTreeCache::Prewarm(std::size_t max_resident_entries) {
  if (max_resident_entries == 0) {
    // Satellite knob: full-scale runs export DISCO_TREE_CACHE_ENTRIES to
    // let e.g. the 192k-node router map's ~1.5k trees stay resident
    // (count * n entries) without a code edit. Non-numeric or zero values
    // fall back to the built-in default.
    max_resident_entries = 32u << 20;
    if (const char* env = std::getenv("DISCO_TREE_CACHE_ENTRIES")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        max_resident_entries = static_cast<std::size_t>(v);
      }
    }
  }
  const std::vector<NodeId>& all = landmarks_.landmarks;
  if (all.empty() || all.size() > capacity_) return;
  if (all.size() * static_cast<std::size_t>(g_.num_nodes()) >
      max_resident_entries) {
    return;
  }
  if (runtime::ThreadPool::Shared().parallelism() == 1) return;  // stay lazy
  std::vector<std::shared_ptr<const ShortestPathTree>> trees(all.size());
  runtime::ParallelForTasks(all.size(), [&](std::size_t i) {
    trees[i] = LoadOrCompute(all[i]);
  });
  for (std::size_t i = 0; i < all.size(); ++i) {
    Insert(all[i], std::move(trees[i]));
  }
}

std::size_t LandmarkTreeCache::computed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return computed_;
}

LandmarkTreeCache::TierStats LandmarkTreeCache::tier_stats() const {
  TierStats s;
  s.ram_hits = ram_hits_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.dijkstras = dijkstras_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace disco
