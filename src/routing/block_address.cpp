#include "routing/block_address.h"

#include <algorithm>
#include "util/bitio.h"
#include <cassert>

namespace disco {
namespace {

constexpr std::uint64_t kCapCeiling = 1ULL << 62;

}  // namespace

BlockAddressing::BlockAddressing(const Graph& g, const AddressBook& book,
                                 int slack_bits_per_level)
    : g_(&g), book_(&book) {
  const NodeId n = g.num_nodes();
  const MultiSourceTree& forest = book.forest();
  children_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (forest.parent[v] != kInvalidNode) {
      children_[forest.parent[v]].push_back(v);
    }
  }

  // Bottom-up capacity: one slot for the node itself plus its children's
  // capacities, inflated by the per-level slack a dynamic partition would
  // reserve. Children are processed before parents in reverse settling
  // order; MultiSourceDijkstra has no such order exposed, so compute via
  // an explicit post-order walk per region root.
  std::vector<std::uint64_t> cap(n, 0);
  std::vector<NodeId> stack, order;
  for (const NodeId root : book.landmarks().landmarks) {
    if (forest.closest[root] != root) continue;  // defensive
    stack.push_back(root);
    order.clear();
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (const NodeId c : children_[v]) stack.push_back(c);
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId v = *it;
      std::uint64_t total = 1;
      for (const NodeId c : children_[v]) total += cap[c];
      if (slack_bits_per_level > 0) {
        const int shift = std::min(slack_bits_per_level, 62);
        if (total > (kCapCeiling >> shift)) {
          slack_saturated_ = true;
        } else {
          total <<= shift;
        }
      }
      cap[v] = std::min(total, kCapCeiling);
    }
  }

  // The wire format is uniform: wide enough for the largest region.
  std::uint64_t max_cap = 1;
  for (const NodeId root : book.landmarks().landmarks) {
    max_cap = std::max(max_cap, cap[root]);
  }
  bits_ = BitWidth(max_cap - 1);
  if (bits_ == 0) bits_ = 1;

  // Top-down assignment: a node owns the first slot of its range and its
  // children get consecutive sub-ranges.
  address_.assign(n, 0);
  range_end_.assign(n, 0);
  for (const NodeId root : book.landmarks().landmarks) {
    address_[root] = 0;
    range_end_[root] = cap[root];
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      std::uint64_t next = address_[v] + 1;
      for (const NodeId c : children_[v]) {
        address_[c] = next;
        range_end_[c] = next + cap[c];
        next += cap[c];
        stack.push_back(c);
      }
      assert(next <= range_end_[v]);
    }
  }
}

std::vector<NodeId> BlockAddressing::FollowTo(NodeId v) const {
  const NodeId root = book_->closest_landmark(v);
  const std::uint64_t target = address_[v];
  std::vector<NodeId> path{root};
  NodeId cur = root;
  while (address_[cur] != target) {
    NodeId next = kInvalidNode;
    for (const NodeId c : children_[cur]) {
      if (target >= address_[c] && target < range_end_[c]) {
        next = c;
        break;
      }
    }
    if (next == kInvalidNode) return {};  // mis-assignment (tests catch it)
    path.push_back(next);
    cur = next;
  }
  return path;
}

}  // namespace disco
