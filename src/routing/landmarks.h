// Landmark selection (§4.2): every node flips a local coin and becomes a
// landmark with probability sqrt(ln n / n), giving Θ(sqrt(n ln n)) landmarks
// w.h.p. with no coordination. The decision is a pure function of
// (seed, node), which is exactly how a distributed node would use a local
// PRG — no global shuffle is involved, so the set is stable under node
// arrivals (the amortized re-flip rule of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/params.h"

namespace disco {

struct LandmarkSet {
  std::vector<NodeId> landmarks;   // ascending node ids
  std::vector<char> is_landmark;   // indexed by node id

  std::size_t count() const { return landmarks.size(); }
  bool Contains(NodeId v) const { return is_landmark[v] != 0; }
};

/// Selects landmarks among n nodes. Guarantees at least one landmark (if
/// every coin fails, the node with the smallest draw is promoted — a stand-
/// in for the paper's w.h.p. argument that keeps small test graphs sound).
LandmarkSet SelectLandmarks(NodeId n, const Params& params);

/// An operator-specified landmark set (§6: the guarantees need only that
/// every node has a landmark in its vicinity and there are O~(sqrt(n))
/// landmarks in total — operators may prefer well-provisioned nodes, or a
/// landmark service). `chosen` must be non-empty; duplicates are merged.
LandmarkSet LandmarksFromList(NodeId n, std::vector<NodeId> chosen);

/// The §6 "well-provisioned landmarks" policy: the expected-count highest-
/// degree nodes of `g` (ties by id). Same cardinality as the random rule.
LandmarkSet SelectDegreeBasedLandmarks(const Graph& g, const Params& params);

}  // namespace disco
