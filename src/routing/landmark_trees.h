// Per-landmark shortest-path trees, computed lazily and memoized.
//
// Every node knows a shortest path to every landmark (§4.2); in the static
// simulator that knowledge is the landmark's full Dijkstra tree: dist[l][v]
// is v's landmark-table entry for l, and the parent chain materializes the
// s ; l segment of routes. Trees are O(n) each, so for the paper-scale maps
// the cache is bounded and the benches sort their sampled destinations by
// closest landmark to maximize reuse.
//
// Tiering: when the process has an artifact store attached (the benches'
// --store=<dir> flag, src/store/), the cache becomes two-level —
// RAM LRU -> store -> compute. A miss first tries to decode the tree from
// the store (store/tree_codec.h frames keyed by graph fingerprint +
// landmark set + root + codec version); only if that fails does it run
// the Dijkstra, and it then writes the encoded tree back so the next
// process loads instead of recomputing. Decoded trees are bit-identical
// to computed ones, so store-backed runs produce byte-identical output.
//
// The cache is thread-safe: concurrent routing tasks may miss on distinct
// landmarks and run their loads/Dijkstras in parallel (the lock covers
// only map bookkeeping). Prewarm() bulk-resolves the whole tree set over
// the runtime's thread pool when it fits in the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "routing/landmarks.h"
#include "store/artifact_store.h"

namespace disco {

/// SHA-256 (hex) of the landmark id list — the "landmark set" component
/// of tree artifact keys.
std::string LandmarkSetFingerprintHex(const LandmarkSet& landmarks);

/// The artifact key under which landmark `root`'s tree is stored for a
/// given (graph fingerprint, landmark set fingerprint). One definition
/// shared by the cache's second tier and disco_store's prebuilder, so the
/// two can never disagree on where a tree lives.
store::ArtifactKey LandmarkTreeArtifactKey(const std::string& graph_fp_hex,
                                           const std::string& set_fp_hex,
                                           NodeId root);

class LandmarkTreeCache {
 public:
  /// `capacity` = number of trees kept resident. Attaches the process
  /// artifact store (store::ProcessStore()) as the second tier when one
  /// is open.
  LandmarkTreeCache(const Graph& g, const LandmarkSet& landmarks,
                    std::size_t capacity = 2048);

  /// The Dijkstra tree rooted at landmark `l` (l must be a landmark).
  /// Safe to call concurrently.
  std::shared_ptr<const ShortestPathTree> Tree(NodeId l);

  /// Eagerly resolves every landmark tree in parallel (store load where
  /// possible, Dijkstra otherwise). No-op unless the full set fits in the
  /// cache and within `max_resident_entries` total tree entries
  /// (count * n) — paper-scale --full maps stay lazy/LRU unless the
  /// budget is raised. Passing 0 (the default) takes the budget from the
  /// DISCO_TREE_CACHE_ENTRIES env var, falling back to 32M entries, so
  /// full-scale runs can opt into bigger resident sets without code
  /// edits. Purely a wall-clock optimization: cache contents are a
  /// deterministic function of the graph either way.
  void Prewarm(std::size_t max_resident_entries = 0);

  const LandmarkSet& landmarks() const { return landmarks_; }

  /// Number of distinct trees materialized (from either tier).
  std::size_t computed_count() const;

  /// Per-tier traffic of this cache instance. `dijkstras` counts actual
  /// shortest-path computations — the number store_smoke asserts is zero
  /// on a warm store.
  struct TierStats {
    std::size_t ram_hits = 0;
    std::size_t store_hits = 0;
    std::size_t dijkstras = 0;
    std::size_t writebacks = 0;
  };
  TierStats tier_stats() const;

 private:
  std::shared_ptr<const ShortestPathTree> Insert(
      NodeId l, std::shared_ptr<const ShortestPathTree> tree);

  /// The miss path: store load, else Dijkstra + write-back. Runs without
  /// the lock; safe to call concurrently for distinct (or equal) roots.
  std::shared_ptr<const ShortestPathTree> LoadOrCompute(NodeId l);

  store::ArtifactKey KeyFor(NodeId l) const;

  const Graph& g_;
  const LandmarkSet& landmarks_;
  std::size_t capacity_;

  // Second tier; null when no process store is open. The graph and
  // landmark-set fingerprints are computed once at construction so
  // per-tree keys are cheap.
  store::ArtifactStore* store_ = nullptr;
  std::string graph_fp_;
  std::string set_fp_;

  std::atomic<std::size_t> ram_hits_{0};
  std::atomic<std::size_t> store_hits_{0};
  std::atomic<std::size_t> dijkstras_{0};
  std::atomic<std::size_t> writebacks_{0};

  mutable std::mutex mu_;
  std::size_t computed_ = 0;
  std::list<NodeId> lru_;
  struct Entry {
    std::shared_ptr<const ShortestPathTree> tree;
    std::list<NodeId>::iterator lru_pos;
  };
  std::unordered_map<NodeId, Entry> cache_;
};

}  // namespace disco
