// Per-landmark shortest-path trees, computed lazily and memoized.
//
// Every node knows a shortest path to every landmark (§4.2); in the static
// simulator that knowledge is the landmark's full Dijkstra tree: dist[l][v]
// is v's landmark-table entry for l, and the parent chain materializes the
// s ; l segment of routes. Trees are O(n) each, so for the paper-scale maps
// the cache is bounded and the benches sort their sampled destinations by
// closest landmark to maximize reuse.
//
// The cache is thread-safe: concurrent routing tasks may miss on distinct
// landmarks and run their Dijkstras in parallel (the lock covers only map
// bookkeeping). Prewarm() bulk-computes the whole tree set over the
// runtime's thread pool when it fits in the cache.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "routing/landmarks.h"

namespace disco {

class LandmarkTreeCache {
 public:
  /// `capacity` = number of trees kept resident.
  LandmarkTreeCache(const Graph& g, const LandmarkSet& landmarks,
                    std::size_t capacity = 2048);

  /// The Dijkstra tree rooted at landmark `l` (l must be a landmark).
  /// Safe to call concurrently.
  std::shared_ptr<const ShortestPathTree> Tree(NodeId l);

  /// Eagerly computes every landmark tree in parallel. No-op unless the
  /// full set fits in the cache and within `max_resident_entries` total
  /// tree entries (count * n) — paper-scale --full maps stay lazy/LRU.
  /// Purely a wall-clock optimization: cache contents are a deterministic
  /// function of the graph either way.
  void Prewarm(std::size_t max_resident_entries = 32u << 20);

  const LandmarkSet& landmarks() const { return landmarks_; }

  std::size_t computed_count() const;

 private:
  std::shared_ptr<const ShortestPathTree> Insert(
      NodeId l, std::shared_ptr<const ShortestPathTree> tree);

  const Graph& g_;
  const LandmarkSet& landmarks_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::size_t computed_ = 0;
  std::list<NodeId> lru_;
  struct Entry {
    std::shared_ptr<const ShortestPathTree> tree;
    std::list<NodeId>::iterator lru_pos;
  };
  std::unordered_map<NodeId, Entry> cache_;
};

}  // namespace disco
