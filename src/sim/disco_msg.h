// Disco's messaging on top of NDDisco (Fig. 8's Disco-1-finger and
// Disco-3-finger curves): the overlay has to be joined and every node's
// address announcement disseminated through it.
//
// Accounting (per node v):
//  * one resolution lookup to join the ring (owner of h(v)) and one per
//    finger draw — each lookup is a request + response routed over the
//    underlay, costing hops(v, owner_landmark) each way;
//  * one connection open per overlay link v initiates (hops(v, neighbor));
//  * the directional flood of v's address announcement: one control
//    message per overlay-link send — announcements ride established TCP
//    connections, so the protocol-message count (what Fig. 8 plots) does
//    not scale with the underlay path length.
#pragma once

#include <cstdint>

#include "core/disco.h"
#include "graph/graph.h"

namespace disco {

struct OverlayMessaging {
  std::uint64_t lookup_messages = 0;
  std::uint64_t connect_messages = 0;
  std::uint64_t dissemination_messages = 0;

  std::uint64_t total() const {
    return lookup_messages + connect_messages + dissemination_messages;
  }
};

/// Measures the overlay's total underlay message cost for the whole
/// network. O(n * (n + m)) — one BFS per node for hop distances — so meant
/// for the Fig. 8 scale (n ≤ a few thousand).
OverlayMessaging MeasureOverlayMessaging(const Graph& g, Disco& disco);

}  // namespace disco
