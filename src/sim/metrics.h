// Shared evaluation harness: stretch sampling, per-edge congestion counts,
// and state collection — the measurement machinery behind every figure.
//
// Sampling follows §5.1: "for large topologies, we sample a fraction of
// nodes or source-destination pairs to compute state, stretch, and
// congestion." Sources are sampled and a Dijkstra per source provides the
// ground-truth distances for several destinations, amortizing the cost.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/route.h"
#include "graph/graph.h"

namespace disco {

/// A protocol under test, reduced to its routing behavior.
using RouteFn = std::function<Route(NodeId s, NodeId t)>;

struct StretchSample {
  NodeId s = kInvalidNode;
  NodeId t = kInvalidNode;
  Dist shortest = 0;
  Dist routed = 0;
  double stretch = 1.0;
  bool failed = false;
};

struct StretchOptions {
  std::size_t num_pairs = 1000;
  std::size_t dests_per_source = 4;  // amortizes the ground-truth Dijkstra
  std::uint64_t seed = 1;
};

/// Samples random (s, t) pairs, routes each, and returns per-pair stretch.
/// Failed routes (empty path) are recorded with failed = true and excluded
/// from the returned stretch values; inspect `details` for failures.
std::vector<double> SampleStretch(const Graph& g, const RouteFn& route,
                                  const StretchOptions& options,
                                  std::vector<StretchSample>* details =
                                      nullptr);

/// The congestion experiment of Fig. 4/5/10: every node routes one packet
/// to a uniformly random destination; returns how many routes cross each
/// undirected edge (index = EdgeId; includes zero-count edges).
std::vector<std::size_t> CongestionCounts(const Graph& g,
                                          const RouteFn& route,
                                          std::uint64_t seed);

/// Uniform sample (without replacement if possible) of node ids, for state
/// CDFs over sampled nodes.
std::vector<NodeId> SampleNodes(NodeId n, std::size_t count,
                                std::uint64_t seed);

}  // namespace disco
