#include "sim/pv_sim.h"

#include <cassert>
#include <queue>

#include "graph/shortest_path.h"
#include "util/rng.h"

namespace disco {
namespace {

struct DrainEvent {
  double time;
  std::uint64_t seq;
  std::uint32_t arc;  // directed arc index
  bool operator>(const DrainEvent& o) const {
    return time > o.time || (time == o.time && seq > o.seq);
  }
};

struct Arc {
  NodeId from, to;
  Dist weight;
  double delay;
  bool scheduled = false;
  // Coalesced pending updates (origin -> announced distance from `from`).
  std::unordered_map<NodeId, Dist> pending;
};

// Per-node protocol state.
struct NodeState {
  std::unordered_map<NodeId, Dist> table;
  // kNdDisco: the bounded non-landmark entries ordered by (dist, id) so the
  // worst one can be evicted when a closer node shows up.
  std::set<std::pair<Dist, NodeId>> vicinity;
};

}  // namespace

PvResult SimulatePathVector(const Graph& g, const PvConfig& config) {
  const NodeId n = g.num_nodes();
  PvResult result;
  result.tables.resize(n);

  // Landmarks / cluster radii are needed by the filtered modes.
  LandmarkSet local_landmarks;
  const LandmarkSet* landmarks = config.landmarks;
  if (landmarks == nullptr &&
      (config.mode == PvMode::kNdDisco || config.mode == PvMode::kS4)) {
    local_landmarks = SelectLandmarks(n, config.params);
    landmarks = &local_landmarks;
  }
  std::vector<Dist> cluster_radius;
  if (config.mode == PvMode::kS4) {
    cluster_radius = MultiSourceDijkstra(g, landmarks->landmarks).dist;
  }
  const std::size_t k = config.mode == PvMode::kNdDisco
                            ? (config.vicinity_k > 0
                                   ? config.vicinity_k
                                   : VicinitySize(n, config.params.vicinity_factor))
                            : 0;

  // Directed arcs with fixed random delays (asynchronous links).
  Rng rng(config.params.seed ^ 0x5ca1ab1edeadbeefULL);
  std::vector<Arc> arcs;
  std::vector<std::vector<std::uint32_t>> out_arcs(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      const std::uint32_t id = static_cast<std::uint32_t>(arcs.size());
      arcs.push_back({v, nb.to, nb.weight, 0.5 + rng.NextDouble(), false,
                      {}});
      out_arcs[v].push_back(id);
    }
  }

  std::vector<NodeState> nodes(n);
  std::priority_queue<DrainEvent, std::vector<DrainEvent>,
                      std::greater<>> queue;
  std::uint64_t seq = 0;
  double now = 0;

  auto schedule_arc = [&](std::uint32_t arc_id) {
    Arc& a = arcs[arc_id];
    if (a.scheduled || a.pending.empty()) return;
    a.scheduled = true;
    queue.push({now + a.delay, ++seq, arc_id});
  };

  // Accepts announcement (origin at distance d) into v's table; returns
  // true when the entry is new or strictly improved (and must propagate).
  auto accept = [&](NodeId v, NodeId origin, Dist d) -> bool {
    if (origin == v) return false;
    NodeState& st = nodes[v];
    const auto it = st.table.find(origin);
    const bool known = it != st.table.end();
    if (known && d >= it->second) return false;

    const bool is_landmark =
        landmarks != nullptr && landmarks->Contains(origin);
    if (config.mode == PvMode::kS4 && !is_landmark) {
      // Relative epsilon for the boundary case d == d(origin, l_origin)
      // (the radius was summed from the landmark side).
      if (d > cluster_radius[origin] * (1 + 1e-12) + 1e-12) return false;
    }
    if (config.mode == PvMode::kNdDisco && !is_landmark) {
      if (known) {
        st.vicinity.erase({it->second, origin});
        st.vicinity.insert({d, origin});
      } else if (st.vicinity.size() < k) {
        st.vicinity.insert({d, origin});
      } else {
        const auto worst = std::prev(st.vicinity.end());
        if (std::make_pair(d, origin) >= *worst) return false;
        st.table.erase(worst->second);  // evict, no withdrawal needed
        st.vicinity.erase(worst);
        st.vicinity.insert({d, origin});
      }
    }
    st.table[origin] = d;
    return true;
  };

  auto propagate = [&](NodeId v, NodeId origin, Dist d,
                       NodeId learned_from) {
    for (const std::uint32_t arc_id : out_arcs[v]) {
      Arc& a = arcs[arc_id];
      if (a.to == learned_from) continue;  // split horizon
      a.pending[origin] = d;
      schedule_arc(arc_id);
    }
  };

  // t = 0: every node originates its own announcement.
  for (NodeId v = 0; v < n; ++v) {
    nodes[v].table[v] = 0;
    propagate(v, v, 0, kInvalidNode);
  }

  while (!queue.empty()) {
    const DrainEvent ev = queue.top();
    queue.pop();
    now = ev.time;
    Arc& a = arcs[ev.arc];
    a.scheduled = false;
    // Take the batch; deliveries may enqueue more on this very arc.
    std::unordered_map<NodeId, Dist> batch;
    batch.swap(a.pending);
    for (const auto& [origin, dist_at_sender] : batch) {
      ++result.total_messages;
      const Dist d = dist_at_sender + a.weight;
      if (accept(a.to, origin, d)) {
        result.convergence_time = now;
        propagate(a.to, origin, d, a.from);
      }
    }
    schedule_arc(ev.arc);  // re-arm if deliveries re-filled it
  }

  result.messages_per_node =
      n == 0 ? 0
             : static_cast<double>(result.total_messages) /
                   static_cast<double>(n);
  for (NodeId v = 0; v < n; ++v) result.tables[v] = nodes[v].table;
  return result;
}

}  // namespace disco
