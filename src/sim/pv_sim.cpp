#include "sim/pv_sim.h"

#include <cassert>
#include <functional>
#include <map>
#include <queue>
#include <set>

#include "graph/shortest_path.h"
#include "util/rng.h"

namespace disco {
namespace {

struct DrainEvent {
  double time;
  std::uint64_t seq;
  std::uint32_t arc;  // directed arc index
  std::uint32_t gen;  // arc generation at schedule time (stale if behind)
  bool operator>(const DrainEvent& o) const {
    return time > o.time || (time == o.time && seq > o.seq);
  }
};

struct Arc {
  NodeId from, to;
  Dist weight;
  double delay;
  EdgeId edge;
  bool scheduled = false;
  // Bumped when the arc goes down, so drain events scheduled before the
  // failure are recognized as stale and dropped.
  std::uint32_t gen = 0;
  // Coalesced pending updates (origin -> announced distance from `from`).
  // Ordered, not hashed: a batch drains in origin order, so delivery
  // order — which feeds message totals and the accept/propagate cascade —
  // is a property of the protocol, not of the stdlib's bucket layout.
  std::map<NodeId, Dist> pending;
};

/// One route table entry: the announced distance and the neighbor the
/// announcement arrived from (the withdrawal cascade follows these).
struct Entry {
  Dist dist = 0;
  NodeId from = kInvalidNode;  // == the node itself for its own origin
};

// Per-node protocol state.
struct NodeState {
  // Ordered: the invalidation sweep and the final result fill iterate the
  // table, and the re-announcement order feeds message totals.
  std::map<NodeId, Entry> table;
  // kNdDisco: the bounded non-landmark entries ordered by (dist, id) so the
  // worst one can be evicted when a closer node shows up.
  std::set<std::pair<Dist, NodeId>> vicinity;
};

}  // namespace

PvResult SimulatePathVector(const Graph& g, const PvConfig& config) {
  const NodeId n = g.num_nodes();
  PvResult result;
  result.tables.resize(n);
  result.alive.assign(n, 1);
  if (config.keep_next_hops) result.next_hops.resize(n);

  // Landmarks / cluster radii are needed by the filtered modes.
  LandmarkSet local_landmarks;
  const LandmarkSet* landmarks = config.landmarks;
  if (landmarks == nullptr &&
      (config.mode == PvMode::kNdDisco || config.mode == PvMode::kS4)) {
    local_landmarks = SelectLandmarks(n, config.params);
    landmarks = &local_landmarks;
  }
  std::vector<Dist> cluster_radius;
  if (config.mode == PvMode::kS4) {
    cluster_radius = MultiSourceDijkstra(g, landmarks->landmarks).dist;
  }
  const std::size_t k = config.mode == PvMode::kNdDisco
                            ? (config.vicinity_k > 0
                                   ? config.vicinity_k
                                   : VicinitySize(n, config.params.vicinity_factor))
                            : 0;

  const Scenario* scenario = config.scenario;
  const bool dynamic = scenario != nullptr && !scenario->empty();

  // Directed arcs with fixed random delays (asynchronous links). Liveness
  // is derived, never stored: an arc carries traffic iff both endpoints
  // are members and its undirected edge is not failed.
  Rng rng(config.params.seed ^ 0x5ca1ab1edeadbeefULL);
  std::vector<Arc> arcs;
  std::vector<std::vector<std::uint32_t>> out_arcs(n), in_arcs(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      const std::uint32_t id = static_cast<std::uint32_t>(arcs.size());
      arcs.push_back({v, nb.to, nb.weight, 0.5 + rng.NextDouble(), nb.edge,
                      false, 0, {}});
      out_arcs[v].push_back(id);
      in_arcs[nb.to].push_back(id);
    }
  }
  std::vector<std::uint8_t> node_alive(n, 1);
  std::vector<std::uint8_t> edge_failed(g.num_edges(), 0);
  const auto arc_live = [&](const Arc& a) {
    return node_alive[a.from] && node_alive[a.to] && !edge_failed[a.edge];
  };

  std::vector<NodeState> nodes(n);
  std::priority_queue<DrainEvent, std::vector<DrainEvent>,
                      std::greater<>> queue;
  std::uint64_t seq = 0;
  double now = 0;

  auto schedule_arc = [&](std::uint32_t arc_id) {
    Arc& a = arcs[arc_id];
    if (a.scheduled || a.pending.empty()) return;
    a.scheduled = true;
    queue.push({now + a.delay, ++seq, arc_id, a.gen});
  };

  // Accepts announcement (origin at distance d, learned over arc
  // sender -> v) into v's table; returns true when the entry is new or
  // strictly improved (and must propagate).
  auto accept = [&](NodeId v, NodeId origin, Dist d, NodeId sender) -> bool {
    if (origin == v) return false;
    if (!node_alive[origin]) return false;  // departed names are flushed
    NodeState& st = nodes[v];
    const auto it = st.table.find(origin);
    const bool known = it != st.table.end();
    if (known && d >= it->second.dist) return false;

    const bool is_landmark =
        landmarks != nullptr && landmarks->Contains(origin);
    if (config.mode == PvMode::kS4 && !is_landmark) {
      // Relative epsilon for the boundary case d == d(origin, l_origin)
      // (the radius was summed from the landmark side).
      if (d > cluster_radius[origin] * (1 + 1e-12) + 1e-12) return false;
    }
    if (config.mode == PvMode::kNdDisco && !is_landmark) {
      if (known) {
        st.vicinity.erase({it->second.dist, origin});
        st.vicinity.insert({d, origin});
      } else if (st.vicinity.size() < k) {
        st.vicinity.insert({d, origin});
      } else {
        const auto worst = std::prev(st.vicinity.end());
        if (std::make_pair(d, origin) >= *worst) return false;
        st.table.erase(worst->second);  // evict, no withdrawal needed
        st.vicinity.erase(worst);
        st.vicinity.insert({d, origin});
      }
    }
    st.table[origin] = {d, sender};
    return true;
  };

  auto propagate = [&](NodeId v, NodeId origin, Dist d,
                       NodeId learned_from) {
    for (const std::uint32_t arc_id : out_arcs[v]) {
      Arc& a = arcs[arc_id];
      if (a.to == learned_from) continue;  // split horizon
      if (!arc_live(a)) continue;
      a.pending[origin] = d;
      schedule_arc(arc_id);
    }
  };

  // Removes entry (v, origin) including its vicinity shadow.
  auto erase_entry = [&](NodeId v, NodeId origin) {
    NodeState& st = nodes[v];
    const auto it = st.table.find(origin);
    if (it == st.table.end()) return;
    if (config.mode == PvMode::kNdDisco &&
        (landmarks == nullptr || !landmarks->Contains(origin))) {
      st.vicinity.erase({it->second.dist, origin});
    }
    st.table.erase(it);
  };

  // ---- dynamics machinery (never touched by static runs) ----

  // The withdrawal cascade: an entry is valid iff following its
  // learned-from pointers reaches the origin over live arcs with exactly
  // consistent distances (d_v == d_from + w holds at quiescence; an
  // in-flight improvement breaks it, and the conservative erase is
  // repaired by the triggered updates below). Distances strictly decrease
  // along the chain, so it is cycle-free; the memo makes the sweep linear
  // in total table entries.
  enum : char { kUnknown = 0, kValid, kInvalid, kVisiting };
  std::function<bool(NodeId, NodeId, std::unordered_map<std::uint64_t,
                                                        char>&)>
      entry_valid = [&](NodeId v, NodeId o,
                        std::unordered_map<std::uint64_t, char>& memo)
      -> bool {
    if (!node_alive[v] || !node_alive[o]) return false;
    const auto it = nodes[v].table.find(o);
    if (it == nodes[v].table.end()) return false;
    if (o == v) return true;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(v) << 32) | o;
    const auto m = memo.find(key);
    if (m != memo.end()) return m->second == kValid;
    memo[key] = kVisiting;
    bool ok = false;
    const Entry& e = it->second;
    const NodeId u = e.from;
    if (u != kInvalidNode && u < n && node_alive[u]) {
      const auto uit = nodes[u].table.find(o);
      if (uit != nodes[u].table.end()) {
        // Any live (u -> v) arc whose weight reproduces the stored
        // distance supports the entry (parallel edges may offer several).
        for (const std::uint32_t arc_id : in_arcs[v]) {
          const Arc& a = arcs[arc_id];
          if (a.from != u || !arc_live(a)) continue;
          if (e.dist == uit->second.dist + a.weight &&
              entry_valid(u, o, memo)) {
            ok = true;
            break;
          }
        }
      } else if (config.mode == PvMode::kNdDisco &&
                 (landmarks == nullptr || !landmarks->Contains(o))) {
        // kNdDisco evicts non-landmark origins from its bounded vicinity
        // with no withdrawal — the downstream route stays usable (the
        // announcement carried a concrete path, as in real path vector),
        // so a predecessor that merely evicted must not invalidate it.
        // Entries the cascade erases are still *present* (marked invalid)
        // during this sweep, so absence here can only mean eviction.
        // The neighbor and the link must still be up, though.
        for (const std::uint32_t arc_id : in_arcs[v]) {
          const Arc& a = arcs[arc_id];
          if (a.from == u && arc_live(a)) {
            ok = true;
            break;
          }
        }
      }
    }
    memo[key] = ok ? kValid : kInvalid;
    return ok;
  };

  // One invalidation + triggered-update pass. Erases every invalid entry
  // (charging a withdrawal for each one whose learned-from link was still
  // up — those had to be told, the rest noticed locally), then has every
  // neighbor still holding a surviving route re-announce it to the nodes
  // that just lost theirs. Returns the number of entries erased.
  auto invalidate_and_reteach = [&]() -> std::size_t {
    std::unordered_map<std::uint64_t, char> memo;
    std::vector<std::pair<NodeId, NodeId>> erased;  // (node, origin)
    for (NodeId v = 0; v < n; ++v) {
      if (!node_alive[v]) continue;
      for (const auto& [o, e] : nodes[v].table) {
        if (entry_valid(v, o, memo)) continue;
        erased.push_back({v, o});
        const NodeId u = e.from;
        bool inherited = false;
        if (u != kInvalidNode && u != v && u < n && node_alive[u]) {
          for (const std::uint32_t arc_id : in_arcs[v]) {
            const Arc& a = arcs[arc_id];
            if (a.from == u && arc_live(a)) {
              inherited = true;
              break;
            }
          }
        }
        if (inherited) {
          ++result.total_withdrawals;
          ++result.total_messages;
        }
      }
    }
    for (const auto& [v, o] : erased) erase_entry(v, o);
    for (const auto& [v, o] : erased) {
      if (!node_alive[v]) continue;
      for (const std::uint32_t arc_id : in_arcs[v]) {
        Arc& a = arcs[arc_id];
        if (!arc_live(a)) continue;
        const auto uit = nodes[a.from].table.find(o);
        if (uit == nodes[a.from].table.end()) continue;
        a.pending[o] = uit->second.dist;
        schedule_arc(arc_id);
      }
    }
    return erased.size();
  };

  auto record_trace_point = [&]() {
    PvTracePoint pt;
    pt.time = now;
    pt.messages = result.total_messages;
    pt.withdrawals = result.total_withdrawals;
    for (NodeId v = 0; v < n; ++v) {
      if (node_alive[v]) pt.table_entries += nodes[v].table.size();
    }
    result.trace.push_back(pt);
  };

  auto apply_event = [&](const ScenarioEvent& ev) {
    // 1. Membership and link flips. Dead arcs drop their queued batches
    //    (messages in flight on a failed link are lost) and bump their
    //    generation so already-scheduled drains are recognized as stale.
    for (const NodeId v : ev.node_leaves) {
      node_alive[v] = 0;
      nodes[v].table.clear();
      nodes[v].vicinity.clear();
    }
    for (const EdgeId e : ev.link_fails) edge_failed[e] = 1;
    std::vector<std::uint32_t> touched;
    for (const NodeId v : ev.node_leaves) {
      touched.insert(touched.end(), out_arcs[v].begin(), out_arcs[v].end());
      touched.insert(touched.end(), in_arcs[v].begin(), in_arcs[v].end());
    }
    for (const NodeId v : ev.node_joins) {
      node_alive[v] = 1;
      nodes[v].table[v] = {0, v};
    }
    for (const EdgeId e : ev.link_heals) edge_failed[e] = 0;
    for (const EdgeId e : ev.link_fails) {
      for (const std::uint32_t arc_id : in_arcs[g.edge(e).a]) {
        if (arcs[arc_id].edge == e) touched.push_back(arc_id);
      }
      for (const std::uint32_t arc_id : in_arcs[g.edge(e).b]) {
        if (arcs[arc_id].edge == e) touched.push_back(arc_id);
      }
    }
    for (const std::uint32_t arc_id : touched) {
      Arc& a = arcs[arc_id];
      if (!arc_live(a)) {
        a.pending.clear();
        a.scheduled = false;
        ++a.gen;
      }
    }

    // 2. Withdrawal cascade for everything the failures orphaned, plus
    //    re-announcements from surviving neighbors.
    invalidate_and_reteach();

    // 3. Newly-live links exchange full tables (session up), which also
    //    carries a rejoined node's self-announcement into the network.
    std::vector<std::uint32_t> fresh;
    for (const NodeId v : ev.node_joins) {
      for (const std::uint32_t id : out_arcs[v]) fresh.push_back(id);
      for (const std::uint32_t id : in_arcs[v]) fresh.push_back(id);
    }
    for (const EdgeId e : ev.link_heals) {
      for (const std::uint32_t arc_id : in_arcs[g.edge(e).a]) {
        if (arcs[arc_id].edge == e) fresh.push_back(arc_id);
      }
      for (const std::uint32_t arc_id : in_arcs[g.edge(e).b]) {
        if (arcs[arc_id].edge == e) fresh.push_back(arc_id);
      }
    }
    for (const std::uint32_t arc_id : fresh) {
      Arc& a = arcs[arc_id];
      if (!arc_live(a)) continue;
      for (const auto& [o, e] : nodes[a.from].table) a.pending[o] = e.dist;
      schedule_arc(arc_id);
    }
  };

  // ---- the event loop ----

  // t = 0: every node originates its own announcement.
  for (NodeId v = 0; v < n; ++v) {
    nodes[v].table[v] = {0, v};
    propagate(v, v, 0, kInvalidNode);
  }

  const std::vector<ScenarioEvent>* script =
      dynamic ? &scenario->events() : nullptr;
  std::size_t next_event = 0;

  // Pops and delivers one drain event (both loops below share this so the
  // static and dynamic quiescence paths can never diverge).
  auto drain_one = [&]() {
    const DrainEvent ev = queue.top();
    queue.pop();
    Arc& a = arcs[ev.arc];
    if (ev.gen != a.gen) return;  // scheduled before the link failed
    now = ev.time;
    a.scheduled = false;
    // Take the batch; deliveries may enqueue more on this very arc.
    std::map<NodeId, Dist> batch;
    batch.swap(a.pending);
    for (const auto& [origin, dist_at_sender] : batch) {
      ++result.total_messages;
      const Dist d = dist_at_sender + a.weight;
      if (accept(a.to, origin, d, a.from)) {
        result.convergence_time = now;
        propagate(a.to, origin, d, a.from);
      }
    }
    schedule_arc(ev.arc);  // re-arm if deliveries re-filled it
  };

  while (true) {
    // Scripted events fire at their scheduled instant, ahead of any
    // delivery due at the same time.
    if (script != nullptr && next_event < script->size() &&
        (queue.empty() ||
         (*script)[next_event].time <= queue.top().time)) {
      now = (*script)[next_event].time;
      apply_event((*script)[next_event]);
      record_trace_point();
      ++next_event;
      continue;
    }
    if (queue.empty()) break;
    drain_one();
  }

  if (dynamic) {
    // Announcements in flight across a failure may have landed after the
    // event's invalidation sweep; revalidate until a fixed point so no
    // stale entry survives quiescence.
    while (invalidate_and_reteach() > 0) {
      while (!queue.empty()) drain_one();
    }
    record_trace_point();
  }

  result.messages_per_node =
      n == 0 ? 0
             : static_cast<double>(result.total_messages) /
                   static_cast<double>(n);
  for (NodeId v = 0; v < n; ++v) {
    result.alive[v] = node_alive[v];
    for (const auto& [o, e] : nodes[v].table) {
      result.tables[v][o] = e.dist;
      if (config.keep_next_hops) result.next_hops[v][o] = e.from;
    }
  }
  return result;
}

}  // namespace disco
