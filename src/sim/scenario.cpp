#include "sim/scenario.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "runtime/rng_stream.h"

namespace disco {
namespace {

// Scenario draws fork off a salted stream so they never correlate with the
// simulator's own link-delay stream (pv_sim salts with a different
// constant) even when both derive from the same experiment seed.
constexpr std::uint64_t kScenarioSalt = 0x5ce7a110c0ffee00ULL;

// `count` distinct uniform draws from [0, bound), in draw order.
template <typename Id>
std::vector<Id> DistinctDraws(Rng* rng, std::uint64_t bound,
                              std::size_t count) {
  std::vector<Id> out;
  std::unordered_set<std::uint64_t> seen;
  count = std::min<std::size_t>(count, bound);
  while (out.size() < count) {
    const std::uint64_t v = rng->NextBelow(bound);
    if (seen.insert(v).second) out.push_back(static_cast<Id>(v));
  }
  return out;
}

std::size_t ScaledCount(double fraction, std::size_t total) {
  const auto raw = static_cast<std::size_t>(fraction *
                                            static_cast<double>(total));
  return std::max<std::size_t>(1, std::min(raw, total));
}

// The links a correlated (shared-risk) failure takes down: one uniformly
// drawn link plus every link sharing an endpoint with it.
std::vector<EdgeId> SharedRiskGroup(const Graph& g, Rng* rng) {
  const EdgeId seed_edge =
      static_cast<EdgeId>(rng->NextBelow(g.num_edges()));
  const WeightedEdge& we = g.edge(seed_edge);
  std::set<EdgeId> group;  // ordered, so the event list is deterministic
  for (const NodeId endpoint : {we.a, we.b}) {
    for (const Neighbor& nb : g.neighbors(endpoint)) group.insert(nb.edge);
  }
  return {group.begin(), group.end()};
}

// The cut set isolating a BFS-grown region of roughly `target` nodes
// around a uniformly drawn root.
std::vector<EdgeId> PartitionCut(const Graph& g, Rng* rng,
                                 std::size_t target) {
  const NodeId root = static_cast<NodeId>(rng->NextBelow(g.num_nodes()));
  std::vector<char> inside(g.num_nodes(), 0);
  std::vector<NodeId> frontier = {root};
  inside[root] = 1;
  std::size_t grown = 1;
  for (std::size_t head = 0; head < frontier.size() && grown < target;
       ++head) {
    for (const Neighbor& nb : g.neighbors(frontier[head])) {
      if (inside[nb.to] || grown >= target) continue;
      inside[nb.to] = 1;
      frontier.push_back(nb.to);
      ++grown;
    }
  }
  std::set<EdgeId> cut;
  for (const NodeId v : frontier) {
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!inside[nb.to]) cut.insert(nb.edge);
    }
  }
  return {cut.begin(), cut.end()};
}

}  // namespace

const std::vector<std::string>& ScenarioKinds() {
  static const std::vector<std::string> kinds = {
      "null", "churn", "linkfail", "correlated", "partition"};
  return kinds;
}

bool IsScenarioKind(const std::string& kind) {
  const auto& kinds = ScenarioKinds();
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

Scenario Scenario::Compile(const ScenarioSpec& spec, const Graph& g,
                           std::uint64_t seed, std::uint64_t replica) {
  Scenario sc;
  if (spec.kind == "null" || spec.events == 0 || g.num_nodes() == 0) {
    return sc;
  }
  // Every non-churn kind draws links; an edgeless graph has nothing to
  // disturb (and NextBelow(0) would be UB).
  if (spec.kind != "churn" && g.num_edges() == 0) return sc;
  Rng rng = runtime::TaskRng(seed ^ kScenarioSalt, replica);

  double t = spec.start;
  for (std::size_t i = 0; i < spec.events; ++i) {
    // Each disturbance draws from its own fork so inserting an event kind
    // never shifts the draws of later events.
    Rng event_rng = rng.Fork(i);
    ScenarioEvent disturb, recover;
    disturb.time = t;
    recover.time = t + spec.spacing;
    t += 2 * spec.spacing;

    if (spec.kind == "churn") {
      const auto leavers = DistinctDraws<NodeId>(
          &event_rng, g.num_nodes(),
          ScaledCount(spec.fraction, g.num_nodes()));
      disturb.node_leaves = leavers;
      recover.node_joins = leavers;
    } else if (spec.kind == "linkfail") {
      const auto failed = DistinctDraws<EdgeId>(
          &event_rng, g.num_edges(),
          ScaledCount(spec.fraction, g.num_edges()));
      disturb.link_fails = failed;
      recover.link_heals = failed;
    } else if (spec.kind == "correlated") {
      const auto group = SharedRiskGroup(g, &event_rng);
      disturb.link_fails = group;
      recover.link_heals = group;
    } else {  // partition
      const auto cut = PartitionCut(g, &event_rng, g.num_nodes() / 2);
      disturb.link_fails = cut;
      recover.link_heals = cut;
    }

    const bool last = i + 1 == spec.events;
    sc.events_.push_back(std::move(disturb));
    if (spec.heal || !last) sc.events_.push_back(std::move(recover));
  }
  return sc;
}

std::vector<NodeId> Scenario::FinalDepartedNodes() const {
  std::set<NodeId> departed;
  for (const ScenarioEvent& ev : events_) {
    for (const NodeId v : ev.node_leaves) departed.insert(v);
    for (const NodeId v : ev.node_joins) departed.erase(v);
  }
  return {departed.begin(), departed.end()};
}

std::vector<EdgeId> Scenario::FinalFailedLinks() const {
  std::set<EdgeId> failed;
  for (const ScenarioEvent& ev : events_) {
    for (const EdgeId e : ev.link_fails) failed.insert(e);
    for (const EdgeId e : ev.link_heals) failed.erase(e);
  }
  return {failed.begin(), failed.end()};
}

}  // namespace disco
