#include "sim/campaign.h"

#include <cmath>
#include <cstdio>

#include "exec/wire.h"
#include "graph/shortest_path.h"
#include "runtime/rng_stream.h"

namespace disco {
namespace {

// Salts the per-replica simulator-seed stream apart from the scenario
// compiler's (scenario.cpp) and every other TaskRng user's.
constexpr std::uint64_t kReplicaSalt = 0xca3b0059e11ca5efULL;

// Table stretch: sample up to `pairs` (source, origin) entries from the
// final tables, spreading sources so only a handful of Dijkstras run, and
// compare each entry's distance against the true original-graph distance.
void MeasureTableStretch(const Graph& g, const PvResult& sim,
                         std::size_t pairs, std::uint64_t seed,
                         std::size_t replica, ReplicaResult* out) {
  const NodeId n = g.num_nodes();
  if (n == 0 || pairs == 0) return;
  Rng rng = runtime::TaskRng(seed ^ kReplicaSalt, replica).Fork(1);
  const std::size_t num_sources =
      std::min<std::size_t>(std::max<std::size_t>(1, pairs / 8), n);
  double sum = 0;
  std::size_t covered = 0, sampled = 0;
  for (std::size_t si = 0; si < num_sources; ++si) {
    const NodeId s = static_cast<NodeId>(rng.NextBelow(n));
    const auto truth = Dijkstra(g, s);
    const std::size_t per_source = pairs / num_sources;
    for (std::size_t pi = 0; pi < per_source; ++pi) {
      const NodeId o = static_cast<NodeId>(rng.NextBelow(n));
      if (o == s) continue;
      ++sampled;
      const auto it = sim.tables[s].find(o);
      if (it == sim.tables[s].end()) continue;
      ++covered;
      if (truth.dist[o] > 0 && truth.dist[o] < kInfDist) {
        sum += it->second / truth.dist[o];
      }
    }
  }
  out->table_coverage =
      sampled == 0 ? 0
                   : static_cast<double>(covered) /
                         static_cast<double>(sampled);
  out->table_stretch =
      covered == 0 ? 0 : sum / static_cast<double>(covered);
}

}  // namespace

std::uint64_t ReplicaSeed(std::uint64_t seed, std::size_t replica) {
  if (replica == 0) return seed;
  return runtime::TaskRng(seed ^ kReplicaSalt, replica).Next();
}

std::string EncodeReplicaResult(const ReplicaResult& r) {
  std::string out;
  exec::PutDouble(&out, r.convergence_time);
  exec::PutU64(&out, r.total_messages);
  exec::PutDouble(&out, r.messages_per_node);
  exec::PutU64(&out, r.total_withdrawals);
  exec::PutDouble(&out, r.table_stretch);
  exec::PutDouble(&out, r.table_coverage);
  exec::PutU64(&out, r.trace.size());
  for (const PvTracePoint& pt : r.trace) {
    exec::PutDouble(&out, pt.time);
    exec::PutU64(&out, pt.messages);
    exec::PutU64(&out, pt.withdrawals);
    exec::PutU64(&out, pt.table_entries);
  }
  return out;
}

bool DecodeReplicaResult(const std::string& bytes, ReplicaResult* out) {
  exec::WireReader r(bytes);
  *out = ReplicaResult{};
  std::uint64_t count = 0;
  bool ok = r.GetDouble(&out->convergence_time) &&
            r.GetU64(&out->total_messages) &&
            r.GetDouble(&out->messages_per_node) &&
            r.GetU64(&out->total_withdrawals) &&
            r.GetDouble(&out->table_stretch) &&
            r.GetDouble(&out->table_coverage) && r.GetU64(&count);
  if (!ok || count > bytes.size() / 8) return false;
  out->trace.resize(static_cast<std::size_t>(count));
  for (PvTracePoint& pt : out->trace) {
    ok = r.GetDouble(&pt.time) && r.GetU64(&pt.messages) &&
         r.GetU64(&pt.withdrawals) && r.GetU64(&pt.table_entries) && ok;
  }
  return ok;
}

ReplicaResult RunReplica(const CampaignSpec& spec, std::size_t replica,
                         PvResult* full) {
  const Graph& g = *spec.graph;
  const std::uint64_t seed = spec.base.params.seed;
  const Scenario scenario =
      Scenario::Compile(spec.scenario, g, seed, replica);
  PvConfig cfg = spec.base;
  cfg.params.seed = ReplicaSeed(seed, replica);
  cfg.scenario = &scenario;
  const PvResult sim = SimulatePathVector(g, cfg);

  ReplicaResult out;
  out.convergence_time = sim.convergence_time;
  out.total_messages = sim.total_messages;
  out.messages_per_node = sim.messages_per_node;
  out.total_withdrawals = sim.total_withdrawals;
  out.trace = sim.trace;
  MeasureTableStretch(g, sim, spec.stretch_pairs, seed, replica, &out);
  if (full != nullptr) *full = sim;
  return out;
}

bool RunReplicas(const std::vector<CampaignSpec>& campaigns,
                 std::size_t replicas, const exec::ExecOptions& opts,
                 std::vector<std::vector<ReplicaResult>>* out,
                 std::string* error) {
  out->assign(campaigns.size(), {});
  if (campaigns.empty() || replicas == 0) return true;
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> raw;
  const exec::RunResult status = executor->Run(
      campaigns.size() * replicas,
      [&](std::size_t i) {
        return EncodeReplicaResult(
            RunReplica(campaigns[i / replicas], i % replicas));
      },
      &raw);
  if (!status.ok) {
    if (error != nullptr) *error = status.error;
    return false;
  }
  for (std::size_t c = 0; c < campaigns.size(); ++c) {
    (*out)[c].resize(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
      if (!DecodeReplicaResult(raw[c * replicas + r], &(*out)[c][r])) {
        if (error != nullptr) {
          *error = "malformed replica result (campaign " +
                   std::to_string(c) + ", replica " + std::to_string(r) +
                   ")";
        }
        return false;
      }
    }
  }
  return true;
}

MeanSd MeanStddev(const std::vector<double>& values) {
  MeanSd out;
  if (values.empty()) return out;
  double sum = 0;
  for (const double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (const double v : values) {
    sq += (v - out.mean) * (v - out.mean);
  }
  out.sd = std::sqrt(sq / static_cast<double>(values.size()));
  return out;
}

namespace {

MeanSd Reduce(const std::vector<ReplicaResult>& rs,
              double (*pick)(const ReplicaResult&)) {
  std::vector<double> values;
  values.reserve(rs.size());
  for (const ReplicaResult& r : rs) values.push_back(pick(r));
  return MeanStddev(values);
}

}  // namespace

MeanSd ReduceConvergenceTime(const std::vector<ReplicaResult>& rs) {
  return Reduce(rs, [](const ReplicaResult& r) {
    return r.convergence_time;
  });
}

MeanSd ReduceMessagesPerNode(const std::vector<ReplicaResult>& rs) {
  return Reduce(rs, [](const ReplicaResult& r) {
    return r.messages_per_node;
  });
}

MeanSd ReduceTableStretch(const std::vector<ReplicaResult>& rs) {
  return Reduce(rs, [](const ReplicaResult& r) { return r.table_stretch; });
}

std::string CampaignTsvHeader() {
  return "label\tscenario\treplicas\t"
         "conv_time_mean\tconv_time_sd\t"
         "msgs_per_node_mean\tmsgs_per_node_sd\t"
         "table_stretch_mean\ttable_stretch_sd\t"
         "withdrawals_mean\tcoverage_mean\n";
}

std::string CampaignTsvRow(const std::string& label,
                           const std::string& scenario_kind,
                           const std::vector<ReplicaResult>& rs) {
  const MeanSd conv = ReduceConvergenceTime(rs);
  const MeanSd msgs = ReduceMessagesPerNode(rs);
  const MeanSd stretch = ReduceTableStretch(rs);
  const MeanSd withdrawals = Reduce(rs, [](const ReplicaResult& r) {
    return static_cast<double>(r.total_withdrawals);
  });
  const MeanSd coverage =
      Reduce(rs, [](const ReplicaResult& r) { return r.table_coverage; });
  char line[320];
  std::snprintf(line, sizeof line,
                "%s\t%s\t%zu\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t"
                "%.6g\n",
                label.c_str(), scenario_kind.c_str(), rs.size(), conv.mean,
                conv.sd, msgs.mean, msgs.sd, stretch.mean, stretch.sd,
                withdrawals.mean, coverage.mean);
  return line;
}

PvMode PvModeForScheme(const std::string& scheme_name) {
  if (scheme_name == "disco" || scheme_name == "nddisco") {
    return PvMode::kNdDisco;
  }
  if (scheme_name == "s4") return PvMode::kS4;
  return PvMode::kPathVector;
}

}  // namespace disco
