// Replicated DES campaigns on the execution layer.
//
// A campaign is (graph, protocol mode, scenario); running it means
// simulating N independently seeded replicas — replica r compiles its own
// Scenario and perturbs the simulator's link-delay stream from the
// per-replica TaskRng convention — and reducing the per-replica
// convergence-time / message-count / table-stretch traces to mean ± stddev
// rows. RunReplicas fans every (campaign, replica) pair across an
// exec::Executor in a single Run call, so the procs backend spreads
// replicas over worker processes and the reduced tables stay
// byte-identical to the in-process run (results travel wire-encoded,
// doubles as bit patterns).
//
// Seeding contract: ReplicaSeed(seed, 0) == seed and the null scenario
// compiles to an empty schedule, so a 1-replica null-scenario campaign
// reproduces a plain SimulatePathVector(g, base) call bit for bit — the
// benches built on this layer kept their pre-campaign output byte-exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "graph/graph.h"
#include "sim/pv_sim.h"
#include "sim/scenario.h"

namespace disco {

struct CampaignSpec {
  /// Must outlive the campaign. Workers rebuild it deterministically by
  /// replaying the bench's argv, so pointing into driver-built state is
  /// safe on every backend.
  const Graph* graph = nullptr;
  /// Protocol mode + parameters; `base.params.seed` is the campaign seed
  /// every replica derives from.
  PvConfig base;
  ScenarioSpec scenario;
  /// Sampled (source, origin) pairs for the final-table stretch metric.
  std::size_t stretch_pairs = 64;
};

/// Reduced metrics of one replica.
struct ReplicaResult {
  double convergence_time = 0;
  std::uint64_t total_messages = 0;
  double messages_per_node = 0;
  std::uint64_t total_withdrawals = 0;
  /// Mean (final table distance / true original-graph distance) over
  /// sampled entries present in the final tables; 1.0 at exact
  /// re-convergence, and a lower bound when the scenario leaves a residual
  /// topology. 0 when no sampled entry existed.
  double table_stretch = 0;
  /// Fraction of sampled (source, origin) pairs the final table covered.
  double table_coverage = 0;
  std::vector<PvTracePoint> trace;
};

/// The simulator seed of replica `r`: replica 0 continues the campaign
/// seed's own stream, later replicas fork per-replica TaskRng streams.
std::uint64_t ReplicaSeed(std::uint64_t seed, std::size_t replica);

/// Byte-exact wire round-trip (exec/wire.h) for shipping replica results
/// out of worker processes.
std::string EncodeReplicaResult(const ReplicaResult& r);
bool DecodeReplicaResult(const std::string& bytes, ReplicaResult* out);

/// Runs one replica in-process: compiles the replica's scenario, simulates
/// to quiescence, and reduces the metrics. Pure function of
/// (spec, replica) — the executor task body. `full` (optional) receives
/// the raw simulation result for callers that need tables or traces.
ReplicaResult RunReplica(const CampaignSpec& spec, std::size_t replica,
                         PvResult* full = nullptr);

/// Fans `replicas` seeded replicas of every campaign across the executor
/// in ONE Executor::Run call (task = campaign-major (campaign, replica)
/// pair) and fills (*out)[campaign][replica]. Returns false with *error
/// set when execution fails. Callers inside an executor task (e.g. a
/// sweep cell) must not use this — run RunReplica in a loop instead.
bool RunReplicas(const std::vector<CampaignSpec>& campaigns,
                 std::size_t replicas, const exec::ExecOptions& opts,
                 std::vector<std::vector<ReplicaResult>>* out,
                 std::string* error);

/// Mean and (population) standard deviation of a sample; {0, 0} if empty.
struct MeanSd {
  double mean = 0;
  double sd = 0;
};
MeanSd MeanStddev(const std::vector<double>& values);

/// Per-metric reductions over one campaign's replicas.
MeanSd ReduceConvergenceTime(const std::vector<ReplicaResult>& rs);
MeanSd ReduceMessagesPerNode(const std::vector<ReplicaResult>& rs);
MeanSd ReduceTableStretch(const std::vector<ReplicaResult>& rs);

/// TSV header (with trailing newline) for campaign tables:
/// label, scenario, replicas, then mean/sd pairs for convergence time,
/// messages per node, table stretch, plus mean withdrawals and coverage.
std::string CampaignTsvHeader();

/// One reduced TSV row (with trailing newline) matching
/// CampaignTsvHeader(). Doubles print as "%.6g".
std::string CampaignTsvRow(const std::string& label,
                           const std::string& scenario_kind,
                           const std::vector<ReplicaResult>& rs);

/// The DES mode a registered RoutingScheme corresponds to in dynamics
/// experiments: disco/nddisco -> kNdDisco, s4 -> kS4, anything else
/// (vrr, spf, custom registrations) -> the unfiltered kPathVector plane.
PvMode PvModeForScheme(const std::string& scheme_name);

}  // namespace disco
