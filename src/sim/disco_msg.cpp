#include "sim/disco_msg.h"

#include <deque>
#include <vector>

namespace disco {
namespace {

// Unweighted BFS hop distances from `src` (control messages cross links;
// hop count is the message cost regardless of link latency).
void BfsHops(const Graph& g, NodeId src, std::vector<std::uint16_t>& hops) {
  hops.assign(g.num_nodes(), 0xFFFF);
  hops[src] = 0;
  std::deque<NodeId> q{src};
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop_front();
    for (const Neighbor& nb : g.neighbors(v)) {
      if (hops[nb.to] == 0xFFFF) {
        hops[nb.to] = static_cast<std::uint16_t>(hops[v] + 1);
        q.push_back(nb.to);
      }
    }
  }
}

}  // namespace

OverlayMessaging MeasureOverlayMessaging(const Graph& g, Disco& disco) {
  OverlayMessaging out;
  const NodeId n = g.num_nodes();
  const Overlay& overlay = disco.overlay();
  const ResolutionDb& resolution = disco.resolution();
  const NameTable& names = disco.names();
  const int fingers = disco.nd().params().fingers;

  // All-pairs hop matrix (n BFS); Fig. 8's n ≤ a few thousand keeps this
  // small (n^2 uint16).
  std::vector<std::uint16_t> hop_matrix(
      static_cast<std::size_t>(n) * n);
  {
    std::vector<std::uint16_t> row;
    for (NodeId v = 0; v < n; ++v) {
      BfsHops(g, v, row);
      std::copy(row.begin(), row.end(),
                hop_matrix.begin() + static_cast<std::size_t>(v) * n);
    }
  }
  auto hops = [&](NodeId a, NodeId b) -> std::uint64_t {
    return hop_matrix[static_cast<std::size_t>(a) * n + b];
  };

  std::vector<std::pair<NodeId, NodeId>> sends;
  for (NodeId v = 0; v < n; ++v) {
    // Ring join + finger draws: request/response with the resolution
    // landmark owning the looked-up key. A finger's record lives at the
    // owner of the finger's own hash.
    const NodeId join_owner = resolution.OwnerLandmark(names.hash(v));
    out.lookup_messages += 2 * hops(v, join_owner);
    int counted_fingers = 0;
    for (const NodeId nb : overlay.neighbors(v)) {
      // Connection opens: charge each link once, on the smaller-id side.
      if (v < nb) out.connect_messages += hops(v, nb);
      if (counted_fingers < fingers) {
        out.lookup_messages +=
            2 * hops(v, resolution.OwnerLandmark(names.hash(nb)));
        ++counted_fingers;
      }
    }

    // Address announcement flood: one control message per overlay send
    // (a TCP connection carries it regardless of underlay path length —
    // the unit Fig. 8 counts).
    sends.clear();
    overlay.Disseminate(v, &sends);
    out.dissemination_messages += sends.size();
  }
  return out;
}

}  // namespace disco
