#include "sim/metrics.h"

// disco-lint: allow-file(relaxed-atomic): per-edge congestion counters are
// commutative fetch_adds; the parallel_for join sequences the final loads,
// so the totals are exact and order-free.

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_set>

#include "graph/shortest_path.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_stream.h"
#include "util/rng.h"

namespace disco {
namespace {

// The undirected edge a route hop uses (cheapest parallel edge wins, which
// matches how PathLength costs the hop).
EdgeId EdgeUsed(const Graph& g, NodeId a, NodeId b) {
  EdgeId best = kInvalidNode;
  Dist best_w = kInfDist;
  for (const Neighbor& nb : g.neighbors(a)) {
    if (nb.to == b && nb.weight < best_w) {
      best_w = nb.weight;
      best = nb.edge;
    }
  }
  return best;
}

}  // namespace

std::vector<double> SampleStretch(const Graph& g, const RouteFn& route,
                                  const StretchOptions& options,
                                  std::vector<StretchSample>* details) {
  const NodeId n = g.num_nodes();
  std::vector<double> stretches;
  if (n < 2) return stretches;

  // One task per sampled source: its RNG stream, ground-truth Dijkstra and
  // route probes are independent of every other source, so the fan-out is
  // embarrassingly parallel and — because each stream is keyed by the task
  // index — bit-identical for any thread count.
  const std::size_t sources =
      (options.num_pairs + options.dests_per_source - 1) /
      options.dests_per_source;
  std::vector<std::vector<StretchSample>> per_source(sources);
  runtime::ParallelForTasks(sources, [&](std::size_t i) {
    Rng rng = runtime::TaskRng(options.seed ^ 0x57e7c4a11dULL, i);
    const NodeId s = static_cast<NodeId>(rng.NextBelow(n));
    const ShortestPathTree truth = Dijkstra(g, s);
    for (std::size_t j = 0; j < options.dests_per_source; ++j) {
      NodeId t = static_cast<NodeId>(rng.NextBelow(n));
      if (t == s || !truth.reachable(t)) continue;

      StretchSample sample;
      sample.s = s;
      sample.t = t;
      sample.shortest = truth.dist[t];
      const Route r = route(s, t);
      if (!r.ok()) {
        sample.failed = true;
      } else {
        sample.routed = r.length;
        sample.stretch = StretchOf(r.length, truth.dist[t]);
      }
      per_source[i].push_back(sample);
    }
  });

  // Merge in source order, capping successful pairs at num_pairs, so the
  // result sequence is a pure function of (graph, options).
  for (const auto& samples : per_source) {
    for (const StretchSample& sample : samples) {
      if (stretches.size() >= options.num_pairs) return stretches;
      if (details != nullptr) details->push_back(sample);
      if (!sample.failed) stretches.push_back(sample.stretch);
    }
  }
  return stretches;
}

std::vector<std::size_t> CongestionCounts(const Graph& g,
                                          const RouteFn& route,
                                          std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  // Every source routes one packet; destinations are drawn from per-source
  // RNG streams and edge charges are relaxed atomic increments, so the
  // final integer counts are thread-count-invariant.
  std::vector<std::atomic<std::size_t>> shared(g.num_edges());
  for (auto& c : shared) c.store(0, std::memory_order_relaxed);
  runtime::ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t si = lo; si < hi; ++si) {
      const NodeId s = static_cast<NodeId>(si);
      Rng rng = runtime::TaskRng(seed ^ 0xc049e5710eULL, s);
      NodeId t = s;
      while (t == s && n > 1) t = static_cast<NodeId>(rng.NextBelow(n));
      if (t == s) continue;
      const Route r = route(s, t);
      for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
        const EdgeId e = EdgeUsed(g, r.path[i], r.path[i + 1]);
        if (e != kInvalidNode) {
          shared[e].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::size_t> counts(g.num_edges());
  for (std::size_t e = 0; e < counts.size(); ++e) {
    counts[e] = shared[e].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<NodeId> SampleNodes(NodeId n, std::size_t count,
                                std::uint64_t seed) {
  std::vector<NodeId> out;
  if (count >= n) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  Rng rng(seed ^ 0x5a3b1e5ULL);
  std::unordered_set<NodeId> seen;
  while (out.size() < count) {
    const NodeId v = static_cast<NodeId>(rng.NextBelow(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace disco
