// Discrete-event simulation of path-vector convergence (§5's "messages per
// node until convergence", Fig. 8) and of re-convergence under scripted
// dynamics (node churn, link failures, partitions — sim/scenario.h).
//
// All three data planes — plain path vector, NDDisco, S4 — run the *same*
// asynchronous protocol and differ only in which route announcements a node
// accepts into its table (§4.2):
//   * path vector accepts every destination           -> Ω(n) state;
//   * NDDisco accepts landmarks + the k closest seen  -> Θ(sqrt(n log n));
//   * S4 accepts landmarks + its cluster rule d ≤ r_w -> unbounded.
//
// Mechanics: each node announces itself at t=0; a node that improves a
// table entry enqueues the update to each neighbor; per-link output queues
// coalesce pending updates for the same origin (RIB batching, as real
// routers do) and drain after the link's delay. Every per-origin update
// delivered over a link counts as one control message. The simulation runs
// to quiescence — guaranteed because a node only re-advertises on a strict
// distance improvement.
//
// Dynamics (config.scenario != nullptr): each table entry remembers the
// neighbor it was learned from, so when a scripted event removes topology
// the simulator can replay the protocol's withdrawal cascade — an entry is
// invalidated when its learned-from chain no longer reaches the origin
// over live links with consistent distances, each inherited invalidation
// is charged as one withdrawal message, and neighbors holding surviving
// routes re-announce them (triggered updates), from which the normal
// strict-improvement machinery re-converges. Healed links and rejoining
// nodes exchange full tables. A final revalidation pass runs at quiescence
// until a fixed point, so announcements that were in flight across a
// failure can never leave a stale entry behind. A null (empty) scenario
// leaves every byte of the static behavior unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "routing/landmarks.h"
#include "routing/params.h"
#include "sim/scenario.h"

namespace disco {

enum class PvMode {
  kPathVector,  // accept everything
  kNdDisco,     // landmarks + bounded k-closest vicinity
  kS4,          // landmarks + cluster rule (d(v,w) ≤ d(w, l_w))
};

/// One sampled point of a dynamic run: cumulative counters at the moment a
/// scenario event has just been applied (and once more at quiescence).
struct PvTracePoint {
  double time = 0;
  std::uint64_t messages = 0;     // cumulative, withdrawals included
  std::uint64_t withdrawals = 0;  // cumulative withdrawal share
  std::uint64_t table_entries = 0;  // live entries across live nodes
};

struct PvResult {
  std::uint64_t total_messages = 0;
  double messages_per_node = 0;
  double convergence_time = 0;  // simulated time of the last delivery
  /// Withdrawal messages charged by scenario invalidation cascades
  /// (included in total_messages; 0 for static runs).
  std::uint64_t total_withdrawals = 0;
  /// Final table: per node, the accepted origins and route distances.
  /// Ordered so callers can iterate without leaking hash-bucket order
  /// into their output.
  std::vector<std::map<NodeId, Dist>> tables;
  /// Per node, whether it is a live member at quiescence (all 1 for static
  /// runs and healing scenarios). Departed nodes have empty tables.
  std::vector<std::uint8_t> alive;
  /// One point per applied scenario event, plus a final point at
  /// quiescence. Empty for static runs.
  std::vector<PvTracePoint> trace;
  /// Final next hop (learned-from neighbor) per table entry; own-origin
  /// entries map to the node itself. Filled only when
  /// PvConfig::keep_next_hops is set.
  std::vector<std::map<NodeId, NodeId>> next_hops;
};

struct PvConfig {
  PvMode mode = PvMode::kPathVector;
  /// Vicinity bound for kNdDisco (0 = derive from n via VicinitySize()).
  std::size_t vicinity_k = 0;
  /// Landmarks for kNdDisco/kS4; must outlive the call. If null, selected
  /// from `params`.
  const LandmarkSet* landmarks = nullptr;
  Params params;
  /// Scripted dynamics; must outlive the call. nullptr (or an empty
  /// schedule) runs the static protocol, byte-identical to before the
  /// scenario layer existed.
  const Scenario* scenario = nullptr;
  /// Export PvResult::next_hops (costs memory; off by default).
  bool keep_next_hops = false;
};

/// Runs the protocol to convergence and returns message counts + tables.
PvResult SimulatePathVector(const Graph& g, const PvConfig& config);

}  // namespace disco
