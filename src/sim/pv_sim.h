// Discrete-event simulation of path-vector convergence (§5's "messages per
// node until convergence", Fig. 8).
//
// All three data planes — plain path vector, NDDisco, S4 — run the *same*
// asynchronous protocol and differ only in which route announcements a node
// accepts into its table (§4.2):
//   * path vector accepts every destination           -> Ω(n) state;
//   * NDDisco accepts landmarks + the k closest seen  -> Θ(sqrt(n log n));
//   * S4 accepts landmarks + its cluster rule d ≤ r_w -> unbounded.
//
// Mechanics: each node announces itself at t=0; a node that improves a
// table entry enqueues the update to each neighbor; per-link output queues
// coalesce pending updates for the same origin (RIB batching, as real
// routers do) and drain after the link's delay. Every per-origin update
// delivered over a link counts as one control message. The simulation runs
// to quiescence — guaranteed because a node only re-advertises on a strict
// distance improvement.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "routing/landmarks.h"
#include "routing/params.h"

namespace disco {

enum class PvMode {
  kPathVector,  // accept everything
  kNdDisco,     // landmarks + bounded k-closest vicinity
  kS4,          // landmarks + cluster rule (d(v,w) ≤ d(w, l_w))
};

struct PvResult {
  std::uint64_t total_messages = 0;
  double messages_per_node = 0;
  double convergence_time = 0;  // simulated time of the last delivery
  /// Final table: per node, the accepted origins and route distances.
  std::vector<std::unordered_map<NodeId, Dist>> tables;
};

struct PvConfig {
  PvMode mode = PvMode::kPathVector;
  /// Vicinity bound for kNdDisco (0 = derive from n via VicinitySize()).
  std::size_t vicinity_k = 0;
  /// Landmarks for kNdDisco/kS4; must outlive the call. If null, selected
  /// from `params`.
  const LandmarkSet* landmarks = nullptr;
  Params params;
};

/// Runs the protocol to convergence and returns message counts + tables.
PvResult SimulatePathVector(const Graph& g, const PvConfig& config);

}  // namespace disco
