// Scripted dynamics scenarios for the discrete-event simulator.
//
// A Scenario is a deterministic schedule of topology disturbances — node
// join/leave churn, single and correlated link failures, partition/heal
// events — compiled from a ScenarioSpec, a graph, and a (seed, replica)
// pair. Compilation is a pure function of those inputs, with every random
// choice drawn from the per-replica TaskRng stream (runtime/rng_stream.h):
// replica r's schedule is the same whether a campaign runs 1 replica or
// 100, on one thread or a process pool, which is what lets replicated DES
// campaigns reduce to byte-identical tables on any backend.
//
// Events only toggle elements of the original graph (a departed node
// rejoins with its original links; a failed link heals with its original
// weight and delay), so a healing scenario ends on exactly the starting
// topology and convergence invariants can be checked against it. With
// spec.heal = false the final disturbance persists, leaving a residual
// topology — the shape the churn-conformance tests exercise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace disco {

/// The scenario families a campaign can script. "null" compiles to an
/// empty schedule: a simulation driven by it is byte-identical to a static
/// (scenario-free) run.
///   null        no events
///   churn       batches of random nodes leave, then rejoin
///   linkfail    independent random link failures, then heals
///   correlated  a shared-risk group fails at once: one random link plus
///               every link sharing an endpoint with it
///   partition   a BFS-grown region is cut off (every crossing link
///               fails), then the cut heals
const std::vector<std::string>& ScenarioKinds();
bool IsScenarioKind(const std::string& kind);

struct ScenarioSpec {
  std::string kind = "null";
  /// Number of disturbance events (each paired with a recovery event when
  /// `heal` is set).
  std::size_t events = 2;
  /// Fraction of nodes (churn) or links (linkfail) disturbed per event.
  double fraction = 0.05;
  /// Simulated time of the first disturbance.
  double start = 30.0;
  /// Time between a disturbance and its recovery, and between consecutive
  /// disturbance pairs. Must exceed the maximum link delay (1.5) so a
  /// message can never be in flight across two disturbances at once.
  double spacing = 4.0;
  /// When false, the last disturbance is never healed and the simulation
  /// quiesces on the residual topology.
  bool heal = true;
};

/// One scripted topology change. Node ids and edge ids refer to the
/// original graph; a join/heal always reverses an earlier leave/fail.
struct ScenarioEvent {
  double time = 0;
  std::vector<NodeId> node_leaves;
  std::vector<NodeId> node_joins;
  std::vector<EdgeId> link_fails;
  std::vector<EdgeId> link_heals;
};

/// A compiled, replayable schedule for one replica. Pure value type.
class Scenario {
 public:
  Scenario() = default;

  /// Compiles `spec` against `g` for one replica. Deterministic: every
  /// draw comes from TaskRng(seed, replica) forks, so the result depends
  /// on nothing but the four arguments.
  static Scenario Compile(const ScenarioSpec& spec, const Graph& g,
                          std::uint64_t seed, std::uint64_t replica);

  const std::vector<ScenarioEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Nodes that are still departed once every event has fired (empty for
  /// healing scenarios).
  std::vector<NodeId> FinalDepartedNodes() const;

  /// Edges still failed once every event has fired, including the links of
  /// finally-departed nodes' neighbors only if scripted as link events.
  std::vector<EdgeId> FinalFailedLinks() const;

 private:
  std::vector<ScenarioEvent> events_;  // ascending in time
};

}  // namespace disco
