// Shared-memory execution runtime for the experiment harness.
//
// Design constraints, in priority order:
//   1. Determinism: nothing here may make results depend on the number of
//      threads. The pool only schedules; work decomposition and result
//      merging stay with the caller (see parallel_for.h and rng_stream.h).
//   2. No deadlocks under nesting: parallel sections started from inside a
//      pool task must always make progress even when every worker is busy,
//      so loops are drained by the submitting thread too (work sharing,
//      not work stealing).
//   3. One global knob: DISCO_THREADS=<k> caps total parallelism (workers
//      plus the calling thread); unset or 0 means hardware_concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace disco::runtime {

/// Total parallelism the process should use: DISCO_THREADS when set to a
/// positive integer, else std::thread::hardware_concurrency (at least 1).
std::size_t DefaultThreadCount();

/// A fixed-size pool of `parallelism - 1` worker threads; the thread that
/// opens a parallel section is always the remaining unit of parallelism.
/// With parallelism 1 there are no workers and Submit() runs inline, which
/// is exactly the bit-for-bit reference execution.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers + the calling thread.
  std::size_t parallelism() const { return workers_.size() + 1; }

  /// Enqueues a task. Tasks must not throw. When the pool has no workers
  /// the task runs synchronously on the calling thread.
  void Submit(std::function<void()> task);

  /// The process-wide pool, sized by DefaultThreadCount() on first use.
  static ThreadPool& Shared();

  /// Replaces the shared pool (tests compare thread counts). Must not be
  /// called while parallel sections are running.
  static void ResetShared(std::size_t parallelism);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace disco::runtime
