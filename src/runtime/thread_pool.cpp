#include "runtime/thread_pool.h"

#include <cstdlib>
#include <memory>

namespace disco::runtime {

std::size_t DefaultThreadCount() {
  if (const char* env = std::getenv("DISCO_THREADS")) {
    // Garbage ("4x", "") falls through to the hardware default instead of
    // silently parsing a prefix.
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t parallelism) {
  const std::size_t workers = parallelism > 1 ? parallelism - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {
std::mutex& SharedMutex() {
  static std::mutex mu;
  return mu;
}
std::unique_ptr<ThreadPool>& SharedSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::Shared() {
  // Locked: the first call can come from concurrent threads (e.g. trials
  // running on a caller-provided pool that each reach for the shared one).
  std::lock_guard<std::mutex> lock(SharedMutex());
  auto& slot = SharedSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  return *slot;
}

void ThreadPool::ResetShared(std::size_t parallelism) {
  std::lock_guard<std::mutex> lock(SharedMutex());
  SharedSlot() = std::make_unique<ThreadPool>(parallelism);
}

}  // namespace disco::runtime
