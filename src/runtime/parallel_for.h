// Deterministic data-parallel loops over the ThreadPool.
//
// Both entry points guarantee: every index/task runs exactly once, the
// calling thread participates (so nesting never deadlocks, and a
// parallelism-1 pool degenerates to a plain sequential loop), and the
// caller returns only after all work has finished. Determinism is a
// contract with the caller: bodies must write to disjoint, index-addressed
// slots, and any ordered reduction must happen after the loop, in index
// order. Per-task randomness must come from rng_stream.h so it depends on
// the task index, never on the executing thread.
#pragma once

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.h"

namespace disco::runtime {

/// Runs body(lo, hi) over a partition of [begin, end). `grain` is the
/// minimum chunk width (0 = auto). The partition depends only on the range
/// and grain — never on the thread count — so per-chunk state (RNG draws,
/// float accumulation order) is reproducible across pool sizes.
/// If a body throws, the first exception is re-thrown on the calling
/// thread after all chunks have finished (remaining chunks still run).
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 ThreadPool* pool = nullptr, std::size_t grain = 0);

/// Runs body(task) for task = 0 .. num_tasks-1, each exactly once. Use when
/// every task is substantial (a Dijkstra, a whole experiment trial).
void ParallelForTasks(std::size_t num_tasks,
                      const std::function<void(std::size_t)>& body,
                      ThreadPool* pool = nullptr);

}  // namespace disco::runtime
