// Deterministic per-task RNG streams for parallel sections.
//
// A parallel experiment must draw the same random numbers no matter how
// many threads execute it. The rule: never share an Rng across tasks;
// derive each task's stream from (master seed, task index) only. Rng::Fork
// already provides statistically independent substreams, so this header
// just fixes the convention the runtime-using code follows.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace disco::runtime {

/// The RNG stream of task `task_index` under `seed`. Bit-reproducible for
/// any thread count and schedule, because it depends on nothing else.
inline Rng TaskRng(std::uint64_t seed, std::uint64_t task_index) {
  return Rng(seed).Fork(task_index);
}

}  // namespace disco::runtime
