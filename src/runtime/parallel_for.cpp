#include "runtime/parallel_for.h"

// disco-lint: allow-file(relaxed-atomic): the chunk cursor only *claims*
// work — every chunk writes results to its own index, so which thread ran
// it cannot reach output; the section's join orders all result reads.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace disco::runtime {
namespace {

// One parallel section: chunks are claimed from an atomic cursor by the
// submitting thread and any worker that picks up a helper task. Helpers
// arriving after the loop has drained simply return.
//
// Exception safety: a throwing body is caught and re-thrown on the
// submitting thread — but only after every chunk has finished, so helper
// tasks never touch state the unwinding caller has destroyed.
struct LoopState {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t end = 0;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr first_error;  // guarded by mu

  void Drain() {
    for (;;) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const std::size_t lo = begin + chunk * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        (*body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

void RunLoop(std::size_t begin, std::size_t end, std::size_t grain,
             const std::function<void(std::size_t, std::size_t)>& body,
             ThreadPool* pool) {
  if (begin >= end) return;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Shared();
  const std::size_t n = end - begin;
  const std::size_t num_chunks = (n + grain - 1) / grain;

  if (p.parallelism() == 1 || num_chunks == 1) {
    // Same exception contract as the parallel path: every chunk runs, the
    // first exception is rethrown at the end — so observable state never
    // depends on the thread count.
    std::exception_ptr first_error;
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const std::size_t lo = begin + chunk * grain;
      try {
        body(lo, std::min(end, lo + grain));
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->body = &body;

  const std::size_t helpers =
      std::min(p.parallelism() - 1, num_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    p.Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 ThreadPool* pool, std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) {
    // Auto grain: enough chunks for balance on any realistic machine while
    // keeping per-chunk dispatch cost negligible. Depends only on the
    // range, so chunk boundaries are thread-count-invariant.
    const std::size_t n = end - begin;
    grain = std::max<std::size_t>(1, n / 64);
  }
  RunLoop(begin, end, grain, body, pool);
}

void ParallelForTasks(std::size_t num_tasks,
                      const std::function<void(std::size_t)>& body,
                      ThreadPool* pool) {
  RunLoop(
      0, num_tasks, 1,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) body(t);
      },
      pool);
}

}  // namespace disco::runtime
