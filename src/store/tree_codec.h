// Compact codec for landmark Dijkstra trees (store/ tier-2 payloads).
//
// A ShortestPathTree on the paper's router-level map costs 12 bytes per
// node in memory (8B distance + 4B parent). Almost all of that is
// redundant given the graph: the parent of v is one of v's CSR neighbors,
// and v's distance is exactly dist[parent] + w(parent,v) — the very sum
// Dijkstra computed when it settled v. So the codec stores, per node, only
// *which arc* leads to the parent: the interface index of (v -> parent)
// within neighbors(v), in ceil(log2(degree(v))) bits (util/bitio.h), plus
// one reachability bit. On an average-degree-8 graph that is ~4.5 bits per
// node — about 4% of the in-memory footprint — and the decoder reproduces
// distances *bit-exactly* by re-evaluating the same float sums along the
// tree, so a bench run on decoded trees is byte-identical to a cold run.
//
// (This is the degenerate-delta form of parent-delta coding: the graph
// itself supplies both the parent id and the distance delta, so neither
// needs explicit bits.)
//
// Encoding is a pure sequential function of (graph, tree): byte-stable
// across thread counts and processes. Decoding validates structure
// (interface indices in range, parent chains acyclic, exact bit length)
// and fails cleanly on malformed frames; end-to-end corruption detection
// is the artifact store's per-frame checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace disco::store {

/// Bumped on any change to the frame layout; part of every artifact key,
/// so stale encodings can never be decoded by mistake.
inline constexpr std::uint32_t kTreeCodecVersion = 1;

/// Encodes `t`, which must be a Dijkstra tree of `g` (t = Dijkstra(g,
/// t.source)). Returns "" if the tree is inconsistent with `g` (wrong
/// size, or a parent/distance pair no arc of g explains) — callers treat
/// that as "do not store".
std::string EncodeTree(const Graph& g, const ShortestPathTree& t);

/// Decodes a frame produced by EncodeTree against the same graph. Returns
/// false (leaving *out unspecified) on any structural mismatch: wrong
/// node count, out-of-range interface index, parent cycle, or trailing
/// garbage. On success *out is bit-identical to the encoded tree.
bool DecodeTree(const Graph& g, const std::uint8_t* data, std::size_t size,
                ShortestPathTree* out);

inline bool DecodeTree(const Graph& g, const std::string& frame,
                       ShortestPathTree* out) {
  return DecodeTree(g, reinterpret_cast<const std::uint8_t*>(frame.data()),
                    frame.size(), out);
}

/// The in-memory footprint the codec is measured against (dist + parent
/// vectors); the store_codec_test asserts encodings stay under half this.
inline std::size_t TreeMemoryBytes(const ShortestPathTree& t) {
  return t.dist.size() * sizeof(Dist) + t.parent.size() * sizeof(NodeId);
}

}  // namespace disco::store
