// Content-addressed on-disk artifact store — the build-once/load-many
// layer behind prewarmed paper-scale runs (ROADMAP: disk-backed landmark
// trees).
//
// Artifacts are keyed by the SHA-256 of a canonical string naming
// everything the payload is a pure function of: artifact kind, graph
// fingerprint, a scope discriminator (e.g. landmark set + root), and a
// format version. Two processes that derive the same key therefore hold
// byte-identical payloads, which makes every store operation safe under
// concurrent multi-process access:
//
//   * writes go to a unique temp file under the store root and are
//     published with rename(2) — readers never observe partial objects,
//     and racing writers of one key overwrite each other with identical
//     bytes;
//   * each frame of an object carries its own SHA-256, verified when the
//     object is opened, so torn or bit-rotted files are detected (and
//     reparable: a cache that fails to load simply recomputes and
//     republishes over the corrupt object);
//   * an append-only index file (O_APPEND line writes) records
//     human-readable key strings for `disco_store ls`; it is advisory —
//     the objects directory is the source of truth.
//
// Readers are mmap-backed: Open() maps the object file and hands out
// zero-copy frame views, so loading one 192k-node landmark tree touches
// only that file's pages instead of materializing anything.
//
// Layout under the store root:
//   objects/<id[0:2]>/<id>.art    one artifact per file (id = key SHA-256)
//   tmp/                          in-flight writes (unique names)
//   index.log                     advisory "id \t kind \t key \t bytes"
#pragma once

#include <cstdint>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/span.h"

namespace disco::store {

/// Everything an artifact's bytes are a function of. Id() — the SHA-256
/// hex of the canonical form — names the object file.
struct ArtifactKey {
  std::string kind;        // short token: "ltree", "graph", ...
  std::string graph;       // hex graph fingerprint (GraphFingerprintHex)
  std::string scope;       // free-form discriminator, e.g. "set=…;root=7"
  std::uint32_t version = 0;  // payload format version (codec bumps this)

  std::string Canonical() const;
  std::string Id() const;
};

/// A verified, mmap'd artifact. Frame views stay valid for the reader's
/// lifetime; all frames were checksum-verified at Open time.
class ArtifactReader {
 public:
  /// Maps and fully verifies the object file at `path`; nullptr if
  /// absent, nullptr + *corrupt if present but invalid. Prefer
  /// ArtifactStore::Open, which derives the path from a key.
  static std::unique_ptr<ArtifactReader> OpenFile(const std::string& path,
                                                  bool* corrupt = nullptr);

  ~ArtifactReader();
  ArtifactReader(const ArtifactReader&) = delete;
  ArtifactReader& operator=(const ArtifactReader&) = delete;

  std::size_t frame_count() const { return frames_.size(); }
  Span<const std::uint8_t> frame(std::size_t i) const {
    return {base_ + frames_[i].first, frames_[i].second};
  }
  std::size_t file_bytes() const { return map_len_; }

 private:
  friend class ArtifactStore;
  ArtifactReader() = default;

  const std::uint8_t* base_ = nullptr;
  void* map_ = nullptr;        // non-null when mmap'd
  std::size_t map_len_ = 0;
  std::vector<std::uint8_t> fallback_;  // used when mmap is unavailable
  std::vector<std::pair<std::size_t, std::size_t>> frames_;  // offset, len
};

/// One store entry as seen by ls/gc.
struct ListEntry {
  std::string id;         // object id (key SHA-256, hex)
  std::string kind;       // from the index; "" if the index has no line
  std::string canonical;  // ditto
  std::uint64_t bytes = 0;
  std::time_t mtime = 0;
};

class ArtifactStore {
 public:
  /// Opens the store rooted at `root`, creating the directory skeleton.
  /// Check ok() before use.
  explicit ArtifactStore(std::string root);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& root() const { return root_; }

  bool Contains(const ArtifactKey& key) const;

  /// Serializes `frames` (each independently checksummed) and publishes
  /// the object atomically. Always writes — republishing a key replaces
  /// the object byte-for-byte, which is how corrupt objects heal.
  bool Put(const ArtifactKey& key, const std::vector<std::string>& frames,
           std::string* error = nullptr);

  /// nullptr if the object is absent. If present but structurally invalid
  /// or failing a frame checksum, returns nullptr and sets *corrupt.
  std::unique_ptr<ArtifactReader> Open(const ArtifactKey& key,
                                       bool* corrupt = nullptr) const;

  /// Where `key`'s object lives (exists or not) — for tooling and tests.
  std::string ObjectPath(const ArtifactKey& key) const;

  /// Every object on disk, sorted by id, joined with index labels.
  std::vector<ListEntry> List() const;

  struct VerifyResult {
    std::size_t checked = 0;
    std::vector<std::string> corrupt;  // object ids
  };
  /// Opens (and therefore checksum-verifies) every object.
  VerifyResult Verify() const;

  struct GcResult {
    std::size_t removed_tmp = 0;
    std::size_t removed_corrupt = 0;
    std::size_t evicted = 0;
    std::uint64_t bytes_kept = 0;
  };
  /// Removes abandoned temp files (older than an hour — younger ones may
  /// be a live process's in-flight Put) and corrupt objects; when
  /// `max_bytes` is nonzero, additionally evicts oldest-mtime objects
  /// until the store fits the budget. Rewrites the index to the
  /// surviving objects.
  GcResult Gc(std::uint64_t max_bytes = 0);

 private:
  std::string ObjectPathForId(const std::string& id) const;
  void AppendIndexLine(const ArtifactKey& key, std::uint64_t bytes) const;

  std::string root_;
  std::string error_;
  bool ok_ = false;
};

// ---------------------------------------------------------------------
// Process-wide store: the object behind every bench's --store=<dir> flag.
// Opened once during flag parsing; LandmarkTreeCache instances attach to
// it at construction, and procs-backend workers — which re-parse the same
// argv — open the same directory, so prebuilt artifacts are shared across
// the whole worker pool instead of being rebuilt per process.

/// Opens (or replaces) the process store. Returns false with *error on
/// failure; the previous store, if any, is left in place then.
bool OpenProcessStore(const std::string& dir, std::string* error);

/// The process store, or nullptr when no --store= was given.
ArtifactStore* ProcessStore();

/// Tests only: drops the process store and zeroes the counters.
void CloseProcessStoreForTest();

/// Process-wide tier counters, registered in the unified metrics registry
/// (bench harnesses print them at exit via obs::MetricsRegistry::DumpText;
/// the "[metrics] store trees:" line).
struct StoreCounters {
  obs::Counter& tree_ram_hits;
  obs::Counter& tree_store_hits;
  obs::Counter& tree_dijkstras;
  obs::Counter& tree_writebacks;
  StoreCounters();
};
StoreCounters& Counters();

}  // namespace disco::store
