#include "store/tree_codec.h"

#include <vector>

#include "util/bitio.h"

namespace disco::store {
namespace {

// Frame header: magic, node count, source — 96 bits before the per-node
// stream. The magic guards against handing a non-tree frame to the
// decoder; versioning lives in the artifact key, not here.
constexpr std::uint32_t kMagic = 0x444C5431;  // "DLT1"

// Bits needed for an interface index of v: indices are in [0, degree),
// so width = BitWidth(degree - 1) (0 bits when there is only one arc).
int IfaceBits(std::uint32_t degree) { return BitWidth(degree - 1); }

}  // namespace

std::string EncodeTree(const Graph& g, const ShortestPathTree& t) {
  const NodeId n = g.num_nodes();
  if (t.dist.size() != n || t.parent.size() != n || t.source >= n) return "";
  if (t.dist[t.source] != 0 || t.parent[t.source] != kInvalidNode) return "";

  BitWriter w;
  w.Write(kMagic, 32);
  w.Write(n, 32);
  w.Write(t.source, 32);
  for (NodeId v = 0; v < n; ++v) {
    if (v == t.source) continue;
    const bool reach = t.dist[v] < kInfDist;
    w.Write(reach ? 1 : 0, 1);
    if (!reach) {
      if (t.parent[v] != kInvalidNode) return "";
      continue;
    }
    const NodeId p = t.parent[v];
    if (p >= n || t.dist[p] >= kInfDist) return "";
    // Find an arc v -> p whose weight explains dist[v] *exactly* — the arc
    // Dijkstra relaxed through qualifies, because dist[v] was assigned as
    // the identical float sum. Equality of finite nonnegative doubles is
    // bit equality here (negative zero cannot arise from positive
    // weights), which is what makes decode(encode(t)) == t byte-exact.
    const NeighborView arcs = g.neighbors(v);
    std::size_t iface = arcs.size();
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (arcs[i].to == p && t.dist[p] + arcs[i].weight == t.dist[v]) {
        iface = i;
        break;
      }
    }
    if (iface == arcs.size()) return "";  // tree does not match this graph
    w.Write(iface, IfaceBits(g.degree(v)));
  }
  return std::string(reinterpret_cast<const char*>(w.bytes().data()),
                     w.byte_size());
}

bool DecodeTree(const Graph& g, const std::uint8_t* data, std::size_t size,
                ShortestPathTree* out) {
  const NodeId n = g.num_nodes();
  BitReader r(data, size * 8);
  if (r.bits_remaining() < 96) return false;
  if (r.Read(32) != kMagic) return false;
  if (r.Read(32) != n) return false;
  const NodeId source = static_cast<NodeId>(r.Read(32));
  if (source >= n) return false;

  // Pass 1: recover each node's parent arc straight from the bit stream
  // (no ordering constraints — interface indices only reference the
  // graph, which is already in memory).
  std::vector<std::uint32_t> iface(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (v == source) continue;
    if (r.bits_remaining() < 1) return false;
    if (r.Read(1) == 0) continue;  // unreachable
    const std::uint32_t degree = g.degree(v);
    if (degree == 0) return false;  // a reachable node must have an arc
    const int bits = IfaceBits(degree);
    if (r.bits_remaining() < static_cast<std::size_t>(bits)) return false;
    const std::uint64_t idx = r.Read(bits);
    if (idx >= degree) return false;
    iface[v] = static_cast<std::uint32_t>(idx);
  }
  if (r.bits_remaining() >= 8) return false;  // trailing garbage

  out->source = source;
  out->dist.assign(n, kInfDist);
  out->parent.assign(n, kInvalidNode);
  out->dist[source] = 0;

  // Pass 2: materialize distances by walking each unresolved parent chain
  // up to the first node with a known distance, then unwinding the same
  // float sums Dijkstra performed. Amortized O(n): every node is resolved
  // exactly once. A chain longer than n nodes means a parent cycle —
  // structurally corrupt input.
  std::vector<NodeId> chain;
  for (NodeId v0 = 0; v0 < n; ++v0) {
    if (iface[v0] == kInvalidNode || out->dist[v0] < kInfDist) continue;
    chain.clear();
    NodeId v = v0;
    while (out->dist[v] >= kInfDist) {
      if (iface[v] == kInvalidNode) return false;  // parent marked absent
      if (chain.size() > n) return false;          // cycle
      chain.push_back(v);
      v = g.neighbors(v)[iface[v]].to;
      if (v >= n) return false;
    }
    for (std::size_t i = chain.size(); i-- > 0;) {
      const NodeId c = chain[i];
      const Neighbor& arc = g.neighbors(c)[iface[c]];
      out->parent[c] = arc.to;
      out->dist[c] = out->dist[arc.to] + arc.weight;
    }
  }
  return true;
}

}  // namespace disco::store
