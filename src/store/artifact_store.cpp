#include "store/artifact_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "util/bytes.h"
#include "util/sha256.h"

namespace disco::store {
namespace fs = std::filesystem;
namespace {

// File layout (all integers little-endian u64):
//   8B  magic "DARTv01\n"
//   u64 frame_count
//   u64 file_size                       (whole-file sanity check)
//   frame_count x { u64 offset, u64 length, 32B sha256(payload) }
//   32B sha256 of everything above      (directory checksum)
//   payloads, each 8-byte aligned, zero padded between
constexpr char kMagic[8] = {'D', 'A', 'R', 'T', 'v', '0', '1', '\n'};
constexpr std::size_t kDigestLen = 32;

Sha256Digest DigestOf(const void* data, std::size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finalize();
}

std::string SerializeObject(const std::vector<std::string>& frames) {
  std::string dir;
  dir.append(kMagic, sizeof kMagic);
  PutU64Le(&dir, frames.size());
  // magic + frame_count + file_size, then one 48B entry per frame, then
  // the directory digest. All multiples of 8, so dir_bytes is 8-aligned.
  const std::size_t dir_bytes = sizeof kMagic + 2 * 8 +
                                frames.size() * (16 + kDigestLen) +
                                kDigestLen;
  std::size_t offset = (dir_bytes + 7) & ~std::size_t{7};
  std::string payloads;
  std::string entries;
  for (const std::string& f : frames) {
    PutU64Le(&entries, offset);
    PutU64Le(&entries, f.size());
    const Sha256Digest d = DigestOf(f.data(), f.size());
    entries.append(reinterpret_cast<const char*>(d.data()), d.size());
    payloads.append(offset - dir_bytes - payloads.size(), '\0');
    payloads.append(f);
    offset = (offset + f.size() + 7) & ~std::size_t{7};
  }
  const std::size_t file_size = dir_bytes + payloads.size();
  PutU64Le(&dir, file_size);
  dir += entries;
  const Sha256Digest head = DigestOf(dir.data(), dir.size());
  dir.append(reinterpret_cast<const char*>(head.data()), head.size());
  return dir + payloads;
}

// Parses and verifies a serialized object already in memory; fills
// `frames` with (offset, length) pairs. Returns false on any structural
// or checksum failure.
bool ValidateObject(const std::uint8_t* base, std::size_t size,
                    std::vector<std::pair<std::size_t, std::size_t>>* frames) {
  if (size < sizeof kMagic + 2 * 8 + kDigestLen) return false;
  if (std::memcmp(base, kMagic, sizeof kMagic) != 0) return false;
  const std::uint64_t count = ReadU64Le(base + 8);
  const std::uint64_t file_size = ReadU64Le(base + 16);
  if (file_size != size) return false;
  // count is untrusted: bound it before the multiplication below.
  if (count > size / (16 + kDigestLen)) return false;
  const std::size_t dir_bytes =
      sizeof kMagic + 2 * 8 + count * (16 + kDigestLen) + kDigestLen;
  if (dir_bytes > size) return false;
  const Sha256Digest head = DigestOf(base, dir_bytes - kDigestLen);
  if (std::memcmp(head.data(), base + dir_bytes - kDigestLen, kDigestLen) !=
      0) {
    return false;
  }
  frames->clear();
  frames->reserve(count);
  const std::uint8_t* entry = base + sizeof kMagic + 2 * 8;
  for (std::uint64_t i = 0; i < count; ++i, entry += 16 + kDigestLen) {
    const std::uint64_t offset = ReadU64Le(entry);
    const std::uint64_t len = ReadU64Le(entry + 8);
    if (offset > size || len > size - offset) return false;
    const Sha256Digest d = DigestOf(base + offset, len);
    if (std::memcmp(d.data(), entry + 16, kDigestLen) != 0) return false;
    frames->emplace_back(offset, len);
  }
  return true;
}

}  // namespace

std::unique_ptr<ArtifactReader> ArtifactReader::OpenFile(
    const std::string& path, bool* corrupt) {
  if (corrupt != nullptr) *corrupt = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    if (corrupt != nullptr) *corrupt = true;  // exists but unreadable/empty
    return nullptr;
  }
  std::unique_ptr<ArtifactReader> r(new ArtifactReader());
  r->map_len_ = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, r->map_len_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    r->map_ = map;
    r->base_ = static_cast<const std::uint8_t*>(map);
    ::close(fd);
  } else {
    // mmap unavailable (exotic filesystem): fall back to a plain read.
    r->fallback_.resize(r->map_len_);
    std::size_t got = 0;
    while (got < r->map_len_) {
      const ssize_t k =
          ::read(fd, r->fallback_.data() + got, r->map_len_ - got);
      if (k <= 0) break;
      got += static_cast<std::size_t>(k);
    }
    ::close(fd);
    if (got != r->map_len_) {
      if (corrupt != nullptr) *corrupt = true;
      return nullptr;
    }
    r->base_ = r->fallback_.data();
  }
  if (!ValidateObject(r->base_, r->map_len_, &r->frames_)) {
    if (corrupt != nullptr) *corrupt = true;
    return nullptr;
  }
  return r;
}

std::string ArtifactKey::Canonical() const {
  return kind + "|" + graph + "|" + scope + "|v" + std::to_string(version);
}

std::string ArtifactKey::Id() const {
  return Sha256HexOf(Sha256Hash(Canonical()));
}

ArtifactReader::~ArtifactReader() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "objects", ec);
  if (!ec) fs::create_directories(fs::path(root_) / "tmp", ec);
  if (ec) {
    error_ = "cannot create store directories under " + root_ + ": " +
             ec.message();
    return;
  }
  ok_ = true;
}

std::string ArtifactStore::ObjectPathForId(const std::string& id) const {
  return root_ + "/objects/" + id.substr(0, 2) + "/" + id + ".art";
}

std::string ArtifactStore::ObjectPath(const ArtifactKey& key) const {
  return ObjectPathForId(key.Id());
}

bool ArtifactStore::Contains(const ArtifactKey& key) const {
  std::error_code ec;
  return fs::exists(ObjectPath(key), ec);
}

void ArtifactStore::AppendIndexLine(const ArtifactKey& key,
                                    std::uint64_t bytes) const {
  // One O_APPEND write per line: atomic for short writes, so concurrent
  // processes interleave whole lines, never fragments.
  const std::string line = key.Id() + "\t" + key.kind + "\t" +
                           key.Canonical() + "\t" + std::to_string(bytes) +
                           "\n";
  const int fd = ::open((root_ + "/index.log").c_str(),
                        O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return;  // advisory only
  (void)!::write(fd, line.data(), line.size());
  ::close(fd);
}

bool ArtifactStore::Put(const ArtifactKey& key,
                        const std::vector<std::string>& frames,
                        std::string* error) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string id = key.Id();
  const std::string bytes = SerializeObject(frames);
  const std::string final_path = ObjectPathForId(id);
  const std::string tmp_path =
      root_ + "/tmp/" + id + "." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1));

  std::error_code ec;
  fs::create_directories(fs::path(final_path).parent_path(), ec);
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    ::unlink(tmp_path.c_str());
    return false;
  };
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) return fail("cannot write " + tmp_path);
  }
  // rename(2): atomic publish; a racing Put of the same key lands the
  // same bytes, so whichever rename wins is correct.
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return fail("cannot publish " + final_path + ": " +
                std::strerror(errno));
  }
  AppendIndexLine(key, bytes.size());
  return true;
}

std::unique_ptr<ArtifactReader> ArtifactStore::Open(const ArtifactKey& key,
                                                    bool* corrupt) const {
  return ArtifactReader::OpenFile(ObjectPath(key), corrupt);
}

namespace {

struct IndexInfo {
  std::string kind;
  std::string canonical;
};

std::map<std::string, IndexInfo> LoadIndex(const std::string& root) {
  std::map<std::string, IndexInfo> out;
  std::ifstream f(root + "/index.log");
  std::string line;
  while (std::getline(f, line)) {
    std::istringstream ls(line);
    std::string id, kind, canonical;
    if (std::getline(ls, id, '\t') && std::getline(ls, kind, '\t') &&
        std::getline(ls, canonical, '\t')) {
      out[id] = {kind, canonical};
    }
  }
  return out;
}

}  // namespace

std::vector<ListEntry> ArtifactStore::List() const {
  const std::map<std::string, IndexInfo> index = LoadIndex(root_);
  std::vector<ListEntry> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator
           it(fs::path(root_) / "objects", ec),
       end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec) || it->path().extension() != ".art") {
      continue;
    }
    ListEntry e;
    e.id = it->path().stem().string();
    struct stat st;
    if (::stat(it->path().c_str(), &st) != 0) continue;
    e.bytes = static_cast<std::uint64_t>(st.st_size);
    e.mtime = st.st_mtime;
    const auto idx = index.find(e.id);
    if (idx != index.end()) {
      e.kind = idx->second.kind;
      e.canonical = idx->second.canonical;
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ListEntry& a, const ListEntry& b) { return a.id < b.id; });
  return out;
}

ArtifactStore::VerifyResult ArtifactStore::Verify() const {
  VerifyResult result;
  for (const ListEntry& e : List()) {
    ++result.checked;
    bool corrupt = false;
    const auto reader = ArtifactReader::OpenFile(ObjectPathForId(e.id), &corrupt);
    if (reader == nullptr) result.corrupt.push_back(e.id);
  }
  return result;
}

ArtifactStore::GcResult ArtifactStore::Gc(std::uint64_t max_bytes) {
  GcResult result;
  std::error_code ec;
  // Only *abandoned* temp files: a fresh one may be another process's
  // in-flight Put (gc can run concurrently with live writers), and
  // deleting it would make that rename fail and silently drop the
  // write-back. An hour is far beyond any single Put's lifetime.
  // disco-lint: allow(entropy): gc age policy wall-clock, never a seed
  const std::time_t now = std::time(nullptr);
  for (fs::directory_iterator it(fs::path(root_) / "tmp", ec), end;
       !ec && it != end; it.increment(ec)) {
    struct stat st;
    if (::stat(it->path().c_str(), &st) != 0) continue;
    if (now - st.st_mtime < 60 * 60) continue;
    if (fs::remove(it->path(), ec)) ++result.removed_tmp;
  }

  std::vector<ListEntry> entries = List();
  std::vector<ListEntry> alive;
  for (ListEntry& e : entries) {
    bool corrupt = false;
    const auto reader = ArtifactReader::OpenFile(ObjectPathForId(e.id), &corrupt);
    if (reader == nullptr) {
      fs::remove(ObjectPathForId(e.id), ec);
      ++result.removed_corrupt;
      continue;
    }
    alive.push_back(std::move(e));
  }

  if (max_bytes > 0) {
    // Evict oldest-published first until the budget holds (ids tie-break
    // so equal timestamps still evict deterministically). Graph
    // snapshots go last regardless of age: they are the recovery path
    // (`disco_store build --graph=<fingerprint>`) for everything else,
    // are published before any tree (so they would otherwise always be
    // the oldest object), and nothing republishes them automatically.
    const auto evicts_later = [](const ListEntry& e) {
      return e.kind == "graph";
    };
    std::sort(alive.begin(), alive.end(),
              [&](const ListEntry& a, const ListEntry& b) {
                if (evicts_later(a) != evicts_later(b)) {
                  return evicts_later(b);
                }
                return a.mtime != b.mtime ? a.mtime < b.mtime : a.id < b.id;
              });
    std::uint64_t total = 0;
    for (const ListEntry& e : alive) total += e.bytes;
    std::size_t first_kept = 0;
    while (first_kept < alive.size() && total > max_bytes) {
      fs::remove(ObjectPathForId(alive[first_kept].id), ec);
      total -= alive[first_kept].bytes;
      ++result.evicted;
      ++first_kept;
    }
    alive.erase(alive.begin(), alive.begin() + first_kept);
  }
  for (const ListEntry& e : alive) result.bytes_kept += e.bytes;

  // Compact the advisory index down to the survivors that have labels.
  const std::string tmp = root_ + "/tmp/index.rewrite";
  {
    std::ofstream f(tmp, std::ios::trunc);
    for (const ListEntry& e : alive) {
      if (e.canonical.empty()) continue;
      f << e.id << '\t' << e.kind << '\t' << e.canonical << '\t' << e.bytes
        << '\n';
    }
  }
  ::rename(tmp.c_str(), (root_ + "/index.log").c_str());
  return result;
}

// --------------------------------------------------------- process store

namespace {
std::mutex g_process_store_mu;
std::unique_ptr<ArtifactStore> g_process_store;
}  // namespace

bool OpenProcessStore(const std::string& dir, std::string* error) {
  auto store = std::make_unique<ArtifactStore>(dir);
  if (!store->ok()) {
    if (error != nullptr) *error = store->error();
    return false;
  }
  std::lock_guard<std::mutex> lock(g_process_store_mu);
  g_process_store = std::move(store);
  return true;
}

ArtifactStore* ProcessStore() {
  std::lock_guard<std::mutex> lock(g_process_store_mu);
  return g_process_store.get();
}

void CloseProcessStoreForTest() {
  std::lock_guard<std::mutex> lock(g_process_store_mu);
  g_process_store.reset();
  Counters().tree_ram_hits.Set(0);
  Counters().tree_store_hits.Set(0);
  Counters().tree_dijkstras.Set(0);
  Counters().tree_writebacks.Set(0);
}

StoreCounters::StoreCounters()
    : tree_ram_hits(obs::Global().RegisterCounter(
          "disco_store_tree_ram_hits_total",
          "Landmark trees served from the in-RAM cache tier", "store trees",
          "ram")),
      tree_store_hits(obs::Global().RegisterCounter(
          "disco_store_tree_store_hits_total",
          "Landmark trees decoded from on-disk store artifacts",
          "store trees", "disk")),
      tree_dijkstras(obs::Global().RegisterCounter(
          "disco_store_tree_dijkstras_total",
          "Landmark trees rebuilt by running Dijkstra", "store trees",
          "dijkstra")),
      tree_writebacks(obs::Global().RegisterCounter(
          "disco_store_tree_writebacks_total",
          "Freshly built landmark trees published back to the store",
          "store trees", "writeback")) {}

StoreCounters& Counters() {
  static StoreCounters* counters = new StoreCounters;
  return *counters;
}

}  // namespace disco::store
