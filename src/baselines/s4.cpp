#include "baselines/s4.h"

// disco-lint: allow-file(relaxed-atomic): cluster-size counting uses
// commutative fetch_adds into per-node slots; the parallel_for join
// sequences every final load, so no relaxed op orders output data.

#include <algorithm>
#include <atomic>
#include <cassert>

#include "runtime/parallel_for.h"

namespace disco {

S4::S4(const Graph& g, const Params& params)
    : g_(&g), params_(params),
      landmarks_(SelectLandmarks(g.num_nodes(), params)),
      addresses_(g, landmarks_), trees_(g, landmarks_),
      names_(NameTable::Default(g.num_nodes())),
      resolution_(names_, landmarks_, params.resolution_virtual_points) {}

void S4::PrewarmLandmarkTrees() { trees_.Prewarm(); }

Dist S4::BallRadius(NodeId t) const {
  // The radius comes from the landmark-side Dijkstra while ball searches
  // sum from t's side; a relative epsilon keeps the boundary node (l_t
  // itself) inside despite last-ulp float divergence.
  return ClusterRadius(t) * (1 + 1e-12) + 1e-12;
}

std::shared_ptr<const Vicinity> S4::Ball(NodeId t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = balls_.find(t);
    if (it != balls_.end()) return it->second;
  }
  auto ball = std::make_shared<const Vicinity>(
      t, WithinRadius(*g_, t, BallRadius(t)));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = balls_.emplace(t, ball);
  if (!inserted) return it->second;  // racing thread computed it first
  if (balls_.size() > 512) {  // crude bound; balls are small
    balls_.clear();
    balls_.emplace(t, ball);
  }
  return ball;
}

std::vector<NodeId> S4::PlanVia(NodeId from, NodeId t) {
  if (from == t) return {from};
  if (landmarks_.Contains(t)) {
    std::vector<NodeId> p = trees_.Tree(t)->PathTo(from);
    std::reverse(p.begin(), p.end());
    return p;
  }
  const auto ball = Ball(t);
  if (ball->Contains(from)) {
    // t ∈ C(from): direct shortest path (reverse of t's ball path to from).
    std::vector<NodeId> p = ball->PathTo(from);
    std::reverse(p.begin(), p.end());
    return p;
  }
  // Walk toward l_t; To-Destination is integral to S4 — cut over at the
  // first node whose cluster contains t. l_t itself always qualifies
  // (d(l_t, t) = d(t, l_t) ≤ ClusterRadius(t)).
  const NodeId lt = addresses_.closest_landmark(t);
  std::vector<NodeId> toward = trees_.Tree(lt)->PathTo(from);
  std::reverse(toward.begin(), toward.end());  // from ; l_t
  for (std::size_t i = 0; i < toward.size(); ++i) {
    if (!ball->Contains(toward[i])) continue;
    std::vector<NodeId> cut = ball->PathTo(toward[i]);
    std::reverse(cut.begin(), cut.end());  // toward[i] ; t
    toward.resize(i + 1);
    return JoinPaths(std::move(toward), cut);
  }
  // Should not happen once the epsilon radius holds, but stay correct:
  // complete the route with the explicit l_t ; t path from t's address,
  // as a real S4 landmark would.
  return JoinPaths(std::move(toward), addresses_.AddressOf(t).route);
}

Route S4::RouteLater(NodeId s, NodeId t) {
  Route r;
  r.path = PlanVia(s, t);
  r.length = PathLength(*g_, r.path);
  return r;
}

Route S4::RouteFirst(NodeId s, NodeId t) {
  // Local knowledge still short-circuits the location service.
  if (s == t || landmarks_.Contains(t) || Ball(t)->Contains(s)) {
    return RouteLater(s, t);
  }
  // Otherwise the packet rides to the resolution landmark owning h(t),
  // which knows t's address and forwards (SEATTLE-style). This detour is
  // what gives S4 unbounded first-packet stretch.
  const NodeId owner = resolution_.OwnerLandmark(names_.hash(t));
  std::vector<NodeId> to_owner = trees_.Tree(owner)->PathTo(s);
  std::reverse(to_owner.begin(), to_owner.end());
  Route r;
  r.path = JoinPaths(std::move(to_owner), PlanVia(owner, t));
  r.length = PathLength(*g_, r.path);
  return r;
}

const std::vector<std::size_t>& S4::ClusterSizes() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!cluster_sizes_.empty()) return cluster_sizes_;
  const NodeId n = g_->num_nodes();
  // w ∈ C(v)  ⇔  d(v,w) ≤ d(w,l_w)  ⇔  v ∈ Ball(w, radius_w):
  // enumerate each node's ball once and charge every member. The per-node
  // searches fan out over the pool; the charges are relaxed atomic
  // increments, whose sums are order-independent.
  std::vector<std::atomic<std::size_t>> counts(n);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  runtime::ParallelFor(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        RadiusSearcher searcher(*g_);
        std::vector<NearNode> ball;
        for (std::size_t w = lo; w < hi; ++w) {
          searcher.Search(static_cast<NodeId>(w),
                          BallRadius(static_cast<NodeId>(w)), ball);
          for (const NearNode& m : ball) {
            counts[m.node].fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      nullptr, std::max<std::size_t>(1, n / 256));
  cluster_sizes_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    cluster_sizes_[v] = counts[v].load(std::memory_order_relaxed);
  }
  return cluster_sizes_;
}

StateBreakdown S4::State(NodeId v) {
  StateBreakdown b;
  b.landmark_entries = landmarks_.count();
  b.cluster_entries = ClusterSizes()[v];
  b.label_entries = std::min<std::size_t>(
      g_->degree(v), b.landmark_entries + b.cluster_entries);
  b.resolution_entries = resolution_.EntriesAt(v);
  return b;
}

}  // namespace disco
