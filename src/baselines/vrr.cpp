#include "baselines/vrr.h"

#include <algorithm>
#include <cassert>

#include "graph/shortest_path.h"
#include "util/hashring.h"
#include "util/rng.h"

namespace disco {
namespace {

// Removes cycles from a greedy walk, keeping the first visit of each node
// (what a real setup message's recorded path reduces to).
std::vector<NodeId> StripLoops(const std::vector<NodeId>& walk) {
  std::vector<NodeId> out;
  std::unordered_map<NodeId, std::size_t> pos;
  for (const NodeId v : walk) {
    const auto it = pos.find(v);
    if (it != pos.end()) {
      for (std::size_t i = it->second + 1; i < out.size(); ++i) {
        pos.erase(out[i]);
      }
      out.resize(it->second + 1);
    } else {
      pos[v] = out.size();
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

Vrr::PairKey Vrr::KeyOf(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<PairKey>(a) << 32) | b;
}

Vrr::Vrr(const Graph& g, const Params& params, int vset_half)
    : g_(&g), names_(NameTable::Default(g.num_nodes())),
      vset_half_(vset_half) {
  const NodeId n = g.num_nodes();
  joined_.assign(n, 0);
  entries_.resize(n);
  if (n == 0) return;
  stats_ = &build_stats_;

  // Join order: grow the joined component outward from a random seed
  // (each step admits a random node physically adjacent to the component).
  Rng rng(params.seed ^ 0x7bb0c0ffee123ULL);
  std::vector<NodeId> frontier;
  std::vector<char> in_frontier(n, 0);
  const NodeId seed_node = static_cast<NodeId>(rng.NextBelow(n));
  frontier.push_back(seed_node);
  in_frontier[seed_node] = 1;
  while (!frontier.empty()) {
    const std::size_t pick = rng.NextBelow(frontier.size());
    const NodeId x = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    Join(x);
    for (const Neighbor& nb : g.neighbors(x)) {
      if (!joined_[nb.to] && !in_frontier[nb.to]) {
        in_frontier[nb.to] = 1;
        frontier.push_back(nb.to);
      }
    }
  }

  stats_ = nullptr;

  // Diagnostics: mean stored path length across live pairs.
  double hops = 0;
  // Summing integer-valued doubles is exact, hence order-free.
  // disco-lint: allow(unordered-iter): exact integer sum, any order works
  for (const auto& [key, path] : pair_paths_) {
    hops += static_cast<double>(path.size() - 1);
  }
  build_stats_.mean_setup_hops =
      pair_paths_.empty() ? 0 : hops / static_cast<double>(pair_paths_.size());
}

void Vrr::Join(NodeId x) {
  const std::pair<HashValue, NodeId> me{names_.hash(x), x};
  const std::size_t m = ring_.size();
  if (m == 0) {
    joined_[x] = 1;
    ring_.push_back(me);
    return;
  }

  // x's vset targets, read off the ring *before* x becomes active: while
  // its own paths are being set up, a joining node must not attract or
  // forward traffic (it has no entries yet), exactly as in the protocol.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), me) - ring_.begin());
  auto pre = [&](std::ptrdiff_t idx) {
    return ring_[((idx % static_cast<std::ptrdiff_t>(m)) + m) % m].second;
  };
  std::vector<NodeId> targets;
  for (int d = 0; d < vset_half_; ++d) {
    const NodeId succ = pre(static_cast<std::ptrdiff_t>(i) + d);
    const NodeId pred = pre(static_cast<std::ptrdiff_t>(i) - 1 - d);
    for (const NodeId y : {succ, pred}) {
      if (std::find(targets.begin(), targets.end(), y) == targets.end()) {
        targets.push_back(y);
      }
    }
  }
  for (const NodeId y : targets) SetupPair(x, y);

  // Now x goes live on the ring.
  joined_[x] = 1;
  ring_.insert(ring_.begin() + static_cast<std::ptrdiff_t>(i), me);
  const std::size_t k = ring_.size();
  auto at = [&](std::ptrdiff_t idx) {
    const std::size_t mm = ring_.size();
    return ring_[((idx % static_cast<std::ptrdiff_t>(mm)) + mm) % mm]
        .second;
  };
  const std::ptrdiff_t pos = static_cast<std::ptrdiff_t>(i);

  // Displaced pairs: nodes that were within vset range of each other
  // across the insertion point but are now too far apart on the ring.
  if (static_cast<int>(k) > 2 * vset_half_ + 1) {
    for (int a = 1; a <= vset_half_; ++a) {
      for (int b = 1; b <= vset_half_; ++b) {
        if (a + b > vset_half_) {  // ring distance grew past the vset
          TeardownPair(at(pos - a), at(pos + b));
        }
      }
    }
  }
}

void Vrr::SetupPair(NodeId x, NodeId y) {
  const PairKey key = KeyOf(x, y);
  if (pair_paths_.count(key)) return;

  // The setup message routes over the current virtual network; the walk it
  // takes *is* the stored path — VRR never re-optimizes it.
  std::vector<NodeId> walk = GreedyWalk(x, y);
  if (walk.empty() || walk.back() != y) {
    // Rescue (rare; real VRR retries via other pivots): use the physical
    // shortest path so the ring invariant survives.
    ++build_stats_.setup_fallbacks;
    walk = Dijkstra(*g_, x).PathTo(y);
    if (walk.empty()) return;  // physically unreachable: nothing to do
  }
  StorePath(key, StripLoops(walk));
  ++build_stats_.pairs_set_up;
}

void Vrr::StorePath(PairKey key, const std::vector<NodeId>& path) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    PathEntry e;
    e.endpoint_a = path.front();
    e.endpoint_b = path.back();
    e.next_toward_a = (i == 0) ? kInvalidNode : path[i - 1];
    e.next_toward_b = (i + 1 == path.size()) ? kInvalidNode : path[i + 1];
    entries_[path[i]][key] = e;
  }
  pair_paths_[key] = path;
}

void Vrr::TeardownPair(NodeId a, NodeId b) {
  const PairKey key = KeyOf(a, b);
  const auto it = pair_paths_.find(key);
  if (it == pair_paths_.end()) return;
  for (const NodeId v : it->second) entries_[v].erase(key);
  pair_paths_.erase(it);
  ++build_stats_.pairs_torn_down;
}

std::vector<NodeId> Vrr::GreedyWalk(NodeId start, NodeId target) const {
  const HashValue ht = names_.hash(target);
  const std::size_t hop_limit = 16u * g_->num_nodes() + 64;
  std::vector<NodeId> walk{start};
  NodeId cur = start;
  NodeId committed = kInvalidNode;
  // The pair path being followed toward `committed`; sticking with one
  // path until the commitment improves keeps the walk loop-free even when
  // several stored paths share an endpoint.
  PairKey committed_key = 0;
  bool have_key = false;

  while (cur != target && walk.size() < hop_limit) {
    NodeId best = committed;
    auto better = [&](NodeId cand) {
      if (cand == kInvalidNode || !joined_[cand]) return false;
      if (best == kInvalidNode) return true;
      const std::uint64_t dc = RingDistance(names_.hash(cand), ht);
      const std::uint64_t db = RingDistance(names_.hash(best), ht);
      return dc < db || (dc == db && cand < best);
    };
    // better() imposes a strict total order (ring distance, id tiebreak),
    // so this min-scan yields the same winner in any iteration order.
    // disco-lint: allow(unordered-iter): min under a strict total order
    for (const auto& [key, e] : entries_[cur]) {
      (void)key;
      if (better(e.endpoint_a)) best = e.endpoint_a;
      if (better(e.endpoint_b)) best = e.endpoint_b;
    }
    // Physical neighbors double as 1-hop endpoints.
    for (const Neighbor& nb : g_->neighbors(cur)) {
      if (better(nb.to)) best = nb.to;
    }
    if (best == kInvalidNode || best == cur) {
      if (stats_ != nullptr) {
        ++(best == kInvalidNode ? stats_->fail_no_candidate
                                : stats_->fail_stuck);
      }
      return {};
    }
    if (best != committed) {
      committed = best;
      have_key = false;
    }

    NodeId next = kInvalidNode;
    if (have_key) {
      const auto it = entries_[cur].find(committed_key);
      if (it != entries_[cur].end()) {
        const PathEntry& e = it->second;
        next = (e.endpoint_a == committed) ? e.next_toward_a
                                           : e.next_toward_b;
      }
    }
    if (next == kInvalidNode) {
      // This first-match path pick IS order-dependent, but every golden
      // baseline (fig04/sweep VRR columns) pins the current stdlib's
      // deterministic iteration order; reorder only with a golden refresh.
      // disco-lint: allow(unordered-iter): golden outputs pin this order
      for (const auto& [key, e] : entries_[cur]) {
        if (e.endpoint_a == committed && e.next_toward_a != kInvalidNode) {
          next = e.next_toward_a;
          committed_key = key;
          have_key = true;
          break;
        }
        if (e.endpoint_b == committed && e.next_toward_b != kInvalidNode) {
          next = e.next_toward_b;
          committed_key = key;
          have_key = true;
          break;
        }
      }
    }
    if (next == kInvalidNode) {
      // committed must then be a physical neighbor.
      bool adjacent = false;
      for (const Neighbor& nb : g_->neighbors(cur)) {
        if (nb.to == committed) adjacent = true;
      }
      if (!adjacent) {
        if (stats_ != nullptr) ++stats_->fail_dead_entry;
        return {};
      }
      next = committed;
      have_key = false;
    }
    walk.push_back(next);
    cur = next;
  }
  if (cur != target) {
    if (stats_ != nullptr) ++stats_->fail_hop_limit;
    return {};
  }
  return walk;
}

Route Vrr::RoutePacket(NodeId s, NodeId t) const {
  Route r;
  if (s == t) {
    r.path = {s};
    r.length = 0;
    return r;
  }
  std::vector<NodeId> walk = GreedyWalk(s, t);
  if (walk.empty()) return Route{};
  r.path = std::move(walk);
  r.length = PathLength(*g_, r.path);
  return r;
}

std::vector<Vrr::PathEntry> Vrr::EntriesAt(NodeId v) const {
  std::vector<PathEntry> out;
  out.reserve(entries_[v].size());
  // disco-lint: allow(unordered-iter): callers assert per-entry properties
  for (const auto& [key, e] : entries_[v]) out.push_back(e);
  return out;
}

StateBreakdown Vrr::State(NodeId v) const {
  StateBreakdown b;
  b.vset_entries = entries_[v].size();
  return b;
}

}  // namespace disco
