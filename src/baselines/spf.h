// Shortest-path routing (the "path vector" row of the evaluation): the
// Ω(n)-state baseline every compact scheme is measured against. Stretch is
// 1 by definition; state is one FIB entry per destination; congestion is
// the shortest-path reference curve of Fig. 4/5/10.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/route.h"
#include "core/state.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace disco {

class ShortestPathRouting {
 public:
  explicit ShortestPathRouting(const Graph& g,
                               std::size_t cache_capacity = 256);

  /// The shortest path s -> t (ties broken deterministically). Safe to
  /// call concurrently (the destination-tree cache is lock-protected).
  Route RoutePacket(NodeId s, NodeId t);

  /// n FIB entries per node, the path-vector data plane.
  StateBreakdown State(NodeId v) const;

 private:
  std::shared_ptr<const ShortestPathTree> TreeOf(NodeId dest);

  const Graph* g_;
  std::size_t capacity_;
  std::mutex mu_;
  std::list<NodeId> lru_;
  struct Entry {
    std::shared_ptr<const ShortestPathTree> tree;
    std::list<NodeId>::iterator lru_pos;
  };
  std::unordered_map<NodeId, Entry> cache_;
};

}  // namespace disco
