// Virtual Ring Routing (Caesar et al., SIGCOMM'06 [9]) — the paper's
// DHT-inspired comparison point for routing on flat names.
//
// Nodes are arranged in a virtual ring by hashed name. Each node maintains
// a virtual neighbor set (vset) of r = 4 nodes (its 2 closest ring
// successors and 2 predecessors) and keeps a *physical* path to each vset
// member; every node along such a path stores a routing entry for it.
// Packets are forwarded greedily: each node picks, among the path endpoints
// it has entries for (and its physical neighbors), the one whose id is
// ring-closest to the destination, and forwards along the stored path.
//
// Construction follows the protocol: nodes join one at a time, growing a
// connected component from a random seed (§5.1 of the Disco paper: "VRR's
// converged state depends on the order of node joins"). A joining node sets
// up paths to its new vset members by routing the setup message over the
// *current* virtual network — and VRR never re-optimizes an established
// path. That is why its state and stretch have no bounds: setup walks
// meander (entries pile up on central nodes, up to Θ(n^2) in theory) and a
// single virtual hop can cross the whole network. Pairs displaced by later
// joins are torn down, but the surviving paths keep their join-time shape.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/names.h"
#include "core/route.h"
#include "core/state.h"
#include "graph/graph.h"
#include "routing/params.h"

namespace disco {

class Vrr {
 public:
  /// `vset_half`: ring neighbors kept on each side (2 ⇒ r = 4, the paper's
  /// setting).
  Vrr(const Graph& g, const Params& params, int vset_half = 2);

  const Graph& graph() const { return *g_; }
  const NameTable& names() const { return names_; }

  /// One stored path entry at a node.
  struct PathEntry {
    NodeId endpoint_a = kInvalidNode;
    NodeId endpoint_b = kInvalidNode;
    NodeId next_toward_a = kInvalidNode;  // kInvalidNode at endpoint a
    NodeId next_toward_b = kInvalidNode;
  };

  /// The vset-path entries currently stored at v.
  std::vector<PathEntry> EntriesAt(NodeId v) const;

  /// Greedy virtual-ring forwarding from s to t. VRR has no first/later
  /// distinction — every packet routes the same way.
  Route RoutePacket(NodeId s, NodeId t) const;

  StateBreakdown State(NodeId v) const;

  /// Construction diagnostics.
  struct BuildStats {
    std::size_t pairs_set_up = 0;
    std::size_t pairs_torn_down = 0;
    std::size_t setup_fallbacks = 0;  // setups that needed a rescue path
    double mean_setup_hops = 0;       // stored path length per live pair
    // failure-mode diagnostics for setup walks
    std::size_t fail_no_candidate = 0;
    std::size_t fail_stuck = 0;
    std::size_t fail_dead_entry = 0;
    std::size_t fail_hop_limit = 0;
  };
  const BuildStats& build_stats() const { return build_stats_; }

 private:
  using PairKey = std::uint64_t;
  static PairKey KeyOf(NodeId a, NodeId b);

  void Join(NodeId x);
  void SetupPair(NodeId x, NodeId y);
  void TeardownPair(NodeId a, NodeId b);
  void StorePath(PairKey key, const std::vector<NodeId>& path);

  /// Greedy walk from `start` toward the node with hash `target`; empty on
  /// failure. Candidates: stored entries plus joined physical neighbors.
  std::vector<NodeId> GreedyWalk(NodeId start, NodeId target) const;

  const Graph* g_;
  NameTable names_;
  int vset_half_;

  std::vector<char> joined_;
  std::vector<std::pair<HashValue, NodeId>> ring_;  // joined, sorted by hash
  // Deliberately unordered (see the waivers in vrr.cpp): GreedyWalk's
  // committed-path tiebreak scans entries first-match, and the converged
  // VRR state in every golden baseline is pinned to the current stdlib's
  // iteration order. Switching to an ordered map changes routes — do it
  // only together with a golden-output refresh.
  std::vector<std::unordered_map<PairKey, PathEntry>> entries_;
  std::unordered_map<PairKey, std::vector<NodeId>> pair_paths_;
  BuildStats build_stats_;
  // Non-null only while the constructor's setup walks run, so the failure
  // counters track construction rather than data-plane routing.
  BuildStats* stats_ = nullptr;
};

}  // namespace disco
