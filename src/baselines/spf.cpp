#include "baselines/spf.h"

#include <algorithm>

namespace disco {

ShortestPathRouting::ShortestPathRouting(const Graph& g,
                                         std::size_t cache_capacity)
    : g_(&g), capacity_(std::max<std::size_t>(cache_capacity, 1)) {}

std::shared_ptr<const ShortestPathTree> ShortestPathRouting::TreeOf(
    NodeId dest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(dest);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.tree;
    }
  }
  // Compute unlocked so concurrent misses on distinct destinations run
  // their Dijkstras in parallel; a racing duplicate is harmless.
  auto tree = std::make_shared<const ShortestPathTree>(Dijkstra(*g_, dest));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(dest);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.tree;
  }
  lru_.push_front(dest);
  cache_.emplace(dest, Entry{tree, lru_.begin()});
  if (cache_.size() > capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return tree;
}

Route ShortestPathRouting::RoutePacket(NodeId s, NodeId t) {
  Route r;
  // Tree rooted at t: path t -> s reversed equals s -> t (undirected).
  r.path = TreeOf(t)->PathTo(s);
  std::reverse(r.path.begin(), r.path.end());
  if (r.path.empty()) return Route{};
  r.length = PathLength(*g_, r.path);
  return r;
}

StateBreakdown ShortestPathRouting::State(NodeId) const {
  StateBreakdown b;
  b.fib_entries = g_->num_nodes();
  return b;
}

}  // namespace disco
