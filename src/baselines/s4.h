// S4 (Mao et al., NSDI'07 [34]) — the closest prior distributed compact
// routing protocol and the paper's main comparison point.
//
// S4 adapts the Thorup–Zwick scheme of [44] §3: uniform-random landmarks
// plus per-node *clusters* — C(v) = {w : d(v,w) ≤ d(w, l_w)}, the nodes
// closer to v than to their own landmark. Routing goes toward l_t and cuts
// over to the direct path at the first node whose cluster contains t
// ("To-Destination" shortcutting is integral to S4), giving stretch ≤ 3
// once the destination's address is known.
//
// Two properties the evaluation exposes:
//  * clusters are unbounded — uniform-random landmark selection breaks the
//    TZ state bound, so central nodes can hold Θ(n) entries (footnote 6's
//    tree, and the Internet-like maps in Fig. 2/7);
//  * the first packet detours through the consistent-hashing resolution
//    landmark (S4's location service), so first-packet stretch is
//    unbounded (Fig. 3's S4-First tails).
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/name_resolution.h"
#include "core/names.h"
#include "core/route.h"
#include "core/state.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "routing/address.h"
#include "routing/landmark_trees.h"
#include "routing/landmarks.h"
#include "routing/params.h"
#include "routing/vicinity.h"

namespace disco {

class S4 {
 public:
  S4(const Graph& g, const Params& params);

  const Graph& graph() const { return *g_; }
  const LandmarkSet& landmarks() const { return landmarks_; }
  const AddressBook& addresses() const { return addresses_; }
  const NameTable& names() const { return names_; }
  const ResolutionDb& resolution() const { return resolution_; }

  /// Fans every landmark-tree Dijkstra out over the thread pool up front
  /// (when the whole set fits in the cache). Harness-level opt-in for
  /// sweeps that will touch most landmarks; ad-hoc routing stays lazy.
  void PrewarmLandmarkTrees();

  /// d(t, l_t): the cluster-inclusion radius of destination t.
  Dist ClusterRadius(NodeId t) const {
    return addresses_.landmark_distance(t);
  }

  /// The "ball" of t: every node whose cluster contains t, i.e. all u with
  /// d(u,t) ≤ d(t,l_t), with parents for materializing direct paths.
  /// Memoized per destination.
  std::shared_ptr<const Vicinity> Ball(NodeId t);

  /// Routes a packet when s already knows t's address (post-resolution):
  /// toward l_t, cutting to the direct path at the first node whose
  /// cluster holds t. Stretch ≤ 3.
  Route RouteLater(NodeId s, NodeId t);

  /// First packet of a flow: s only knows the flat name, so the packet
  /// detours via the resolution landmark owning h(t) (S4's location
  /// service), which forwards it with full knowledge of t's address.
  Route RouteFirst(NodeId s, NodeId t);

  /// Data-plane state: landmark routes + cluster entries + label map +
  /// hosted resolution records. Cluster sizes for *all* nodes are computed
  /// on first use (one bounded Dijkstra per node, radius d(w, l_w)).
  StateBreakdown State(NodeId v);

  /// Cluster sizes for every node (the Fig. 2 state distribution). The
  /// per-node ball searches fan out over the runtime thread pool; counts
  /// are integer sums, so the result is thread-count-invariant.
  const std::vector<std::size_t>& ClusterSizes();

 private:
  /// Cluster-inclusion radius with a relative epsilon (see s4.cpp).
  Dist BallRadius(NodeId t) const;

  std::vector<NodeId> PlanVia(NodeId from, NodeId t);

  const Graph* g_;
  Params params_;
  LandmarkSet landmarks_;
  AddressBook addresses_;
  LandmarkTreeCache trees_;
  NameTable names_;
  ResolutionDb resolution_;

  // Guards the memo structures below; routing entry points are safe to
  // call concurrently (the ball/cluster computations themselves run
  // unlocked).
  std::mutex mu_;
  std::vector<std::size_t> cluster_sizes_;  // lazily filled
  // Memoized destination balls (routing touches few destinations but
  // repeatedly).
  std::unordered_map<NodeId, std::shared_ptr<const Vicinity>> balls_;
};

}  // namespace disco
