// Shared between executor.cpp (job numbering, thread backend) and
// process_executor.cpp (process pool, worker serve loop). Not part of the
// public exec API.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "exec/executor.h"

namespace disco::exec::internal {

/// Consumes the next process-wide Run-call number. Every Executor::Run
/// implementation claims exactly one, so driver and worker processes —
/// which execute the same deterministic sequence of Run calls — agree on
/// which call each job number names.
std::size_t ClaimJobNumber();

/// The job this worker process was told to serve (--worker=<job>).
std::size_t WorkerJob();

/// In-process task evaluation over the runtime pool; the body of the
/// thread backend, also used by workers to locally evaluate fan-outs that
/// precede their assigned job.
RunResult RunInProcess(std::size_t count, const TaskFn& fn,
                       std::vector<std::string>* results,
                       runtime::ThreadPool* pool);

}  // namespace disco::exec::internal

namespace disco::exec {

std::unique_ptr<Executor> MakeProcessExecutor(const ExecOptions& opts);
std::unique_ptr<Executor> MakeWorkerServer(const ExecOptions& opts);
std::unique_ptr<Executor> MakeNetExecutor(const ExecOptions& opts);

}  // namespace disco::exec
