// Network executor backend (--backend=net): a coordinator that streams
// wire-framed tasks over TCP to disco_workerd daemons (net_daemon.h).
//
// Each ExecOptions::hosts entry is one worker slot. For every slot the
// coordinator connects to the daemon, checks its kHello protocol
// version, and sends a kSpawn frame carrying this process's own argv
// plus --worker=<job> — the daemon execs exactly the re-invocation the
// procs backend forks locally, so a remote worker follows the same
// argv-determined code path and the run's bytes cannot depend on where a
// task executed. From there the transport is the same framed stream the
// pipe backend uses, relayed verbatim by the daemon.
//
// Failure policy is the shared TaskScheduler's (retry budgets, straggler
// duplication), plus the transport's own recovery: a lost connection
// charges the in-flight task one failed attempt (it is requeued onto
// other slots immediately) while the slot reconnects with bounded
// exponential backoff — so a SIGKILLed worker costs one retry and the
// slot comes back with a fresh worker, a SIGKILLed daemon drains its
// slot's reconnect budget and the run finishes on surviving daemons, and
// a daemon restarted within the backoff window picks its slot back up
// mid-run.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exec/exec_internal.h"
#include "exec/net_daemon.h"
#include "exec/task_scheduler.h"
#include "exec/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace disco::exec {
namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& ReconnectCounter() {
  static obs::Counter* c = &obs::Global().RegisterCounter(
      "disco_exec_net_reconnects_total",
      "Successful daemon (re)connections by the net backend", "exec net",
      "reconnects");
  return *c;
}

constexpr int kConnectTimeoutMs = 1000;  // per TCP connect attempt
constexpr int kHelloTimeoutMs = 5000;    // daemon accept -> hello frame

bool WriteAllFd(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Non-blocking connect with a deadline, restored to blocking on success.
int ConnectWithTimeout(const std::string& host, int port,
                       std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                &res);
  if (gai != 0) {
    *error = "resolve " + host + ": " + ::gai_strerror(gai);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family,
                  ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, kConnectTimeoutMs);
      int so_error = 0;
      socklen_t len = sizeof so_error;
      if (ready == 1 &&
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
          so_error == 0) {
        break;
      }
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    *error = "connect " + host + ":" + port_str + " failed";
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

// One daemon endpoint = one worker slot.
struct NetSlot {
  std::string host;
  int port = 0;
  std::size_t sched_slot = 0;
  int fd = -1;
  FrameBuffer frames;
  bool connected = false;
  bool abandoned = false;        // reconnect budget exhausted
  int attempts_left = 0;         // remaining consecutive connect tries
  int backoff_ms = 0;            // delay before the next try
  Clock::time_point retry_at;    // when the next try is due
};

class NetExecutor : public Executor {
 public:
  explicit NetExecutor(const ExecOptions& opts)
      : worker_argv_(opts.worker_argv),
        hosts_(opts.hosts),
        max_retries_(EffectiveMaxRetries(opts.max_retries)),
        straggler_ms_(EffectiveStragglerMs(opts.straggler_ms)),
        backoff_ms_(EffectiveNetBackoffMs()),
        backoff_max_ms_(EffectiveNetBackoffMaxMs()),
        reconnects_(EffectiveNetReconnects()) {}

  RunResult Run(std::size_t count, const TaskFn& fn,
                std::vector<std::string>* results) override;

 private:
  // Connect + hello + spawn handshake for one slot. On success the slot
  // is connected with a worker running behind it.
  bool TryConnect(NetSlot* s, std::size_t job, std::string* why);

  void CloseSlot(NetSlot* s) {
    if (s->fd >= 0) ::close(s->fd);
    s->fd = -1;
    s->connected = false;
  }

  RunResult Fail(std::vector<NetSlot>* slots, std::size_t task,
                 bool task_known, std::string message) {
    for (NetSlot& s : *slots) CloseSlot(&s);
    RunResult r;
    r.ok = false;
    r.failed_task = task;
    r.task_known = task_known;
    r.error = std::move(message);
    return r;
  }

  RunResult FailFromScheduler(std::vector<NetSlot>* slots,
                              const TaskScheduler& sched) {
    return Fail(slots, sched.failed_task(), sched.task_known(),
                sched.error());
  }

  // Lost connection: charge the in-flight task, arm the backoff timer.
  // False when the charge exhausted the task's retries.
  bool HandleSlotLoss(NetSlot* s, TaskScheduler* sched,
                      const std::string& why, Clock::time_point now) {
    CloseSlot(s);
    if (!sched->OnSlotDeath(s->sched_slot, why)) return false;
    s->attempts_left = reconnects_;
    s->backoff_ms = backoff_ms_;
    s->retry_at = now + std::chrono::milliseconds(s->backoff_ms);
    return true;
  }

  const std::vector<std::string> worker_argv_;
  const std::vector<std::string> hosts_;
  const int max_retries_;
  const int straggler_ms_;
  const int backoff_ms_;
  const int backoff_max_ms_;
  const int reconnects_;
};

bool NetExecutor::TryConnect(NetSlot* s, std::size_t job,
                             std::string* why) {
  int fd = ConnectWithTimeout(s->host, s->port, why);
  if (fd < 0) return false;

  // Hello: refuse a daemon speaking another protocol era before handing
  // it a command to exec.
  FrameBuffer frames;
  Frame hello;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(kHelloTimeoutMs);
  for (;;) {
    std::string parse_error;
    const FrameBuffer::Status st = frames.Next(&hello, &parse_error);
    if (st == FrameBuffer::Status::kFrame) break;
    if (st == FrameBuffer::Status::kMalformed) {
      *why = "daemon handshake: " + parse_error;
      ::close(fd);
      return false;
    }
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - Clock::now());
    if (remaining.count() <= 0) {
      *why = "daemon hello timed out";
      ::close(fd);
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno != EINTR) {
      *why = std::string("poll: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (ready <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      *why = "daemon closed during handshake";
      ::close(fd);
      return false;
    }
    frames.Append(chunk, static_cast<std::size_t>(n));
  }
  if (hello.type != static_cast<char>(FrameType::kHello) ||
      hello.index != kWireProtocolVersion) {
    *why = "daemon protocol mismatch (got version " +
           std::to_string(hello.index) + ", want " +
           std::to_string(kWireProtocolVersion) + ")";
    ::close(fd);
    return false;
  }

  // Spawn the worker: this process's argv + --worker=<job>, environment
  // left to the daemon's host (remote machines size their own pools).
  std::vector<std::string> argv = worker_argv_;
  argv.push_back(WorkerFlag(job));
  const std::string spawn =
      EncodeFrame(static_cast<char>(FrameType::kSpawn), 0,
                  EncodeSpawnPayload(argv, {}));
  if (!WriteAllFd(fd, spawn.data(), spawn.size())) {
    *why = "daemon connection lost sending spawn";
    ::close(fd);
    return false;
  }

  s->fd = fd;
  s->frames = FrameBuffer{};  // fresh connection, fresh stream
  s->connected = true;
  return true;
}

RunResult NetExecutor::Run(std::size_t count, const TaskFn& fn,
                           std::vector<std::string>* results) {
  (void)fn;  // tasks are evaluated in remote worker processes, never here
  const std::size_t job = internal::ClaimJobNumber();
  if (count == 0) {
    results->clear();
    return RunResult{};
  }

  DISCO_TRACE_SPAN("exec.run.net");
  std::vector<NetSlot> slots;
  TaskScheduler sched(count, max_retries_, straggler_ms_, results);
  if (hosts_.empty()) {
    return Fail(&slots, 0, false,
                "net backend needs at least one --hosts= daemon endpoint");
  }
  for (const std::string& spec : hosts_) {
    NetSlot s;
    if (!ParseHostPort(spec, &s.host, &s.port)) {
      return Fail(&slots, 0, false,
                  "bad --hosts entry \"" + spec + "\" (want host:port)");
    }
    s.sched_slot = sched.AddSlot();
    // Slots start disconnected: scheduler-dead until the first handshake
    // succeeds (ReviveSlot), due for an immediate connect attempt.
    sched.OnSlotDeath(s.sched_slot, "not yet connected");
    s.attempts_left = std::max(1, reconnects_);
    s.backoff_ms = std::max(1, backoff_ms_);
    s.retry_at = Clock::now();
    slots.push_back(std::move(s));
  }

  // A daemon that vanishes mid-write must surface as EPIPE, not a
  // process-killing SIGPIPE (same guard as the pipe transport).
  struct SigpipeGuard {
    void (*previous)(int);
    SigpipeGuard() : previous(std::signal(SIGPIPE, SIG_IGN)) {}
    ~SigpipeGuard() { std::signal(SIGPIPE, previous); }
  } sigpipe_guard;

  while (!sched.done()) {
    const Clock::time_point now = Clock::now();

    // Reconnect pass: every disconnected slot whose backoff timer
    // expired gets one attempt; failures re-arm the timer with doubled
    // (bounded) delay until the attempt budget runs dry.
    for (NetSlot& s : slots) {
      if (s.connected || s.abandoned || now < s.retry_at) continue;
      std::string why;
      if (TryConnect(&s, job, &why)) {
        sched.ReviveSlot(s.sched_slot);
        s.attempts_left = std::max(1, reconnects_);
        s.backoff_ms = std::max(1, backoff_ms_);
        ReconnectCounter().Inc();
        obs::Log(obs::LogLevel::kInfo, "[exec] connected to daemon %s:%d",
                 s.host.c_str(), s.port);
      } else if (--s.attempts_left <= 0) {
        s.abandoned = true;
        obs::Log(obs::LogLevel::kWarn,
                 "[exec] giving up on daemon %s:%d: %s", s.host.c_str(),
                 s.port, why.c_str());
      } else {
        s.retry_at = now + std::chrono::milliseconds(s.backoff_ms);
        s.backoff_ms = std::min(s.backoff_ms * 2,
                                std::max(1, backoff_max_ms_));
      }
    }

    bool any_usable = false;
    for (const NetSlot& s : slots) {
      if (s.connected || !s.abandoned) {
        any_usable = true;
        break;
      }
    }
    if (!any_usable) {
      const std::size_t first_unfinished = sched.FirstUnfinished();
      return Fail(&slots, first_unfinished, true,
                  "all daemons lost or unreachable with task " +
                      std::to_string(first_unfinished) + " unfinished");
    }

    // Dispatch pass (same demand-driven policy as the pipe transport).
    for (NetSlot& s : slots) {
      if (!s.connected ||
          sched.task_of(s.sched_slot) != TaskScheduler::kNoTask) {
        continue;
      }
      const std::size_t task = sched.NextTask(s.sched_slot, now);
      if (task == TaskScheduler::kNoTask) continue;
      const std::string frame = EncodeFrame(
          static_cast<char>(FrameType::kTask), task, std::string());
      if (!WriteAllFd(s.fd, frame.data(), frame.size())) {
        if (!HandleSlotLoss(&s, &sched,
                            "daemon connection lost mid-dispatch", now)) {
          return FailFromScheduler(&slots, sched);
        }
      }
    }

    // Poll: connected slots for frames, with a timeout short enough to
    // service both the straggler scan and the earliest reconnect timer.
    std::vector<pollfd> fds;
    std::vector<NetSlot*> polled;
    for (NetSlot& s : slots) {
      if (!s.connected) continue;
      fds.push_back({s.fd, POLLIN, 0});
      polled.push_back(&s);
    }
    int timeout = straggler_ms_ > 0
                      ? std::max(10, std::min(straggler_ms_, 200))
                      : -1;
    for (const NetSlot& s : slots) {
      if (s.connected || s.abandoned) continue;
      const auto until = std::chrono::duration_cast<
          std::chrono::milliseconds>(s.retry_at - now);
      const int ms =
          static_cast<int>(std::max<long long>(1, until.count()));
      timeout = timeout < 0 ? ms : std::min(timeout, ms);
    }
    if (fds.empty()) {
      // Nothing connected yet: just wait out the shortest backoff.
      ::poll(nullptr, 0, timeout < 0 ? 10 : timeout);
      continue;
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) {
      return Fail(&slots, 0, false,
                  std::string("poll: ") + std::strerror(errno));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      NetSlot* s = polled[i];
      char chunk[65536];
      const ssize_t n = ::read(s->fd, chunk, sizeof chunk);
      if (n > 0) {
        s->frames.Append(chunk, static_cast<std::size_t>(n));
        for (;;) {
          Frame f;
          std::string parse_error;
          const FrameBuffer::Status st = s->frames.Next(&f, &parse_error);
          if (st == FrameBuffer::Status::kNeedMore) break;
          if (st == FrameBuffer::Status::kMalformed) {
            return Fail(&slots, 0, false,
                        "malformed frame from daemon " + s->host + ":" +
                            std::to_string(s->port) + ": " + parse_error);
          }
          bool ok;
          if (f.type == static_cast<char>(FrameType::kResult)) {
            ok = sched.OnResult(s->sched_slot, f.index,
                                std::move(f.payload));
          } else if (f.type == static_cast<char>(FrameType::kTaskError)) {
            ok = sched.OnTaskError(s->sched_slot, f.index, f.payload);
          } else if (f.type ==
                     static_cast<char>(FrameType::kProtocolError)) {
            ok = sched.OnProtocolError(s->sched_slot, f.payload);
          } else {
            return Fail(&slots, 0, false,
                        std::string("unexpected frame type '") + f.type +
                            "' from daemon " + s->host + ":" +
                            std::to_string(s->port));
          }
          if (!ok) return FailFromScheduler(&slots, sched);
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        if (!HandleSlotLoss(s, &sched, "daemon connection lost mid-task",
                            Clock::now())) {
          return FailFromScheduler(&slots, sched);
        }
      }
    }
  }

  // Done. A slot still running a stale straggler duplicate is closed
  // outright — its daemon kills and reaps the worker. Idle slots get a
  // half-close (SHUT_WR): the daemon turns that into worker-stdin EOF, the
  // worker answers with one kObs frame (trace sidecar path on the daemon's
  // machine + Prometheus metrics), and the daemon closes the connection
  // after the worker exits. Drain those goodbyes with a bounded deadline
  // so remote counters aggregate into this run's [metrics] dump.
  for (NetSlot& s : slots) {
    if (!s.connected) continue;
    if (sched.task_of(s.sched_slot) != TaskScheduler::kNoTask) {
      CloseSlot(&s);
      continue;
    }
    ::shutdown(s.fd, SHUT_WR);
  }
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<NetSlot*> polled;
    for (NetSlot& s : slots) {
      if (!s.connected) continue;
      fds.push_back({s.fd, POLLIN, 0});
      polled.push_back(&s);
    }
    if (fds.empty()) break;
    const long long remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(drain_deadline -
                                                              Clock::now())
            .count();
    if (remaining_ms <= 0) break;
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(std::min<long long>(
                                 remaining_ms, 200)));
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) break;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      NetSlot* s = polled[i];
      char chunk[65536];
      const ssize_t n = ::read(s->fd, chunk, sizeof chunk);
      if (n > 0) {
        s->frames.Append(chunk, static_cast<std::size_t>(n));
        for (;;) {
          Frame f;
          std::string parse_error;
          const FrameBuffer::Status st = s->frames.Next(&f, &parse_error);
          if (st == FrameBuffer::Status::kNeedMore) break;
          if (st == FrameBuffer::Status::kMalformed) {
            CloseSlot(s);  // run already succeeded; forfeit this slot's data
            break;
          }
          if (f.type == static_cast<char>(FrameType::kObs)) {
            std::string sidecar_path, metrics_text;
            if (ParseObsPayload(f.payload, &sidecar_path, &metrics_text)) {
              obs::RecordWorkerSidecar(sidecar_path);
              obs::Global().MergeFromPrometheusText(metrics_text);
              obs::Global().NoteMergedSource();
            }
          }
          // Anything else is a stale straggler result: ignore it.
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        CloseSlot(s);
      }
    }
  }
  for (NetSlot& s : slots) CloseSlot(&s);
  return RunResult{};
}

}  // namespace

std::unique_ptr<Executor> MakeNetExecutor(const ExecOptions& opts) {
  return std::make_unique<NetExecutor>(opts);
}

}  // namespace disco::exec
