// disco_workerd: the per-host worker daemon of the network executor
// backend (--backend=net).
//
// A daemon listens on one TCP endpoint and serves any number of
// concurrent coordinator connections. Each connection is one worker slot:
// on accept the daemon sends a kHello frame (protocol version), waits for
// the coordinator's kSpawn frame naming the worker argv (the
// coordinator's own command line plus --worker=<job> — exactly the
// re-invocation the procs backend forks locally), execs that command with
// the same fd plumbing as a local worker (stdin = task frames, stdout =
// /dev/null, fd 3 = result frames), and from then on is a pure byte pump:
// TCP bytes to the worker's stdin, worker fd-3 bytes back to TCP. The
// shared binary framing (exec/wire.h) is what makes verbatim relay
// correct — the daemon never re-parses task or result frames.
//
// Lifecycle: when the worker exits (task crash, SIGKILL, clean EOF
// death), the daemon closes that connection — the coordinator sees the
// loss, charges the in-flight task, and reconnects with backoff, at which
// point the daemon spawns a fresh worker. A coordinator that half-closes
// (shutdown(SHUT_WR), the finished-run goodbye) gets the graceful path:
// the daemon passes the EOF to the worker's stdin, relays the worker's
// final kObs frame (trace sidecar path + metrics) back, and closes the
// connection once the worker exits. A full close still kills the worker
// outright. The daemon runs until killed; SIGUSR1 dumps its metrics
// registry to stderr, SIGTERM/SIGINT shut it down cleanly (teardown,
// metrics dump, trace flush). Losing a daemon mid-run only costs its
// in-flight tasks one retry each, on surviving daemons.
//
// Trust model: the daemon execs whatever argv a connecting coordinator
// sends. Run it only on hosts and networks where every peer may already
// run arbitrary commands as the daemon's user (a lab cluster, localhost
// test rigs) — it is a compute harness, not a security boundary.
#pragma once

#include <string>

namespace disco::exec {

struct DaemonOptions {
  /// Address to bind ("127.0.0.1", "0.0.0.0", a hostname).
  std::string host = "127.0.0.1";
  /// TCP port; 0 lets the kernel pick one. The daemon prints
  /// "disco_workerd listening on <host>:<port>" (with the actual port)
  /// to stdout once ready — test harnesses parse that line.
  int port = 0;
};

/// Runs the daemon's accept/relay loop; blocks until a fatal setup error
/// (bind failure etc.). Returns a process exit code.
int RunWorkerDaemon(const DaemonOptions& opts);

/// Splits "host:port" (the --listen= / --hosts= syntax; the last ':'
/// separates the port so bracketless IPv6 still fails loudly rather than
/// silently). Returns false on a missing host, missing port, or a port
/// outside 1..65535 (0 allowed only when `allow_port_zero`).
bool ParseHostPort(const std::string& spec, std::string* host, int* port,
                   bool allow_port_zero = false);

}  // namespace disco::exec
