#include "exec/executor.h"

// disco-lint: allow-file(relaxed-atomic): g_next_job is a monotone Run-call
// counter advanced identically on driver and worker sides; its value is a
// pure function of how many Run calls happened, not of thread timing.

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <mutex>

#include "exec/exec_internal.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace disco::exec {
namespace {

// Process-wide Run-call numbering and worker-mode state. Workers and
// drivers share one binary, so both sides advance this counter through the
// same deterministic sequence of Run calls.
std::atomic<std::size_t> g_next_job{0};
bool g_worker_mode = false;
std::size_t g_worker_job = 0;

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  errno = 0;  // clamp-check like Args::Parse: ERANGE and > INT_MAX values
              // fall back to the default instead of silently truncating
              // through the cast (DISCO_EXEC_RETRIES=99999999999 must not
              // become some arbitrary wrapped retry budget)
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < 0 ||
      parsed > INT_MAX) {
    return def;
  }
  return static_cast<int>(parsed);
}

// In-process backend: ParallelForTasks over the runtime pool. Retry and
// straggler knobs do not apply — a task failure here is an exception,
// which is deterministic, so re-running it could only fail again.
class ThreadExecutor : public Executor {
 public:
  explicit ThreadExecutor(const ExecOptions& opts) : pool_(opts.pool) {}

  RunResult Run(std::size_t count, const TaskFn& fn,
                std::vector<std::string>* results) override {
    internal::ClaimJobNumber();
    DISCO_TRACE_SPAN("exec.run.threads");
    return internal::RunInProcess(count, fn, results, pool_);
  }

 private:
  runtime::ThreadPool* pool_;
};

}  // namespace

namespace internal {

std::size_t ClaimJobNumber() {
  return g_next_job.fetch_add(1, std::memory_order_relaxed);
}

std::size_t WorkerJob() { return g_worker_job; }

RunResult RunInProcess(std::size_t count, const TaskFn& fn,
                       std::vector<std::string>* results,
                       runtime::ThreadPool* pool) {
  results->assign(count, std::string());
  std::mutex mu;
  RunResult status;
  runtime::ParallelForTasks(
      count,
      [&](std::size_t i) {
        obs::Span task_span("exec.task");
        try {
          (*results)[i] = fn(i);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(mu);
          if (status.ok || i < status.failed_task) {
            status = {false, i, true,
                      "task " + std::to_string(i) + " failed: " + e.what()};
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (status.ok || i < status.failed_task) {
            status = {false, i, true,
                      "task " + std::to_string(i) +
                          " failed with a non-std exception"};
          }
        }
      },
      pool);
  return status;
}

}  // namespace internal

bool ParseBackend(const std::string& name, Backend* out) {
  if (name == "threads") {
    *out = Backend::kThreads;
    return true;
  }
  if (name == "procs") {
    *out = Backend::kProcs;
    return true;
  }
  if (name == "net") {
    *out = Backend::kNet;
    return true;
  }
  return false;
}

void EnterWorkerMode(std::size_t job) {
  g_worker_mode = true;
  g_worker_job = job;
  // If this process also parses --trace= (workers re-parse the driver's
  // argv), its flush must write a pid-tagged sidecar, never the merged
  // file. Order-independent with ConfigureTracing.
  obs::MarkTraceSidecarMode();
}

bool InWorkerMode() { return g_worker_mode; }

std::string WorkerFlag(std::size_t job) {
  return "--worker=" + std::to_string(job);
}

int EffectiveMaxRetries(int field) {
  return field >= 0 ? field : EnvInt("DISCO_EXEC_RETRIES", 2);
}

int EffectiveStragglerMs(int field) {
  return field >= 0 ? field : EnvInt("DISCO_EXEC_STRAGGLER_MS", 0);
}

int EffectiveNetBackoffMs() {
  return EnvInt("DISCO_EXEC_NET_BACKOFF_MS", 50);
}

int EffectiveNetBackoffMaxMs() {
  return EnvInt("DISCO_EXEC_NET_BACKOFF_MAX_MS", 2000);
}

int EffectiveNetReconnects() {
  return EnvInt("DISCO_EXEC_NET_RECONNECTS", 5);
}

void ResetJobNumberingForTest() {
  g_next_job.store(0, std::memory_order_relaxed);
  g_worker_mode = false;
  g_worker_job = 0;
}

std::unique_ptr<Executor> MakeExecutor(const ExecOptions& opts) {
  // A worker process serves (or locally evaluates) whatever Run calls it
  // reaches, regardless of the backend the flags name — the flags are the
  // parent's argv, echoed back at us.
  if (g_worker_mode) return MakeWorkerServer(opts);
  if (opts.backend == Backend::kProcs) return MakeProcessExecutor(opts);
  if (opts.backend == Backend::kNet) return MakeNetExecutor(opts);
  return std::make_unique<ThreadExecutor>(opts);
}

}  // namespace disco::exec
