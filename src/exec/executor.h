// Unified execution layer for the experiment harness.
//
// Every large run in this repository — sweep grids, figure benches,
// multi-trial scaling curves — is a fan-out of independent tasks where
// task i is a pure function of (argv, i) and returns a byte string (a TSV
// row, a serialized exec::TextBundle, a wire-encoded struct). An Executor
// runs such a fan-out and hands the results back in task order, so the
// caller's output is byte-identical no matter which backend executed it:
//
//   kThreads  in-process, over the runtime ThreadPool (parallel_for.h).
//   kProcs    a process pool: the current binary is re-invoked with
//             --worker=<job> appended to its own argv, task frames are
//             streamed to workers over pipes, and result frames stream
//             back. Failed tasks are retried on surviving workers (a
//             SIGKILLed worker's in-flight task is rescheduled), and
//             tasks still running past a deadline are speculatively
//             re-dispatched to idle workers — first result wins.
//   kNet      a TCP cluster: the driver (coordinator) connects to
//             disco_workerd daemons named by ExecOptions::hosts, asks
//             each to spawn the same --worker=<job> re-invocation the
//             procs backend forks locally, and streams the same frames
//             over the sockets. A lost connection charges the in-flight
//             task and is retried elsewhere while the coordinator
//             reconnects with bounded exponential backoff; retry budgets
//             and straggler duplication are the shared TaskScheduler's
//             (task_scheduler.h), identical to kProcs.
//
// The worker contract: a worker process parses the same argv as its
// parent, follows the same code path, and therefore reaches the same
// sequence of Executor::Run calls. Run calls are numbered per process;
// the worker serves the call whose number matches its --worker=<job> flag
// (earlier calls run in-process so any state derived from them exists),
// then exits. This is what lets one binary be both driver and worker with
// no separate task-description format: the task function itself is
// reconstructed from argv. Consequently the sequence of Run calls a
// binary makes must be deterministic given argv. A useful corollary:
// process-wide resources the arg parser opens are shared by the whole
// pool — e.g. --store= (src/store/) makes every worker resolve prebuilt
// landmark trees from the same artifact store instead of replaying
// construction, which is how paper-scale sweeps avoid per-worker
// Dijkstra storms.
//
// Worker wire protocol — one versioned binary framing (exec/wire.h,
// magic "DWX1": 4-byte magic, 1-byte type, u64 index, u64 length,
// payload) for every transport. It replaced the original "T/R/E"
// text-line protocol: text parsing meant a malformed request was echoed
// back through strtoull garbage and charged to whatever task the bytes
// happened to name.
//   driver -> worker (stdin / TCP):  kTask('T') index        run a task
//                                    EOF / close             exit cleanly
//   worker -> driver (fd 3 / TCP):   kResult('R') index + payload bytes
//                                    kTaskError('E') index + message —
//                                      charges one retry to that task
//                                    kProtocolError('B') + message — the
//                                      request stream itself was bad;
//                                      attributable to no task, it fails
//                                      the whole run
//   coordinator <-> daemon only:     kHello('H') index=protocol version,
//                                      daemon -> coordinator on accept
//                                    kSpawn('S') + argv/env payload,
//                                      coordinator -> daemon: fork/exec
//                                      the worker behind this connection
// Worker stdout is redirected to /dev/null (stray prints can't corrupt
// the frame stream); stderr is inherited for diagnostics. Under kNet the
// daemon relays worker frames to the coordinator byte-for-byte — the
// shared framing is what makes the daemon a pure byte pump.
//
// Env knobs (read when the matching ExecOptions field is left at -1):
//   DISCO_EXEC_RETRIES       re-runs allowed per task after its first
//                            failure (default 2, i.e. up to 3 attempts)
//   DISCO_EXEC_STRAGGLER_MS  deadline after which a running task is
//                            speculatively duplicated onto an idle
//                            worker (default 0 = disabled)
// Net-backend knobs (always env; no ExecOptions field):
//   DISCO_EXEC_NET_BACKOFF_MS      first reconnect delay after a lost
//                                  daemon connection (default 50)
//   DISCO_EXEC_NET_BACKOFF_MAX_MS  backoff ceiling; delays double up to
//                                  this bound (default 2000)
//   DISCO_EXEC_NET_RECONNECTS      consecutive failed (re)connect
//                                  attempts per daemon before that slot
//                                  is abandoned (default 5)
// All knobs are clamp-checked like Args::Parse numerics: garbage or
// out-of-int-range values fall back to the default instead of silently
// truncating.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"

namespace disco::exec {

/// Task i must be a pure function of the process's argv and i: the process
/// backend evaluates it in a different process, possibly more than once.
using TaskFn = std::function<std::string(std::size_t)>;

enum class Backend { kThreads, kProcs, kNet };

/// Parses "threads" / "procs" / "net"; returns false for anything else.
bool ParseBackend(const std::string& name, Backend* out);

struct ExecOptions {
  Backend backend = Backend::kThreads;
  /// Process backend: number of worker subprocesses (0 = the runtime's
  /// DefaultThreadCount()). Ignored by the thread backend, which sizes
  /// itself from the pool.
  std::size_t workers = 0;
  /// Re-runs allowed per task after its first failure; -1 reads
  /// DISCO_EXEC_RETRIES (default 2). Process backend only.
  int max_retries = -1;
  /// Straggler deadline in milliseconds; -1 reads DISCO_EXEC_STRAGGLER_MS
  /// (default 0 = never duplicate). Process backend only.
  int straggler_ms = -1;
  /// The command the process backend re-invokes for workers — normally
  /// this process's own argv, verbatim. "--worker=<job>" is appended.
  /// The net backend ships the same command to each daemon, which execs
  /// it on its own host (the binary must exist there at the same path).
  std::vector<std::string> worker_argv;
  /// Net backend: "host:port" daemon endpoints, one worker slot per
  /// entry (repeat an endpoint for more slots on that host).
  std::vector<std::string> hosts;
  /// Thread backend: bounds task-level concurrency (e.g. a ThreadPool(1)
  /// serializes whole tasks while their inner fan-outs still use the
  /// shared pool). nullptr = the shared pool.
  runtime::ThreadPool* pool = nullptr;
};

struct RunResult {
  bool ok = true;
  std::size_t failed_task = 0;  // meaningful when !ok and task_known
  bool task_known = false;
  std::string error;
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs tasks 0..count-1 and fills (*results)[i] with fn(i)'s bytes, in
  /// task order. On failure returns ok=false with the offending task (when
  /// attributable) and a message; results are then unspecified.
  ///
  /// Every Run call consumes one process-wide job number (all backends),
  /// keeping driver and worker numbering aligned — see the worker
  /// contract above.
  virtual RunResult Run(std::size_t count, const TaskFn& fn,
                        std::vector<std::string>* results) = 0;
};

/// Builds the backend selected by `opts`. In a process already running in
/// worker mode (--worker=<job> was parsed), the returned executor serves
/// its assigned job instead of scheduling — callers need no special case.
std::unique_ptr<Executor> MakeExecutor(const ExecOptions& opts);

/// Marks this process as worker <job> of its parent driver. Called by the
/// arg parser when it sees --worker=<job>; results are written to fd 3.
void EnterWorkerMode(std::size_t job);
bool InWorkerMode();

/// The flag appended to worker_argv: "--worker=<job>".
std::string WorkerFlag(std::size_t job);

/// Effective knob values (field if >= 0, else env, else default).
int EffectiveMaxRetries(int field);
int EffectiveStragglerMs(int field);

/// Net-backend reconnect knobs (env only; see the header comment).
int EffectiveNetBackoffMs();
int EffectiveNetBackoffMaxMs();
int EffectiveNetReconnects();

/// Resets the process-wide Run-call counter (and worker mode). Tests only:
/// lets a test harness that issues Run calls in a nondeterministic order
/// pin the job number its helper workers will be asked to serve.
void ResetJobNumberingForTest();

}  // namespace disco::exec
