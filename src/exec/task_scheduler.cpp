#include "exec/task_scheduler.h"

#include "obs/log.h"
#include "obs/metrics.h"

namespace disco::exec {

namespace {

// Scheduling decision counters, registered once and shared by every
// TaskScheduler instance (procs and net transports alike). These surface
// in the driver's "[metrics] exec tasks:" dump line and its Prometheus
// exposition.
struct ExecMetrics {
  obs::Counter& dispatched;
  obs::Counter& retries;
  obs::Counter& straggler_dupes;
  obs::Counter& slot_deaths;

  ExecMetrics()
      : dispatched(obs::Global().RegisterCounter(
            "disco_exec_tasks_total", "Executor scheduling decisions",
            "exec tasks", "dispatched", {{"event", "dispatched"}})),
        retries(obs::Global().RegisterCounter(
            "disco_exec_tasks_total", "Executor scheduling decisions",
            "exec tasks", "retries", {{"event", "retried"}})),
        straggler_dupes(obs::Global().RegisterCounter(
            "disco_exec_tasks_total", "Executor scheduling decisions",
            "exec tasks", "straggler_dupes", {{"event", "straggler_dupe"}})),
        slot_deaths(obs::Global().RegisterCounter(
            "disco_exec_tasks_total", "Executor scheduling decisions",
            "exec tasks", "slot_deaths", {{"event", "slot_death"}})) {}
};

ExecMetrics& Metrics() {
  static ExecMetrics* m = new ExecMetrics;
  return *m;
}

}  // namespace

TaskScheduler::TaskScheduler(std::size_t count, int max_retries,
                             int straggler_ms,
                             std::vector<std::string>* results)
    : count_(count),
      max_retries_(max_retries),
      straggler_ms_(straggler_ms),
      results_(results),
      tasks_(count) {
  results_->assign(count, std::string());
  for (std::size_t i = 0; i < count; ++i) pending_.push_back(i);
}

std::size_t TaskScheduler::AddSlot() {
  slots_.push_back(Slot{});
  ++live_slots_;
  return slots_.size() - 1;
}

void TaskScheduler::ReviveSlot(std::size_t slot) {
  Slot& s = slots_[slot];
  if (s.alive) return;
  s.alive = true;
  s.task = kNoTask;
  ++live_slots_;
}

std::size_t TaskScheduler::NextTask(std::size_t slot,
                                    Clock::time_point now) {
  Slot& s = slots_[slot];
  // Pop until a live task: a pending entry may be stale (its task already
  // finished via a speculative duplicate, or was requeued twice across a
  // corrupted accounting episode). Skipping with a single pop-and-return
  // would leave this slot idle for a whole poll round while real work
  // sits right behind the stale entry.
  while (!pending_.empty()) {
    const std::size_t task = pending_.front();
    pending_.pop_front();
    if (tasks_[task].done) continue;
    s.task = task;
    s.since = now;
    tasks_[task].inflight++;
    Metrics().dispatched.Inc();
    obs::Log(obs::LogLevel::kDebug, "[exec] slot %zu <- task %zu", slot,
             task);
    return task;
  }
  if (straggler_ms_ <= 0) return kNoTask;
  // Speculative duplication: the oldest single-copy task past the
  // deadline, if any (ties broken by assignment age, then slot order —
  // both deterministic given the event sequence).
  const Slot* slowest = nullptr;
  for (const Slot& other : slots_) {
    if (!other.alive || other.task == kNoTask) continue;
    const TaskState& t = tasks_[other.task];
    if (t.done || t.inflight != 1) continue;
    if (now - other.since < std::chrono::milliseconds(straggler_ms_)) {
      continue;
    }
    if (slowest == nullptr || other.since < slowest->since) {
      slowest = &other;
    }
  }
  if (slowest == nullptr) return kNoTask;
  const std::size_t task = slowest->task;
  s.task = task;
  s.since = now;
  tasks_[task].inflight++;
  Metrics().straggler_dupes.Inc();
  obs::Log(obs::LogLevel::kInfo,
           "[exec] straggler: duplicating task %zu onto slot %zu", task,
           slot);
  return task;
}

bool TaskScheduler::AttemptFailed(std::size_t task, const std::string& why) {
  if (tasks_[task].done) return true;  // a duplicate already finished it
  if (++tasks_[task].failures > max_retries_) {
    return Fail(task, true,
                "task " + std::to_string(task) + " failed after " +
                    std::to_string(tasks_[task].failures) +
                    " attempt(s): " + why);
  }
  if (tasks_[task].inflight == 0) pending_.push_back(task);
  Metrics().retries.Inc();
  obs::Log(obs::LogLevel::kInfo,
           "[exec] retrying task %zu (attempt %d): %s", task,
           tasks_[task].failures + 1, why.c_str());
  return true;
}

bool TaskScheduler::Fail(std::size_t task, bool task_known,
                         std::string message) {
  error_ = std::move(message);
  failed_task_ = task;
  task_known_ = task_known;
  return false;
}

bool TaskScheduler::OnResult(std::size_t slot, std::size_t index,
                             std::string payload) {
  Slot& s = slots_[slot];
  if (index >= count_ || index != s.task) {
    // A frame for a task this slot was never handed is stream corruption
    // (duplicated, reordered, or forged): decrementing tasks_[index]'s
    // inflight on trust would strand that task — its inflight could go
    // negative and the inflight==0 requeue guard would never fire.
    return Fail(0, false,
                "worker sent a frame for task " + std::to_string(index) +
                    (s.task == kNoTask
                         ? " while idle"
                         : " while running task " +
                               std::to_string(s.task)));
  }
  s.task = kNoTask;
  tasks_[index].inflight--;
  if (!tasks_[index].done) {
    tasks_[index].done = true;
    (*results_)[index] = std::move(payload);
    ++done_count_;
  }
  return true;
}

bool TaskScheduler::OnTaskError(std::size_t slot, std::size_t index,
                                const std::string& why) {
  Slot& s = slots_[slot];
  if (index >= count_ || index != s.task) {
    return Fail(0, false,
                "worker sent an error frame for task " +
                    std::to_string(index) +
                    (s.task == kNoTask
                         ? " while idle"
                         : " while running task " +
                               std::to_string(s.task)));
  }
  s.task = kNoTask;
  tasks_[index].inflight--;
  return AttemptFailed(index, why);
}

bool TaskScheduler::OnProtocolError(std::size_t slot,
                                    const std::string& message) {
  (void)slot;
  return Fail(0, false, "worker reported a protocol error: " + message);
}

bool TaskScheduler::OnSlotDeath(std::size_t slot, const std::string& why) {
  Slot& s = slots_[slot];
  if (!s.alive) return true;
  s.alive = false;
  --live_slots_;
  Metrics().slot_deaths.Inc();
  obs::Log(obs::LogLevel::kInfo, "[exec] slot %zu died: %s", slot,
           why.c_str());
  const std::size_t task = s.task;
  s.task = kNoTask;
  if (task == kNoTask) return true;
  tasks_[task].inflight--;
  return AttemptFailed(task, why);
}

std::size_t TaskScheduler::FirstUnfinished() const {
  std::size_t i = 0;
  while (i < count_ && tasks_[i].done) ++i;
  return i;
}

void TaskScheduler::PushPendingFrontForTest(std::size_t task) {
  pending_.push_front(task);
}

}  // namespace disco::exec
