#include "exec/net_daemon.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exec/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

extern char** environ;

namespace disco::exec {
namespace {

constexpr int kResultFd = 3;  // worker-side frame stream, by convention

// Daemon registry counters ("[metrics] workerd:" dump line, emitted on
// SIGUSR1 and at clean shutdown).
struct DaemonMetrics {
  obs::Counter& connections;
  obs::Counter& spawns;
  obs::Counter& frames_relayed;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;

  DaemonMetrics()
      : connections(obs::Global().RegisterCounter(
            "disco_workerd_connections_total",
            "Coordinator connections accepted", "workerd", "connections")),
        spawns(obs::Global().RegisterCounter(
            "disco_workerd_spawns_total", "Worker processes spawned",
            "workerd", "spawns")),
        frames_relayed(obs::Global().RegisterCounter(
            "disco_workerd_frames_relayed_total",
            "Wire frames relayed in either direction", "workerd",
            "frames_relayed")),
        bytes_in(obs::Global().RegisterCounter(
            "disco_workerd_bytes_in_total", "Bytes read from coordinators",
            "workerd", "bytes_in")),
        bytes_out(obs::Global().RegisterCounter(
            "disco_workerd_bytes_out_total", "Bytes written to coordinators",
            "workerd", "bytes_out")) {}
};

DaemonMetrics& Metrics() {
  static DaemonMetrics* m = new DaemonMetrics;
  return *m;
}

// Signal flags, set by handlers and consumed by the poll loop (the
// handlers are installed without SA_RESTART, so poll wakes with EINTR).
volatile std::sig_atomic_t g_dump_requested = 0;
volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnSigusr1(int) { g_dump_requested = 1; }
void OnShutdownSignal(int) { g_shutdown_requested = 1; }

// Counts whole wire frames inside a verbatim relay stream without
// buffering it: accumulate the 21-byte header, read the payload length at
// offset 13, skip that many bytes, repeat. Frames split across reads are
// handled by carrying the state in the session.
struct RelayTally {
  std::string header;          // partial frame header bytes
  std::uint64_t remaining = 0; // payload bytes left in the current frame

  void Feed(const char* data, std::size_t n) {
    while (n > 0) {
      if (remaining > 0) {
        const std::size_t skip =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining, n));
        data += skip;
        n -= skip;
        remaining -= skip;
        continue;
      }
      const std::size_t want = 21 - header.size();
      const std::size_t take = std::min(want, n);
      header.append(data, take);
      data += take;
      n -= take;
      if (header.size() < 21) return;
      std::uint64_t len = 0;
      for (int i = 0; i < 8; ++i) {
        len |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(header[13 + i]))
               << (8 * i);
      }
      header.clear();
      remaining = len;
      Metrics().frames_relayed.Inc();
    }
  }
};

bool WriteAllFd(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// One coordinator connection = one worker slot.
struct Session {
  int tcp_fd = -1;
  FrameBuffer frames;   // parsed only until the kSpawn frame arrives
  bool spawned = false;
  bool tcp_eof = false;  // coordinator half-closed (graceful goodbye)
  pid_t child = -1;
  int child_in = -1;   // worker stdin (task frames)
  int child_out = -1;  // worker fd 3 (result frames)
  RelayTally tally_in;   // frame counting, coordinator -> worker
  RelayTally tally_out;  // frame counting, worker -> coordinator
};

void Teardown(Session* s) {
  if (s->child_in >= 0) ::close(s->child_in);
  if (s->child_out >= 0) ::close(s->child_out);
  s->child_in = s->child_out = -1;
  if (s->child > 0) {
    // The worker may be mid-task (a stale straggler duplicate, or its
    // coordinator gave up); tasks are pure, so killing loses nothing.
    ::kill(s->child, SIGKILL);
    int status = 0;
    ::waitpid(s->child, &status, 0);
    s->child = -1;
  }
  if (s->tcp_fd >= 0) ::close(s->tcp_fd);
  s->tcp_fd = -1;
}

// Forks and execs the worker the coordinator asked for, with the same fd
// plumbing ProcessExecutor::Spawn sets up locally: stdin = task frames
// (from the daemon's relay), stdout = /dev/null, fd 3 = result frames.
// `env` entries ("K=V") override the daemon's own environment.
bool SpawnWorker(const std::vector<std::string>& argv_in,
                 const std::vector<std::string>& env_in, Session* s,
                 std::string* error) {
  std::vector<std::string> argv_strings = argv_in;
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& a : argv_strings) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_strings = env_in;
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    const char* eq = std::strchr(*e, '=');
    const std::size_t key_len =
        eq != nullptr ? static_cast<std::size_t>(eq - *e) : std::strlen(*e);
    bool overridden = false;
    for (const std::string& o : env_strings) {
      if (o.compare(0, key_len, *e, key_len) == 0 &&
          o.size() > key_len && o[key_len] == '=') {
        overridden = true;
        break;
      }
    }
    if (!overridden) envp.push_back(*e);
  }
  for (std::string& o : env_strings) envp.push_back(o.data());
  envp.push_back(nullptr);

  int task_pipe[2], result_pipe[2];
  if (::pipe2(task_pipe, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    return false;
  }
  const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    if (devnull >= 0) ::close(devnull);
    return false;
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only until exec (see
    // process_executor.cpp for the dup2/O_CLOEXEC subtlety).
    const auto install = [](int from, int to) {
      if (from == to) {
        ::fcntl(to, F_SETFD, 0);
      } else {
        ::dup2(from, to);
      }
    };
    install(task_pipe[0], 0);
    if (devnull >= 0) install(devnull, 1);
    install(result_pipe[1], kResultFd);
    ::execvpe(argv[0], argv.data(), envp.data());
    _exit(127);
  }
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  if (devnull >= 0) ::close(devnull);

  s->child = pid;
  s->child_in = task_pipe[1];
  s->child_out = result_pipe[0];
  s->spawned = true;
  Metrics().spawns.Inc();
  obs::TracePoint("workerd.spawn");
  return true;
}

// Pre-spawn frame handling: everything up to (and including) kSpawn is
// parsed; bytes behind the spawn frame are relayed to the fresh worker.
// Returns false when the session must be torn down.
bool HandlePreSpawnBytes(Session* s) {
  for (;;) {
    Frame f;
    std::string parse_error;
    const FrameBuffer::Status st = s->frames.Next(&f, &parse_error);
    if (st == FrameBuffer::Status::kNeedMore) return true;
    if (st == FrameBuffer::Status::kMalformed) {
      std::fprintf(stderr, "disco_workerd: malformed frame from "
                           "coordinator: %s\n", parse_error.c_str());
      return false;
    }
    if (f.type != static_cast<char>(FrameType::kSpawn)) {
      std::fprintf(stderr, "disco_workerd: expected a spawn frame, got "
                           "'%c'\n", f.type);
      return false;
    }
    std::vector<std::string> argv, env;
    if (!ParseSpawnPayload(f.payload, &argv, &env)) {
      std::fprintf(stderr, "disco_workerd: unparseable spawn payload\n");
      return false;
    }
    std::string error;
    if (!SpawnWorker(argv, env, s, &error)) {
      std::fprintf(stderr, "disco_workerd: cannot spawn worker: %s\n",
                   error.c_str());
      return false;
    }
    const std::string rest = s->frames.TakeBuffered();
    if (!rest.empty() &&
        !WriteAllFd(s->child_in, rest.data(), rest.size())) {
      return false;
    }
    return true;
  }
}

}  // namespace

bool ParseHostPort(const std::string& spec, std::string* host, int* port,
                   bool allow_port_zero) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || errno == ERANGE ||
      p < (allow_port_zero ? 0 : 1) || p > 65535) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<int>(p);
  return true;
}

int RunWorkerDaemon(const DaemonOptions& opts) {
  // A coordinator that vanishes mid-write must surface as EPIPE on the
  // relay path, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  // Register the daemon's series up front so a SIGUSR1 dump on an idle
  // daemon shows the zeroed "[metrics] workerd:" line rather than nothing.
  (void)Metrics();

  // SIGUSR1 dumps the metrics registry; SIGTERM/SIGINT request a clean
  // shutdown (metrics dump + trace flush via atexit). No SA_RESTART: the
  // blocking poll must wake with EINTR so the loop notices the flag.
  struct sigaction sa{};
  sa.sa_handler = OnSigusr1;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGUSR1, &sa, nullptr);
  sa.sa_handler = OnShutdownSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(opts.port);
  const int gai = ::getaddrinfo(opts.host.c_str(), port_str.c_str(),
                                &hints, &res);
  if (gai != 0) {
    std::fprintf(stderr, "disco_workerd: cannot resolve %s:%d: %s\n",
                 opts.host.c_str(), opts.port, ::gai_strerror(gai));
    return 1;
  }
  int listen_fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    listen_fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                         ai->ai_protocol);
    if (listen_fd < 0) continue;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(listen_fd);
    listen_fd = -1;
  }
  ::freeaddrinfo(res);
  if (listen_fd < 0 || ::listen(listen_fd, 16) != 0) {
    std::fprintf(stderr, "disco_workerd: cannot listen on %s:%d: %s\n",
                 opts.host.c_str(), opts.port, std::strerror(errno));
    if (listen_fd >= 0) ::close(listen_fd);
    return 1;
  }

  // Report the actual port (the kernel picks one for --listen=host:0);
  // launchers parse this line.
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof bound;
  int actual_port = opts.port;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      actual_port = static_cast<int>(
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port));
    } else if (bound.ss_family == AF_INET6) {
      actual_port = static_cast<int>(
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port));
    }
  }
  std::printf("disco_workerd listening on %s:%d\n", opts.host.c_str(),
              actual_port);
  std::fflush(stdout);

  std::vector<Session> sessions;
  for (;;) {
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      std::fputs(obs::Global().DumpText().c_str(), stderr);
    }
    if (g_shutdown_requested != 0) {
      // Clean shutdown: kill and reap workers, dump the registry, flush
      // the trace (registered atexit when --trace= configured it).
      for (Session& s : sessions) Teardown(&s);
      sessions.clear();
      ::close(listen_fd);
      std::fputs(obs::Global().DumpText().c_str(), stderr);
      return 0;
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    // fds[1 + 2k] is session k's TCP side, fds[1 + 2k + 1] its worker
    // output (negative fd entries are ignored by poll). A half-closed
    // coordinator (tcp_eof) stops being polled — reading it would spin on
    // the persistent EOF while its worker finishes its goodbye.
    for (Session& s : sessions) {
      fds.push_back({s.tcp_eof ? -1 : s.tcp_fd, POLLIN, 0});
      fds.push_back({s.spawned ? s.child_out : -1, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "disco_workerd: poll: %s\n",
                   std::strerror(errno));
      ::close(listen_fd);
      return 1;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (conn >= 0) {
        Session s;
        s.tcp_fd = conn;
        const std::string hello =
            EncodeFrame(static_cast<char>(FrameType::kHello),
                        kWireProtocolVersion, "disco_workerd");
        if (WriteAllFd(conn, hello.data(), hello.size())) {
          Metrics().connections.Inc();
          Metrics().bytes_out.Add(hello.size());
          obs::TracePoint("workerd.accept");
          sessions.push_back(std::move(s));
        } else {
          ::close(conn);
        }
      }
    }

    // Only the sessions that existed when `fds` was built have poll
    // entries — a connection accepted above joins next round.
    const std::size_t polled = (fds.size() - 1) / 2;
    for (std::size_t k = 0; k < polled; ++k) {
      Session& s = sessions[k];
      bool dead = false;
      const short tcp_ev = fds[1 + 2 * k].revents;
      const short child_ev = fds[1 + 2 * k + 1].revents;

      if ((tcp_ev & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[65536];
        const ssize_t n = ::read(s.tcp_fd, chunk, sizeof chunk);
        if (n > 0) {
          Metrics().bytes_in.Add(static_cast<std::uint64_t>(n));
          if (s.spawned) {
            // Relay verbatim: these are task frames for the worker.
            s.tally_in.Feed(chunk, static_cast<std::size_t>(n));
            if (!WriteAllFd(s.child_in, chunk,
                            static_cast<std::size_t>(n))) {
              dead = true;  // worker gone; close so the coordinator retries
            }
          } else {
            s.frames.Append(chunk, static_cast<std::size_t>(n));
            if (!HandlePreSpawnBytes(&s)) dead = true;
          }
        } else if (n == 0) {
          if (s.spawned) {
            // Graceful goodbye: the coordinator half-closed after its run
            // finished. Pass the EOF on as worker-stdin EOF — the worker
            // answers with one kObs frame (trace sidecar + metrics) that
            // still relays back over our open write side — and wait for
            // the worker to exit before closing the connection.
            if (s.child_in >= 0) {
              ::close(s.child_in);
              s.child_in = -1;
            }
            s.tcp_eof = true;
          } else {
            dead = true;  // coordinator left before spawning anything
          }
        } else if (errno != EINTR) {
          dead = true;  // connection reset
        }
      }

      if (!dead && s.spawned &&
          (child_ev & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[65536];
        const ssize_t n = ::read(s.child_out, chunk, sizeof chunk);
        if (n > 0) {
          // Relay verbatim: result frames for the coordinator.
          s.tally_out.Feed(chunk, static_cast<std::size_t>(n));
          if (!WriteAllFd(s.tcp_fd, chunk, static_cast<std::size_t>(n))) {
            dead = true;
          } else {
            Metrics().bytes_out.Add(static_cast<std::uint64_t>(n));
          }
        } else if (n == 0 || errno != EINTR) {
          // Worker exited (crash, SIGKILL, clean death). Closing the
          // connection is the signal the coordinator's failure policy
          // feeds on: it charges the in-flight task and reconnects,
          // which spawns a fresh worker here.
          dead = true;
        }
      }

      if (dead) {
        Teardown(&s);
        sessions.erase(sessions.begin() +
                       static_cast<std::ptrdiff_t>(k));
        // fds indexes are stale for the remaining sessions this round;
        // the next poll rebuilds them. Skip to it.
        break;
      }
    }
  }
}

}  // namespace disco::exec
