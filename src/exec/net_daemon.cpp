#include "exec/net_daemon.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exec/wire.h"

extern char** environ;

namespace disco::exec {
namespace {

constexpr int kResultFd = 3;  // worker-side frame stream, by convention

bool WriteAllFd(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// One coordinator connection = one worker slot.
struct Session {
  int tcp_fd = -1;
  FrameBuffer frames;   // parsed only until the kSpawn frame arrives
  bool spawned = false;
  pid_t child = -1;
  int child_in = -1;   // worker stdin (task frames)
  int child_out = -1;  // worker fd 3 (result frames)
};

void Teardown(Session* s) {
  if (s->child_in >= 0) ::close(s->child_in);
  if (s->child_out >= 0) ::close(s->child_out);
  s->child_in = s->child_out = -1;
  if (s->child > 0) {
    // The worker may be mid-task (a stale straggler duplicate, or its
    // coordinator gave up); tasks are pure, so killing loses nothing.
    ::kill(s->child, SIGKILL);
    int status = 0;
    ::waitpid(s->child, &status, 0);
    s->child = -1;
  }
  if (s->tcp_fd >= 0) ::close(s->tcp_fd);
  s->tcp_fd = -1;
}

// Forks and execs the worker the coordinator asked for, with the same fd
// plumbing ProcessExecutor::Spawn sets up locally: stdin = task frames
// (from the daemon's relay), stdout = /dev/null, fd 3 = result frames.
// `env` entries ("K=V") override the daemon's own environment.
bool SpawnWorker(const std::vector<std::string>& argv_in,
                 const std::vector<std::string>& env_in, Session* s,
                 std::string* error) {
  std::vector<std::string> argv_strings = argv_in;
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& a : argv_strings) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_strings = env_in;
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    const char* eq = std::strchr(*e, '=');
    const std::size_t key_len =
        eq != nullptr ? static_cast<std::size_t>(eq - *e) : std::strlen(*e);
    bool overridden = false;
    for (const std::string& o : env_strings) {
      if (o.compare(0, key_len, *e, key_len) == 0 &&
          o.size() > key_len && o[key_len] == '=') {
        overridden = true;
        break;
      }
    }
    if (!overridden) envp.push_back(*e);
  }
  for (std::string& o : env_strings) envp.push_back(o.data());
  envp.push_back(nullptr);

  int task_pipe[2], result_pipe[2];
  if (::pipe2(task_pipe, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    return false;
  }
  const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    if (devnull >= 0) ::close(devnull);
    return false;
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only until exec (see
    // process_executor.cpp for the dup2/O_CLOEXEC subtlety).
    const auto install = [](int from, int to) {
      if (from == to) {
        ::fcntl(to, F_SETFD, 0);
      } else {
        ::dup2(from, to);
      }
    };
    install(task_pipe[0], 0);
    if (devnull >= 0) install(devnull, 1);
    install(result_pipe[1], kResultFd);
    ::execvpe(argv[0], argv.data(), envp.data());
    _exit(127);
  }
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  if (devnull >= 0) ::close(devnull);

  s->child = pid;
  s->child_in = task_pipe[1];
  s->child_out = result_pipe[0];
  s->spawned = true;
  return true;
}

// Pre-spawn frame handling: everything up to (and including) kSpawn is
// parsed; bytes behind the spawn frame are relayed to the fresh worker.
// Returns false when the session must be torn down.
bool HandlePreSpawnBytes(Session* s) {
  for (;;) {
    Frame f;
    std::string parse_error;
    const FrameBuffer::Status st = s->frames.Next(&f, &parse_error);
    if (st == FrameBuffer::Status::kNeedMore) return true;
    if (st == FrameBuffer::Status::kMalformed) {
      std::fprintf(stderr, "disco_workerd: malformed frame from "
                           "coordinator: %s\n", parse_error.c_str());
      return false;
    }
    if (f.type != static_cast<char>(FrameType::kSpawn)) {
      std::fprintf(stderr, "disco_workerd: expected a spawn frame, got "
                           "'%c'\n", f.type);
      return false;
    }
    std::vector<std::string> argv, env;
    if (!ParseSpawnPayload(f.payload, &argv, &env)) {
      std::fprintf(stderr, "disco_workerd: unparseable spawn payload\n");
      return false;
    }
    std::string error;
    if (!SpawnWorker(argv, env, s, &error)) {
      std::fprintf(stderr, "disco_workerd: cannot spawn worker: %s\n",
                   error.c_str());
      return false;
    }
    const std::string rest = s->frames.TakeBuffered();
    if (!rest.empty() &&
        !WriteAllFd(s->child_in, rest.data(), rest.size())) {
      return false;
    }
    return true;
  }
}

}  // namespace

bool ParseHostPort(const std::string& spec, std::string* host, int* port,
                   bool allow_port_zero) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || errno == ERANGE ||
      p < (allow_port_zero ? 0 : 1) || p > 65535) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<int>(p);
  return true;
}

int RunWorkerDaemon(const DaemonOptions& opts) {
  // A coordinator that vanishes mid-write must surface as EPIPE on the
  // relay path, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(opts.port);
  const int gai = ::getaddrinfo(opts.host.c_str(), port_str.c_str(),
                                &hints, &res);
  if (gai != 0) {
    std::fprintf(stderr, "disco_workerd: cannot resolve %s:%d: %s\n",
                 opts.host.c_str(), opts.port, ::gai_strerror(gai));
    return 1;
  }
  int listen_fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    listen_fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                         ai->ai_protocol);
    if (listen_fd < 0) continue;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(listen_fd);
    listen_fd = -1;
  }
  ::freeaddrinfo(res);
  if (listen_fd < 0 || ::listen(listen_fd, 16) != 0) {
    std::fprintf(stderr, "disco_workerd: cannot listen on %s:%d: %s\n",
                 opts.host.c_str(), opts.port, std::strerror(errno));
    if (listen_fd >= 0) ::close(listen_fd);
    return 1;
  }

  // Report the actual port (the kernel picks one for --listen=host:0);
  // launchers parse this line.
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof bound;
  int actual_port = opts.port;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      actual_port = static_cast<int>(
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port));
    } else if (bound.ss_family == AF_INET6) {
      actual_port = static_cast<int>(
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port));
    }
  }
  std::printf("disco_workerd listening on %s:%d\n", opts.host.c_str(),
              actual_port);
  std::fflush(stdout);

  std::vector<Session> sessions;
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    // fds[1 + 2k] is session k's TCP side, fds[1 + 2k + 1] its worker
    // output (negative fd entries are ignored by poll).
    for (Session& s : sessions) {
      fds.push_back({s.tcp_fd, POLLIN, 0});
      fds.push_back({s.spawned ? s.child_out : -1, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "disco_workerd: poll: %s\n",
                   std::strerror(errno));
      ::close(listen_fd);
      return 1;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (conn >= 0) {
        Session s;
        s.tcp_fd = conn;
        const std::string hello =
            EncodeFrame(static_cast<char>(FrameType::kHello),
                        kWireProtocolVersion, "disco_workerd");
        if (WriteAllFd(conn, hello.data(), hello.size())) {
          sessions.push_back(std::move(s));
        } else {
          ::close(conn);
        }
      }
    }

    // Only the sessions that existed when `fds` was built have poll
    // entries — a connection accepted above joins next round.
    const std::size_t polled = (fds.size() - 1) / 2;
    for (std::size_t k = 0; k < polled; ++k) {
      Session& s = sessions[k];
      bool dead = false;
      const short tcp_ev = fds[1 + 2 * k].revents;
      const short child_ev = fds[1 + 2 * k + 1].revents;

      if ((tcp_ev & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[65536];
        const ssize_t n = ::read(s.tcp_fd, chunk, sizeof chunk);
        if (n > 0) {
          if (s.spawned) {
            // Relay verbatim: these are task frames for the worker.
            if (!WriteAllFd(s.child_in, chunk,
                            static_cast<std::size_t>(n))) {
              dead = true;  // worker gone; close so the coordinator retries
            }
          } else {
            s.frames.Append(chunk, static_cast<std::size_t>(n));
            if (!HandlePreSpawnBytes(&s)) dead = true;
          }
        } else if (n == 0 || errno != EINTR) {
          dead = true;  // coordinator closed or connection reset
        }
      }

      if (!dead && s.spawned &&
          (child_ev & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[65536];
        const ssize_t n = ::read(s.child_out, chunk, sizeof chunk);
        if (n > 0) {
          // Relay verbatim: result frames for the coordinator.
          if (!WriteAllFd(s.tcp_fd, chunk, static_cast<std::size_t>(n))) {
            dead = true;
          }
        } else if (n == 0 || errno != EINTR) {
          // Worker exited (crash, SIGKILL, clean death). Closing the
          // connection is the signal the coordinator's failure policy
          // feeds on: it charges the in-flight task and reconnects,
          // which spawns a fresh worker here.
          dead = true;
        }
      }

      if (dead) {
        Teardown(&s);
        sessions.erase(sessions.begin() +
                       static_cast<std::ptrdiff_t>(k));
        // fds indexes are stale for the remaining sessions this round;
        // the next poll rebuilds them. Skip to it.
        break;
      }
    }
  }
}

}  // namespace disco::exec
