// Transport-agnostic scheduling core shared by the distributed executor
// backends (process pool over pipes, daemon cluster over TCP).
//
// A TaskScheduler owns the per-run failure accounting — the pending queue,
// per-task done/failures/inflight state, retry budgets, and the straggler
// scan — while the transport owns everything byte-shaped: spawning or
// connecting to workers, writing task frames, reading result frames, and
// noticing that a peer died. The contract between them is a set of "slots"
// (one per worker process or daemon connection):
//
//   - AddSlot() registers a slot; NextTask() hands an idle slot its next
//     task (a pending task first, else — past the straggler deadline — a
//     speculative duplicate of the slowest single-copy task);
//   - OnResult/OnTaskError/OnProtocolError report a frame the transport
//     read from that slot; OnSlotDeath reports a dead pipe or connection.
//     Each returns false when the run must fail — the message and failing
//     task are then available from error()/failed_task().
//
// Frame accounting validates the worker-reported index against the slot's
// assigned task: a duplicated, reordered, or forged frame is a protocol
// failure for the whole run, never a silent decrement of some innocent
// task's inflight count (which would strand it: the inflight==0 requeue
// guard could then never fire).
//
// The scheduler is single-threaded by design — both transports drive it
// from one poll loop — and never blocks or touches fds.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace disco::exec {

class TaskScheduler {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

  /// `results` outlives the scheduler and receives (*results)[i] = task
  /// i's payload; it is assigned count empty strings up front.
  TaskScheduler(std::size_t count, int max_retries, int straggler_ms,
                std::vector<std::string>* results);

  /// Registers a worker slot (initially alive and idle); returns its id.
  std::size_t AddSlot();

  /// Slot accessors. A dead slot holds no task and is skipped by the
  /// straggler scan until ReviveSlot (a transport reconnect) restores it.
  bool slot_alive(std::size_t slot) const { return slots_[slot].alive; }
  std::size_t task_of(std::size_t slot) const { return slots_[slot].task; }
  std::size_t live_slots() const { return live_slots_; }

  /// Re-arms a slot whose transport reconnected. The slot must be dead;
  /// its previous in-flight task was already requeued by OnSlotDeath.
  void ReviveSlot(std::size_t slot);

  /// Picks the next task for an idle live slot and marks it in flight
  /// there: the first still-unfinished pending task (stale entries for
  /// already-finished tasks are dropped, not returned — the slot must
  /// never idle while live work is queued behind a stale entry), else,
  /// with a straggler deadline configured, a speculative duplicate of the
  /// oldest single-copy task past the deadline. kNoTask when there is
  /// nothing for this slot to do right now.
  std::size_t NextTask(std::size_t slot, Clock::time_point now);

  /// Result frame from `slot` for task `index`. False = fail the run.
  bool OnResult(std::size_t slot, std::size_t index, std::string payload);

  /// Task-error frame ("E"): charges one failed attempt to the task.
  bool OnTaskError(std::size_t slot, std::size_t index,
                   const std::string& why);

  /// Protocol-error frame ("B"): the worker rejected the request stream
  /// itself. Never attributable to a task — always fails the run.
  bool OnProtocolError(std::size_t slot, const std::string& message);

  /// The slot's transport died (worker crash, connection reset). Charges
  /// the in-flight task (if any) and marks the slot dead.
  bool OnSlotDeath(std::size_t slot, const std::string& why);

  bool done() const { return done_count_ == count_; }
  std::size_t count() const { return count_; }
  int straggler_ms() const { return straggler_ms_; }

  /// Lowest task id not yet finished (count() when all are) — transports
  /// name it when the pool drains before the run completes.
  std::size_t FirstUnfinished() const;

  /// Failure details, valid after any handler returned false.
  const std::string& error() const { return error_; }
  std::size_t failed_task() const { return failed_task_; }
  bool task_known() const { return task_known_; }

  /// Test-only: pushes a (possibly stale) entry at the front of the
  /// pending queue, bypassing the accounting invariants — regression
  /// seam for NextTask's stale-entry handling.
  void PushPendingFrontForTest(std::size_t task);

 private:
  struct TaskState {
    bool done = false;
    int failures = 0;  // failed attempts so far (deaths and E frames)
    int inflight = 0;  // copies currently running (straggler duplication)
  };

  struct Slot {
    bool alive = true;
    std::size_t task = kNoTask;
    Clock::time_point since;  // when `task` was assigned
  };

  // Requeues (or finally fails) a task whose attempt just died. False
  // when retries are exhausted; error_/failed_task_ then name it.
  bool AttemptFailed(std::size_t task, const std::string& why);

  bool Fail(std::size_t task, bool task_known, std::string message);

  const std::size_t count_;
  const int max_retries_;
  const int straggler_ms_;
  std::vector<std::string>* const results_;

  std::vector<TaskState> tasks_;
  std::vector<Slot> slots_;
  std::deque<std::size_t> pending_;
  std::size_t done_count_ = 0;
  std::size_t live_slots_ = 0;

  std::string error_;
  std::size_t failed_task_ = 0;
  bool task_known_ = false;
};

}  // namespace disco::exec
