// Multi-process executor backend: a pool of worker subprocesses created by
// re-invoking this binary with "--worker=<job>" appended to its own argv.
//
// Driver side (ProcessExecutor): spawns k workers, streams task frames to
// them over per-worker pipes, and collects framed results. Scheduling —
// the pending queue, retry budgets, straggler duplication — lives in the
// transport-agnostic TaskScheduler (task_scheduler.h), shared with the
// network backend; this file owns only the pipe transport. Scheduling is
// demand-driven — a worker gets its next task the moment its previous
// frame arrives — so the pool load-balances uneven cells automatically.
// Failure policy (TaskScheduler's):
//   - a worker that exits (crash, SIGKILL, clean death) has its in-flight
//     task rescheduled onto a surviving worker; the dead worker is not
//     respawned, so capacity degrades gracefully until none remain;
//   - a task that reports an error (kTaskError frame) is retried
//     elsewhere, up to max_retries re-runs, after which Run fails naming
//     the task;
//   - with straggler_ms > 0, a task still running past the deadline is
//     speculatively duplicated onto an idle worker (at most two copies);
//     the first result wins and the loser is ignored. Tasks are pure
//     functions of (argv, index), so both copies produce identical bytes.
//
// Worker side (WorkerServer): claims Run-call job numbers like any other
// backend; calls before the assigned job evaluate in-process (their
// results may feed the assigned job's task function), the assigned job
// reads kTask frames (exec/wire.h binary framing) from stdin, answers
// with kResult/kTaskError frames on fd 3, and exits on stdin EOF — after
// shipping one kObs frame (trace sidecar path + metrics text) so the
// driver can aggregate per-process observability. A
// request it cannot honor — malformed frame, out-of-range index — is
// answered with a kProtocolError frame, which the driver treats as a
// run-level failure: a protocol error is attributable to no task, so it
// must never charge a retry to an innocent one. Stdout points at
// /dev/null — stray prints from bench code cannot corrupt the frame
// stream.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exec/exec_internal.h"
#include "exec/task_scheduler.h"
#include "exec/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

extern char** environ;

namespace disco::exec {
namespace {

constexpr int kResultFd = 3;  // worker-side frame stream, by convention

// ------------------------------------------------------------- worker side

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool WriteFrame(int fd, FrameType type, std::uint64_t index,
                const std::string& payload) {
  const std::string frame =
      EncodeFrame(static_cast<char>(type), index, payload);
  return WriteAll(fd, frame.data(), frame.size());
}

[[noreturn]] void ServeTasks(std::size_t count, const TaskFn& fn) {
  FrameBuffer frames;
  char chunk[4096];
  for (;;) {
    for (;;) {
      Frame f;
      std::string parse_error;
      const FrameBuffer::Status st = frames.Next(&f, &parse_error);
      if (st == FrameBuffer::Status::kNeedMore) break;
      if (st == FrameBuffer::Status::kMalformed) {
        // The request stream is unusable from here on: report and exit.
        WriteFrame(kResultFd, FrameType::kProtocolError, 0,
                   "malformed task frame: " + parse_error);
        std::exit(1);
      }
      if (f.type != static_cast<char>(FrameType::kTask) ||
          f.index >= count) {
        // A bad request names no runnable task. Answering with a task
        // error at the garbage index would either kill the run as
        // "out-of-range task" or charge a retry to whatever innocent task
        // the index happens to alias — so it gets its own frame type the
        // driver maps to a run-level error.
        WriteFrame(kResultFd, FrameType::kProtocolError, 0,
                   std::string("bad task request: type '") + f.type +
                       "' index " + std::to_string(f.index) + " (count " +
                       std::to_string(count) + ")");
        continue;
      }
      std::string payload;
      FrameType type = FrameType::kResult;
      obs::Span task_span("exec.task");
      try {
        payload = fn(static_cast<std::size_t>(f.index));
      } catch (const std::exception& e) {
        type = FrameType::kTaskError;
        payload = e.what();
      } catch (...) {
        type = FrameType::kTaskError;
        payload = "non-std exception";
      }
      if (!WriteFrame(kResultFd, type, f.index, payload)) {
        std::exit(1);  // driver went away
      }
    }
    const ssize_t n = ::read(0, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // driver closed our stdin: done
    frames.Append(chunk, static_cast<std::size_t>(n));
  }
  // Clean shutdown: ship observability home before exiting. The trace
  // sidecar path is empty when tracing is off; metrics always travel so
  // the driver's [metrics] dump aggregates every worker's counters. A
  // driver from before kObs existed has closed our stdin and may close the
  // result pipe too — a failed write here is fine.
  const std::string sidecar = obs::FlushTrace();
  WriteFrame(kResultFd, FrameType::kObs,
             static_cast<std::uint64_t>(::getpid()),
             EncodeObsPayload(sidecar, obs::Global().PrometheusText()));
  std::exit(0);
}

class WorkerServer : public Executor {
 public:
  explicit WorkerServer(const ExecOptions& opts) : pool_(opts.pool) {}

  RunResult Run(std::size_t count, const TaskFn& fn,
                std::vector<std::string>* results) override {
    const std::size_t job = internal::ClaimJobNumber();
    if (job != internal::WorkerJob()) {
      // A fan-out preceding the one we were spawned for: evaluate it
      // locally so state derived from its results exists when the
      // assigned job's task function is built.
      return internal::RunInProcess(count, fn, results, pool_);
    }
    ServeTasks(count, fn);
  }

 private:
  runtime::ThreadPool* pool_;
};

// ------------------------------------------------------------- driver side

using Clock = std::chrono::steady_clock;

struct Worker {
  pid_t pid = -1;
  int task_fd = -1;    // driver writes kTask frames
  int result_fd = -1;  // driver reads result frames
  FrameBuffer frames;
  std::size_t slot = 0;  // TaskScheduler slot id
  bool alive = false;
};

class ProcessExecutor : public Executor {
 public:
  explicit ProcessExecutor(const ExecOptions& opts)
      : worker_argv_(opts.worker_argv),
        num_workers_(opts.workers != 0 ? opts.workers
                                       : runtime::DefaultThreadCount()),
        max_retries_(EffectiveMaxRetries(opts.max_retries)),
        straggler_ms_(EffectiveStragglerMs(opts.straggler_ms)) {}

  RunResult Run(std::size_t count, const TaskFn& fn,
                std::vector<std::string>* results) override;

 private:
  RunResult Fail(std::vector<Worker>* workers, std::size_t task,
                 bool task_known, std::string message);
  RunResult FailFromScheduler(std::vector<Worker>* workers,
                              const TaskScheduler& sched);
  bool Spawn(std::size_t job, std::size_t job_workers, Worker* out,
             std::string* error);
  void ReapWorker(Worker* w);

  const std::vector<std::string> worker_argv_;
  const std::size_t num_workers_;
  const int max_retries_;
  const int straggler_ms_;
};

// Closes fds and collects the exit status; safe on already-dead workers.
void ProcessExecutor::ReapWorker(Worker* w) {
  if (w->task_fd >= 0) ::close(w->task_fd);
  if (w->result_fd >= 0) ::close(w->result_fd);
  w->task_fd = w->result_fd = -1;
  if (w->pid > 0) {
    int status = 0;
    ::waitpid(w->pid, &status, 0);
    w->pid = -1;
  }
  w->alive = false;
}

RunResult ProcessExecutor::Fail(std::vector<Worker>* workers,
                                std::size_t task, bool task_known,
                                std::string message) {
  for (Worker& w : *workers) {
    if (w.pid > 0) ::kill(w.pid, SIGKILL);
    ReapWorker(&w);
  }
  RunResult r;
  r.ok = false;
  r.failed_task = task;
  r.task_known = task_known;
  r.error = std::move(message);
  return r;
}

RunResult ProcessExecutor::FailFromScheduler(std::vector<Worker>* workers,
                                             const TaskScheduler& sched) {
  return Fail(workers, sched.failed_task(), sched.task_known(),
              sched.error());
}

bool ProcessExecutor::Spawn(std::size_t job, std::size_t job_workers,
                            Worker* out, std::string* error) {
  // Everything the child needs is prepared before fork(): the parent may
  // have pool threads running, so the child must restrict itself to
  // async-signal-safe calls (dup2/fcntl/execve/_exit) until exec.
  std::vector<std::string> argv_strings = worker_argv_;
  argv_strings.push_back(WorkerFlag(job));
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& s : argv_strings) argv.push_back(s.data());
  argv.push_back(nullptr);

  // Split the machine between workers: each gets an equal slice of the
  // default thread budget unless the caller pinned DISCO_THREADS/--threads
  // explicitly (an explicit --threads in worker_argv overrides the env in
  // the worker's own flag parsing).
  const std::size_t per_worker =
      std::max<std::size_t>(1, runtime::DefaultThreadCount() / job_workers);
  const std::string threads_var =
      "DISCO_THREADS=" + std::to_string(per_worker);
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "DISCO_THREADS=", 14) == 0) continue;
    envp.push_back(*e);
  }
  envp.push_back(const_cast<char*>(threads_var.c_str()));
  envp.push_back(nullptr);

  int task_pipe[2], result_pipe[2];
  if (::pipe2(task_pipe, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    return false;
  }
  const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    if (devnull >= 0) ::close(devnull);
    return false;
  }
  if (pid == 0) {
    // Child. dup2 clears O_CLOEXEC on the target fd; every original pipe
    // end still carries it and vanishes at exec. When a pipe end already
    // landed on its target fd (pipe2 hands out the lowest free fd, so a
    // driver launched with stdin/stdout closed gets task_pipe[0] == 0),
    // dup2 would be a no-op that leaves O_CLOEXEC set and the fd would
    // vanish at exec — clear the flag in place instead.
    const auto install = [](int from, int to) {
      if (from == to) {
        ::fcntl(to, F_SETFD, 0);
      } else {
        ::dup2(from, to);
      }
    };
    install(task_pipe[0], 0);
    if (devnull >= 0) install(devnull, 1);
    install(result_pipe[1], kResultFd);
    ::execvpe(argv[0], argv.data(), envp.data());
    _exit(127);
  }
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  if (devnull >= 0) ::close(devnull);

  out->pid = pid;
  out->task_fd = task_pipe[1];
  out->result_fd = result_pipe[0];
  out->alive = true;
  return true;
}

RunResult ProcessExecutor::Run(std::size_t count, const TaskFn& fn,
                               std::vector<std::string>* results) {
  (void)fn;  // tasks are evaluated in worker processes, never here
  const std::size_t job = internal::ClaimJobNumber();
  if (count == 0) {
    results->clear();
    return RunResult{};
  }
  DISCO_TRACE_SPAN("exec.run.procs");

  // A dead worker's write end must raise EPIPE, not a process-killing
  // SIGPIPE — but only while this Run is scheduling. The previous
  // disposition comes back on every return path, so driver code keeps its
  // normal die-on-closed-stdout behavior outside the scheduler.
  struct SigpipeGuard {
    void (*previous)(int);
    SigpipeGuard() : previous(std::signal(SIGPIPE, SIG_IGN)) {}
    ~SigpipeGuard() { std::signal(SIGPIPE, previous); }
  } sigpipe_guard;

  const std::size_t job_workers = std::min(num_workers_, count);
  std::vector<Worker> workers(job_workers);
  TaskScheduler sched(count, max_retries_, straggler_ms_, results);
  std::string spawn_error;
  for (std::size_t i = 0; i < job_workers; ++i) {
    if (!Spawn(job, job_workers, &workers[i], &spawn_error)) {
      return Fail(&workers, 0, false,
                  "cannot spawn worker: " + spawn_error);
    }
    workers[i].slot = sched.AddSlot();
  }

  while (!sched.done()) {
    // Demand-driven dispatch: pending tasks first, then — past the
    // straggler deadline — a speculative duplicate of the slowest
    // single-copy task (TaskScheduler::NextTask).
    for (Worker& w : workers) {
      if (!w.alive || sched.task_of(w.slot) != TaskScheduler::kNoTask) {
        continue;
      }
      const std::size_t task = sched.NextTask(w.slot, Clock::now());
      if (task == TaskScheduler::kNoTask) continue;
      const std::string frame = EncodeFrame(
          static_cast<char>(FrameType::kTask), task, std::string());
      if (!WriteAll(w.task_fd, frame.data(), frame.size())) {
        // Worker already gone (EPIPE); the poll loop's EOF handling will
        // requeue the task and reap the process.
      }
    }

    std::vector<pollfd> fds;
    std::vector<Worker*> polled;
    for (Worker& w : workers) {
      if (!w.alive) continue;
      fds.push_back({w.result_fd, POLLIN, 0});
      polled.push_back(&w);
    }
    if (fds.empty()) {
      const std::size_t first_unfinished = sched.FirstUnfinished();
      return Fail(&workers, first_unfinished, true,
                  "all workers exited with task " +
                      std::to_string(first_unfinished) + " unfinished");
    }

    const int timeout = straggler_ms_ > 0
                            ? std::max(10, std::min(straggler_ms_, 200))
                            : -1;
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) {
      return Fail(&workers, 0, false,
                  std::string("poll: ") + std::strerror(errno));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker* w = polled[i];
      char chunk[65536];
      const ssize_t n = ::read(w->result_fd, chunk, sizeof chunk);
      if (n > 0) {
        w->frames.Append(chunk, static_cast<std::size_t>(n));
        for (;;) {
          Frame f;
          std::string parse_error;
          const FrameBuffer::Status st = w->frames.Next(&f, &parse_error);
          if (st == FrameBuffer::Status::kNeedMore) break;
          if (st == FrameBuffer::Status::kMalformed) {
            return Fail(&workers, 0, false,
                        "malformed worker frame: " + parse_error);
          }
          bool ok;
          if (f.type == static_cast<char>(FrameType::kResult)) {
            ok = sched.OnResult(w->slot, f.index, std::move(f.payload));
          } else if (f.type == static_cast<char>(FrameType::kTaskError)) {
            ok = sched.OnTaskError(w->slot, f.index, f.payload);
          } else if (f.type ==
                     static_cast<char>(FrameType::kProtocolError)) {
            ok = sched.OnProtocolError(w->slot, f.payload);
          } else {
            return Fail(&workers, 0, false,
                        std::string("unexpected worker frame type '") +
                            f.type + "'");
          }
          if (!ok) return FailFromScheduler(&workers, sched);
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        // Worker died (SIGKILL, crash, or clean exit we didn't ask for).
        // Its in-flight task is rescheduled onto the survivors.
        ReapWorker(w);
        if (!sched.OnSlotDeath(w->slot, "worker process exited mid-task")) {
          return FailFromScheduler(&workers, sched);
        }
      }
    }
  }

  // Done. Workers still computing a stale duplicate would block
  // completion, so kill those outright — tasks are pure, nothing is lost.
  // Idle workers get a clean stdin EOF and answer with one kObs frame
  // (trace sidecar path + Prometheus metrics) before exiting; drain those
  // so per-process counters aggregate and trace sidecars merge. The drain
  // is bounded — a worker dawdling past the deadline is killed like a
  // straggler, costing only its observability data.
  for (Worker& w : workers) {
    if (!w.alive) continue;
    if (sched.task_of(w.slot) != TaskScheduler::kNoTask && w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ReapWorker(&w);
      continue;
    }
    if (w.task_fd >= 0) {
      ::close(w.task_fd);
      w.task_fd = -1;
    }
  }
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<Worker*> polled;
    for (Worker& w : workers) {
      if (!w.alive) continue;
      fds.push_back({w.result_fd, POLLIN, 0});
      polled.push_back(&w);
    }
    if (fds.empty()) break;
    const long long remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(drain_deadline -
                                                              Clock::now())
            .count();
    if (remaining_ms <= 0) break;
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(std::min<long long>(
                                 remaining_ms, 200)));
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) break;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker* w = polled[i];
      char chunk[65536];
      const ssize_t n = ::read(w->result_fd, chunk, sizeof chunk);
      if (n > 0) {
        w->frames.Append(chunk, static_cast<std::size_t>(n));
        for (;;) {
          Frame f;
          std::string parse_error;
          const FrameBuffer::Status st = w->frames.Next(&f, &parse_error);
          if (st == FrameBuffer::Status::kNeedMore) break;
          if (st == FrameBuffer::Status::kMalformed) {
            // The run already succeeded; a desynced goodbye only forfeits
            // this worker's observability data.
            if (w->pid > 0) ::kill(w->pid, SIGKILL);
            ReapWorker(w);
            break;
          }
          if (f.type == static_cast<char>(FrameType::kObs)) {
            std::string sidecar_path, metrics_text;
            if (ParseObsPayload(f.payload, &sidecar_path, &metrics_text)) {
              obs::RecordWorkerSidecar(sidecar_path);
              obs::Global().MergeFromPrometheusText(metrics_text);
              obs::Global().NoteMergedSource();
            }
          }
          // Anything else is a stale straggler result: ignore it.
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        ReapWorker(w);
      }
    }
  }
  for (Worker& w : workers) {
    if (!w.alive) continue;
    if (w.pid > 0) ::kill(w.pid, SIGKILL);
    ReapWorker(&w);
  }
  return RunResult{};
}

}  // namespace

std::unique_ptr<Executor> MakeProcessExecutor(const ExecOptions& opts) {
  return std::make_unique<ProcessExecutor>(opts);
}

std::unique_ptr<Executor> MakeWorkerServer(const ExecOptions& opts) {
  return std::make_unique<WorkerServer>(opts);
}

}  // namespace disco::exec
