// Byte-exact serialization for executor task results, and the framed wire
// protocol both distributed backends speak.
//
// The multi-process and network backends ship task results between
// processes as opaque byte strings, so anything a task returns must
// round-trip losslessly: doubles travel as their IEEE-754 bit pattern
// (never through text), and strings are length-prefixed. Encoding a value
// and decoding it back is the identity, which is what lets
// `--backend=procs` and `--backend=net` output stay byte-identical to the
// in-process run.
//
// Frame layout (one versioned binary framing for every transport — worker
// pipes and daemon TCP connections alike; see executor.h for who sends
// what):
//
//   offset 0   4 bytes   magic "DWX" + version digit ('1')
//   offset 4   1 byte    frame type (FrameType)
//   offset 5   8 bytes   index, little-endian u64 (task index, or the
//                        protocol version for kHello; 0 when unused)
//   offset 13  8 bytes   payload length, little-endian u64
//   offset 21  ...       payload bytes
//
// A receiver that sees a bad magic, an unknown type, or an absurd length
// is desynced or talking to the wrong peer; FrameBuffer reports that as
// malformed rather than guessing, and transports fail the run.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace disco::exec {

inline void PutU64(std::string* buf, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  buf->append(bytes, 8);
}

inline void PutDouble(std::string* buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(buf, bits);
}

inline void PutString(std::string* buf, const std::string& s) {
  PutU64(buf, s.size());
  buf->append(s);
}

/// Sequential reader over a serialized buffer. Get* return false once the
/// buffer is exhausted or malformed; `ok()` stays false from then on.
class WireReader {
 public:
  explicit WireReader(const std::string& buf) : buf_(buf) {}

  bool ok() const { return ok_; }

  bool GetU64(std::uint64_t* v) {
    if (!ok_ || pos_ + 8 > buf_.size()) return Fail();
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetDouble(double* v) {
    std::uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }

  bool GetString(std::string* s) {
    std::uint64_t len;
    if (!GetU64(&len)) return false;
    if (len > buf_.size() - pos_) return Fail();
    s->assign(buf_, pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const std::string& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// The result shape most bench tasks produce: ordered text fragments the
/// parent prints, plus named files it writes. Tasks must not print or touch
/// the filesystem themselves — in the process backend they run with stdout
/// discarded, and a speculative straggler duplicate may run concurrently
/// with the original.
struct TextBundle {
  std::vector<std::string> parts;
  std::vector<std::pair<std::string, std::string>> files;  // name, content

  std::string Serialize() const {
    std::string out;
    PutU64(&out, parts.size());
    for (const std::string& p : parts) PutString(&out, p);
    PutU64(&out, files.size());
    for (const auto& [name, content] : files) {
      PutString(&out, name);
      PutString(&out, content);
    }
    return out;
  }

  static bool Parse(const std::string& buf, TextBundle* out) {
    // Lengths are untrusted bytes: never pre-size from them, let each
    // GetString bounds-check against what the buffer actually holds.
    WireReader r(buf);
    out->parts.clear();
    out->files.clear();
    std::uint64_t n = 0;
    if (!r.GetU64(&n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string p;
      if (!r.GetString(&p)) return false;
      out->parts.push_back(std::move(p));
    }
    if (!r.GetU64(&n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name, content;
      if (!r.GetString(&name) || !r.GetString(&content)) return false;
      out->files.emplace_back(std::move(name), std::move(content));
    }
    return true;
  }
};

// ------------------------------------------------------------ wire frames

/// Bumped when the frame layout or the meaning of a type changes; carried
/// in every kHello frame so a coordinator refuses a daemon from another
/// era instead of desyncing mid-run.
constexpr std::uint64_t kWireProtocolVersion = 1;

/// "DWX1": disco wire exchange, layout version 1. The version digit is
/// part of the magic so a frame from a future incompatible layout fails
/// the magic check outright.
constexpr char kFrameMagic[4] = {'D', 'W', 'X', '1'};

/// Frames larger than this are treated as stream corruption, not data: a
/// task result is at most a bundle of TSV files, far under 1 GiB.
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameType : char {
  kTask = 'T',       // driver -> worker: run task <index> (no payload)
  kResult = 'R',     // worker -> driver: task <index> result bytes
  kTaskError = 'E',  // worker -> driver: task <index> threw; payload names
                     // the error and charges one retry to the task
  kProtocolError = 'B',  // worker -> driver: the request stream itself was
                         // bad (malformed frame, out-of-range index). Not
                         // attributable to any task: the driver fails the
                         // whole run instead of charging an innocent task
  kSpawn = 'S',  // coordinator -> daemon: fork/exec a worker; payload is
                 // EncodeSpawnPayload (argv + env assignments)
  kHello = 'H',  // daemon -> coordinator, on accept: index carries
                 // kWireProtocolVersion
  kObs = 'O',    // worker -> driver, once at clean shutdown (stdin EOF):
                 // index carries the worker pid; payload is
                 // EncodeObsPayload (trace sidecar path + Prometheus
                 // metrics text). Optional: a driver that is done reading
                 // may close the stream first, and a worker from before
                 // this frame existed simply never sends it
};

struct Frame {
  char type = 0;
  std::uint64_t index = 0;
  std::string payload;
};

inline std::string EncodeFrame(char type, std::uint64_t index,
                               const std::string& payload) {
  std::string out;
  out.reserve(21 + payload.size());
  out.append(kFrameMagic, 4);
  out.push_back(type);
  PutU64(&out, index);
  PutU64(&out, payload.size());
  out.append(payload);
  return out;
}

/// Incremental frame parser over an append-only byte stream (one per pipe
/// or socket). Feed it reads as they arrive; Next yields complete frames
/// in order, kNeedMore when the buffer holds only a partial frame, and
/// kMalformed (with a message) on desync — after which the stream is
/// unusable.
class FrameBuffer {
 public:
  enum class Status { kFrame, kNeedMore, kMalformed };

  void Append(const char* data, std::size_t n) { buf_.append(data, n); }

  Status Next(Frame* out, std::string* error) {
    if (buf_.size() < 21) return Status::kNeedMore;
    if (std::memcmp(buf_.data(), kFrameMagic, 4) != 0) {
      *error = "bad frame magic";
      return Status::kMalformed;
    }
    const char type = buf_[4];
    if (type != static_cast<char>(FrameType::kTask) &&
        type != static_cast<char>(FrameType::kResult) &&
        type != static_cast<char>(FrameType::kTaskError) &&
        type != static_cast<char>(FrameType::kProtocolError) &&
        type != static_cast<char>(FrameType::kSpawn) &&
        type != static_cast<char>(FrameType::kHello) &&
        type != static_cast<char>(FrameType::kObs)) {
      *error = std::string("unknown frame type '") + type + "'";
      return Status::kMalformed;
    }
    const std::uint64_t index = ReadU64(5);
    const std::uint64_t len = ReadU64(13);
    if (len > kMaxFramePayload) {
      *error = "frame payload length " + std::to_string(len) +
               " exceeds the sanity bound";
      return Status::kMalformed;
    }
    if (buf_.size() < 21 + len) return Status::kNeedMore;
    out->type = type;
    out->index = index;
    out->payload = buf_.substr(21, static_cast<std::size_t>(len));
    buf_.erase(0, 21 + static_cast<std::size_t>(len));
    return Status::kFrame;
  }

  /// Drains the raw unparsed remainder. The daemon uses this at the
  /// parse -> relay switch: once the kSpawn frame is consumed, any bytes
  /// pipelined behind it are task frames that belong to the worker
  /// verbatim.
  std::string TakeBuffered() {
    std::string out;
    out.swap(buf_);
    return out;
  }

 private:
  std::uint64_t ReadU64(std::size_t at) const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(buf_[at + i]))
           << (8 * i);
    }
    return v;
  }

  std::string buf_;
};

/// kSpawn payload: the worker argv the daemon must exec (the coordinator's
/// own argv plus --worker=<job>), then environment assignments ("K=V") to
/// layer over the daemon's environment.
inline std::string EncodeSpawnPayload(const std::vector<std::string>& argv,
                                      const std::vector<std::string>& env) {
  std::string out;
  PutU64(&out, argv.size());
  for (const std::string& a : argv) PutString(&out, a);
  PutU64(&out, env.size());
  for (const std::string& e : env) PutString(&out, e);
  return out;
}

inline bool ParseSpawnPayload(const std::string& buf,
                              std::vector<std::string>* argv,
                              std::vector<std::string>* env) {
  WireReader r(buf);
  argv->clear();
  env->clear();
  std::uint64_t n = 0;
  if (!r.GetU64(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!r.GetString(&s)) return false;
    argv->push_back(std::move(s));
  }
  if (!r.GetU64(&n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!r.GetString(&s)) return false;
    env->push_back(std::move(s));
  }
  return !argv->empty();
}

/// kObs payload: the worker's trace sidecar path ("" when tracing was off)
/// and its metrics registry in Prometheus text exposition, shipped once at
/// clean worker shutdown so the coordinator can aggregate per-process
/// counters and merge trace timelines.
inline std::string EncodeObsPayload(const std::string& sidecar_path,
                                    const std::string& metrics_text) {
  std::string out;
  PutString(&out, sidecar_path);
  PutString(&out, metrics_text);
  return out;
}

inline bool ParseObsPayload(const std::string& buf, std::string* sidecar_path,
                            std::string* metrics_text) {
  WireReader r(buf);
  return r.GetString(sidecar_path) && r.GetString(metrics_text);
}

}  // namespace disco::exec
