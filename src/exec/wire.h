// Byte-exact serialization for executor task results.
//
// The multi-process backend ships task results between processes as opaque
// byte strings, so anything a task returns must round-trip losslessly:
// doubles travel as their IEEE-754 bit pattern (never through text), and
// strings are length-prefixed. Encoding a value and decoding it back is
// the identity, which is what lets `--backend=procs` output stay
// byte-identical to the in-process run.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace disco::exec {

inline void PutU64(std::string* buf, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  buf->append(bytes, 8);
}

inline void PutDouble(std::string* buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(buf, bits);
}

inline void PutString(std::string* buf, const std::string& s) {
  PutU64(buf, s.size());
  buf->append(s);
}

/// Sequential reader over a serialized buffer. Get* return false once the
/// buffer is exhausted or malformed; `ok()` stays false from then on.
class WireReader {
 public:
  explicit WireReader(const std::string& buf) : buf_(buf) {}

  bool ok() const { return ok_; }

  bool GetU64(std::uint64_t* v) {
    if (!ok_ || pos_ + 8 > buf_.size()) return Fail();
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetDouble(double* v) {
    std::uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }

  bool GetString(std::string* s) {
    std::uint64_t len;
    if (!GetU64(&len)) return false;
    if (len > buf_.size() - pos_) return Fail();
    s->assign(buf_, pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const std::string& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// The result shape most bench tasks produce: ordered text fragments the
/// parent prints, plus named files it writes. Tasks must not print or touch
/// the filesystem themselves — in the process backend they run with stdout
/// discarded, and a speculative straggler duplicate may run concurrently
/// with the original.
struct TextBundle {
  std::vector<std::string> parts;
  std::vector<std::pair<std::string, std::string>> files;  // name, content

  std::string Serialize() const {
    std::string out;
    PutU64(&out, parts.size());
    for (const std::string& p : parts) PutString(&out, p);
    PutU64(&out, files.size());
    for (const auto& [name, content] : files) {
      PutString(&out, name);
      PutString(&out, content);
    }
    return out;
  }

  static bool Parse(const std::string& buf, TextBundle* out) {
    // Lengths are untrusted bytes: never pre-size from them, let each
    // GetString bounds-check against what the buffer actually holds.
    WireReader r(buf);
    out->parts.clear();
    out->files.clear();
    std::uint64_t n = 0;
    if (!r.GetU64(&n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string p;
      if (!r.GetString(&p)) return false;
      out->parts.push_back(std::move(p));
    }
    if (!r.GetU64(&n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name, content;
      if (!r.GetString(&name) || !r.GetString(&content)) return false;
      out->files.emplace_back(std::move(name), std::move(content));
    }
    return true;
  }
};

}  // namespace disco::exec
