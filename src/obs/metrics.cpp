// disco-lint: allow-file(relaxed-atomic): metric bumps are commutative counter
// accumulation; every reader (PrometheusText/DumpText) runs after the
// workload's thread joins, which order the final loads.
#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>

namespace disco {
namespace obs {

void Counter::Add(std::uint64_t n) {
  value_.fetch_add(n, std::memory_order_relaxed);
}
void Counter::Set(std::uint64_t v) {
  value_.store(v, std::memory_order_relaxed);
}
std::uint64_t Counter::Value() const {
  return value_.load(std::memory_order_relaxed);
}

void Gauge::Add(std::int64_t n) {
  value_.fetch_add(n, std::memory_order_relaxed);
}
void Gauge::Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
std::int64_t Gauge::Value() const {
  return value_.load(std::memory_order_relaxed);
}

namespace {

// Renders the exposition name: name or name{k="v",k2="v2"} with label keys
// in the given order and values backslash-escaped per the Prometheus text
// format.
std::string ExpositionName(const std::string& name, const LabelSet& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ',';
    first = false;
    out += kv.first;
    out += "=\"";
    for (char c : kv.second) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

struct MetricsRegistry::Impl {
  enum class Kind { kCounter, kGauge };

  struct Series {
    Kind kind = Kind::kCounter;
    std::string family;      // Prometheus family name
    std::string exposition;  // family + rendered labels
    std::string help;
    std::string group;  // "[metrics] <group>:" dump line
    std::string key;    // key=value on that line
    Counter counter;
    Gauge gauge;
  };

  mutable std::mutex mu;
  std::deque<Series> series;  // stable storage, registration order
  std::map<std::string, Series*> by_exposition;
  // Dump layout: groups in first-registration order, each listing its
  // series (also in registration order).
  std::vector<std::string> group_order;
  std::map<std::string, std::vector<Series*>> groups;

  Series& FindOrCreate(Kind kind, const std::string& name,
                       const std::string& help, const std::string& group,
                       const std::string& key, const LabelSet& labels) {
    std::lock_guard<std::mutex> lock(mu);
    const std::string expo = ExpositionName(name, labels);
    auto it = by_exposition.find(expo);
    if (it != by_exposition.end()) return *it->second;
    series.emplace_back();
    Series& s = series.back();
    s.kind = kind;
    s.family = name;
    s.exposition = expo;
    s.help = help;
    s.group = group;
    s.key = key;
    by_exposition[expo] = &s;
    auto g = groups.find(group);
    if (g == groups.end()) {
      group_order.push_back(group);
      g = groups.emplace(group, std::vector<Series*>{}).first;
    }
    g->second.push_back(&s);
    return s;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          const std::string& group,
                                          const std::string& key,
                                          const LabelSet& labels) {
  return impl_->FindOrCreate(Impl::Kind::kCounter, name, help, group, key,
                             labels)
      .counter;
}

Gauge& MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      const std::string& group,
                                      const std::string& key,
                                      const LabelSet& labels) {
  return impl_->FindOrCreate(Impl::Kind::kGauge, name, help, group, key, labels)
      .gauge;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  // family -> (exposition -> series), both lexicographically sorted so the
  // output is byte-stable regardless of registration order.
  std::map<std::string, std::map<std::string, const Impl::Series*>> families;
  for (const auto& s : impl_->series) families[s.family][s.exposition] = &s;
  std::string out;
  char buf[64];
  for (const auto& fam : families) {
    const Impl::Series* first = fam.second.begin()->second;
    out += "# HELP " + fam.first + " " + first->help + "\n";
    out += "# TYPE " + fam.first + " ";
    out += (first->kind == Impl::Kind::kCounter) ? "counter" : "gauge";
    out += "\n";
    for (const auto& entry : fam.second) {
      const Impl::Series* s = entry.second;
      if (s->kind == Impl::Kind::kCounter) {
        std::snprintf(buf, sizeof buf, "%" PRIu64,
                      static_cast<std::uint64_t>(s->counter.Value()));
      } else {
        std::snprintf(buf, sizeof buf, "%" PRId64,
                      static_cast<std::int64_t>(s->gauge.Value()));
      }
      out += entry.first;
      out += ' ';
      out += buf;
      out += '\n';
    }
  }
  return out;
}

std::string MetricsRegistry::DumpText(const std::string& note) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  char buf[64];
  for (const std::string& group : impl_->group_order) {
    out += "[metrics] " + group + ":";
    for (const Impl::Series* s : impl_->groups.at(group)) {
      if (s->kind == Impl::Kind::kCounter) {
        std::snprintf(buf, sizeof buf, "%" PRIu64,
                      static_cast<std::uint64_t>(s->counter.Value()));
      } else {
        std::snprintf(buf, sizeof buf, "%" PRId64,
                      static_cast<std::int64_t>(s->gauge.Value()));
      }
      out += ' ';
      out += s->key;
      out += '=';
      out += buf;
    }
    if (!note.empty()) out += " (" + note + ")";
    out += '\n';
  }
  return out;
}

std::size_t MetricsRegistry::MergeFromPrometheusText(const std::string& text) {
  std::size_t merged = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // "<exposition_name> <value>" — split on the last space so label
    // values containing spaces survive.
    const std::size_t sp = line.find_last_of(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) continue;
    const std::string expo = line.substr(0, sp);
    const std::string value_str = line.substr(sp + 1);
    // Only plain unsigned integers merge (counters); negative or exotic
    // samples are skipped.
    char* end = nullptr;
    const unsigned long long value = std::strtoull(value_str.c_str(), &end, 10);
    if (end == value_str.c_str() || *end != '\0') continue;
    Impl::Series* s = nullptr;
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      auto it = impl_->by_exposition.find(expo);
      if (it != impl_->by_exposition.end()) s = it->second;
    }
    if (s == nullptr || s->kind != Impl::Kind::kCounter) continue;
    s->counter.Add(static_cast<std::uint64_t>(value));
    ++merged;
  }
  return merged;
}

MetricsRegistry& Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace obs
}  // namespace disco
