#include "obs/clock.h"

#include <chrono>

namespace disco {
namespace obs {

namespace {
ClockFn g_clock = nullptr;
}  // namespace

std::uint64_t NowNs() {
  if (g_clock != nullptr) return g_clock();
  // steady_clock is CLOCK_MONOTONIC on Linux: the epoch is shared across
  // processes on one machine, which is what makes cross-process sidecar
  // merging by timestamp meaningful.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

void SetClockForTest(ClockFn fn) { g_clock = fn; }

}  // namespace obs
}  // namespace disco
