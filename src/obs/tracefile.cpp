#include "obs/tracefile.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "util/json.h"
#include "util/stats.h"

namespace disco {
namespace obs {

namespace {

// Minimal JSON string escaping — span names are in-tree literals
// ("exec.task", "store.dijkstra"), but stay safe for arbitrary input.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ts in microseconds with exactly 3 decimals, rendered from integer
// nanoseconds — no floating point anywhere, so the bytes are stable.
void AppendTsMicros(std::string* out, std::uint64_t ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ts_ns / 1000,
                ts_ns % 1000);
  *out += buf;
}

}  // namespace

std::string TraceJson(const TraceDoc& doc) {
  std::string out;
  out.reserve(doc.events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\n";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRIu64, doc.dropped);
  out += "\"otherData\":{\"droppedEvents\":\"";
  out += buf;
  out += "\"},\n\"traceEvents\":[";
  for (std::size_t i = 0; i < doc.events.size(); ++i) {
    const TraceEvent& e = doc.events[i];
    out += (i == 0) ? "\n" : ",\n";
    out += "{\"name\":\"";
    out += EscapeJson(e.name);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    AppendTsMicros(&out, e.ts_ns);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof buf, ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64 "}",
                  e.pid, e.tid);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool ParseTraceJson(const std::string& text, TraceDoc* out,
                    std::string* error) {
  out->events.clear();
  out->dropped = 0;
  json::Value root;
  if (!json::Parse(text, &root, error)) return false;
  if (!root.is_object()) {
    *error = "top level is not an object";
    return false;
  }
  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "missing traceEvents array";
    return false;
  }
  const json::Value* other = root.Find("otherData");
  if (other != nullptr && other->is_object()) {
    const std::string dropped_str = other->StringOr("droppedEvents", "0");
    char* end = nullptr;
    const unsigned long long dropped =
        std::strtoull(dropped_str.c_str(), &end, 10);
    if (end != dropped_str.c_str() && *end == '\0') {
      out->dropped = static_cast<std::uint64_t>(dropped);
    }
  }
  for (const json::Value& ev : events->Items()) {
    if (!ev.is_object()) {
      *error = "traceEvents entry is not an object";
      return false;
    }
    const std::string phase = ev.StringOr("ph", "");
    if (phase != "B" && phase != "E" && phase != "i") continue;
    TraceEvent e;
    e.name = ev.StringOr("name", "");
    e.phase = phase[0];
    const double ts_us = ev.NumberOr("ts", 0);
    e.ts_ns = (ts_us <= 0) ? 0
                           : static_cast<std::uint64_t>(
                                 std::llround(ts_us * 1000.0));
    e.pid = static_cast<std::uint64_t>(ev.NumberOr("pid", 0));
    e.tid = static_cast<std::uint64_t>(ev.NumberOr("tid", 0));
    out->events.push_back(std::move(e));
  }
  return true;
}

bool ValidateTrace(const TraceDoc& doc, std::string* error) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::string>>
      open;
  for (std::size_t i = 0; i < doc.events.size(); ++i) {
    const TraceEvent& e = doc.events[i];
    std::vector<std::string>& stack = open[{e.pid, e.tid}];
    if (e.phase == 'B') {
      stack.push_back(e.name);
    } else if (e.phase == 'E') {
      if (stack.empty()) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "event %zu: E \"%s\" on pid %" PRIu64 " tid %" PRIu64
                      " with no open span",
                      i, e.name.c_str(), e.pid, e.tid);
        *error = buf;
        return false;
      }
      if (stack.back() != e.name) {
        char buf[224];
        std::snprintf(buf, sizeof buf,
                      "event %zu: E \"%s\" does not match open span \"%s\" on "
                      "pid %" PRIu64 " tid %" PRIu64,
                      i, e.name.c_str(), stack.back().c_str(), e.pid, e.tid);
        *error = buf;
        return false;
      }
      stack.pop_back();
    }
    // 'i' needs no stack bookkeeping.
  }
  return true;
}

TraceDoc MergeTraceDocs(const std::vector<TraceDoc>& docs) {
  TraceDoc out;
  std::size_t total = 0;
  for (const TraceDoc& d : docs) total += d.events.size();
  out.events.reserve(total);
  for (const TraceDoc& d : docs) {
    out.dropped += d.dropped;
    out.events.insert(out.events.end(), d.events.begin(), d.events.end());
  }
  // Stable: ties keep input order, so each source doc's per-thread program
  // order survives (a thread's events are already time-ordered within it).
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::string SummarizeTrace(const TraceDoc& doc) {
  // Re-pair B/E per (pid,tid) stack; durations keyed by span name.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::pair<std::string, std::uint64_t>>>
      open;
  std::map<std::string, std::vector<double>> durations_ms;
  for (const TraceEvent& e : doc.events) {
    auto& stack = open[{e.pid, e.tid}];
    if (e.phase == 'B') {
      stack.emplace_back(e.name, e.ts_ns);
    } else if (e.phase == 'E') {
      if (!stack.empty() && stack.back().first == e.name) {
        const std::uint64_t begin_ns = stack.back().second;
        stack.pop_back();
        const std::uint64_t dur_ns = (e.ts_ns >= begin_ns) ? e.ts_ns - begin_ns
                                                           : 0;
        durations_ms[e.name].push_back(static_cast<double>(dur_ns) / 1e6);
      }
    } else if (e.phase == 'i') {
      durations_ms[e.name].push_back(0.0);  // instants count, zero duration
    }
  }
  std::string out = "span                             count   total_ms     p95_ms\n";
  char buf[160];
  for (auto& entry : durations_ms) {
    std::vector<double>& d = entry.second;
    std::sort(d.begin(), d.end());
    double total = 0;
    for (double v : d) total += v;
    const double p95 = d.empty() ? 0 : Percentile(d, 0.95);
    std::snprintf(buf, sizeof buf, "%-30s %7zu %10.3f %10.3f\n",
                  entry.first.c_str(), d.size(), total, p95);
    out += buf;
  }
  if (doc.dropped > 0) {
    std::snprintf(buf, sizeof buf, "dropped events: %" PRIu64 "\n",
                  doc.dropped);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace disco
