#ifndef DISCO_OBS_TRACEFILE_H_
#define DISCO_OBS_TRACEFILE_H_

// Chrome trace_event file model: render, parse, validate, merge,
// summarize. Shared by the in-process tracer's flush path and the
// disco_tracecat CLI. The JSON renderer is hand-rolled and byte-stable
// (one event per line, fixed field order, timestamps as "<us>.<ns%1000/...>"
// fixed-point strings) so fixed-clock tests can compare whole files and
// repeated flushes of the same events are identical bytes.

#include <cstdint>
#include <string>
#include <vector>

namespace disco {
namespace obs {

struct TraceEvent {
  std::string name;
  char phase = 'B';  // 'B' begin, 'E' end, 'i' instant
  std::uint64_t ts_ns = 0;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
};

struct TraceDoc {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;  // ring-buffer overflow casualties
};

// Renders {"displayTimeUnit":"ms","otherData":{"droppedEvents":"N"},
// "traceEvents":[...]} — catapult/Perfetto-loadable and parseable by
// util/json. Timestamps are microseconds with 3 fixed decimals.
std::string TraceJson(const TraceDoc& doc);

// Parses a trace JSON produced by TraceJson (or any Chrome trace with a
// traceEvents array of B/E/i events). Returns false with a message in
// *error on malformed input; unknown phases and extra fields are ignored.
bool ParseTraceJson(const std::string& text, TraceDoc* out,
                    std::string* error);

// Checks that B/E events nest per (pid,tid): every E matches the name of
// the innermost open B on its thread. Spans left open at the end of the
// file are allowed (a process may be killed mid-span). Returns false with
// a message in *error on the first violation.
bool ValidateTrace(const TraceDoc& doc, std::string* error);

// Concatenates and time-orders docs into one timeline (stable sort by
// ts_ns, so each thread's program order survives ties); dropped counts
// sum.
TraceDoc MergeTraceDocs(const std::vector<TraceDoc>& docs);

// Per-span-name table: "name count total_ms p95_ms" rows sorted by name,
// computed from matched B/E pairs (unmatched spans are skipped). Includes
// a header row and a trailing dropped-events line when nonzero.
std::string SummarizeTrace(const TraceDoc& doc);

}  // namespace obs
}  // namespace disco

#endif  // DISCO_OBS_TRACEFILE_H_
