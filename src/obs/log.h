#ifndef DISCO_OBS_LOG_H_
#define DISCO_OBS_LOG_H_

// Leveled stderr logging, controlled by DISCO_LOG=error|warn|info|debug
// (default: warn). Diagnostics that used bare fprintf(stderr, ...) —
// executor retry/straggler/reconnect notices, bench write warnings —
// route through here so noisy runs can be quieted (DISCO_LOG=error) and
// scheduler decisions surfaced (DISCO_LOG=debug) without recompiling.
// Smoke scripts grep stderr but never byte-compare it; info/debug default
// to silent so their stderr stays stable.

namespace disco {
namespace obs {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// True when `level` passes the DISCO_LOG threshold (parsed once, lazily).
bool LogEnabled(LogLevel level);

// printf-style; writes "[error|warn|info|debug] <message>\n" to stderr
// when enabled. The newline is appended here.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void Log(LogLevel level, const char* fmt, ...);

// Re-reads DISCO_LOG on the next LogEnabled call (tests mutate the env).
void ResetLogLevelForTest();

}  // namespace obs
}  // namespace disco

#endif  // DISCO_OBS_LOG_H_
