#ifndef DISCO_OBS_CLOCK_H_
#define DISCO_OBS_CLOCK_H_

#include <cstdint>

namespace disco {
namespace obs {

// Monotonic nanosecond clock used by the tracer. Observability-only: the
// values feed trace timestamps and never influence simulation results, so
// wall-clock reads stay confined to src/obs/.
std::uint64_t NowNs();

// Injects a deterministic clock for tests. Pass nullptr to restore the
// real monotonic clock. Not thread-safe against concurrent NowNs callers;
// install before spawning traced threads.
using ClockFn = std::uint64_t (*)();
void SetClockForTest(ClockFn fn);

}  // namespace obs
}  // namespace disco

#endif  // DISCO_OBS_CLOCK_H_
