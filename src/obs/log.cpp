#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace disco {
namespace obs {

namespace {

// -1 = unparsed; else a LogLevel value. Atomic because the first log call
// can come from any thread; a double parse is harmless (same env, same
// result).
std::atomic<int> g_threshold{-1};

int ParseThreshold() {
  const char* env = std::getenv("DISCO_LOG");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  std::fprintf(stderr, "[warn] unknown DISCO_LOG level '%s' (want error|warn|info|debug)\n",
               env);
  return static_cast<int>(LogLevel::kWarn);
}

const char* Prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kWarn:
      return "[warn] ";
    case LogLevel::kInfo:
      return "[info] ";
    case LogLevel::kDebug:
      return "[debug] ";
  }
  return "[?] ";
}

}  // namespace

bool LogEnabled(LogLevel level) {
  int threshold = g_threshold.load(std::memory_order_acquire);
  if (threshold < 0) {
    threshold = ParseThreshold();
    g_threshold.store(threshold, std::memory_order_release);
  }
  return static_cast<int>(level) <= threshold;
}

void Log(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  // Render into one buffer and emit with a single fprintf so concurrent
  // threads do not interleave prefix/body/newline.
  std::va_list args;
  va_start(args, fmt);
  char body[1024];
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  std::fprintf(stderr, "%s%s\n", Prefix(level), body);
}

void ResetLogLevelForTest() {
  g_threshold.store(-1, std::memory_order_release);
}

}  // namespace obs
}  // namespace disco
