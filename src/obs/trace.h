#ifndef DISCO_OBS_TRACE_H_
#define DISCO_OBS_TRACE_H_

// Span tracer: scoped spans recorded into per-thread bounded ring buffers,
// flushed at process exit to Chrome trace_event JSON (load the file in
// Perfetto / chrome://tracing) when a run passes --trace=<file>.
//
// Design constraints, in order:
//   * Determinism-neutral. Tracing writes only to the trace file; stdout
//     and TSV bytes are identical with tracing on or off. All wall-clock
//     reads live in obs/clock.{h,cpp}.
//   * Near-zero cost when off. The Span constructor is an inline load of
//     one atomic flag; defining DISCO_TRACE_DISABLED at compile time makes
//     DISCO_TRACE_SPAN expand to nothing at all.
//   * No allocation on the hot path. Each thread's buffer is sized at
//     registration; overflow drops events and counts the drops (reported
//     as otherData.droppedEvents) instead of reallocating. A begin is only
//     recorded when its matching end still has a reserved slot, so
//     recorded begin/end events always balance.
//   * Cross-process merge. Worker processes (procs backend, disco_workerd)
//     call MarkTraceSidecarMode() and flush to a pid-tagged sidecar file
//     next to the requested path; the coordinator merges recorded sidecar
//     paths plus any `<base>.sidecar.*.json` neighbors into one timeline.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace disco {
namespace obs {

namespace internal {
// Off by default; flipped by ConfigureTracing, cleared by FlushTrace.
extern std::atomic<bool> g_tracing_enabled;
// Slow paths; only called while tracing is (or just was) enabled.
bool BeginSpan(const char* name);      // true if the B event was recorded
void EndSpan(const char* name, bool recorded);
void InstantEvent(const char* name);
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_acquire);
}

// Enables tracing. Events flush to `base_path` at exit (atexit) or on an
// explicit FlushTrace(). `per_thread_capacity` is the per-thread event
// budget (0 = default, 1<<14). Call once, before traced work starts.
void ConfigureTracing(const std::string& base_path,
                      std::size_t per_thread_capacity = 0);

// Declares this process a worker: FlushTrace writes a pid-tagged sidecar
// (`<base>.sidecar.<pid>.json`) instead of merging. Order-independent with
// ConfigureTracing.
void MarkTraceSidecarMode();

bool TracingConfigured();

// Flushes buffered events and disables tracing. Idempotent; returns the
// path written ("" when tracing was never configured or already flushed).
// In sidecar mode writes this process's events only; otherwise parses and
// merges worker sidecars (recorded via RecordWorkerSidecar plus any
// `<base>.sidecar.*.json` files found next to the output) into one
// time-ordered timeline.
std::string FlushTrace();

// Registers a worker sidecar path for the coordinator's merge (shipped
// back over the kObs wire frame by procs/net workers).
void RecordWorkerSidecar(const std::string& path);

// Total events dropped to ring-buffer overflow so far, across threads.
std::uint64_t DroppedTraceEvents();

// Copies a dynamic name (e.g. a scheme name) into storage that outlives
// all spans, so it can be used as a span name. Cheap for repeated calls
// with the same string; do not call on a per-event hot path.
const char* InternName(const std::string& name);

// Records an instant event (rendered as a point in the timeline).
inline void TracePoint(const char* name) {
  if (TracingEnabled()) internal::InstantEvent(name);
}

// Clears all tracer state (config, buffers, drop counts, sidecar list)
// for tests. Existing threads keep their buffer registrations (and tids).
void ResetTracingForTest();

// RAII span. `name` must outlive the tracer (string literal or
// InternName result).
class Span {
 public:
  explicit Span(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      recorded_ = internal::BeginSpan(name);
      open_ = true;
    }
  }
  ~Span() {
    if (open_) internal::EndSpan(name_, recorded_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  bool open_ = false;      // Begin ran (tracing was enabled at entry)
  bool recorded_ = false;  // the B event made it into the buffer
};

#define DISCO_OBS_CONCAT2(a, b) a##b
#define DISCO_OBS_CONCAT(a, b) DISCO_OBS_CONCAT2(a, b)
#if defined(DISCO_TRACE_DISABLED)
#define DISCO_TRACE_SPAN(name)
#else
#define DISCO_TRACE_SPAN(name) \
  ::disco::obs::Span DISCO_OBS_CONCAT(disco_trace_span_, __LINE__)(name)
#endif

}  // namespace obs
}  // namespace disco

#endif  // DISCO_OBS_TRACE_H_
