#include "obs/trace.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "obs/clock.h"
#include "obs/log.h"
#include "obs/tracefile.h"
#include "util/stats.h"

namespace disco {
namespace obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  char phase = 'B';
};

// One ring buffer per traced thread. The owning thread is the only
// writer; publication to the flushing thread is via the release store on
// `count` (the flusher loads it with acquire before reading slots).
// `rdepth` (recorded open spans) is owner-private bookkeeping for the
// reservation invariant: count + rdepth <= slots.size() at all times, so
// every recorded B has a guaranteed slot for its E.
struct ThreadBuffer {
  std::vector<Event> slots;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::size_t rdepth = 0;
  std::uint64_t tid = 0;

  void Push(const char* name, char phase, std::uint64_t ts_ns) {
    const std::size_t n = count.load(std::memory_order_acquire);  // own writes
    slots[n] = Event{name, ts_ns, phase};
    count.store(n + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // tid order
  std::string base_path;
  std::size_t capacity = kDefaultCapacity;
  bool configured = false;
  bool sidecar = false;
  bool flushed = false;
  bool atexit_registered = false;
  std::vector<std::string> worker_sidecars;
  std::deque<std::string> interned;
};

TraceState& State() {
  static TraceState* s = new TraceState;
  return *s;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer* GetThreadBuffer() {
  if (t_buffer != nullptr) return t_buffer;
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  auto buf = std::make_unique<ThreadBuffer>();
  buf->slots.resize(st.capacity);
  buf->tid = st.buffers.size() + 1;  // registration order; 1-based
  t_buffer = buf.get();
  st.buffers.push_back(std::move(buf));
  return t_buffer;
}

void FlushTraceAtExit() { FlushTrace(); }

// Lists `<dir>/<stem>.sidecar.*.json`, sorted. readdir order is
// filesystem-dependent, so callers rely on the sort for determinism.
std::vector<std::string> FindSidecarFiles(const std::string& base_path) {
  std::string dir = ".";
  std::string stem = base_path;
  const std::size_t slash = base_path.find_last_of('/');
  if (slash != std::string::npos) {
    dir = base_path.substr(0, slash);
    stem = base_path.substr(slash + 1);
  }
  const std::string prefix = stem + ".sidecar.";
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + 5) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - 5, 5, ".json") != 0) continue;
    out.push_back(dir + "/" + name);
  }
  closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

namespace internal {

bool BeginSpan(const char* name) {
  ThreadBuffer* buf = GetThreadBuffer();
  // Reserve the matching E slot up front: admit this B only when both it
  // and its E fit alongside the E slots of already-open recorded spans.
  const std::size_t n = buf->count.load(std::memory_order_acquire);
  if (n + buf->rdepth + 2 > buf->slots.size()) {
    buf->dropped.fetch_add(1, std::memory_order_release);
    return false;
  }
  buf->Push(name, 'B', NowNs());
  ++buf->rdepth;
  return true;
}

void EndSpan(const char* name, bool recorded) {
  if (!recorded) return;  // the B was dropped; drop the E to stay balanced
  ThreadBuffer* buf = GetThreadBuffer();
  --buf->rdepth;
  // If tracing was disabled (flushed) while this span was open, skip the
  // write: the flushed file keeps an unclosed B, which validation allows,
  // and the buffer is no longer ours to publish into.
  if (!TracingEnabled()) return;
  buf->Push(name, 'E', NowNs());
}

void InstantEvent(const char* name) {
  ThreadBuffer* buf = GetThreadBuffer();
  const std::size_t n = buf->count.load(std::memory_order_acquire);
  if (n + buf->rdepth + 1 > buf->slots.size()) {
    buf->dropped.fetch_add(1, std::memory_order_release);
    return;
  }
  buf->Push(name, 'i', NowNs());
}

}  // namespace internal

void ConfigureTracing(const std::string& base_path,
                      std::size_t per_thread_capacity) {
  TraceState& st = State();
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.base_path = base_path;
    st.capacity =
        (per_thread_capacity == 0) ? kDefaultCapacity : per_thread_capacity;
    // Must hold at least one B+E pair or every Begin would drop.
    if (st.capacity < 2) st.capacity = 2;
    st.configured = true;
    st.flushed = false;
    // Threads registered before this call (e.g. across a test reset) get
    // the new budget; tracing is off during configure, so no owner thread
    // is writing.
    for (auto& buf : st.buffers) {
      if (buf->slots.size() != st.capacity) buf->slots.resize(st.capacity);
    }
    if (!st.atexit_registered) {
      st.atexit_registered = true;
      std::atexit(FlushTraceAtExit);
    }
  }
  internal::g_tracing_enabled.store(true, std::memory_order_release);
}

void MarkTraceSidecarMode() {
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  st.sidecar = true;
}

bool TracingConfigured() {
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.configured;
}

void RecordWorkerSidecar(const std::string& path) {
  if (path.empty()) return;
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  st.worker_sidecars.push_back(path);
}

std::uint64_t DroppedTraceEvents() {
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  std::uint64_t total = 0;
  for (const auto& buf : st.buffers) {
    total += buf->dropped.load(std::memory_order_acquire);
  }
  return total;
}

const char* InternName(const std::string& name) {
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  for (const std::string& existing : st.interned) {
    if (existing == name) return existing.c_str();
  }
  st.interned.push_back(name);
  return st.interned.back().c_str();
}

std::string FlushTrace() {
  TraceState& st = State();
  // Stop writers before reading buffers. Events from threads still inside
  // a Push are published (or not) by the release store on count; partially
  // started spans simply miss the file.
  internal::g_tracing_enabled.store(false, std::memory_order_release);

  std::string base_path;
  bool sidecar = false;
  std::vector<std::string> worker_sidecars;
  TraceDoc own;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.configured || st.flushed) return "";
    st.flushed = true;
    base_path = st.base_path;
    sidecar = st.sidecar;
    worker_sidecars = st.worker_sidecars;
    const std::uint64_t pid = static_cast<std::uint64_t>(getpid());
    for (const auto& buf : st.buffers) {
      const std::size_t n = buf->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        const Event& e = buf->slots[i];
        own.events.push_back(
            TraceEvent{e.name, e.phase, e.ts_ns, pid, buf->tid});
      }
      own.dropped += buf->dropped.load(std::memory_order_acquire);
    }
  }

  std::string out_path;
  TraceDoc final_doc;
  if (sidecar) {
    char suffix[48];
    std::snprintf(suffix, sizeof suffix, ".sidecar.%llu.json",
                  static_cast<unsigned long long>(getpid()));
    out_path = base_path + suffix;
    final_doc = std::move(own);
  } else {
    out_path = base_path;
    // Sidecars arrive two ways: paths reported over the wire (procs/net
    // workers) and files sitting next to the output (e.g. local
    // disco_workerd daemons sharing the directory). Union + sort.
    std::set<std::string> paths(worker_sidecars.begin(),
                                worker_sidecars.end());
    for (const std::string& p : FindSidecarFiles(base_path)) paths.insert(p);
    std::vector<TraceDoc> docs;
    docs.push_back(std::move(own));
    for (const std::string& p : paths) {
      std::string text;
      if (!ReadWholeFile(p, &text)) {
        Log(LogLevel::kWarn, "[obs] unreadable trace sidecar %s", p.c_str());
        continue;
      }
      TraceDoc doc;
      std::string error;
      if (!ParseTraceJson(text, &doc, &error)) {
        Log(LogLevel::kWarn, "[obs] bad trace sidecar %s: %s", p.c_str(),
            error.c_str());
        continue;
      }
      docs.push_back(std::move(doc));
    }
    final_doc = MergeTraceDocs(docs);
  }

  if (!WriteFile(out_path, TraceJson(final_doc))) {
    Log(LogLevel::kWarn, "[obs] failed to write trace %s", out_path.c_str());
    return "";
  }
  return out_path;
}

void ResetTracingForTest() {
  TraceState& st = State();
  internal::g_tracing_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(st.mu);
  st.base_path.clear();
  st.capacity = kDefaultCapacity;
  st.configured = false;
  st.sidecar = false;
  st.flushed = false;
  st.worker_sidecars.clear();
  for (auto& buf : st.buffers) {
    buf->count.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_release);
    buf->rdepth = 0;
  }
}

}  // namespace obs
}  // namespace disco
