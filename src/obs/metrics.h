#ifndef DISCO_OBS_METRICS_H_
#define DISCO_OBS_METRICS_H_

// Unified metrics registry. One process-wide home for every counter the
// repo used to scatter across serve/counters.h, store::StoreCounters, and
// the ad-hoc [store]/[graph] stderr lines. Subsystems register named
// counters/gauges once (idempotent) and bump them on hot paths with a
// single relaxed atomic add; reporting happens in two shapes:
//
//   * PrometheusText() — standard text exposition (# HELP / # TYPE, one
//     family per metric name, optional {label="value"} sets). This is what
//     procs/net workers ship back to the coordinator over the kObs wire
//     frame so per-process counts aggregate into one registry.
//   * DumpText() — the human-facing "[metrics] <group>: k=v k=v" stderr
//     lines that replaced the old [store]/[graph] formats (smoke scripts
//     grep these).
//
// Counter/Gauge references returned by registration are stable for the
// registry's lifetime (deque storage, never reallocated).

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace disco {
namespace obs {

class MetricsRegistry;

// Monotonic counter (uint64). Relaxed increments are safe: accumulation is
// commutative and every reader (exposition/dump) runs after the workload's
// own joins.
class Counter {
 public:
  void Inc() { Add(1); }
  void Add(std::uint64_t n);
  void Set(std::uint64_t v);  // for test resets and merge accumulation
  std::uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

// Gauge (int64): a value that can go up and down, e.g. live worker count.
class Gauge {
 public:
  void Inc() { Add(1); }
  void Dec() { Add(-1); }
  void Add(std::int64_t n);
  void Set(std::int64_t v);
  std::int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

using LabelSet = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers (or returns the existing) counter. `name` is the Prometheus
  // family name (e.g. "disco_store_tree_dijkstras_total"); `group`/`key`
  // place the metric on a "[metrics] <group>: key=value ..." dump line in
  // registration order. Identity is the full exposition name
  // (name + rendered labels).
  Counter& RegisterCounter(const std::string& name, const std::string& help,
                           const std::string& group, const std::string& key,
                           const LabelSet& labels = {});
  Gauge& RegisterGauge(const std::string& name, const std::string& help,
                       const std::string& group, const std::string& key,
                       const LabelSet& labels = {});

  // Prometheus text exposition, families sorted by name, series sorted by
  // exposition name within a family. Byte-stable for fixed values.
  std::string PrometheusText() const;

  // Human dump: one "[metrics] <group>: k1=v1 k2=v2\n" line per group, in
  // first-registration order of groups and keys. `note`, when non-empty,
  // is appended to every line as " (<note>)".
  std::string DumpText(const std::string& note = "") const;

  // Folds a Prometheus text exposition (from a worker process) into this
  // registry: counter samples add onto same-named series; gauge samples
  // and series this process never registered are ignored (gauges are
  // instantaneous; unknown series have no group/help to dump under —
  // callers that expect worker counters must register them before
  // merging). Unparseable lines are skipped. Returns samples merged.
  std::size_t MergeFromPrometheusText(const std::string& text);

  // How many worker expositions have been merged in (for dump notes).
  std::size_t MergedSourceCount() const { return merged_sources_; }
  void NoteMergedSource() { ++merged_sources_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t merged_sources_ = 0;
};

// The process-wide registry every subsystem registers into.
MetricsRegistry& Global();

}  // namespace obs
}  // namespace disco

#endif  // DISCO_OBS_METRICS_H_
