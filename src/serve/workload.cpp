#include "serve/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "runtime/rng_stream.h"
#include "sim/scenario.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/sha256.h"

namespace disco::serve {
namespace {

// Fork streams for the workload's fixed structures. Query streams use
// TaskRng(seed, s) = Rng(seed).Fork(s) with s < spec.streams, so these
// must sit far outside any plausible stream count.
constexpr std::uint64_t kRankFork = 0xD15C05E41ull;
constexpr std::uint64_t kHotFork = 0xD15C05E42ull;

std::vector<NodeId> Permutation(NodeId n, Rng rng) {
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = v;
  for (NodeId i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBelow(i)]);
  }
  return perm;
}

}  // namespace

const char* PhaseName(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kSteady: return "steady";
    case PhaseKind::kFlash: return "flash";
    case PhaseKind::kChurn: return "churn";
  }
  return "?";
}

Workload Workload::Build(const WorkloadSpec& spec, const Graph& g,
                         std::uint64_t seed) {
  Workload w;
  w.spec_ = spec;
  w.seed_ = seed;
  w.n_ = g.num_nodes();

  w.phases_.push_back(PhaseKind::kSteady);
  if (spec.flash) w.phases_.push_back(PhaseKind::kFlash);
  if (spec.churn) w.phases_.push_back(PhaseKind::kChurn);

  w.rank_to_node_ = Permutation(w.n_, Rng(seed).Fork(kRankFork));
  w.cdf_.resize(w.n_);
  double total = 0;
  for (NodeId r = 0; r < w.n_; ++r) {
    total += spec.zipf == 0
                 ? 1.0
                 : std::pow(static_cast<double>(r) + 1.0, -spec.zipf);
    w.cdf_[r] = total;
  }
  for (double& c : w.cdf_) c /= total;
  w.cdf_.back() = 1.0;  // guard against rounding past the last rank

  if (spec.flash) {
    const std::vector<NodeId> hot_rank =
        Permutation(w.n_, Rng(seed).Fork(kHotFork));
    const std::size_t k =
        std::max<std::size_t>(1, std::min<std::size_t>(spec.hot_set, w.n_));
    w.hot_.assign(hot_rank.begin(), hot_rank.begin() + k);
  }

  if (spec.churn) {
    ScenarioSpec scn;
    scn.kind = "churn";
    scn.events = 1;
    scn.fraction = spec.churn_fraction;
    const Scenario scenario = Scenario::Compile(scn, g, seed, 0);
    w.departed_.assign(w.n_, 0);
    for (const ScenarioEvent& e : scenario.events()) {
      for (const NodeId v : e.node_leaves) w.departed_[v] = 1;
    }
  }
  return w;
}

std::vector<Query> Workload::Stream(std::size_t s) const {
  Rng rng = runtime::TaskRng(seed_, s);
  std::vector<Query> out;
  out.reserve(queries_per_stream());
  for (const PhaseKind phase : phases_) {
    for (std::size_t q = 0; q < spec_.queries_per_stream; ++q) {
      Query query;
      query.phase = phase;
      if (phase == PhaseKind::kFlash &&
          rng.NextDouble() < spec_.hot_fraction) {
        query.dst = hot_[rng.NextBelow(hot_.size())];
      } else {
        const double u = rng.NextDouble();
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        const std::size_t rank = it == cdf_.end()
                                     ? cdf_.size() - 1
                                     : static_cast<std::size_t>(
                                           it - cdf_.begin());
        query.dst = rank_to_node_[rank];
      }
      // Uniform source over the other nodes, in one draw.
      query.src = n_ > 1
                      ? static_cast<NodeId>(
                            (query.dst + 1 + rng.NextBelow(n_ - 1)) % n_)
                      : query.dst;
      query.dst_departed =
          phase == PhaseKind::kChurn && departed(query.dst);
      out.push_back(query);
    }
  }
  return out;
}

std::string Workload::FingerprintHex() const {
  Sha256 hash;
  std::string buf;
  for (std::size_t s = 0; s < streams(); ++s) {
    buf.clear();
    PutU64Le(&buf, s);
    for (const Query& q : Stream(s)) {
      PutU32Le(&buf, q.src);
      PutU32Le(&buf, q.dst);
      buf.push_back(static_cast<char>(q.phase));
      buf.push_back(q.dst_departed ? 1 : 0);
    }
    hash.Update(buf);
  }
  return Sha256HexOf(hash.Finalize());
}

std::string Workload::DumpTsv() const {
  std::string out = "stream\tquery\tphase\tsrc\tdst\tdeparted\n";
  char line[96];
  for (std::size_t s = 0; s < streams(); ++s) {
    const std::vector<Query> stream = Stream(s);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Query& q = stream[i];
      std::snprintf(line, sizeof line, "%zu\t%zu\t%s\t%u\t%u\t%d\n", s, i,
                    PhaseName(q.phase), q.src, q.dst,
                    q.dst_departed ? 1 : 0);
      out += line;
    }
  }
  return out;
}

}  // namespace disco::serve
