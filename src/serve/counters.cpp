#include "serve/counters.h"

namespace disco::serve {

ServeCounters::ServeCounters()
    : queries(obs::Global().RegisterCounter(
          "disco_serve_queries_total",
          "Route queries completed (success or failure)", "serve",
          "queries")),
      failures(obs::Global().RegisterCounter(
          "disco_serve_query_failures_total",
          "Route queries that failed (empty path or departed destination)",
          "serve", "failures")),
      active_workers(obs::Global().RegisterGauge(
          "disco_serve_active_workers",
          "Serving threads currently inside their query loop", "serve",
          "active_workers")) {}

ServeCounters& Counters() {
  static ServeCounters* counters = new ServeCounters;
  return *counters;
}

}  // namespace disco::serve
