#include "serve/counters.h"

namespace disco::serve {

ServeCounters& Counters() {
  static ServeCounters counters;
  return counters;
}

}  // namespace disco::serve
