// Live counters for the serve path, after the Prometheus-gauge idiom:
// cheap relaxed atomics the serving threads bump per event, readable at
// any moment by an observer (the disco_serve --progress reporter) without
// stopping the measurement. Nothing here participates in results — the
// authoritative per-query numbers come from the per-thread histograms and
// per-stream tallies — so relaxed ordering and mid-run reads are fine.
// disco-lint: allow-file(relaxed-atomic): observability gauges only; the
// authoritative results come from per-thread tallies merged after join.
#pragma once

#include <atomic>
#include <cstdint>

namespace disco::serve {

struct ServeCounters {
  /// Queries completed (success or failure), monotone.
  std::atomic<std::uint64_t> queries{0};
  /// Queries whose route failed (empty path, or a destination departed
  /// during a churn phase), monotone.
  std::atomic<std::uint64_t> failures{0};
  /// Serving threads currently inside their closed loop (gauge).
  std::atomic<std::int64_t> active_workers{0};

  void RecordQuery(bool failed) {
    queries.fetch_add(1, std::memory_order_relaxed);
    if (failed) failures.fetch_add(1, std::memory_order_relaxed);
  }

  void Reset() {
    queries.store(0, std::memory_order_relaxed);
    failures.store(0, std::memory_order_relaxed);
    active_workers.store(0, std::memory_order_relaxed);
  }
};

/// Process-wide counters of the current serve run (one bench run drives
/// one scheme at a time; the driver resets between schemes).
ServeCounters& Counters();

}  // namespace disco::serve
