// Live counters for the serve path, now registered in the unified
// obs::MetricsRegistry (PR 10): cheap atomics the serving threads bump per
// event, readable at any moment by an observer (the disco_serve --progress
// reporter) without stopping the measurement, and exported through the
// registry's Prometheus exposition / "[metrics]" dump alongside every
// other subsystem. Nothing here participates in results — the
// authoritative per-query numbers come from the per-thread histograms and
// per-stream tallies — so mid-run reads are fine.
#pragma once

#include "obs/metrics.h"

namespace disco::serve {

struct ServeCounters {
  /// Queries completed (success or failure), monotone.
  obs::Counter& queries;
  /// Queries whose route failed (empty path, or a destination departed
  /// during a churn phase), monotone.
  obs::Counter& failures;
  /// Serving threads currently inside their closed loop (gauge).
  obs::Gauge& active_workers;

  ServeCounters();

  void RecordQuery(bool failed) {
    queries.Inc();
    if (failed) failures.Inc();
  }

  void Reset() {
    queries.Set(0);
    failures.Set(0);
    active_workers.Set(0);
  }
};

/// Process-wide counters of the current serve run (one bench run drives
/// one scheme at a time; the driver resets between schemes).
ServeCounters& Counters();

}  // namespace disco::serve
