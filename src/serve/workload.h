// Deterministic query workload for the route-serving benchmark.
//
// The workload is a fixed set of logical client *streams*, each a closed
// loop of queries drawn from its own TaskRng(seed, stream) substream
// (runtime/rng_stream.h). The stream count is a workload parameter, NOT
// the thread count: serving threads are assigned whole streams round-robin
// (stream s runs on thread s % T), so the set of queries — destinations,
// phase schedule, and which queries fail deterministically — is
// byte-identical for any thread count and any run. Only timings vary.
//
// Each stream runs the same phase schedule in order:
//   steady   Zipf-distributed destinations over a seed-derived popularity
//            ranking of all nodes (skew = spec.zipf)
//   flash    a flash crowd: a fraction of queries collapses onto a small
//            hot set (the top of a second, independent ranking), the rest
//            stay Zipf — the tail-latency stressor
//   churn    destinations drawn as in steady, but a scenario-compiled
//            departed-node set (sim/scenario.h, kind "churn") is down;
//            queries to departed destinations are deterministic routing
//            failures
// Sources are uniform over the other nodes. Every draw comes from the
// stream's own RNG, so streams are mutually independent and replayable in
// isolation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace disco::serve {

enum class PhaseKind : std::uint8_t { kSteady = 0, kFlash = 1, kChurn = 2 };

const char* PhaseName(PhaseKind kind);

struct WorkloadSpec {
  /// Logical client streams (decoupled from serving threads).
  std::size_t streams = 64;
  /// Queries per stream per phase.
  std::size_t queries_per_stream = 2000;
  /// Zipf skew over the popularity ranking (0 = uniform).
  double zipf = 0.99;
  /// Flash-crowd phase: fraction of queries sent to the hot set.
  bool flash = false;
  std::size_t hot_set = 8;
  double hot_fraction = 0.5;
  /// Churn phase: fraction of nodes departed (scenario-compiled).
  bool churn = false;
  double churn_fraction = 0.05;
};

struct Query {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PhaseKind phase = PhaseKind::kSteady;
  /// True when dst is departed during a churn phase: the query must be
  /// counted as a routing failure without consulting the scheme.
  bool dst_departed = false;
};

/// A compiled workload: pure value, a function of (spec, graph, seed).
class Workload {
 public:
  static Workload Build(const WorkloadSpec& spec, const Graph& g,
                        std::uint64_t seed);

  const WorkloadSpec& spec() const { return spec_; }
  const std::vector<PhaseKind>& phases() const { return phases_; }
  std::size_t streams() const { return spec_.streams; }
  /// Queries per stream across all phases.
  std::size_t queries_per_stream() const {
    return spec_.queries_per_stream * phases_.size();
  }
  std::size_t total_queries() const {
    return queries_per_stream() * streams();
  }
  bool departed(NodeId v) const {
    return !departed_.empty() && departed_[v] != 0;
  }

  /// Materializes stream s's closed loop, in order. Pure function of the
  /// workload and s — identical no matter which thread calls it, or when.
  std::vector<Query> Stream(std::size_t s) const;

  /// SHA-256 over every stream's (src, dst, phase, departed) sequence in
  /// stream order — the byte-identity fingerprint serve runs publish so
  /// two runs (any thread counts) can prove they served the same stream.
  std::string FingerprintHex() const;

  /// The full stream as TSV ("stream query phase src dst departed"), for
  /// byte-for-byte comparison across runs in serve_smoke.
  std::string DumpTsv() const;

 private:
  WorkloadSpec spec_;
  std::uint64_t seed_ = 0;
  NodeId n_ = 0;
  std::vector<PhaseKind> phases_;
  /// Popularity ranking: rank r -> node id (seed-derived permutation).
  std::vector<NodeId> rank_to_node_;
  /// Cumulative Zipf weights over ranks; cdf_[r] = P(rank <= r).
  std::vector<double> cdf_;
  /// Flash-crowd hot set (independent second ranking's head).
  std::vector<NodeId> hot_;
  /// departed_[v] != 0 when v is down during the churn phase.
  std::vector<std::uint8_t> departed_;
};

}  // namespace disco::serve
