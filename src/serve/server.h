// The serving layer of the route-serving benchmark: drives a prewarmed
// scheme's route function with the Workload's closed-loop query streams
// from a fixed-size pool of serving threads, recording per-query latency
// into lock-free per-thread histograms (merged after the loops join) and
// bumping the live ServeCounters on every query.
//
// Thread assignment is stream-granular and static (stream s runs on
// thread s % threads), so per-stream tallies are written race-free and the
// deterministic results — queries served, failure counts per stream — are
// invariant under the thread count. Only the timing columns change.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/latency_histogram.h"
#include "serve/workload.h"
#include "sim/metrics.h"

namespace disco::serve {

struct ServeOptions {
  /// Serving threads; <= 0 means hardware concurrency.
  int threads = 0;
  /// Print a live counter line to stderr twice a second while serving.
  bool progress = false;
};

struct ServeResult {
  /// Merged per-thread latency histogram (nanoseconds); covers every
  /// query that reached the route function (departed-destination queries
  /// are rejected before routing and appear only in the failure tallies).
  LatencyHistogram latency;
  /// Deterministic per-stream tallies, thread-count invariant.
  std::vector<std::uint64_t> stream_served;
  std::vector<std::uint64_t> stream_failures;
  std::uint64_t served = 0;    // sum of stream_served
  std::uint64_t failures = 0;  // sum of stream_failures
  /// Wall-clock of the serving section only (streams are pregenerated).
  double wall_seconds = 0;
  int threads = 0;  // resolved thread count

  double qps() const {
    return wall_seconds > 0 ? static_cast<double>(served) / wall_seconds
                            : 0;
  }
};

/// Runs every stream's closed loop against `route`. `streams` must hold
/// Workload::Stream(s) for s in [0, w.streams()) — pregenerated so stream
/// synthesis is off the measured path (and reusable across schemes).
ServeResult ServeWorkload(const RouteFn& route, const Workload& w,
                          const std::vector<std::vector<Query>>& streams,
                          const ServeOptions& opts);

}  // namespace disco::serve
