#include "serve/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/bitio.h"

namespace disco::serve {
namespace {

constexpr int kSubBits = LatencyHistogram::kSubBits;
constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;  // 64
// Highest representable floor(log2(ns)); 2^41 ns ~ 36 minutes, far past
// any per-query latency worth distinguishing.
constexpr int kMaxTopBit = 40;
constexpr std::size_t kNumBuckets =
    static_cast<std::size_t>(kMaxTopBit - kSubBits + 1) * kSubBuckets +
    kSubBuckets;

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyHistogram::BucketOf(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  ns = std::min<std::uint64_t>(ns, (1ull << (kMaxTopBit + 1)) - 1);
  const int top = BitWidth(ns) - 1;  // floor(log2), >= kSubBits
  const std::uint64_t sub = (ns >> (top - kSubBits)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(top - kSubBits + 1) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::BucketLowerBound(std::size_t bucket) {
  if (bucket < kSubBuckets) return bucket;
  const std::size_t octave = bucket / kSubBuckets;  // >= 1
  const std::uint64_t sub = bucket % kSubBuckets;
  return (kSubBuckets + sub) << (octave - 1);
}

void LatencyHistogram::Record(std::uint64_t ns) {
  ++buckets_[BucketOf(ns)];
  ++count_;
  sum_ += ns;
  max_ = std::max(max_, ns);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      // Buckets are represented by their lower bound (never past the true
      // sample), except the bucket holding the maximum, which reports the
      // exact observed max so p100 == max.
      if (i == BucketOf(max_)) return max_;
      return BucketLowerBound(i);
    }
  }
  return max_;
}

}  // namespace disco::serve
