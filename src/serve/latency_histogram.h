// Log-linear latency histogram for the route-serving benchmark.
//
// HDR-style bucketing: values below 2^kSubBits nanoseconds get exact
// buckets; above that, each power-of-two octave is split into 2^kSubBits
// linear sub-buckets, so relative resolution stays within 1/2^kSubBits
// (~1.6%) across the whole range while the table stays a few KiB. Each
// serving thread records into its own instance — no atomics, no false
// sharing, nothing shared on the hot path — and the driver merges the
// per-thread instances after the loops join. Merging is plain bucket
// addition, so the merged counts are exactly the union of the per-thread
// counts: histogram totals are invariant under how queries were
// partitioned across threads (guarded by ServeHistogramTest).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace disco::serve {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency sample (nanoseconds). Values past the last
  /// bucket (~18 minutes) saturate into it.
  void Record(std::uint64_t ns);

  /// Adds every bucket of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_ns() const { return sum_; }
  std::uint64_t max_ns() const { return max_; }

  /// Value (ns) at quantile q in [0, 1]: the representative (bucket lower
  /// bound) of the bucket holding the ceil(q * count)-th sample. 0 when
  /// empty. Exact below 2^kSubBits ns, within ~1.6% above.
  std::uint64_t ValueAtQuantile(double q) const;

  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Bucket count resolution (see file comment).
  static constexpr int kSubBits = 6;

 private:
  static std::size_t BucketOf(std::uint64_t ns);
  static std::uint64_t BucketLowerBound(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace disco::serve
