#include "serve/server.h"

// disco-lint: allow-file(relaxed-atomic): the progress reporter's stop
// flag only — eventual visibility suffices, and the worker join (not this
// atomic) orders every result the run emits.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/trace.h"
#include "serve/counters.h"

namespace disco::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NsBetween(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

ServeResult ServeWorkload(const RouteFn& route, const Workload& w,
                          const std::vector<std::vector<Query>>& streams,
                          const ServeOptions& opts) {
  ServeResult result;
  const std::size_t num_streams = w.streams();
  int threads = opts.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<std::size_t>(threads) > num_streams) {
    threads = static_cast<int>(num_streams);
  }
  result.threads = threads;
  result.stream_served.assign(num_streams, 0);
  result.stream_failures.assign(num_streams, 0);

  ServeCounters& live = Counters();
  live.Reset();

  std::vector<LatencyHistogram> histograms(
      static_cast<std::size_t>(threads));
  std::atomic<bool> done{false};

  const auto worker = [&](int t) {
    live.active_workers.Inc();
    DISCO_TRACE_SPAN("serve.workload");
    LatencyHistogram& hist = histograms[static_cast<std::size_t>(t)];
    for (std::size_t s = static_cast<std::size_t>(t); s < num_streams;
         s += static_cast<std::size_t>(threads)) {
      std::uint64_t served = 0;
      std::uint64_t failed = 0;
      for (const Query& q : streams[s]) {
        ++served;
        bool failure;
        if (q.dst_departed) {
          // A departed destination never reaches the route function: the
          // liveness check fails the query up front, deterministically.
          failure = true;
        } else {
          const Clock::time_point t0 = Clock::now();
          const Route r = route(q.src, q.dst);
          const Clock::time_point t1 = Clock::now();
          hist.Record(NsBetween(t0, t1));
          failure = !r.ok();
        }
        if (failure) ++failed;
        live.RecordQuery(failure);
      }
      result.stream_served[s] = served;
      result.stream_failures[s] = failed;
    }
    live.active_workers.Dec();
  };

  std::thread reporter;
  if (opts.progress) {
    reporter = std::thread([&] {
      while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        std::fprintf(
            stderr, "[serve] served=%llu failures=%llu workers=%lld\n",
            static_cast<unsigned long long>(live.queries.Value()),
            static_cast<unsigned long long>(live.failures.Value()),
            static_cast<long long>(live.active_workers.Value()));
      }
    });
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& th : pool) th.join();
  const Clock::time_point end = Clock::now();
  done.store(true, std::memory_order_relaxed);
  if (reporter.joinable()) reporter.join();

  for (const LatencyHistogram& h : histograms) result.latency.Merge(h);
  for (std::size_t s = 0; s < num_streams; ++s) {
    result.served += result.stream_served[s];
    result.failures += result.stream_failures[s];
  }
  result.wall_seconds =
      static_cast<double>(NsBetween(start, end)) * 1e-9;
  return result;
}

}  // namespace disco::serve
