// Bit-level writer/reader used by the compact source-route label codec
// (util/compact_label.*). Values are written most-significant-bit first so
// that encoded routes are byte-prefix comparable.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace disco {

/// Position of the highest set bit plus one (0 for x == 0); the C++17
/// stand-in for std::bit_width. Hot path: CommonPrefixLength calls this
/// once per candidate in every longest-prefix-match scan.
inline int BitWidth(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return x == 0 ? 0 : 64 - __builtin_clzll(x);
#else
  int width = 0;
  for (; x != 0; x >>= 1) ++width;
  return width;
#endif
}

/// Appends variable-width unsigned values to a growing byte buffer.
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value` (MSB first). `bits` must be in
  /// [0, 64] and `value` must fit in `bits` bits.
  void Write(std::uint64_t value, int bits);

  /// Number of bits written so far.
  std::size_t bit_size() const { return bit_size_; }

  /// Number of bytes needed to hold the written bits (rounded up).
  std::size_t byte_size() const { return (bit_size_ + 7) / 8; }

  /// The backing buffer; trailing pad bits of the last byte are zero.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

/// Reads back values written by BitWriter, in the same order and widths.
/// The pointer form reads directly out of any byte region (e.g. an mmap'd
/// artifact frame) without copying; the buffer must outlive the reader.
class BitReader {
 public:
  BitReader(const std::uint8_t* bytes, std::size_t bit_size)
      : bytes_(bytes), bit_size_(bit_size) {}
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t bit_size)
      : BitReader(bytes.data(), bit_size) {}

  /// Reads the next `bits` bits as an unsigned value (MSB first).
  /// `bits` must not run past the end of the stream.
  std::uint64_t Read(int bits);

  std::size_t bits_remaining() const { return bit_size_ - pos_; }

 private:
  const std::uint8_t* bytes_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
};

}  // namespace disco
