#include "util/consistent_hash.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <map>
#include <unordered_set>

namespace disco {

ConsistentHashRing::ConsistentHashRing(
    const std::vector<std::uint32_t>& members, int virtual_points)
    : num_members_(members.size()) {
  assert(!members.empty());
  assert(virtual_points >= 1);
  points_.reserve(members.size() * static_cast<std::size_t>(virtual_points));
  for (const std::uint32_t m : members) {
    for (int r = 0; r < virtual_points; ++r) {
      const std::string key =
          "chr-" + std::to_string(m) + "-" + std::to_string(r);
      points_.push_back({HashName(key), m});
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::uint32_t ConsistentHashRing::Owner(HashValue key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, HashValue k) { return p.position < k; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->member;
}

std::vector<std::uint32_t> ConsistentHashRing::Owners(HashValue key,
                                                      int k) const {
  std::vector<std::uint32_t> out;
  std::unordered_set<std::uint32_t> seen;
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)),
                            num_members_);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, HashValue kk) { return p.position < kk; });
  for (std::size_t step = 0; step < points_.size() && out.size() < want;
       ++step) {
    if (it == points_.end()) it = points_.begin();
    if (seen.insert(it->member).second) out.push_back(it->member);
    ++it;
  }
  return out;
}

std::vector<std::pair<std::uint32_t, std::size_t>>
ConsistentHashRing::CountOwnership(const std::vector<HashValue>& keys) const {
  // Ordered map: the result is read straight out of the container, so the
  // member order is by id rather than by hash-bucket accident.
  std::map<std::uint32_t, std::size_t> counts;
  for (const Point& p : points_) counts.emplace(p.member, 0);
  for (const HashValue k : keys) ++counts[Owner(k)];
  return {counts.begin(), counts.end()};
}

}  // namespace disco
