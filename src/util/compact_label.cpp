#include "util/compact_label.h"

#include <cassert>

namespace disco {

int LabelBits(std::uint32_t degree) {
  if (degree <= 1) return 0;
  return BitWidth(degree - 1);
}

EncodedRoute EncodeRoute(Span<const HopLabel> hops) {
  BitWriter w;
  for (const HopLabel& h : hops) {
    assert(h.interface < std::max<std::uint32_t>(h.degree, 1));
    w.Write(h.interface, LabelBits(h.degree));
  }
  EncodedRoute out;
  out.bytes = w.bytes();
  out.bit_size = w.bit_size();
  out.num_hops = hops.size();
  return out;
}

std::uint32_t LabelDecoder::Next(std::uint32_t degree) {
  assert(hops_left_ > 0);
  --hops_left_;
  const int bits = LabelBits(degree);
  if (bits == 0) return 0;
  return static_cast<std::uint32_t>(reader_.Read(bits));
}

}  // namespace disco
