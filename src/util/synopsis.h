// Synopsis diffusion (Nath et al. [36]) for estimating the network size n.
//
// Disco needs every node to know n within a constant factor (§4.1): n sets
// the landmark probability, the vicinity size and the sloppy-group prefix
// length. The paper proposes synopsis diffusion: each node contributes a
// tiny Flajolet–Martin synopsis, synopses are OR-merged by unstructured
// gossip with neighbors, and the merged synopsis yields a duplicate-
// insensitive count-distinct estimate (within ~10% with 256-byte synopses).
//
// A Synopsis here is `num_bitmaps` independent 64-bit FM bitmaps; a node
// sets, in each bitmap, the bit at a geometrically distributed level derived
// from a per-(node, bitmap) hash. Merging is bitwise OR — order- and
// duplicate-insensitive, which is what makes gossip robust.
#pragma once

#include <cstdint>
#include <vector>

namespace disco {

class Graph;

class Synopsis {
 public:
  /// An empty synopsis (counts zero elements).
  explicit Synopsis(int num_bitmaps = 32);

  /// The synopsis of the single element `element` (e.g. a node's hashed
  /// name). Deterministic in (element, num_bitmaps).
  static Synopsis ForElement(std::uint64_t element, int num_bitmaps = 32);

  /// OR-merge: afterwards this synopsis covers the union of both element
  /// sets. Both synopses must have the same num_bitmaps.
  void Merge(const Synopsis& other);

  /// Count-distinct estimate: 2^(mean first-zero level) / 0.77351.
  double Estimate() const;

  /// Wire size in bytes (num_bitmaps * 8).
  std::size_t byte_size() const { return bitmaps_.size() * 8; }

  bool operator==(const Synopsis& other) const {
    return bitmaps_ == other.bitmaps_;
  }
  bool operator!=(const Synopsis& other) const { return !(*this == other); }

 private:
  std::vector<std::uint64_t> bitmaps_;
};

/// Simulates synchronous gossip of synopses over g's adjacency for
/// `rounds` rounds (each round every node merges all neighbors'
/// previous-round synopses), then returns each node's estimate of n.
/// After diameter-many rounds all estimates coincide. Iterates the CSR
/// neighbor spans in place — no adjacency-list materialization.
std::vector<double> GossipEstimates(const Graph& g, int rounds,
                                    int num_bitmaps = 32);

}  // namespace disco
