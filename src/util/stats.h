// Summary statistics and CDF extraction used by the benchmark harness to
// print the paper's figures as tables and CSV series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace disco {

/// Five-number style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Computes a Summary. Returns an all-zero summary for an empty sample.
Summary Summarize(std::vector<double> values);

/// Percentile by linear interpolation between closest ranks; q in [0, 1].
/// `sorted` must be non-empty and ascending.
double Percentile(const std::vector<double>& sorted, double q);

/// One point of an empirical CDF: fraction of samples <= value.
struct CdfPoint {
  double value = 0;
  double fraction = 0;
};

/// Reduces a sample to `max_points` evenly spaced (by rank) CDF points.
/// Always includes the minimum and maximum.
std::vector<CdfPoint> Cdf(std::vector<double> values,
                          std::size_t max_points = 64);

/// Renders CDF points as "value<TAB>fraction" lines (for CSV output).
std::string CdfToCsv(const std::vector<CdfPoint>& cdf);

/// Writes a string to a file, replacing its contents. Returns false on I/O
/// failure (the bench harness warns but continues).
bool WriteFile(const std::string& path, const std::string& contents);

}  // namespace disco
