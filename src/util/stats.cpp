#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>

namespace disco {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  s.min = values.front();
  s.max = values.back();
  s.p50 = Percentile(values, 0.50);
  s.p95 = Percentile(values, 0.95);
  s.p99 = Percentile(values, 0.99);
  return s;
}

std::vector<CdfPoint> Cdf(std::vector<double> values, std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Evenly spaced ranks, always ending at the max.
    const std::size_t rank =
        (points == 1) ? n - 1 : i * (n - 1) / (points - 1);
    out.push_back({values[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return out;
}

std::string CdfToCsv(const std::vector<CdfPoint>& cdf) {
  std::ostringstream os;
  os << "value\tcdf\n";
  for (const CdfPoint& p : cdf) os << p.value << '\t' << p.fraction << '\n';
  return os.str();
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream f(path);
  if (!f) return false;
  f << contents;
  // The destructor would close too, but silently: a flush failure at
  // close time (ENOSPC, a vanished directory) must flip the return value,
  // not be reported as success.
  f.close();
  return !f.fail();
}

}  // namespace disco
