// Deterministic pseudo-random generation.
//
// Everything in this repository is seeded: every protocol instance,
// generator and experiment takes an explicit 64-bit seed so results are
// reproducible run to run. Rng wraps SplitMix64 (Steele et al.), which is
// tiny, fast, and passes BigCrush when used as a stream; the Fork() method
// derives statistically independent substreams for per-node decisions
// (landmark flips, finger choices) without sharing mutable state.
#pragma once

#include <cstdint>
#include <cmath>

namespace disco {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t NextBelow(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Derives an independent generator keyed by `stream`. Two forks with
  /// different stream ids produce uncorrelated sequences.
  Rng Fork(std::uint64_t stream) const {
    Rng r(state_ ^ (0x94d049bb133111ebULL * (stream + 1)));
    r.Next();
    return r;
  }

 private:
  std::uint64_t state_;
};

}  // namespace disco
