#include "util/synopsis.h"

#include <cassert>
#include <cmath>

#include "graph/graph.h"

namespace disco {
namespace {

// SplitMix64 finalizer; mixes (element, bitmap index) into a uniform word.
std::uint64_t Mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Trailing zero count (64 for zero); C++17 stand-in for std::countr_zero.
int TrailingZeros(std::uint64_t word) {
  if (word == 0) return 64;
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(word);
#else
  int tz = 0;
  while ((word & 1) == 0) {
    word >>= 1;
    ++tz;
  }
  return tz;
#endif
}

// Geometric level: P(level = k) = 2^-(k+1), capped at 63.
int Level(std::uint64_t word) {
  return std::min(TrailingZeros(word), 63);
}

constexpr double kFmPhi = 0.77351;  // Flajolet–Martin correction factor

}  // namespace

Synopsis::Synopsis(int num_bitmaps)
    : bitmaps_(static_cast<std::size_t>(num_bitmaps), 0) {
  assert(num_bitmaps > 0);
}

Synopsis Synopsis::ForElement(std::uint64_t element, int num_bitmaps) {
  Synopsis s(num_bitmaps);
  for (std::size_t j = 0; j < s.bitmaps_.size(); ++j) {
    const std::uint64_t w = Mix(element * 0x9e3779b97f4a7c15ULL + j + 1);
    s.bitmaps_[j] = 1ULL << Level(w);
  }
  return s;
}

void Synopsis::Merge(const Synopsis& other) {
  assert(bitmaps_.size() == other.bitmaps_.size());
  for (std::size_t j = 0; j < bitmaps_.size(); ++j) {
    bitmaps_[j] |= other.bitmaps_[j];
  }
}

double Synopsis::Estimate() const {
  double sum_levels = 0;
  for (const std::uint64_t bm : bitmaps_) {
    // First-zero position: lowest bit index not set.
    sum_levels += TrailingZeros(~bm);
  }
  const double mean = sum_levels / static_cast<double>(bitmaps_.size());
  return std::pow(2.0, mean) / kFmPhi;
}

std::vector<double> GossipEstimates(const Graph& g, int rounds,
                                    int num_bitmaps) {
  const std::size_t n = g.num_nodes();
  std::vector<Synopsis> cur;
  cur.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    cur.push_back(Synopsis::ForElement(v, num_bitmaps));
  }
  std::vector<Synopsis> next = cur;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t v = 0; v < n; ++v) {
      next[v] = cur[v];
      for (const std::uint32_t u :
           g.neighbor_ids(static_cast<NodeId>(v))) {
        next[v].Merge(cur[u]);
      }
    }
    std::swap(cur, next);
  }
  std::vector<double> est(n);
  for (std::size_t v = 0; v < n; ++v) est[v] = cur[v].Estimate();
  return est;
}

}  // namespace disco
