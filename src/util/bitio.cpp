#include "util/bitio.h"

#include <cassert>

namespace disco {

void BitWriter::Write(std::uint64_t value, int bits) {
  assert(bits >= 0 && bits <= 64);
  assert(bits == 64 || (value >> bits) == 0);
  for (int i = bits - 1; i >= 0; --i) {
    const std::size_t byte = bit_size_ / 8;
    if (byte == bytes_.size()) bytes_.push_back(0);
    const int offset = 7 - static_cast<int>(bit_size_ % 8);
    bytes_[byte] |= static_cast<std::uint8_t>(((value >> i) & 1) << offset);
    ++bit_size_;
  }
}

std::uint64_t BitReader::Read(int bits) {
  assert(bits >= 0 && bits <= 64);
  assert(pos_ + static_cast<std::size_t>(bits) <= bit_size_);
  std::uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    const int offset = 7 - static_cast<int>(pos_ % 8);
    out = (out << 1) | ((bytes_[byte] >> offset) & 1);
    ++pos_;
  }
  return out;
}

}  // namespace disco
