#include "util/hashring.h"

#include <cassert>

#include "util/bitio.h"
#include "util/sha256.h"

namespace disco {

HashValue HashName(std::string_view name) {
  const Sha256Digest d = Sha256Hash(name);
  HashValue h = 0;
  for (int i = 0; i < 8; ++i) h = (h << 8) | d[i];
  return h;
}

std::uint64_t RingDistance(HashValue a, HashValue b) {
  const std::uint64_t forward = b - a;   // wraps mod 2^64
  const std::uint64_t backward = a - b;  // wraps mod 2^64
  return std::min(forward, backward);
}

std::uint64_t ClockwiseDistance(HashValue from, HashValue to) {
  return to - from;  // wraps mod 2^64
}

int CommonPrefixLength(HashValue a, HashValue b) {
  const std::uint64_t x = a ^ b;
  if (x == 0) return 64;
  return 64 - BitWidth(x);
}

std::uint64_t GroupId(HashValue h, int bits) {
  assert(bits >= 0 && bits <= 64);
  if (bits == 0) return 0;
  return h >> (64 - bits);
}

std::string DefaultName(std::uint64_t i) {
  return "node-" + std::to_string(i);
}

}  // namespace disco
