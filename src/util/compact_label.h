// Compact source-route encoding (§4.2 of the paper, format of Pathlet
// routing [19]).
//
// A node's address embeds an explicit route from its closest landmark. Each
// hop leaving a node of degree d is encoded as the index of the outgoing
// interface in ceil(log2(d)) bits, so routes through low-degree regions cost
// almost nothing. On the paper's router-level Internet map this makes the
// mean address 2.93 bytes — smaller than an IPv4 address; the bench
// `addr_size` re-measures this on our synthetic maps.
//
// This codec is graph-agnostic: encoding takes (interface, degree) pairs and
// decoding is pull-based, with the caller supplying each next node's degree
// while walking the graph. The graph-aware wrapper lives in routing/address.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitio.h"
#include "util/span.h"

namespace disco {

/// One hop of an explicit route: take interface `interface` out of a node
/// with `degree` interfaces. Requires interface < degree.
struct HopLabel {
  std::uint32_t interface = 0;
  std::uint32_t degree = 1;
};

/// Bits needed for an interface index at a node of degree `degree`
/// (= ceil(log2(degree)); 0 for degree <= 1 since there is no choice).
int LabelBits(std::uint32_t degree);

/// A bit-packed explicit route.
struct EncodedRoute {
  std::vector<std::uint8_t> bytes;
  std::size_t bit_size = 0;
  std::size_t num_hops = 0;

  /// Size in bytes when carried in a packet header (bits rounded up).
  std::size_t byte_size() const { return (bit_size + 7) / 8; }
};

/// Packs a hop sequence into an EncodedRoute.
EncodedRoute EncodeRoute(Span<const HopLabel> hops);

/// Streaming decoder. The caller walks the graph: at each step it passes the
/// degree of the node the route currently sits at and receives the interface
/// to take.
class LabelDecoder {
 public:
  explicit LabelDecoder(const EncodedRoute& route)
      : reader_(route.bytes, route.bit_size), hops_left_(route.num_hops) {}

  bool HasNext() const { return hops_left_ > 0; }

  /// Returns the interface index for the next hop out of a node with
  /// `degree` interfaces. Must not be called when !HasNext().
  std::uint32_t Next(std::uint32_t degree);

 private:
  BitReader reader_;
  std::size_t hops_left_;
};

}  // namespace disco
