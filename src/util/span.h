// Minimal std::span stand-in so the codebase builds as C++17.
//
// Only the operations this repository uses: pointer+size construction,
// implicit conversion from contiguous containers, iteration, indexing.
// Swap back to std::span wholesale once the toolchain baseline moves to
// C++20 — the call sites are source-compatible.
#pragma once

#include <cstddef>
#include <type_traits>

namespace disco {

template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;

  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  /// Implicit view over any contiguous container with data()/size()
  /// (std::vector, std::array, C arrays via std::data).
  template <typename Container,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<Container&>().data()), T*>>>
  constexpr Span(Container& c) : data_(c.data()), size_(c.size()) {}
  template <typename Container,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<const Container&>().data()), T*>>>
  constexpr Span(const Container& c) : data_(c.data()), size_(c.size()) {}

  template <std::size_t N>
  constexpr Span(T (&arr)[N]) : data_(arr), size_(N) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace disco
