#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace disco::json {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(Value* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage");
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "%s at byte %zu", what, pos_);
      *error_ = buf;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          default: return Fail("unsupported escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      *out = Value::Object();
      SkipWs();
      if (Consume('}')) return true;
      for (;;) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (!Consume(':')) return Fail("expected ':'");
        SkipWs();
        Value member;
        if (!ParseValue(&member)) return false;
        out->Set(std::move(key), std::move(member));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return true;
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      *out = Value::Array();
      SkipWs();
      if (Consume(']')) return true;
      for (;;) {
        SkipWs();
        Value item;
        if (!ParseValue(&item)) return false;
        out->Push(std::move(item));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return true;
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = Value::Str(std::move(s));
      return true;
    }
    if (ConsumeWord("true")) {
      *out = Value::Bool(true);
      return true;
    }
    if (ConsumeWord("false")) {
      *out = Value::Bool(false);
      return true;
    }
    if (ConsumeWord("null")) {
      *out = Value::Null();
      return true;
    }
    // Number.
    char* end = nullptr;
    const double n = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_ || !std::isfinite(n)) {
      return Fail("expected a JSON value");
    }
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    *out = Value::Number(n);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double n) {
  char buf[40];
  // Integers (the common case: counts, node ids) print without a decimal
  // point; everything else gets enough digits to round-trip a measurement.
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", n);
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", n);
  }
  *out += buf;
}

}  // namespace

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::NumberOr(const std::string& key, double def) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : def;
}

std::string Value::StringOr(const std::string& key, std::string def) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::move(def);
}

void Value::DumpTo(std::string* out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2,
                              ' ');
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: AppendNumber(out, number_); break;
    case Kind::kString: AppendEscaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        *out += inner_pad;
        items_[i].DumpTo(out, indent + 1);
        if (i + 1 < items_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        *out += inner_pad;
        AppendEscaped(out, members_[i].first);
        *out += ": ";
        members_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < members_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

bool Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser(text, error);
  return parser.Run(out);
}

}  // namespace disco::json
