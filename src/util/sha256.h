// SHA-256 (FIPS 180-4), implemented from scratch. Disco hashes flat node
// names with SHA-2 (§4.4 of the paper); the 64-bit ring positions used by
// sloppy groups and the overlay are the first 8 bytes of this digest.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>

namespace disco {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256. Usage: Update(...) any number of times, then
/// Finalize() exactly once.
class Sha256 {
 public:
  Sha256();

  void Update(const void* data, std::size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Completes the hash and returns the 32-byte digest. The object must not
  /// be used after finalization.
  Sha256Digest Finalize();

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience wrapper.
Sha256Digest Sha256Hash(std::string_view data);

/// Lowercase hex rendering of a digest (64 chars) — the form used for
/// artifact-store ids, graph fingerprints, and landmark-set fingerprints.
std::string Sha256HexOf(const Sha256Digest& digest);

}  // namespace disco
