// Consistent hashing (Karger et al. [22]) over an arbitrary member set.
//
// Disco runs a name-resolution database over the globally known landmark set
// (§4.3): the landmark that "owns" h(name) stores that node's current
// address. Using multiple virtual points per member reduces the Θ(log n)
// load imbalance of the single-hash construction (§4.5).
#pragma once

#include <cstdint>
#include <vector>

#include "util/hashring.h"

namespace disco {

class ConsistentHashRing {
 public:
  /// Builds a ring over `members` (arbitrary 32-bit ids, e.g. node ids).
  /// Each member is inserted at `virtual_points` pseudo-random ring
  /// positions derived from (member, replica index). `members` must be
  /// non-empty and duplicate-free.
  ConsistentHashRing(const std::vector<std::uint32_t>& members,
                     int virtual_points = 8);

  /// The member owning ring position `key`: the member whose virtual point
  /// is the clockwise successor of `key`.
  std::uint32_t Owner(HashValue key) const;

  /// Owners of `key` under the first `k` distinct members encountered
  /// clockwise (for replicated entries). k is clamped to the member count.
  std::vector<std::uint32_t> Owners(HashValue key, int k) const;

  std::size_t num_members() const { return num_members_; }

  /// Number of keys from `keys` owned by each member id (for load-balance
  /// accounting, e.g. resolution-DB entries per landmark).
  /// Returned pairs are (member, count), covering every member.
  std::vector<std::pair<std::uint32_t, std::size_t>> CountOwnership(
      const std::vector<HashValue>& keys) const;

 private:
  struct Point {
    HashValue position;
    std::uint32_t member;
    bool operator<(const Point& o) const {
      return position < o.position ||
             (position == o.position && member < o.member);
    }
  };
  std::vector<Point> points_;  // sorted by position
  std::size_t num_members_;
};

}  // namespace disco
