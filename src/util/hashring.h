// Flat-name hashing and hash-ring arithmetic.
//
// A flat name is an arbitrary byte string (§2 of the paper). Disco maps it
// onto a 64-bit circular hash space via SHA-256 truncation (§4.4). This
// header provides the map plus the ring primitives every higher layer needs:
// clockwise/circular distance, common-prefix length (used for sloppy-group
// membership and vicinity prefix matching), and successor ordering.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace disco {

/// Position of a name on the 2^64 hash ring.
using HashValue = std::uint64_t;

/// h(name): the first 8 bytes (big-endian) of SHA-256(name).
HashValue HashName(std::string_view name);

/// Circular (undirected) distance between two ring positions:
/// min(|a-b|, 2^64 - |a-b|).
std::uint64_t RingDistance(HashValue a, HashValue b);

/// Clockwise distance from `from` to `to` (wrapping), in [0, 2^64).
std::uint64_t ClockwiseDistance(HashValue from, HashValue to);

/// Number of leading bits on which `a` and `b` agree, in [0, 64].
int CommonPrefixLength(HashValue a, HashValue b);

/// The first `bits` bits of `h` (as the group identifier of §4.4);
/// bits must be in [0, 64]. GroupId(h, 0) == 0 for all h.
std::uint64_t GroupId(HashValue h, int bits);

/// Default flat name for node `i` in synthetic topologies ("node-<i>").
/// Any string works as a name; this is just the convention the simulators
/// and tests use.
std::string DefaultName(std::uint64_t i);

}  // namespace disco
