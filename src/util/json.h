// Minimal JSON value tree — just enough for the BENCH_*.json perf
// trajectory files: parse, navigate, and dump objects/arrays/strings/
// numbers/bools. Written from scratch (no third-party dependency); not a
// general-purpose JSON library — no \uXXXX escapes beyond pass-through,
// no streaming, numbers are doubles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace disco::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double n);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& Items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& Members() const {
    return members_;
  }

  /// Object member by key, or nullptr (also when not an object).
  const Value* Find(const std::string& key) const;
  /// Find(key)->AsNumber() with a default for missing/non-number.
  double NumberOr(const std::string& key, double def) const;
  /// Find(key)->AsString() with a default for missing/non-string.
  std::string StringOr(const std::string& key, std::string def) const;

  /// Appends to an array.
  void Push(Value v) { items_.push_back(std::move(v)); }
  /// Appends an object member (insertion order is preserved on dump).
  void Set(std::string key, Value v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// Pretty-prints with 2-space indentation and a trailing newline at the
  /// top level — stable output for committed baselines.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses `text` into `*out`. Returns false and sets `*error` (with a
/// byte offset) on malformed input. Trailing whitespace is allowed,
/// trailing garbage is not.
bool Parse(const std::string& text, Value* out, std::string* error);

}  // namespace disco::json
