// Little-endian fixed-width integer codecs shared by the on-disk formats
// (graph snapshots, artifact-store objects). exec/wire.h keeps its own
// copy of the u64 pair as part of the executor's public wire API; the
// encodings are identical, and this header is the one non-exec code
// should use.
#pragma once

#include <cstdint>
#include <string>

namespace disco {

inline void PutU32Le(std::string* out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 4);
}

inline void PutU64Le(std::string* out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 8);
}

inline std::uint32_t ReadU32Le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

inline std::uint64_t ReadU64Le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace disco
