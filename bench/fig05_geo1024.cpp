// Fig. 5: the same comparison as Fig. 4 on a 1,024-node geometric random
// graph with Euclidean link latencies.
//
// Paper result: with real latencies the stretch gap widens — maximum
// first-packet stretch 2.4 for Disco vs 30 for S4 vs 39 for VRR — while
// the state and congestion pictures match Fig. 4.
#include "bench_common.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 5 — Disco vs VRR vs S4 on a 1,024-node geometric graph "
         "(link latencies)",
         "max first-packet stretch: Disco ~2.4, S4 ~30, VRR ~39; VRR state "
         "tail dominates");
  RunThousandNodeComparison("fig05", MakeGeometric(args, 1024), args);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
