// Fig. 3: CDF over source-destination pairs of path stretch — Disco and S4,
// first packet and later packets — on the geometric-16384, AS-level and
// router-level topologies.
//
// Paper result: on the unweighted Internet maps all curves are bounded
// because hop-count ratios are; on the latency-annotated geometric graph
// S4's first packet reaches stretch ~72 (the resolution detour) while
// Disco's worst first packet stays near 2. Later packets are similar for
// both (S4 slightly ahead on the AS map, Disco ahead on random graphs).
#include "bench_common.h"

#include <cstdio>

#include "sim/metrics.h"

namespace disco::bench {
namespace {

void RunTopology(const char* name, const Graph& g, const Args& args) {
  std::printf("\n--- %s: n=%u, m=%zu ---\n", name, g.num_nodes(),
              g.num_edges());
  const auto schemes = MakeSchemesOrDie(args.SchemesOr({"disco", "s4"}), g,
                                        args.MakeParams());

  StretchOptions opt;
  opt.num_pairs = args.SamplesOr(args.quick ? 200 : 1000);
  opt.seed = args.seed;

  const auto run = [&](const std::string& label, const RouteFn& fn) {
    std::vector<StretchSample> details;
    auto stretch = SampleStretch(g, fn, opt, &details);
    std::size_t failed = 0;
    for (const auto& d : details) failed += d.failed;
    PrintCdf(label, stretch,
             args.OutPath(std::string("fig03_") + name + "_" + label));
    if (failed > 0) std::printf("  (%zu routing failures)\n", failed);
  };
  for (const auto& scheme : schemes) {
    if (scheme->distinguishes_first_packet()) {
      run(scheme->label() + "-First", scheme->route_fn(api::Phase::kFirst));
      run(scheme->label() + "-Later", scheme->route_fn(api::Phase::kLater));
    } else {
      run(scheme->label(), scheme->route_fn(api::Phase::kLater));
    }
  }
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 3 — path stretch, CDF over src-dest pairs",
         "Disco first-packet stretch ≤7 (tiny on geometric); S4 first "
         "packets heavy-tailed (up to ~72 with latencies); later packets "
         "comparable");
  RunTopology("geometric", MakeGeometric(args, 16384), args);
  RunTopology("aslevel", MakeAsLevel(args), args);
  RunTopology("routerlevel", MakeRouterLevel(args), args);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
