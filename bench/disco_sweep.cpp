// disco_sweep — sharded multi-graph experiment sweeps over the scheme
// registry (the ROADMAP driver). Expands a (topology × n × seed × scheme)
// grid, runs this process's share of it through the exec::Executor layer,
// and writes one TSV per shard; a final --merge pass combines the shards
// into a single deterministic table.
//
// Single process, one machine:
//   $ disco_sweep --out=results            # whole grid -> results/sweep.tsv
//
// One machine, a supervised worker-process pool (failed workers retried,
// stragglers re-dispatched — see src/exec/executor.h):
//   $ disco_sweep --backend=procs --workers=4 --out=results
//
// Several machines sharing a filesystem, then merge:
//   $ disco_sweep --shard=0/4 --out=results   # ... one per shard index ...
//   $ disco_sweep --shard=3/4 --out=results
//   $ disco_sweep --merge --out=results       # -> results/sweep.tsv
// (--shard and --backend=procs compose: each shard process can drive its
// own worker pool.)
//
// The merged table is byte-identical however the grid was split: cells
// are self-contained (each builds its own graph and converged scheme from
// topology, n, and seed) and indexed by a pure function of the grid spec.
#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "api/sweep.h"

namespace disco::bench {
namespace {

constexpr const char* kExtraUsage =
    "  --topos=<a,b>    topology families (default gnm,geo; known: "
    "gnm,geo,as,router)\n"
    "  --sizes=<a,b>    node counts (default 512,1024)\n"
    "  --seeds=<a,b>    one trial per seed (default 1,2)\n"
    "  --scenarios=<a,b> dynamics scenario axis (default null; known:\n"
    "                   null,churn,linkfail,correlated,partition); cells\n"
    "                   with a non-null scenario add a DES re-convergence\n"
    "                   campaign of the scheme's protocol plane\n"
    "  --shard=<i/m>    run cells with index%m==i (default 0/1)\n"
    "  --merge          merge existing shard TSVs in --out into sweep.tsv\n";

std::vector<std::string> SplitCsv(const std::string& csv) {
  return api::SplitSchemeList(csv);  // same "a,b,c" syntax
}

// Strictly parses a csv of positive integers ("512,1o24" must not become
// a silent 1-node sweep). Empty input, zeros, and values above `max` are
// rejected too.
bool ParsePositiveCsv(const std::string& csv,
                      std::vector<std::uint64_t>* out,
                      std::uint64_t max = UINT64_MAX) {
  const auto pieces = SplitCsv(csv);
  if (pieces.empty()) return false;
  for (const std::string& s : pieces) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || v == 0 || v > max) return false;
    out->push_back(v);
  }
  return true;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Collects the shard files of one complete sweep from `dir`: exactly one
// shard count m may be present, with all m files. Returns false (with a
// message) otherwise.
bool CollectShardFiles(const std::string& dir,
                       std::vector<std::string>* contents,
                       std::string* error) {
  std::size_t num_shards = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    std::size_t i = 0, m = 0;
    if (std::sscanf(file.c_str(), "sweep_shard_%zu_of_%zu.tsv", &i, &m) !=
        2) {
      continue;
    }
    // sscanf matches prefixes (and ignores a failed trailing ".tsv"), so
    // require the exact canonical name — editor backups and .partial
    // files must not count as shard markers.
    if (file != api::ShardFileName(i, m)) continue;
    if (num_shards != 0 && m != num_shards) {
      *error = "shard files from different sweeps (m=" +
               std::to_string(num_shards) + " and m=" + std::to_string(m) +
               ") in " + dir;
      return false;
    }
    num_shards = m;
  }
  if (num_shards == 0) {
    *error = "no sweep_shard_*_of_*.tsv files in " + dir;
    return false;
  }
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::string path = dir + "/" + api::ShardFileName(i, num_shards);
    std::string content;
    if (!ReadWholeFile(path, &content)) {
      *error = "missing shard file " + path;
      return false;
    }
    contents->push_back(std::move(content));
  }
  return true;
}

int Main(int argc, char** argv) {
  std::size_t shard = 0, num_shards = 1;
  bool merge_only = false;
  std::vector<std::string> topos, scenarios;
  std::vector<std::uint64_t> sizes_flag, seeds_flag;
  CampaignArgs campaign;
  static const std::string usage =
      std::string(kExtraUsage) + CampaignArgs::Usage();
  const Args args = Args::Parse(
      argc, argv, usage.c_str(), [&](const std::string& arg) {
        // A recognized flag with a malformed value is its own error, not
        // an "unknown flag".
        const auto bad_value = [&]() -> bool {
          std::fprintf(stderr, "invalid value in %s\n", arg.c_str());
          std::exit(2);
        };
        if (arg.compare(0, 8, "--topos=") == 0) {
          topos = SplitCsv(arg.substr(8));
          return !topos.empty() || bad_value();
        }
        if (arg.compare(0, 8, "--sizes=") == 0) {
          // Caps at NodeId range so the NodeId cast below cannot truncate.
          return ParsePositiveCsv(arg.substr(8), &sizes_flag,
                                  std::numeric_limits<NodeId>::max()) ||
                 bad_value();
        }
        if (arg.compare(0, 8, "--seeds=") == 0) {
          return ParsePositiveCsv(arg.substr(8), &seeds_flag) ||
                 bad_value();
        }
        if (arg.compare(0, 8, "--shard=") == 0) {
          // Strict "i/m" with no trailing garbage (sscanf would accept
          // "--shard=0/4x" and run the wrong partition without a word).
          const char* v = arg.c_str() + 8;
          char* end = nullptr;
          const unsigned long long i = std::strtoull(v, &end, 10);
          if (end == v || *end != '/') return bad_value();
          const char* mstart = end + 1;
          const unsigned long long m = std::strtoull(mstart, &end, 10);
          if (end == mstart || *end != '\0' || m == 0) return bad_value();
          shard = static_cast<std::size_t>(i);
          num_shards = static_cast<std::size_t>(m);
          return true;
        }
        if (arg == "--merge") {
          merge_only = true;
          return true;
        }
        if (arg.compare(0, 12, "--scenarios=") == 0) {
          scenarios = SplitCsv(arg.substr(12));
          return !scenarios.empty() || bad_value();
        }
        // --replicas / --scenario (single-kind shorthand for the axis) /
        // --scn-* knobs.
        return campaign.Consume(arg);
      });
  const std::string out_dir = args.out.empty() ? "." : args.out;

  if (merge_only) {
    std::vector<std::string> contents;
    std::string error;
    if (!CollectShardFiles(out_dir, &contents, &error)) {
      std::fprintf(stderr, "merge: %s\n", error.c_str());
      return 1;
    }
    const std::string merged = api::MergeShardContents(contents, &error);
    if (merged.empty()) {
      std::fprintf(stderr, "merge: %s\n", error.c_str());
      return 1;
    }
    const std::string path = out_dir + "/sweep.tsv";
    if (!WriteFile(path, merged)) {
      std::fprintf(stderr, "merge: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("merged %zu shard(s) into %s\n", contents.size(),
                path.c_str());
    return 0;
  }

  if (num_shards == 0 || shard >= num_shards) {
    std::fprintf(stderr, "--shard=%zu/%zu is out of range\n", shard,
                 num_shards);
    return 2;
  }

  api::SweepSpec spec;
  spec.topologies = topos.empty()
                        ? (args.quick ? std::vector<std::string>{"gnm"}
                                      : std::vector<std::string>{"gnm",
                                                                 "geo"})
                        : topos;
  for (const std::string& t : spec.topologies) {
    const auto& known = api::SweepTopologyFamilies();
    if (std::find(known.begin(), known.end(), t) == known.end()) {
      std::fprintf(stderr, "unknown topology family \"%s\"\n", t.c_str());
      return 2;
    }
  }
  if (!sizes_flag.empty()) {
    for (const std::uint64_t s : sizes_flag) {
      spec.sizes.push_back(static_cast<NodeId>(s));
    }
  } else if (args.n != 0) {
    spec.sizes = {args.n};
  } else {
    spec.sizes = args.quick ? std::vector<NodeId>{256}
                            : std::vector<NodeId>{512, 1024};
  }
  spec.seeds = seeds_flag.empty() ? std::vector<std::uint64_t>{1, 2}
                                  : seeds_flag;
  spec.schemes = args.SchemesOr(args.quick
                                    ? std::vector<std::string>{"disco", "s4"}
                                    : api::RegisteredSchemes());
  // The dynamics axis: an explicit --scenarios list, else the --scenario
  // shorthand (default "null" keeps the grid purely static).
  spec.scenarios = scenarios.empty()
                       ? std::vector<std::string>{campaign.scenario.kind}
                       : scenarios;
  for (const std::string& s : spec.scenarios) {
    if (!IsScenarioKind(s)) {
      std::fprintf(stderr, "unknown scenario kind \"%s\"\n", s.c_str());
      return 2;
    }
  }
  spec.replicas = campaign.replicas;
  spec.scenario_base = campaign.scenario;
  spec.pairs = args.SamplesOr(args.quick ? 50 : 200);
  spec.base = args.MakeParams();

  const auto grid = api::ExpandGrid(spec);
  const auto cells = api::ShardOf(grid, shard, num_shards);
  std::printf("grid: %zu cells (%zu topologies x %zu sizes x %zu seeds x "
              "%zu schemes x %zu scenarios); shard %zu/%zu runs %zu\n",
              grid.size(), spec.topologies.size(), spec.sizes.size(),
              spec.seeds.size(), spec.schemes.size(),
              spec.scenarios.size(), shard, num_shards, cells.size());

  // Each cell is one executor task: on the thread backend they overlap in
  // process (large cells already saturate the pool from the inside, so
  // those run one at a time — fig09's policy); on the procs backend they
  // stream to the worker pool, which retries cells whose worker died and
  // re-dispatches stragglers. Either way rows come back in cell order, so
  // the shard file is byte-identical across backends and worker counts.
  NodeId max_n = 0;
  for (const NodeId n : spec.sizes) max_n = std::max(max_n, n);
  runtime::ThreadPool serial_trials(1);
  const std::vector<std::string> row_list = RunTasksOrDie(
      args, cells.size(),
      [&](std::size_t i) { return api::RunSweepCell(cells[i], spec); },
      max_n <= 4096 ? nullptr : &serial_trials,
      [&](std::size_t i) {
        const api::SweepCell& c = cells[i];
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "cell %zu (topology=%s n=%u seed=%llu scheme=%s "
                      "scenario=%s)",
                      c.index, c.topology.c_str(), c.n,
                      static_cast<unsigned long long>(c.seed),
                      c.scheme.c_str(), c.scenario.c_str());
        return std::string(buf);
      });
  std::string rows;
  for (const std::string& row : row_list) rows += row;

  const std::string shard_content =
      api::SweepSignature(spec) + api::SweepHeader() + rows;
  const std::string shard_path =
      out_dir + "/" + api::ShardFileName(shard, num_shards);
  if (!WriteFile(shard_path, shard_content)) {
    std::fprintf(stderr, "cannot write %s\n", shard_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cells)\n", shard_path.c_str(), cells.size());

  if (num_shards == 1) {
    // Unsharded runs are their own merge.
    std::string error;
    const std::string merged = api::MergeShardContents({shard_content},
                                                       &error);
    if (merged.empty()) {
      std::fprintf(stderr, "self-merge failed: %s\n", error.c_str());
      return 1;
    }
    const std::string path = out_dir + "/sweep.tsv";
    if (!WriteFile(path, merged)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
