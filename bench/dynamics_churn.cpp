// Dynamics extension (§4.2 / §4.4, beyond the paper's static evaluation —
// it defers continuous churn to future work but specifies the amortization
// rules): grow the membership from 256 to 64k nodes and count how much
// derived state actually churns.
//
// Expectation from the design: landmark flips per membership event stay
// far below 1 (each node re-flips only when n doubles, so churn is
// amortized over Ω(n) events); the sloppy grouping changes only at octave
// boundaries of sqrt(n)/log2(n) (a handful of splits across 8 doublings);
// oscillating membership near a boundary causes no flapping thanks to the
// 10% hysteresis of footnote 4.
#include "bench_common.h"

#include <cstdio>

#include "core/churn.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("dynamics — landmark & group churn under membership growth",
         "amortized landmark flips per join << 1; one group split per "
         "octave; zero flapping under oscillation");

  Params p = args.MakeParams();
  const NodeId start = 256;
  const NodeId end = args.quick ? 4096 : 65536;
  ChurnSimulator sim(start, p);

  std::printf("%-10s %-12s %-14s %-16s %-12s\n", "n", "landmarks",
              "flips(total)", "flips/event", "group bits");
  std::uint64_t last_flips = 0, last_events = 0;
  for (NodeId target = start * 2; target <= end; target *= 2) {
    while (sim.n() < target) sim.AddNode();
    const std::uint64_t flips = sim.total_landmark_flips();
    const std::uint64_t events = sim.total_membership_events();
    std::printf("%-10u %-12zu %-14llu %-16.4f %-12d\n", sim.n(),
                sim.num_landmarks(),
                static_cast<unsigned long long>(flips - last_flips),
                static_cast<double>(flips - last_flips) /
                    static_cast<double>(events - last_events),
                sim.group_bits());
    last_flips = flips;
    last_events = events;
  }
  std::printf("\nlifetime: %llu membership events, %llu landmark flips "
              "(%.4f/event), %llu group splits/merges\n",
              static_cast<unsigned long long>(
                  sim.total_membership_events()),
              static_cast<unsigned long long>(sim.total_landmark_flips()),
              static_cast<double>(sim.total_landmark_flips()) /
                  static_cast<double>(sim.total_membership_events()),
              static_cast<unsigned long long>(sim.total_group_changes()));

  // Oscillation probe: ±5% churn around the final size.
  const std::uint64_t changes_before = sim.total_group_changes();
  const int wobble = static_cast<int>(sim.n() / 20);
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (int i = 0; i < wobble; ++i) sim.AddNode();
    for (int i = 0; i < wobble; ++i) sim.RemoveNode();
  }
  std::printf("oscillation probe (20 cycles of ±5%% membership): %llu "
              "group changes (hysteresis holds)\n",
              static_cast<unsigned long long>(sim.total_group_changes() -
                                              changes_before));
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
