// disco_graphbench — the graph-substrate perf trajectory.
//
// Where disco_serve tracks route-serving throughput, this bench tracks
// the layer underneath every experiment: generator throughput (edges/s
// for all four synthetic families), snapshot codec throughput (v2 encode
// and decode MB/s), and the out-of-core story — how long a cold generate
// takes vs mmap-loading the published snapshot of the same graph — plus
// peak RSS, because at graph scale memory is the capacity wall.
//
// Results go to stdout and to BENCH_graph.json (compared against the
// committed baseline by bench_compare in CI, exactly like
// BENCH_serve.json). Two self-checks guard the zero-copy path end to
// end — the mmap view must reproduce the generated graph's fingerprint
// and bit-identical Dijkstra distances — and graph_smoke greps for their
// OK lines.
//
//   disco_graphbench [--n=..] [--seed=..] [--quick|--full]
//                    [--threads=k] [--out=dir] [--json=file]
//
// Default n=100,000 (the scale CI compares); --full runs the million-node
// point, --quick a 20k smoke.
#include "bench_common.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/shortest_path.h"
#include "runtime/rng_stream.h"
#include "util/json.h"

namespace disco::bench {
namespace {

constexpr const char* kExtraUsage =
    "  --json=<file>    result JSON path (default BENCH_graph.json in\n"
    "                   the --out directory)\n";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct GenResult {
  const char* name;
  std::size_t edges = 0;
  double seconds = 0;
  double edges_per_s = 0;
};

template <typename MakeFn>
GenResult TimeGenerator(const char* name, const MakeFn& make,
                        Graph* keep = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  Graph g = make();
  GenResult r;
  r.name = name;
  r.seconds = SecondsSince(start);
  r.edges = g.num_edges();
  r.edges_per_s = r.seconds > 0 ? static_cast<double>(r.edges) / r.seconds
                                : 0;
  if (keep != nullptr) *keep = std::move(g);
  return r;
}

int Main(int argc, char** argv) {
  std::string json_path;
  const Args args = Args::Parse(
      argc, argv, kExtraUsage, [&json_path](const std::string& arg) {
        if (arg.compare(0, 7, "--json=") == 0) {
          json_path = arg.substr(7);
          return true;
        }
        return false;
      });
  const NodeId n =
      args.NOr(args.full ? 1000000 : (args.quick ? 20000 : 100000));
  if (json_path.empty()) json_path = args.OutPath("BENCH_graph.json");
  Banner("Graph substrate — generator, snapshot codec, and mmap-load "
         "throughput",
         "streaming CSR generators scale linearly; a v2 snapshot "
         "mmap-loads far faster than regenerating; the borrowed view is "
         "indistinguishable from the built graph");

  // Generator throughput. The geometric graph is kept: its float weights
  // exercise every snapshot section, so it drives the codec phases too.
  Graph geo;
  std::vector<GenResult> gens;
  gens.push_back(TimeGenerator(
      "geo", [&] { return ConnectedGeometric(n, 8.0, args.seed); }, &geo));
  const double gen_s = gens.back().seconds;
  gens.push_back(TimeGenerator(
      "gnm", [&] { return ConnectedGnm(n, 4ull * n, args.seed); }));
  gens.push_back(
      TimeGenerator("as", [&] { return AsLevelInternet(n, args.seed); }));
  gens.push_back(TimeGenerator(
      "router", [&] { return RouterLevelInternet(n, args.seed); }));
  std::printf("[generators] n=%u seed=%" PRIu64 "\n", n, args.seed);
  for (const GenResult& r : gens) {
    std::printf("  %-8s %9zu edges  %8.3f s  %12.0f edges/s\n", r.name,
                r.edges, r.seconds, r.edges_per_s);
  }

  // Snapshot codec: encode (graph -> v2 bytes), decode (bytes -> owned
  // graph), and the zero-copy file path (save once, mmap-load).
  auto t0 = std::chrono::steady_clock::now();
  const std::string bytes = GraphSnapshotBytes(geo);
  const double encode_s = SecondsSince(t0);
  const double mb = static_cast<double>(bytes.size()) / 1e6;

  t0 = std::chrono::steady_clock::now();
  const auto decoded = LoadGraphSnapshotBytes(
      Span<const char>(bytes.data(), bytes.size()));
  const double decode_s = SecondsSince(t0);
  if (!decoded) {
    std::fprintf(stderr, "snapshot decode failed\n");
    return 1;
  }

  const std::string snap_path = args.OutPath("graphbench.snap");
  t0 = std::chrono::steady_clock::now();
  if (!SaveGraphSnapshot(geo, snap_path)) {
    std::fprintf(stderr, "cannot write %s\n", snap_path.c_str());
    return 1;
  }
  const double save_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  const auto view = LoadGraphSnapshot(snap_path);
  const double mmap_load_s = SecondsSince(t0);
  if (!view || !view->borrowed()) {
    std::fprintf(stderr, "mmap load of %s failed\n", snap_path.c_str());
    std::remove(snap_path.c_str());
    return 1;
  }

  const double mmap_speedup =
      mmap_load_s > 0 ? gen_s / mmap_load_s : 0;
  std::printf("[snapshot] %.1f MB  encode %.1f MB/s  decode %.1f MB/s  "
              "save %.3f s\n",
              mb, encode_s > 0 ? mb / encode_s : 0,
              decode_s > 0 ? mb / decode_s : 0, save_s);
  std::printf("[out-of-core] generate %.3f s  mmap load %.3f s  "
              "speedup %.1fx\n",
              gen_s, mmap_load_s, mmap_speedup);

  // Self-check 1: the borrowed view is the same graph, bit for bit.
  const bool fp_ok =
      GraphFingerprintHex(*view) == GraphFingerprintHex(geo) &&
      GraphFingerprintHex(*decoded) == GraphFingerprintHex(geo);
  std::printf("self-check fingerprint: %s\n", fp_ok ? "OK" : "FAIL");

  // Self-check 2: routing over the view is indistinguishable — Dijkstra
  // distance arrays from spot sources must be bit-identical.
  bool routes_ok = true;
  for (std::size_t i = 0; i < 4; ++i) {
    const NodeId src = static_cast<NodeId>(
        runtime::TaskRng(args.seed, i).NextBelow(geo.num_nodes()));
    const ShortestPathTree a = Dijkstra(geo, src);
    const ShortestPathTree b = Dijkstra(*view, src);
    if (a.dist.size() != b.dist.size() ||
        std::memcmp(a.dist.data(), b.dist.data(),
                    a.dist.size() * sizeof(Dist)) != 0 ||
        a.parent != b.parent) {
      routes_ok = false;
    }
  }
  std::printf("self-check spot-routes: %s\n", routes_ok ? "OK" : "FAIL");
  std::printf("peak rss: %" PRIu64 " KB\n", PeakRssKb());
  std::remove(snap_path.c_str());

  json::Value root = json::Value::Object();
  root.Set("bench", json::Value::Str("disco_graphbench"));
  root.Set("schema_version", json::Value::Number(1));
  root.Set("n", json::Value::Number(n));
  root.Set("seed", json::Value::Number(static_cast<double>(args.seed)));
  json::Value garr = json::Value::Array();
  for (const GenResult& r : gens) {
    json::Value entry = json::Value::Object();
    entry.Set("name", json::Value::Str(r.name));
    entry.Set("edges",
              json::Value::Number(static_cast<double>(r.edges)));
    entry.Set("seconds", json::Value::Number(r.seconds));
    entry.Set("edges_per_s", json::Value::Number(r.edges_per_s));
    garr.Push(std::move(entry));
  }
  root.Set("generators", std::move(garr));
  json::Value snap = json::Value::Object();
  snap.Set("bytes",
           json::Value::Number(static_cast<double>(bytes.size())));
  snap.Set("encode_mb_s",
           json::Value::Number(encode_s > 0 ? mb / encode_s : 0));
  snap.Set("decode_mb_s",
           json::Value::Number(decode_s > 0 ? mb / decode_s : 0));
  snap.Set("save_s", json::Value::Number(save_s));
  snap.Set("mmap_load_s", json::Value::Number(mmap_load_s));
  snap.Set("gen_s", json::Value::Number(gen_s));
  snap.Set("mmap_speedup", json::Value::Number(mmap_speedup));
  root.Set("snapshot", std::move(snap));
  root.Set("peak_rss_kb",
           json::Value::Number(static_cast<double>(PeakRssKb())));
  WriteFileOrWarn(json_path, root.Dump());
  std::printf("wrote %s\n", json_path.c_str());

  return fp_ok && routes_ok ? 0 : 1;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
