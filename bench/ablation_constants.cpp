// Ablation of the design constants DESIGN.md calls out — the knobs behind
// the paper's Θ(·) choices, swept one at a time on a 4,096-node G(n,m)
// graph:
//
//   vicinity_factor      scales k = f*sqrt(n ln n). Larger vicinities cut
//                        first-packet stretch (better contacts, more
//                        shortcut opportunities) and raise state linearly.
//   landmark_prob_factor scales p = f*sqrt(ln n / n). More landmarks mean
//                        shorter explicit-route addresses and shorter
//                        s ; l_t detours, at more landmark-table state.
//   group_bits_offset    the "+O(1)" of §4.5. Each +1 halves sloppy-group
//                        state but thins the vicinity∩group margin that
//                        first-packet routing relies on (fallback rate).
#include "bench_common.h"

#include "core/disco.h"

#include <cstdio>

#include "sim/metrics.h"

namespace disco::bench {
namespace {

struct Cell {
  double mean_first = 0;
  double max_first = 0;
  double mean_later = 0;
  double mean_state = 0;
  double fallback_rate = 0;
};

Cell Evaluate(const Graph& g, const Params& p, std::size_t pairs,
              std::uint64_t seed) {
  Disco disco(g, p);
  StretchOptions opt;
  opt.num_pairs = pairs;
  opt.seed = seed;

  std::size_t fallbacks = 0, total = 0;
  const auto first = SampleStretch(
      g,
      [&](NodeId s, NodeId t) {
        const Route r = disco.RouteFirst(s, t);
        ++total;
        fallbacks += r.via_fallback ? 1 : 0;
        return r;
      },
      opt);
  const auto later = SampleStretch(
      g, [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); }, opt);

  double state = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    state += static_cast<double>(disco.State(v).total());
  }

  Cell c;
  const Summary fs = Summarize(first);
  c.mean_first = fs.mean;
  c.max_first = fs.max;
  c.mean_later = Summarize(later).mean;
  c.mean_state = state / g.num_nodes();
  c.fallback_rate = total == 0 ? 0
                               : static_cast<double>(fallbacks) /
                                     static_cast<double>(total);
  return c;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("ablation — the design constants behind the Θ(·) choices",
         "bigger vicinities: less stretch, more state; more landmarks: "
         "shorter detours; +1 group bit: half the group state, thinner "
         "contact margin");
  const Graph g = MakeGnm(args, 4096);
  std::printf("topology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());
  const std::size_t pairs = args.SamplesOr(args.quick ? 150 : 600);

  const std::vector<std::string> cols = {"stretch1.mean", "stretch1.max",
                                         "stretchN.mean", "state.mean",
                                         "fallback"};
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  auto add_row = [&](const std::string& name, const Params& p) {
    const Cell c = Evaluate(g, p, pairs, args.seed);
    rows.emplace_back(name,
                      std::vector<double>{c.mean_first, c.max_first,
                                          c.mean_later, c.mean_state,
                                          c.fallback_rate});
  };

  for (const double f : {0.5, 1.0, 2.0}) {
    Params p = args.MakeParams();
    p.vicinity_factor = f;
    add_row("vicinity_factor=" + std::to_string(f).substr(0, 3), p);
  }
  for (const double f : {0.5, 1.0, 2.0}) {
    Params p = args.MakeParams();
    p.landmark_prob_factor = f;
    add_row("landmark_prob_factor=" + std::to_string(f).substr(0, 3), p);
  }
  for (const int b : {0, 1, 2, 3}) {
    Params p = args.MakeParams();
    p.group_bits_offset = b;
    add_row("group_bits_offset=" + std::to_string(b), p);
  }

  PrintTable("one-at-a-time ablation (gnm-4096, Disco)", cols, rows);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
