// §5.2 overlay numbers: distance traveled by address announcements in the
// dissemination overlay with 1 vs 3 fingers per node, and the messaging
// cost of the extra fingers, on a 1,024-node G(n,m) graph.
//
// Paper result: with 1 finger, announcements travel mean 5.77 / max 24
// overlay hops; with 3 fingers, mean 3.04 / max 16 — at only ~3.3% more
// messages.
#include "bench_common.h"

#include <cstdio>

#include "api/schemes.h"

namespace disco::bench {
namespace {

struct FingerStats {
  double mean_hops = 0;
  std::size_t max_hops = 0;
  double messages_per_node = 0;
  double covered = 0;
};

FingerStats Measure(const Graph& g, int fingers, const Args& args) {
  Params p = args.MakeParams();
  p.fingers = fingers;
  // Dissemination is measured on the overlay itself, a Disco-specific
  // structure behind the generic API; hold the concrete adapter.
  api::DiscoScheme scheme(g, p);
  Disco& disco = scheme.impl();
  FingerStats out;
  double hop_sum = 0;
  std::uint64_t msg_sum = 0;
  std::size_t covered = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = disco.overlay().Disseminate(v);
    hop_sum += d.mean_hops;
    out.max_hops = std::max(out.max_hops, d.max_hops);
    msg_sum += d.messages;
    covered += d.covered_group ? 1 : 0;
  }
  out.mean_hops = hop_sum / g.num_nodes();
  out.messages_per_node =
      static_cast<double>(msg_sum) / static_cast<double>(g.num_nodes());
  out.covered = static_cast<double>(covered) /
                static_cast<double>(g.num_nodes());
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("§5.2 — announcement dissemination: 1 vs 3 fingers (gnm-1024)",
         "paper: mean/max hops 5.77/24 (1 finger) vs 3.04/16 (3 fingers) "
         "for +3.3% messages");
  const Graph g = MakeGnm(args, 1024);

  const FingerStats one = Measure(g, 1, args);
  const FingerStats three = Measure(g, 3, args);
  std::printf("%-12s %-12s %-10s %-16s %-10s\n", "fingers", "mean hops",
              "max hops", "msgs/announce", "coverage");
  std::printf("%-12d %-12.2f %-10zu %-16.1f %-10.4f\n", 1, one.mean_hops,
              one.max_hops, one.messages_per_node, one.covered);
  std::printf("%-12d %-12.2f %-10zu %-16.1f %-10.4f\n", 3, three.mean_hops,
              three.max_hops, three.messages_per_node, three.covered);
  std::printf("\nmessage increase for 3 fingers: %.1f%%\n",
              100.0 * (three.messages_per_node / one.messages_per_node -
                       1.0));
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
