// bench_compare — the BENCH_*.json regression gate.
//
//   bench_compare <current.json> <baseline.json>
//                 [--min-qps-ratio=<f>] [--max-p99-ratio=<f>]
//                 [--min-mmap-speedup=<f>]
//   bench_compare --check <file.json>
//
// The "bench" field picks the schema; current and baseline must agree.
//
// disco_serve: every scheme in the baseline must be present, keep at
// least min-qps-ratio of the baseline throughput (default 0.25), and
// stay within max-p99-ratio of the baseline p99 latency (default 4.0).
//
// disco_graphbench: every generator in the baseline must be present and
// keep min-qps-ratio of its baseline edges/s; snapshot encode/decode
// MB/s keep the same ratio; and the mmap-vs-generate speedup must stay
// at least min-mmap-speedup (default 1.0 — CI passes a real floor),
// which is the out-of-core claim itself, not a machine-speed artifact.
//
// The tolerances are deliberately generous — machines differ, CI runners
// are noisy — so only a real collapse fails; a later perf PR tightens
// its claim by committing a better baseline. --check just validates that
// a file parses and carries a known schema (the smoke scripts use it).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.h"

namespace disco {
namespace {

constexpr const char* kUsage =
    "usage: bench_compare <current.json> <baseline.json>\n"
    "                     [--min-qps-ratio=<f>] [--max-p99-ratio=<f>]\n"
    "                     [--min-mmap-speedup=<f>]\n"
    "       bench_compare --check <file.json>\n"
    "  compares a BENCH_serve.json or BENCH_graph.json run against the\n"
    "  committed baseline (generous tolerances; exit 1 on a regression).\n"
    "  --min-qps-ratio also floors graphbench throughput ratios;\n"
    "  --min-mmap-speedup floors the graphbench mmap-vs-generate factor.\n"
    "  --check only validates that the file parses and carries a known\n"
    "  schema.\n";

bool LoadJson(const std::string& path, json::Value* out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string error;
  if (!json::Parse(ss.str(), out, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

/// Schema check: the fields the comparison (and any trajectory tooling)
/// relies on must be present and well-typed.
bool ValidateServe(const std::string& path, const json::Value& v) {
  const auto complain = [&](const char* what) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), what);
    return false;
  };
  if (!v.is_object()) return complain("top level is not an object");
  if (v.StringOr("bench", "") != "disco_serve") {
    return complain("\"bench\" is not \"disco_serve\"");
  }
  const json::Value* schemes = v.Find("schemes");
  if (schemes == nullptr || !schemes->is_array() ||
      schemes->Items().empty()) {
    return complain("\"schemes\" is missing or empty");
  }
  for (const json::Value& s : schemes->Items()) {
    if (!s.is_object() || s.StringOr("name", "").empty()) {
      return complain("scheme entry without a name");
    }
    for (const char* field : {"qps", "p50_us", "p99_us", "p999_us"}) {
      const json::Value* f = s.Find(field);
      if (f == nullptr || !f->is_number() || f->AsNumber() < 0) {
        std::fprintf(stderr,
                     "bench_compare: %s: scheme \"%s\" lacks numeric "
                     "\"%s\"\n",
                     path.c_str(), s.StringOr("name", "?").c_str(), field);
        return false;
      }
    }
  }
  return true;
}

const json::Value* FindScheme(const json::Value& doc,
                              const std::string& name) {
  const json::Value* schemes = doc.Find("schemes");
  if (schemes == nullptr) return nullptr;
  for (const json::Value& s : schemes->Items()) {
    if (s.StringOr("name", "") == name) return &s;
  }
  return nullptr;
}

/// Schema check for disco_graphbench output (BENCH_graph.json).
bool ValidateGraph(const std::string& path, const json::Value& v) {
  const auto complain = [&](const char* what) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), what);
    return false;
  };
  if (!v.is_object()) return complain("top level is not an object");
  if (v.StringOr("bench", "") != "disco_graphbench") {
    return complain("\"bench\" is not \"disco_graphbench\"");
  }
  const json::Value* gens = v.Find("generators");
  if (gens == nullptr || !gens->is_array() || gens->Items().empty()) {
    return complain("\"generators\" is missing or empty");
  }
  for (const json::Value& g : gens->Items()) {
    if (!g.is_object() || g.StringOr("name", "").empty()) {
      return complain("generator entry without a name");
    }
    const json::Value* eps = g.Find("edges_per_s");
    if (eps == nullptr || !eps->is_number() || eps->AsNumber() < 0) {
      std::fprintf(stderr,
                   "bench_compare: %s: generator \"%s\" lacks numeric "
                   "\"edges_per_s\"\n",
                   path.c_str(), g.StringOr("name", "?").c_str());
      return false;
    }
  }
  const json::Value* snap = v.Find("snapshot");
  if (snap == nullptr || !snap->is_object()) {
    return complain("\"snapshot\" is missing");
  }
  for (const char* field :
       {"encode_mb_s", "decode_mb_s", "mmap_speedup"}) {
    const json::Value* f = snap->Find(field);
    if (f == nullptr || !f->is_number() || f->AsNumber() < 0) {
      std::fprintf(stderr,
                   "bench_compare: %s: snapshot lacks numeric \"%s\"\n",
                   path.c_str(), field);
      return false;
    }
  }
  return true;
}

/// Validates `v` against the schema its own "bench" field names.
bool ValidateAny(const std::string& path, const json::Value& v) {
  const std::string bench =
      v.is_object() ? v.StringOr("bench", "") : "";
  if (bench == "disco_graphbench") return ValidateGraph(path, v);
  if (bench == "disco_serve") return ValidateServe(path, v);
  std::fprintf(stderr,
               "bench_compare: %s: unknown \"bench\" schema \"%s\"\n",
               path.c_str(), bench.c_str());
  return false;
}

const json::Value* FindGenerator(const json::Value& doc,
                                 const std::string& name) {
  const json::Value* gens = doc.Find("generators");
  if (gens == nullptr) return nullptr;
  for (const json::Value& g : gens->Items()) {
    if (g.StringOr("name", "") == name) return &g;
  }
  return nullptr;
}

int CompareGraph(const json::Value& current, const json::Value& baseline,
                 double min_ratio, double min_mmap_speedup) {
  std::printf("%-12s %14s %14s %8s  %s\n", "metric", "baseline",
              "current", "ratio", "verdict");
  int regressions = 0;
  const auto row = [&](const std::string& name, double base, double cur,
                       bool ok) {
    if (!ok) ++regressions;
    std::printf("%-12s %14.0f %14.0f %8.2f  %s\n", name.c_str(), base,
                cur, base > 0 ? cur / base : 1.0,
                ok ? "ok" : "REGRESSION");
  };
  for (const json::Value& base : baseline.Find("generators")->Items()) {
    const std::string name = base.StringOr("name", "?");
    const json::Value* cur = FindGenerator(current, name);
    if (cur == nullptr) {
      std::printf("%-12s missing from current run: REGRESSION\n",
                  name.c_str());
      ++regressions;
      continue;
    }
    const double b = base.NumberOr("edges_per_s", 0);
    const double c = cur->NumberOr("edges_per_s", 0);
    row("gen:" + name, b, c, b <= 0 || c / b >= min_ratio);
  }
  const json::Value* bsnap = baseline.Find("snapshot");
  const json::Value* csnap = current.Find("snapshot");
  for (const char* field : {"encode_mb_s", "decode_mb_s"}) {
    const double b = bsnap->NumberOr(field, 0);
    const double c = csnap->NumberOr(field, 0);
    row(field, b, c, b <= 0 || c / b >= min_ratio);
  }
  // The out-of-core claim is absolute, not relative to the baseline
  // machine: loading the snapshot must beat regenerating the graph.
  const double speedup = csnap->NumberOr("mmap_speedup", 0);
  const bool speedup_ok = speedup >= min_mmap_speedup;
  if (!speedup_ok) ++regressions;
  std::printf("%-12s %14.2f %14.2f %8s  %s\n", "mmap_speedup",
              bsnap->NumberOr("mmap_speedup", 0), speedup, "-",
              speedup_ok ? "ok" : "REGRESSION");
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d graph metric(s) regressed past the "
                 "tolerance (min ratio %.2f, min mmap speedup %.2f)\n",
                 regressions, min_ratio, min_mmap_speedup);
    return 1;
  }
  std::printf("all graph metrics within tolerance (min ratio %.2f, min "
              "mmap speedup %.2f)\n",
              min_ratio, min_mmap_speedup);
  return 0;
}

int Main(int argc, char** argv) {
  double min_qps_ratio = 0.25;
  double max_p99_ratio = 4.0;
  double min_mmap_speedup = 1.0;
  bool check_only = false;
  std::string files[2];
  int nfiles = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--check") {
      check_only = true;
      continue;
    }
    const auto ratio_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len
                                              : nullptr;
    };
    if (const char* v = ratio_of("--min-qps-ratio=")) {
      char* end = nullptr;
      min_qps_ratio = std::strtod(v, &end);
      if (end == v || *end != '\0' || min_qps_ratio < 0) {
        std::fprintf(stderr, "bench_compare: bad ratio \"%s\"\n", v);
        return 2;
      }
      continue;
    }
    if (const char* v = ratio_of("--max-p99-ratio=")) {
      char* end = nullptr;
      max_p99_ratio = std::strtod(v, &end);
      if (end == v || *end != '\0' || max_p99_ratio <= 0) {
        std::fprintf(stderr, "bench_compare: bad ratio \"%s\"\n", v);
        return 2;
      }
      continue;
    }
    if (const char* v = ratio_of("--min-mmap-speedup=")) {
      char* end = nullptr;
      min_mmap_speedup = std::strtod(v, &end);
      if (end == v || *end != '\0' || min_mmap_speedup < 0) {
        std::fprintf(stderr, "bench_compare: bad ratio \"%s\"\n", v);
        return 2;
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
    if (nfiles == 2) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    files[nfiles++] = arg;
  }

  if (check_only) {
    if (nfiles != 1) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    json::Value doc;
    if (!LoadJson(files[0], &doc) || !ValidateAny(files[0], doc)) {
      return 1;
    }
    const json::Value* entries = doc.Find(
        doc.StringOr("bench", "") == "disco_graphbench" ? "generators"
                                                        : "schemes");
    std::printf("%s: ok (%s, %zu entries)\n", files[0].c_str(),
                doc.StringOr("bench", "?").c_str(),
                entries->Items().size());
    return 0;
  }

  if (nfiles != 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  json::Value current, baseline;
  if (!LoadJson(files[0], &current) || !ValidateAny(files[0], current) ||
      !LoadJson(files[1], &baseline) ||
      !ValidateAny(files[1], baseline)) {
    return 1;
  }
  if (current.StringOr("bench", "") != baseline.StringOr("bench", "")) {
    std::fprintf(stderr,
                 "bench_compare: schema mismatch: %s is \"%s\" but %s is "
                 "\"%s\"\n",
                 files[0].c_str(), current.StringOr("bench", "?").c_str(),
                 files[1].c_str(),
                 baseline.StringOr("bench", "?").c_str());
    return 1;
  }
  if (current.StringOr("bench", "") == "disco_graphbench") {
    return CompareGraph(current, baseline, min_qps_ratio,
                        min_mmap_speedup);
  }

  std::printf("%-10s %12s %12s %8s %12s %12s %8s  %s\n", "scheme",
              "base_qps", "cur_qps", "ratio", "base_p99us", "cur_p99us",
              "ratio", "verdict");
  int regressions = 0;
  for (const json::Value& base : baseline.Find("schemes")->Items()) {
    const std::string name = base.StringOr("name", "?");
    const json::Value* cur = FindScheme(current, name);
    if (cur == nullptr) {
      std::printf("%-10s missing from current run: REGRESSION\n",
                  name.c_str());
      ++regressions;
      continue;
    }
    const double base_qps = base.NumberOr("qps", 0);
    const double cur_qps = cur->NumberOr("qps", 0);
    const double base_p99 = base.NumberOr("p99_us", 0);
    const double cur_p99 = cur->NumberOr("p99_us", 0);
    const double qps_ratio = base_qps > 0 ? cur_qps / base_qps : 1.0;
    const double p99_ratio = base_p99 > 0 ? cur_p99 / base_p99 : 1.0;
    const bool qps_ok = qps_ratio >= min_qps_ratio;
    const bool p99_ok = p99_ratio <= max_p99_ratio;
    if (!qps_ok || !p99_ok) ++regressions;
    std::printf("%-10s %12.0f %12.0f %8.2f %12.2f %12.2f %8.2f  %s\n",
                name.c_str(), base_qps, cur_qps, qps_ratio, base_p99,
                cur_p99, p99_ratio,
                qps_ok && p99_ok
                    ? "ok"
                    : (!qps_ok ? "REGRESSION (qps)" : "REGRESSION (p99)"));
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d scheme(s) regressed past the "
                 "tolerance (min qps ratio %.2f, max p99 ratio %.2f)\n",
                 regressions, min_qps_ratio, max_p99_ratio);
    return 1;
  }
  std::printf("all schemes within tolerance (min qps ratio %.2f, max p99 "
              "ratio %.2f)\n",
              min_qps_ratio, max_p99_ratio);
  return 0;
}

}  // namespace
}  // namespace disco

int main(int argc, char** argv) { return disco::Main(argc, argv); }
