// Shared harness for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure from §5 of "Scalable Routing
// on Flat Names" (CoNEXT 2010): it prints the paper's series as aligned
// text tables, writes the full data as TSV files next to the working
// directory, and states the paper's qualitative expectation so the output
// is self-interpreting. Protocols are selected by name through the
// RoutingScheme registry (src/api/), so every bench accepts the same
// --schemes=disco,s4,... flag. Multi-task fan-outs (disco_sweep's cells,
// fig04/fig05's per-scheme comparison blocks, fig09's per-size trials)
// run through the exec::Executor layer selected by --backend=threads|procs
// and --workers=<k>, with output byte-identical across backends; the
// flags are part of the common harness, but a bench whose work is one
// sequential experiment has no fan-out for the procs backend to
// distribute and runs in-process regardless. Common flags (unknown flags
// fail with a usage message):
//   --n=<int>        override the default topology size
//   --seed=<int>     change the experiment seed (default 1)
//   --samples=<int>  override the number of sampled pairs/nodes
//   --schemes=<a,b>  comma-separated scheme names (see api/registry.h)
//   --out=<dir>      directory for TSV output (default: working directory)
//   --threads=<k>    thread-pool width (default: DISCO_THREADS env, else
//                    hardware concurrency)
//   --backend=<b>    execution backend: threads (in-process, default),
//                    procs (worker subprocesses), or net (disco_workerd
//                    daemons over TCP; see src/exec/)
//   --workers=<k>    subprocess count for --backend=procs
//   --hosts=<a,b>    comma-separated host:port daemon endpoints for
//                    --backend=net (one worker slot per entry; repeat an
//                    endpoint for more slots on that host)
//   --store=<dir>    artifact store with prebuilt landmark trees
//                    (src/store/; prebuild with disco_store). Wall-clock
//                    only: output stays byte-identical to a storeless
//                    run; tier counters go to stderr at exit.
//   --trace=<file>   record a Chrome trace_event timeline of the run
//                    (src/obs/trace.h; open in Perfetto). Determinism-
//                    neutral: stdout and TSVs are byte-identical with
//                    tracing on or off. Procs/net workers write pid-tagged
//                    sidecars the driver merges into one timeline.
//   --full           run at the paper's full scale (larger and slower)
//   --quick          shrink everything (used by CI smoke runs)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/routing_scheme.h"
#include "exec/executor.h"
#include "graph/graph.h"
#include "runtime/parallel_for.h"
#include "sim/scenario.h"
#include "store/artifact_store.h"
#include "util/stats.h"

namespace disco::bench {

struct Args {
  NodeId n = 0;            // 0 = per-bench default
  std::uint64_t seed = 1;
  std::size_t samples = 0; // 0 = per-bench default
  bool full = false;
  bool quick = false;
  /// Sloppy-group "+O(1)" bits (Params::group_bits_offset); the paper's
  /// tuned constant behaves like +2 (smaller groups, less Disco state).
  int gbits = 0;
  /// Explicit thread-pool width; 0 falls back to DISCO_THREADS / hardware.
  int threads = 0;
  /// Directory TSV output goes to (created if missing); "" = cwd.
  std::string out;
  /// Scheme names from --schemes=, validated against the registry; empty
  /// means the per-bench default set.
  std::vector<std::string> schemes;
  /// Execution backend for the bench's big fan-outs (--backend=).
  exec::Backend backend = exec::Backend::kThreads;
  /// Worker subprocess count for the procs backend (--workers=, 0 = auto).
  std::size_t workers = 0;
  /// disco_workerd endpoints ("host:port") for the net backend (--hosts=,
  /// comma-separated; one worker slot per entry).
  std::vector<std::string> hosts;
  /// Artifact store directory (--store=); "" = no store. Parse opens it
  /// as the process store, so every LandmarkTreeCache built afterwards —
  /// including in procs-backend workers, which re-parse this argv — loads
  /// prebuilt trees instead of recomputing them.
  std::string store;
  /// Trace output path (--trace=); "" = tracing off. Parse enables the
  /// span tracer; workers (which re-parse this argv) flush pid-tagged
  /// sidecars the driver merges at exit.
  std::string trace;
  /// This process's argv, verbatim — the procs backend re-invokes it (plus
  /// --worker=<job>) to create workers.
  std::vector<std::string> raw_argv;

  /// Hook for bench-specific flags: returns true if it consumed `arg`.
  using ExtraFlag = std::function<bool(const std::string& arg)>;

  /// Parses the common flags. Unrecognized flags (and unregistered scheme
  /// names) terminate with a usage message listing every valid flag;
  /// `extra` is offered flags the common set rejects, and `extra_usage`
  /// (one "  --flag=...  description" line per entry) is appended to the
  /// usage text.
  static Args Parse(int argc, char** argv, const char* extra_usage = nullptr,
                    const ExtraFlag& extra = nullptr);

  Params MakeParams() const {
    Params p;
    p.seed = seed;
    p.group_bits_offset = gbits;
    return p;
  }

  /// Executor configuration for this run; `pool` bounds task-level
  /// concurrency on the thread backend (see exec::ExecOptions::pool).
  exec::ExecOptions MakeExecOptions(runtime::ThreadPool* pool = nullptr)
      const;

  NodeId NOr(NodeId def) const { return n != 0 ? n : def; }
  std::size_t SamplesOr(std::size_t def) const {
    return samples != 0 ? samples : def;
  }
  std::vector<std::string> SchemesOr(std::vector<std::string> def) const {
    return schemes.empty() ? std::move(def) : schemes;
  }

  /// Prefixes `name` with the --out directory (if any).
  std::string OutPath(const std::string& name) const;
};

/// Campaign flags shared by the dynamics benches (fig08_convergence,
/// static_vs_des) and disco_sweep, plugged into Args::Parse through the
/// strict extra-flag hook:
///   --replicas=<r>      independent seeded DES replicas (default 1)
///   --scenario=<kind>   null | churn | linkfail | correlated | partition
///   --scn-events=<k>    disturbance events per scenario
///   --scn-fraction=<f>  fraction of nodes/links disturbed per event
///   --scn-start=<t>     simulated time of the first disturbance
///   --scn-spacing=<t>   disturbance -> recovery spacing
///   --scn-noheal        leave the final disturbance unhealed
struct CampaignArgs {
  std::size_t replicas = 1;
  ScenarioSpec scenario;

  /// Extra-flag hook body: returns true if `arg` was consumed. Malformed
  /// values and unknown scenario kinds exit with a message (same policy
  /// as the common flags).
  bool Consume(const std::string& arg);

  /// The usage lines for Args::Parse's `extra_usage`.
  static const char* Usage();

  /// True when the run differs from a plain single-replica static bench
  /// (extra output such as campaign TSVs keys off this, so default runs
  /// stay byte-identical to the pre-campaign harness).
  bool active() const { return replicas > 1 || scenario.kind != "null"; }
};

/// Prints a banner naming the figure and the paper's expectation.
void Banner(const std::string& figure, const std::string& expectation);

/// This process's peak resident set size in KiB (Linux /proc VmHWM);
/// 0 where unavailable. The graph-scale benches report it — at a million
/// nodes memory, not time, is the capacity wall.
std::uint64_t PeakRssKb();

/// WriteFile, but a failed write (including a flush/close failure such as
/// ENOSPC) warns on stderr naming the path instead of being dropped.
void WriteFileOrWarn(const std::string& path, const std::string& contents);

/// One CDF rendered as a fixed set of quantiles (the line PrintCdf prints,
/// with trailing newline) — task code builds output text with this so the
/// executor's parent process can print it verbatim.
std::string CdfLine(const std::string& label, std::vector<double> values);

/// The "label: count=… mean=… p50=… p95=… max=…" line (with trailing
/// newline) PrintSummary prints.
std::string SummaryLine(const std::string& label,
                        std::vector<double> values);

/// The TSV content PrintCdf writes for a curve.
std::string CdfTsvContent(std::vector<double> values);

/// Prints one CDF as a fixed set of quantiles (two aligned columns), and
/// appends the full curve to `<file>.tsv` when `file` is non-empty.
void PrintCdf(const std::string& label, std::vector<double> values,
              const std::string& file = "");

/// Prints "label: count=… mean=… p50=… p95=… max=…" on one line.
void PrintSummary(const std::string& label, std::vector<double> values);

/// A labeled numeric table printed with aligned columns; rows[i].second
/// must have one entry per column.
void PrintTable(const std::string& title,
                const std::vector<std::string>& columns,
                const std::vector<std::pair<std::string,
                                            std::vector<double>>>& rows);

/// The paper's topologies (synthetic stand-ins for the CAIDA maps; see
/// DESIGN.md §2). Sizes follow the paper unless scaled down by default for
/// runtime; --full restores the published node counts.
Graph MakeAsLevel(const Args& args);       // paper: 30,610 nodes
Graph MakeRouterLevel(const Args& args);   // paper: 192,244 (default 32,768)
Graph MakeGeometric(const Args& args, NodeId def_n);  // latency-annotated
Graph MakeGnm(const Args& args, NodeId def_n);        // avg degree 8

/// True when `s` is a 64-hex graph fingerprint (the names disco_store
/// prints and benches accept in place of a topology).
bool IsGraphFingerprint(const std::string& s);

/// Artifact-store key for a graph snapshot. `version` is the snapshot
/// format version — 2 (the current packed CSR format) for publishing;
/// readers also probe 1 for stores populated before the v2 bump.
store::ArtifactKey GraphSnapshotKey(const std::string& graph_fp,
                                    int version = 2);

/// Resolves a graph fingerprint through the process store: a v2 snapshot
/// artifact comes back as a zero-copy Graph view over the store's mmap
/// (the physical pages are shared read-only across every process mapping
/// the object, including procs-backend workers); a v1 artifact is
/// decoded. std::nullopt when no store is open or neither version is
/// present.
std::optional<Graph> LoadStoredGraph(const std::string& graph_fp);

/// Runs `count` tasks through the executor selected by --backend/--workers
/// and returns the raw result strings in task order. On execution failure
/// (a task out of retries, the worker pool lost) prints the error — via
/// `label` when given, so the message names the failing cell, not just an
/// index — and exits non-zero. `pool` bounds task-level concurrency on the
/// thread backend.
std::vector<std::string> RunTasksOrDie(
    const Args& args, std::size_t count, const exec::TaskFn& fn,
    runtime::ThreadPool* pool = nullptr,
    const std::function<std::string(std::size_t)>& label = nullptr);

/// Multi-trial dispatch through the executor: runs trials 0..count-1 on
/// the selected backend and returns their results in trial order. Trials
/// must be independent pure functions of (argv, trial index) and must not
/// print — on the procs backend they execute in worker subprocesses, so
/// results travel through encode/decode (use exec/wire.h; doubles must be
/// wire-encoded, never printf'd, to stay byte-exact). Pass a `pool` (e.g.
/// a ThreadPool(1)) to bound trial-level concurrency on the thread backend
/// when each trial holds a large working set; nested fan-outs inside a
/// trial still use the shared pool.
template <typename R>
std::vector<R> RunTrials(const Args& args, std::size_t count,
                         const std::function<R(std::size_t)>& trial,
                         const std::function<std::string(const R&)>& encode,
                         const std::function<R(const std::string&)>& decode,
                         runtime::ThreadPool* pool = nullptr) {
  const std::vector<std::string> raw = RunTasksOrDie(
      args, count, [&](std::size_t i) { return encode(trial(i)); }, pool);
  std::vector<R> results;
  results.reserve(count);
  for (const std::string& bytes : raw) results.push_back(decode(bytes));
  return results;
}

/// Builds the named schemes for this run (shared substructure where
/// possible) — exits with the registry listing if a name is unknown.
std::vector<std::unique_ptr<api::RoutingScheme>> MakeSchemesOrDie(
    const std::vector<std::string>& names, const Graph& g, const Params& p);

/// The full Fig. 4 / Fig. 5 comparison on a ~1,024-node topology for every
/// selected scheme (default: the five built-ins): state CDFs over nodes,
/// stretch CDFs over sampled pairs (first/later rows where the scheme
/// distinguishes them), and congestion CDFs over edges. Each scheme is one
/// executor task, so --backend=procs spreads schemes across workers.
/// `tag` prefixes the TSV output files.
void RunThousandNodeComparison(const std::string& tag, const Graph& g,
                               const Args& args);

}  // namespace disco::bench
