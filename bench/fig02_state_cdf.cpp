// Fig. 2: CDF over nodes of routing-table state for Disco, NDDisco and S4
// on (left) a 16,384-node geometric random graph, (middle) the AS-level
// Internet map, (right) the router-level Internet map.
//
// Paper result: Disco and NDDisco are near-vertical lines (perfectly
// balanced state); S4 matches on the geometric graph but grows a long,
// heavy tail on both Internet maps (max ~10x its median), because uniform-
// random landmarks break the Thorup–Zwick cluster bound on hub-dominated
// topologies.
#include "bench_common.h"

#include <cstdio>

namespace disco::bench {
namespace {

void RunTopology(const char* name, const Graph& g, const Args& args) {
  std::printf("\n--- %s: n=%u, m=%zu ---\n", name, g.num_nodes(),
              g.num_edges());
  const auto schemes = MakeSchemesOrDie(
      args.SchemesOr({"disco", "nddisco", "s4"}), g, args.MakeParams());
  std::vector<std::vector<double>> state;
  for (const auto& scheme : schemes) state.push_back(scheme->CollectState());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    PrintCdf(schemes[i]->label(), state[i],
             args.OutPath(std::string("fig02_") + name + "_" +
                          schemes[i]->name()));
  }
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    PrintSummary(schemes[i]->label(), state[i]);
  }
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 2 — state at a node (entries), CDF over nodes",
         "Disco/NDDisco near-vertical (balanced); S4 heavy-tailed on the "
         "Internet-like maps, matching on the geometric graph");
  RunTopology("geometric", MakeGeometric(args, 16384), args);
  RunTopology("aslevel", MakeAsLevel(args), args);
  RunTopology("routerlevel", MakeRouterLevel(args), args);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
