// Fig. 2: CDF over nodes of routing-table state for Disco, NDDisco and S4
// on (left) a 16,384-node geometric random graph, (middle) the AS-level
// Internet map, (right) the router-level Internet map.
//
// Paper result: Disco and NDDisco are near-vertical lines (perfectly
// balanced state); S4 matches on the geometric graph but grows a long,
// heavy tail on both Internet maps (max ~10x its median), because uniform-
// random landmarks break the Thorup–Zwick cluster bound on hub-dominated
// topologies.
#include "bench_common.h"

#include <cstdio>

namespace disco::bench {
namespace {

void RunTopology(const char* name, const Graph& g, const Params& params) {
  std::printf("\n--- %s: n=%u, m=%zu ---\n", name, g.num_nodes(),
              g.num_edges());
  const StateSeries s = CollectState(g, params);
  PrintCdf("Disco", s.disco, std::string("fig02_") + name + "_disco");
  PrintCdf("ND-Disco", s.nddisco, std::string("fig02_") + name + "_nddisco");
  PrintCdf("S4", s.s4, std::string("fig02_") + name + "_s4");
  PrintSummary("Disco", s.disco);
  PrintSummary("ND-Disco", s.nddisco);
  PrintSummary("S4", s.s4);
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 2 — state at a node (entries), CDF over nodes",
         "Disco/NDDisco near-vertical (balanced); S4 heavy-tailed on the "
         "Internet-like maps, matching on the geometric graph");
  RunTopology("geometric", MakeGeometric(args, 16384), args.MakeParams());
  RunTopology("aslevel", MakeAsLevel(args), args.MakeParams());
  RunTopology("routerlevel", MakeRouterLevel(args), args.MakeParams());
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
