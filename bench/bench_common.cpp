#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "graph/generators.h"
#include "runtime/thread_pool.h"
#include "sim/metrics.h"

namespace disco::bench {
namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

[[noreturn]] void PrintUsageAndExit(const char* prog, const char* extra_usage,
                                    int code) {
  std::FILE* to = code == 0 ? stdout : stderr;
  std::fprintf(
      to,
      "usage: %s [flags]\n"
      "  --n=<int>        override the default topology size\n"
      "  --seed=<int>     experiment seed (default 1)\n"
      "  --samples=<int>  sampled pairs/nodes\n"
      "  --gbits=<int>    sloppy-group bits offset\n"
      "  --schemes=<a,b>  comma-separated schemes (registered: %s)\n"
      "  --out=<dir>      directory for TSV output (default: cwd)\n"
      "  --threads=<int>  thread-pool width (default: DISCO_THREADS env,\n"
      "                   else hardware concurrency)\n"
      "  --full           run at the paper's full scale\n"
      "  --quick          shrink everything (CI smoke scale)\n"
      "  --help           this message\n%s",
      prog, JoinNames(api::RegisteredSchemes()).c_str(),
      extra_usage != nullptr ? extra_usage : "");
  std::exit(code);
}

}  // namespace

Args Args::Parse(int argc, char** argv, const char* extra_usage,
                 const ExtraFlag& extra) {
  Args a;
  if (std::getenv("REPRO_FULL") != nullptr) a.full = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--n=")) {
      a.n = static_cast<NodeId>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value_of("--seed=")) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--samples=")) {
      a.samples = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--gbits=")) {
      a.gbits = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value_of("--threads=")) {
      char* end = nullptr;
      const long t = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || t <= 0) {
        std::fprintf(stderr, "--threads needs a positive integer, got "
                             "\"%s\"\n", v);
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      a.threads = static_cast<int>(t);
    } else if (const char* v = value_of("--out=")) {
      a.out = v;
    } else if (const char* v = value_of("--schemes=")) {
      a.schemes = api::SplitSchemeList(v);
      if (a.schemes.empty()) {
        std::fprintf(stderr, "--schemes needs at least one name\n");
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      for (const std::string& s : a.schemes) {
        if (!api::IsRegisteredScheme(s)) {
          std::fprintf(stderr, "unknown scheme \"%s\" (registered: %s)\n",
                       s.c_str(),
                       JoinNames(api::RegisteredSchemes()).c_str());
          std::exit(2);
        }
      }
    } else if (arg == "--full") {
      a.full = true;
    } else if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--help") {
      PrintUsageAndExit(argv[0], extra_usage, 0);
    } else if (extra != nullptr && extra(arg)) {
      // consumed by the bench-specific handler
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsageAndExit(argv[0], extra_usage, 2);
    }
  }
  if (!a.out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(a.out, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --out directory %s: %s\n",
                   a.out.c_str(), ec.message().c_str());
      std::exit(2);
    }
  }
  if (a.threads > 0) {
    runtime::ThreadPool::ResetShared(static_cast<std::size_t>(a.threads));
  }
  return a;
}

std::string Args::OutPath(const std::string& name) const {
  if (out.empty()) return name;
  return out + "/" + name;
}

void Banner(const std::string& figure, const std::string& expectation) {
  std::printf("==============================================================="
              "=\n%s\npaper expectation: %s\n"
              "================================================================"
              "\n",
              figure.c_str(), expectation.c_str());
}

void PrintCdf(const std::string& label, std::vector<double> values,
              const std::string& file) {
  if (values.empty()) {
    std::printf("%-28s (no data)\n", label.c_str());
    return;
  }
  std::sort(values.begin(), values.end());
  std::printf("%-28s", label.c_str());
  static const double kQ[] = {0.01, 0.05, 0.10, 0.25, 0.50,
                              0.75, 0.90, 0.95, 0.99, 1.00};
  for (const double q : kQ) std::printf(" p%02.0f=%-9.4g", q * 100,
                                        Percentile(values, q));
  std::printf("\n");
  if (!file.empty()) {
    WriteFile(file + ".tsv", CdfToCsv(Cdf(values, 256)));
  }
}

void PrintSummary(const std::string& label, std::vector<double> values) {
  const Summary s = Summarize(std::move(values));
  std::printf("%-28s count=%-7zu mean=%-10.4g p50=%-10.4g p95=%-10.4g "
              "max=%-10.4g\n",
              label.c_str(), s.count, s.mean, s.p50, s.p95, s.max);
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& columns,
                const std::vector<std::pair<std::string,
                                            std::vector<double>>>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-38s", "");
  for (const auto& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (const auto& [name, vals] : rows) {
    std::printf("%-38s", name.c_str());
    for (const double v : vals) std::printf("%-16.4g", v);
    std::printf("\n");
  }
}

Graph MakeAsLevel(const Args& args) {
  const NodeId n = args.NOr(args.quick ? 4096 : 30610);
  return AsLevelInternet(n, args.seed);
}

Graph MakeRouterLevel(const Args& args) {
  const NodeId n =
      args.NOr(args.full ? 192244 : (args.quick ? 4096 : 32768));
  return RouterLevelInternet(n, args.seed);
}

Graph MakeGeometric(const Args& args, NodeId def_n) {
  return ConnectedGeometric(args.NOr(args.quick ? 2048 : def_n), 8.0,
                            args.seed);
}

Graph MakeGnm(const Args& args, NodeId def_n) {
  const NodeId n = args.NOr(args.quick ? 2048 : def_n);
  return ConnectedGnm(n, 4ull * n, args.seed);
}

std::vector<std::unique_ptr<api::RoutingScheme>> MakeSchemesOrDie(
    const std::vector<std::string>& names, const Graph& g, const Params& p) {
  auto schemes = api::MakeSchemes(names, g, p);
  if (schemes.empty()) {
    std::fprintf(stderr, "unknown scheme in {%s} (registered: %s)\n",
                 JoinNames(names).c_str(),
                 JoinNames(api::RegisteredSchemes()).c_str());
    std::exit(2);
  }
  return schemes;
}

void RunThousandNodeComparison(const std::string& tag, const Graph& g,
                               const Args& args) {
  std::printf("\ntopology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());
  const Params p = args.MakeParams();
  const auto schemes =
      MakeSchemesOrDie(args.SchemesOr({"disco", "nddisco", "s4", "vrr",
                                       "spf"}),
                       g, p);

  // This sweep routes from every node and toward most landmarks, so the
  // whole converged working set will be needed; bulk-compute it over the
  // pool up front rather than faulting it in one route at a time.
  for (const auto& scheme : schemes) scheme->PrewarmFor(scheme->AllNodes());

  // --- State (left panels) ---
  std::printf("\n[state: entries per node, CDF over nodes]\n");
  std::vector<std::vector<double>> state;
  for (const auto& scheme : schemes) state.push_back(scheme->CollectState());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    PrintCdf(schemes[i]->label(), state[i],
             args.OutPath(tag + "_state_" + schemes[i]->name()));
  }
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    PrintSummary(schemes[i]->label(), state[i]);
  }

  // --- Stretch (middle panels) ---
  std::printf("\n[stretch: CDF over src-dest pairs]\n");
  StretchOptions opt;
  opt.num_pairs = args.SamplesOr(args.quick ? 300 : 2000);
  opt.seed = args.seed;
  const auto run_stretch = [&](const std::string& label, const RouteFn& fn) {
    PrintCdf(label, SampleStretch(g, fn, opt),
             args.OutPath(tag + "_stretch_" + label));
  };
  for (const auto& scheme : schemes) {
    if (scheme->distinguishes_first_packet()) {
      run_stretch(scheme->label() + "-First",
                  scheme->route_fn(api::Phase::kFirst));
      run_stretch(scheme->label() + "-Later",
                  scheme->route_fn(api::Phase::kLater));
    } else {
      run_stretch(scheme->label(), scheme->route_fn(api::Phase::kLater));
    }
  }

  // --- Congestion (right panels) ---
  std::printf("\n[congestion: routes crossing each edge, CDF over edges; "
              "one random destination per node]\n");
  for (const auto& scheme : schemes) {
    const auto counts =
        CongestionCounts(g, scheme->route_fn(api::Phase::kLater), args.seed);
    std::vector<double> vals(counts.begin(), counts.end());
    PrintCdf(scheme->label(), vals,
             args.OutPath(tag + "_congestion_" + scheme->label()));
    PrintSummary("  " + scheme->label(), vals);
  }
}

}  // namespace disco::bench
