#include "bench_common.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "exec/net_daemon.h"
#include "exec/wire.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "sim/metrics.h"
#include "store/artifact_store.h"

namespace disco::bench {
namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

[[noreturn]] void PrintUsageAndExit(const char* prog, const char* extra_usage,
                                    int code) {
  std::FILE* to = code == 0 ? stdout : stderr;
  std::fprintf(
      to,
      "usage: %s [flags]\n"
      "  --n=<int>        override the default topology size\n"
      "  --seed=<int>     experiment seed (default 1)\n"
      "  --samples=<int>  sampled pairs/nodes\n"
      "  --gbits=<int>    sloppy-group bits offset\n"
      "  --schemes=<a,b>  comma-separated schemes (registered: %s)\n"
      "  --out=<dir>      directory for TSV output (default: cwd)\n"
      "  --threads=<int>  thread-pool width (default: DISCO_THREADS env,\n"
      "                   else hardware concurrency)\n"
      "  --backend=<b>    execution backend for multi-task fan-outs\n"
      "                   (disco_sweep, fig04/05, fig09): threads\n"
      "                   (default, in-process), procs (worker pool), or\n"
      "                   net (disco_workerd daemons; needs --hosts=)\n"
      "  --workers=<int>  worker subprocesses for --backend=procs\n"
      "                   (default: one per hardware thread)\n"
      "  --hosts=<a,b>    comma-separated host:port disco_workerd\n"
      "                   endpoints for --backend=net (one worker slot\n"
      "                   per entry; repeat an entry for more slots)\n"
      "  --store=<dir>    artifact store with prebuilt landmark trees\n"
      "                   (prebuild with disco_store; wall-clock only)\n"
      "  --trace=<file>   write a Chrome trace_event timeline of the run\n"
      "                   (open in Perfetto; stdout/TSVs are unchanged)\n"
      "  --worker=<job>   internal: serve one executor job as a worker\n"
      "  --full           run at the paper's full scale\n"
      "  --quick          shrink everything (CI smoke scale)\n"
      "  --help           this message\n%s",
      prog, JoinNames(api::RegisteredSchemes()).c_str(),
      extra_usage != nullptr ? extra_usage : "");
  std::exit(code);
}

// Registered via atexit when --store= is given: the unified registry dump
// ("[metrics] store trees: ...", "[metrics] graph sources: ..."). Goes to
// stderr so stdout (and therefore store vs storeless byte-identity) is
// untouched. Counters are process-local, but backends that farm work out
// to other processes fold worker counters back in at drain time (the kObs
// goodbye frame, src/exec/wire.h) — the dump's note says which of the two
// it is, so a "dijkstra=0" line is never silently missing worker Dijkstras
// that were merely done elsewhere. Workers themselves stay silent to keep
// procs runs from interleaving one dump per worker.
bool g_store_run_uses_procs = false;

void DumpMetricsAtExit() {
  if (exec::InWorkerMode()) return;
  std::string note;
  if (g_store_run_uses_procs) {
    const std::size_t merged = obs::Global().MergedSourceCount();
    note = merged == 0
               ? "driver process only; workers keep their own"
               : "aggregated over driver + " + std::to_string(merged) +
                     " worker process(es)";
  }
  std::fputs(obs::Global().DumpText(note).c_str(), stderr);
}

}  // namespace

Args Args::Parse(int argc, char** argv, const char* extra_usage,
                 const ExtraFlag& extra) {
  Args a;
  a.raw_argv.assign(argv, argv + argc);
  if (std::getenv("REPRO_FULL") != nullptr) a.full = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    // Numeric values are parsed strictly: "--n=10x", "--n=" or
    // "--seed=abc" must be a usage error, never a silent garbage value
    // (strtoull without an end check yields 0, which reads as "use the
    // per-bench default").
    const auto uint_or_die = [&](const char* v, const char* flag)
        -> unsigned long long {
      char* end = nullptr;
      errno = 0;  // reject overflow too, not just trailing garbage
      const unsigned long long x = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "%s needs a non-negative integer, got "
                             "\"%s\"\n", flag, v);
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      return x;
    };
    if (const char* v = value_of("--n=")) {
      a.n = static_cast<NodeId>(uint_or_die(v, "--n"));
    } else if (const char* v = value_of("--seed=")) {
      a.seed = uint_or_die(v, "--seed");
    } else if (const char* v = value_of("--samples=")) {
      a.samples = static_cast<std::size_t>(uint_or_die(v, "--samples"));
    } else if (const char* v = value_of("--gbits=")) {
      char* end = nullptr;
      const long b = std::strtol(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--gbits needs an integer, got \"%s\"\n", v);
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      a.gbits = static_cast<int>(b);
    } else if (const char* v = value_of("--threads=")) {
      char* end = nullptr;
      const long t = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || t <= 0) {
        std::fprintf(stderr, "--threads needs a positive integer, got "
                             "\"%s\"\n", v);
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      a.threads = static_cast<int>(t);
    } else if (const char* v = value_of("--backend=")) {
      if (!exec::ParseBackend(v, &a.backend)) {
        std::fprintf(stderr, "--backend must be \"threads\", \"procs\" or "
                             "\"net\", got \"%s\"\n", v);
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
    } else if (const char* v = value_of("--hosts=")) {
      a.hosts.clear();
      std::string spec;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          std::string host;
          int port = 0;
          if (!exec::ParseHostPort(spec, &host, &port)) {
            std::fprintf(stderr, "--hosts entry \"%s\" is not host:port\n",
                         spec.c_str());
            PrintUsageAndExit(argv[0], extra_usage, 2);
          }
          a.hosts.push_back(spec);
          spec.clear();
          if (*p == '\0') break;
        } else {
          spec.push_back(*p);
        }
      }
    } else if (const char* v = value_of("--workers=")) {
      char* end = nullptr;
      const unsigned long long w = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || w == 0) {
        std::fprintf(stderr, "--workers needs a positive integer, got "
                             "\"%s\"\n", v);
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      a.workers = static_cast<std::size_t>(w);
    } else if (const char* v = value_of("--worker=")) {
      // Internal: this process was spawned by a driver's process executor
      // to serve one Run call (see src/exec/executor.h).
      char* end = nullptr;
      const unsigned long long job = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--worker needs a job number, got \"%s\"\n",
                     v);
        std::exit(2);
      }
      exec::EnterWorkerMode(static_cast<std::size_t>(job));
    } else if (const char* v = value_of("--trace=")) {
      if (*v == '\0') {
        std::fprintf(stderr, "--trace needs a file path\n");
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      a.trace = v;
    } else if (const char* v = value_of("--out=")) {
      a.out = v;
    } else if (const char* v = value_of("--store=")) {
      std::string err;
      if (*v == '\0' || !store::OpenProcessStore(v, &err)) {
        std::fprintf(stderr, "cannot open --store directory \"%s\"%s%s\n", v,
                     err.empty() ? "" : ": ", err.c_str());
        std::exit(2);
      }
      if (a.store.empty()) {
        // Touch the tier counters now so their groups hold the dump's
        // first two slots (store trees, then graph sources — the lines
        // the smoke scripts grep) and so worker Prometheus text merged
        // during executor drain finds every series already registered.
        (void)store::Counters();
        (void)GraphLoadCounters();
        std::atexit(DumpMetricsAtExit);
      }
      a.store = v;
    } else if (const char* v = value_of("--schemes=")) {
      a.schemes = api::SplitSchemeList(v);
      if (a.schemes.empty()) {
        std::fprintf(stderr, "--schemes needs at least one name\n");
        PrintUsageAndExit(argv[0], extra_usage, 2);
      }
      for (const std::string& s : a.schemes) {
        if (!api::IsRegisteredScheme(s)) {
          std::fprintf(stderr, "unknown scheme \"%s\" (registered: %s)\n",
                       s.c_str(),
                       JoinNames(api::RegisteredSchemes()).c_str());
          std::exit(2);
        }
      }
    } else if (arg == "--full") {
      a.full = true;
    } else if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--help") {
      PrintUsageAndExit(argv[0], extra_usage, 0);
    } else if (extra != nullptr && extra(arg)) {
      // consumed by the bench-specific handler
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsageAndExit(argv[0], extra_usage, 2);
    }
  }
  if (!a.out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(a.out, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --out directory %s: %s\n",
                   a.out.c_str(), ec.message().c_str());
      std::exit(2);
    }
  }
  if (a.threads > 0) {
    runtime::ThreadPool::ResetShared(static_cast<std::size_t>(a.threads));
  }
  if (a.backend == exec::Backend::kNet && a.hosts.empty() &&
      !exec::InWorkerMode()) {
    std::fprintf(stderr, "--backend=net needs --hosts=host:port,...\n");
    PrintUsageAndExit(argv[0], extra_usage, 2);
  }
  // Store/graph counters are process-local; any backend that farms work
  // out to other processes (local workers or remote daemons) leaves the
  // driver's numbers covering only itself until worker goodbyes merge in.
  if (!a.store.empty() && a.backend != exec::Backend::kThreads) {
    g_store_run_uses_procs = true;
  }
  if (!a.trace.empty()) {
    // Workers re-parse this argv, see the same --trace=, and (having
    // entered worker mode above) flush pid-tagged sidecars instead of
    // the merged file.
    obs::ConfigureTracing(a.trace);
  }
  return a;
}

exec::ExecOptions Args::MakeExecOptions(runtime::ThreadPool* pool) const {
  exec::ExecOptions opts;
  opts.backend = backend;
  opts.workers = workers;
  opts.hosts = hosts;
  opts.worker_argv = raw_argv;
  opts.pool = pool;
  return opts;
}

std::string Args::OutPath(const std::string& name) const {
  if (out.empty()) return name;
  return out + "/" + name;
}

const char* CampaignArgs::Usage() {
  return "  --replicas=<r>   independent seeded DES replicas (default 1)\n"
         "  --scenario=<s>   dynamics scenario: null (default), churn,\n"
         "                   linkfail, correlated, partition\n"
         "  --scn-events=<k>   disturbance events per scenario\n"
         "  --scn-fraction=<f> fraction of nodes/links hit per event\n"
         "  --scn-start=<t>    sim time of the first disturbance\n"
         "  --scn-spacing=<t>  disturbance -> recovery spacing\n"
         "  --scn-noheal       leave the final disturbance unhealed\n";
}

bool CampaignArgs::Consume(const std::string& arg) {
  const auto value_of = [&arg](const char* prefix) -> const char* {
    const std::size_t len = std::strlen(prefix);
    return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
  };
  const auto die = [&](const char* what) {
    std::fprintf(stderr, "%s in %s\n", what, arg.c_str());
    std::exit(2);
  };
  if (const char* v = value_of("--replicas=")) {
    char* end = nullptr;
    const unsigned long long r = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || r == 0) die("invalid replica count");
    replicas = static_cast<std::size_t>(r);
    return true;
  }
  if (const char* v = value_of("--scenario=")) {
    if (!IsScenarioKind(v)) {
      std::fprintf(stderr,
                   "unknown scenario \"%s\" (known: null, churn, linkfail, "
                   "correlated, partition)\n",
                   v);
      std::exit(2);
    }
    scenario.kind = v;
    return true;
  }
  if (const char* v = value_of("--scn-events=")) {
    char* end = nullptr;
    const unsigned long long k = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') die("invalid event count");
    scenario.events = static_cast<std::size_t>(k);
    return true;
  }
  if (const char* v = value_of("--scn-fraction=")) {
    char* end = nullptr;
    const double f = std::strtod(v, &end);
    if (end == v || *end != '\0' || f <= 0 || f > 1) {
      die("invalid fraction (need 0 < f <= 1)");
    }
    scenario.fraction = f;
    return true;
  }
  if (const char* v = value_of("--scn-start=")) {
    char* end = nullptr;
    const double t = std::strtod(v, &end);
    if (end == v || *end != '\0' || t < 0) die("invalid start time");
    scenario.start = t;
    return true;
  }
  if (const char* v = value_of("--scn-spacing=")) {
    char* end = nullptr;
    const double t = std::strtod(v, &end);
    // The spacing must exceed the maximum link delay (1.5) or a message
    // could be in flight across two disturbances at once.
    if (end == v || *end != '\0' || t <= 1.5) {
      die("invalid spacing (need > 1.5, the max link delay)");
    }
    scenario.spacing = t;
    return true;
  }
  if (arg == "--scn-noheal") {
    scenario.heal = false;
    return true;
  }
  return false;
}

void WriteFileOrWarn(const std::string& path, const std::string& contents) {
  if (!WriteFile(path, contents)) {
    obs::Log(obs::LogLevel::kWarn, "failed to write %s", path.c_str());
  }
}

void Banner(const std::string& figure, const std::string& expectation) {
  std::printf("==============================================================="
              "=\n%s\npaper expectation: %s\n"
              "================================================================"
              "\n",
              figure.c_str(), expectation.c_str());
}

std::uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %" SCNu64 " kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

namespace {

// "%-28s" without snprintf's buffer limit: labels longer than the column
// (e.g. a long custom-registered scheme) must widen the line, never be
// truncated.
std::string PaddedLabel(const std::string& label) {
  std::string out = label;
  if (out.size() < 28) out.append(28 - out.size(), ' ');
  return out;
}

}  // namespace

std::string CdfLine(const std::string& label, std::vector<double> values) {
  if (values.empty()) return PaddedLabel(label) + " (no data)\n";
  std::sort(values.begin(), values.end());
  std::string line = PaddedLabel(label);
  char buf[64];
  static const double kQ[] = {0.01, 0.05, 0.10, 0.25, 0.50,
                              0.75, 0.90, 0.95, 0.99, 1.00};
  for (const double q : kQ) {
    std::snprintf(buf, sizeof buf, " p%02.0f=%-9.4g", q * 100,
                  Percentile(values, q));
    line += buf;
  }
  line += "\n";
  return line;
}

std::string SummaryLine(const std::string& label,
                        std::vector<double> values) {
  const Summary s = Summarize(std::move(values));
  char buf[128];
  std::snprintf(buf, sizeof buf,
                " count=%-7zu mean=%-10.4g p50=%-10.4g p95=%-10.4g "
                "max=%-10.4g\n",
                s.count, s.mean, s.p50, s.p95, s.max);
  return PaddedLabel(label) + buf;
}

std::string CdfTsvContent(std::vector<double> values) {
  return CdfToCsv(Cdf(std::move(values), 256));
}

void PrintCdf(const std::string& label, std::vector<double> values,
              const std::string& file) {
  const bool have_data = !values.empty();
  std::string tsv;
  if (have_data && !file.empty()) tsv = CdfTsvContent(values);
  std::fputs(CdfLine(label, std::move(values)).c_str(), stdout);
  if (have_data && !file.empty()) WriteFileOrWarn(file + ".tsv", tsv);
}

void PrintSummary(const std::string& label, std::vector<double> values) {
  std::fputs(SummaryLine(label, std::move(values)).c_str(), stdout);
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& columns,
                const std::vector<std::pair<std::string,
                                            std::vector<double>>>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-38s", "");
  for (const auto& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (const auto& [name, vals] : rows) {
    std::printf("%-38s", name.c_str());
    for (const double v : vals) std::printf("%-16.4g", v);
    std::printf("\n");
  }
}

Graph MakeAsLevel(const Args& args) {
  const NodeId n = args.NOr(args.quick ? 4096 : 30610);
  return AsLevelInternet(n, args.seed);
}

Graph MakeRouterLevel(const Args& args) {
  const NodeId n =
      args.NOr(args.full ? 192244 : (args.quick ? 4096 : 32768));
  return RouterLevelInternet(n, args.seed);
}

Graph MakeGeometric(const Args& args, NodeId def_n) {
  return ConnectedGeometric(args.NOr(args.quick ? 2048 : def_n), 8.0,
                            args.seed);
}

Graph MakeGnm(const Args& args, NodeId def_n) {
  const NodeId n = args.NOr(args.quick ? 2048 : def_n);
  return ConnectedGnm(n, 4ull * n, args.seed);
}

bool IsGraphFingerprint(const std::string& s) {
  return s.size() == 64 &&
         s.find_first_not_of("0123456789abcdef") == std::string::npos;
}

store::ArtifactKey GraphSnapshotKey(const std::string& graph_fp,
                                    int version) {
  store::ArtifactKey key;
  key.kind = "graph";
  key.graph = graph_fp;
  key.scope = "snapshot";
  key.version = version;
  return key;
}

std::optional<Graph> LoadStoredGraph(const std::string& graph_fp) {
  store::ArtifactStore* const st = store::ProcessStore();
  if (st == nullptr) return std::nullopt;
  // Current format first, then the key older stores published under.
  for (const int version : {2, 1}) {
    std::shared_ptr<store::ArtifactReader> reader =
        st->Open(GraphSnapshotKey(graph_fp, version));
    if (reader == nullptr || reader->frame_count() < 1) continue;
    const Span<const std::uint8_t> frame = reader->frame(0);
    const Span<const char> bytes(
        reinterpret_cast<const char*>(frame.data()), frame.size());
    // The reader (an open mmap of the object file) becomes the graph's
    // backing: v2 frames are viewed in place, no copy, no decode.
    if (auto g = ViewGraphSnapshot(reader, bytes)) return g;
  }
  return std::nullopt;
}

std::vector<std::string> RunTasksOrDie(
    const Args& args, std::size_t count, const exec::TaskFn& fn,
    runtime::ThreadPool* pool,
    const std::function<std::string(std::size_t)>& label) {
  DISCO_TRACE_SPAN("bench.run_tasks");
  const auto executor = exec::MakeExecutor(args.MakeExecOptions(pool));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(count, fn, &results);
  if (!status.ok) {
    if (status.task_known && label != nullptr) {
      std::fprintf(stderr, "execution failed at %s: %s\n",
                   label(status.failed_task).c_str(),
                   status.error.c_str());
    } else {
      std::fprintf(stderr, "execution failed: %s\n", status.error.c_str());
    }
    std::exit(1);
  }
  return results;
}

std::vector<std::unique_ptr<api::RoutingScheme>> MakeSchemesOrDie(
    const std::vector<std::string>& names, const Graph& g, const Params& p) {
  auto schemes = api::MakeSchemes(names, g, p);
  if (schemes.empty()) {
    std::fprintf(stderr, "unknown scheme in {%s} (registered: %s)\n",
                 JoinNames(names).c_str(),
                 JoinNames(api::RegisteredSchemes()).c_str());
    std::exit(2);
  }
  return schemes;
}

void RunThousandNodeComparison(const std::string& tag, const Graph& g,
                               const Args& args) {
  std::printf("\ntopology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());
  const Params p = args.MakeParams();
  const std::vector<std::string> names =
      args.SchemesOr({"disco", "nddisco", "s4", "vrr", "spf"});

  // One executor task per scheme: each measures the three panels and
  // returns the print-ready fragments plus TSV contents as a TextBundle —
  // the parent process assembles them in panel order, so stdout and the
  // files are byte-identical across backends and worker counts. On the
  // in-process path the schemes are batch-built up front (MakeSchemes
  // shares substructure, e.g. one Disco behind the disco/nddisco views);
  // a worker process instead builds only the scheme its task names —
  // that independence is what lets the procs backend spread schemes
  // across workers. Both constructions are deterministic, so the numbers
  // agree.
  // Bundle parts: [0] state CDF line, [1] state summary line, [2] stretch
  // CDF lines, [3] congestion CDF + summary lines.
  const bool in_process =
      args.backend == exec::Backend::kThreads && !exec::InWorkerMode();
  std::vector<std::unique_ptr<api::RoutingScheme>> prebuilt;
  if (in_process) {
    prebuilt = MakeSchemesOrDie(names, g, p);
    // The measurements route from every node and toward most landmarks,
    // so the whole converged working set will be needed; bulk-compute it
    // over the pool up front rather than faulting it in per route.
    for (const auto& s : prebuilt) s->PrewarmFor(s->AllNodes());
  }
  const exec::TaskFn task = [&](std::size_t i) {
    // Span named after the scheme so the timeline shows which scheme each
    // worker spent its time on (names interned: they must outlive flush).
    obs::Span scheme_span(obs::InternName("bench.scheme." + names[i]));
    std::unique_ptr<api::RoutingScheme> own;
    if (!in_process) {
      own = api::MakeScheme(names[i], g, p);
      if (own == nullptr) {
        throw std::runtime_error("unknown scheme \"" + names[i] + "\"");
      }
      own->PrewarmFor(own->AllNodes());
    }
    api::RoutingScheme* const scheme =
        in_process ? prebuilt[i].get() : own.get();
    exec::TextBundle bundle;

    // Like PrintCdf, an empty sample prints "(no data)" and writes no
    // file — a header-only TSV would read as a real (empty) curve.
    const std::vector<double> state = scheme->CollectState();
    bundle.parts.push_back(CdfLine(scheme->label(), state));
    bundle.parts.push_back(SummaryLine(scheme->label(), state));
    if (!state.empty()) {
      bundle.files.emplace_back(
          args.OutPath(tag + "_state_" + scheme->name()) + ".tsv",
          CdfTsvContent(state));
    }

    StretchOptions opt;
    opt.num_pairs = args.SamplesOr(args.quick ? 300 : 2000);
    opt.seed = args.seed;
    std::string stretch_text;
    const auto add_stretch = [&](const std::string& label,
                                 const RouteFn& fn) {
      const std::vector<double> values = SampleStretch(g, fn, opt);
      stretch_text += CdfLine(label, values);
      if (!values.empty()) {
        bundle.files.emplace_back(
            args.OutPath(tag + "_stretch_" + label) + ".tsv",
            CdfTsvContent(values));
      }
    };
    if (scheme->distinguishes_first_packet()) {
      add_stretch(scheme->label() + "-First",
                  scheme->route_fn(api::Phase::kFirst));
      add_stretch(scheme->label() + "-Later",
                  scheme->route_fn(api::Phase::kLater));
    } else {
      add_stretch(scheme->label(), scheme->route_fn(api::Phase::kLater));
    }
    bundle.parts.push_back(stretch_text);

    const auto counts =
        CongestionCounts(g, scheme->route_fn(api::Phase::kLater), args.seed);
    const std::vector<double> vals(counts.begin(), counts.end());
    bundle.parts.push_back(CdfLine(scheme->label(), vals) +
                           SummaryLine("  " + scheme->label(), vals));
    if (!vals.empty()) {
      bundle.files.emplace_back(
          args.OutPath(tag + "_congestion_" + scheme->label()) + ".tsv",
          CdfTsvContent(vals));
    }
    return bundle.Serialize();
  };

  const std::vector<std::string> raw = RunTasksOrDie(
      args, names.size(), task, nullptr,
      [&](std::size_t i) { return "scheme \"" + names[i] + "\""; });
  std::vector<exec::TextBundle> bundles(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (!exec::TextBundle::Parse(raw[i], &bundles[i]) ||
        bundles[i].parts.size() != 4) {
      std::fprintf(stderr, "malformed result bundle for scheme %s\n",
                   names[i].c_str());
      std::exit(1);
    }
  }

  std::printf("\n[state: entries per node, CDF over nodes]\n");
  for (const auto& b : bundles) std::fputs(b.parts[0].c_str(), stdout);
  for (const auto& b : bundles) std::fputs(b.parts[1].c_str(), stdout);

  std::printf("\n[stretch: CDF over src-dest pairs]\n");
  for (const auto& b : bundles) std::fputs(b.parts[2].c_str(), stdout);

  std::printf("\n[congestion: routes crossing each edge, CDF over edges; "
              "one random destination per node]\n");
  for (const auto& b : bundles) std::fputs(b.parts[3].c_str(), stdout);

  for (const auto& b : bundles) {
    for (const auto& [name, content] : b.files) {
      WriteFileOrWarn(name, content);
    }
  }
}

}  // namespace disco::bench
