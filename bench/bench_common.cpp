#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "baselines/s4.h"
#include "baselines/spf.h"
#include "baselines/vrr.h"
#include "graph/generators.h"
#include "sim/metrics.h"

namespace disco::bench {

Args Args::Parse(int argc, char** argv) {
  Args a;
  if (std::getenv("REPRO_FULL") != nullptr) a.full = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--n=")) {
      a.n = static_cast<NodeId>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value_of("--seed=")) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--samples=")) {
      a.samples = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--gbits=")) {
      a.gbits = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--full") {
      a.full = true;
    } else if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--help") {
      std::printf("flags: --n=<int> --seed=<int> --samples=<int> "
                  "--gbits=<int> --full --quick\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return a;
}

void Banner(const std::string& figure, const std::string& expectation) {
  std::printf("==============================================================="
              "=\n%s\npaper expectation: %s\n"
              "================================================================"
              "\n",
              figure.c_str(), expectation.c_str());
}

void PrintCdf(const std::string& label, std::vector<double> values,
              const std::string& file) {
  if (values.empty()) {
    std::printf("%-28s (no data)\n", label.c_str());
    return;
  }
  std::sort(values.begin(), values.end());
  std::printf("%-28s", label.c_str());
  static const double kQ[] = {0.01, 0.05, 0.10, 0.25, 0.50,
                              0.75, 0.90, 0.95, 0.99, 1.00};
  for (const double q : kQ) std::printf(" p%02.0f=%-9.4g", q * 100,
                                        Percentile(values, q));
  std::printf("\n");
  if (!file.empty()) {
    WriteFile(file + ".tsv", CdfToCsv(Cdf(values, 256)));
  }
}

void PrintSummary(const std::string& label, std::vector<double> values) {
  const Summary s = Summarize(std::move(values));
  std::printf("%-28s count=%-7zu mean=%-10.4g p50=%-10.4g p95=%-10.4g "
              "max=%-10.4g\n",
              label.c_str(), s.count, s.mean, s.p50, s.p95, s.max);
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& columns,
                const std::vector<std::pair<std::string,
                                            std::vector<double>>>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-38s", "");
  for (const auto& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (const auto& [name, vals] : rows) {
    std::printf("%-38s", name.c_str());
    for (const double v : vals) std::printf("%-16.4g", v);
    std::printf("\n");
  }
}

Graph MakeAsLevel(const Args& args) {
  const NodeId n = args.NOr(args.quick ? 4096 : 30610);
  return AsLevelInternet(n, args.seed);
}

Graph MakeRouterLevel(const Args& args) {
  const NodeId n =
      args.NOr(args.full ? 192244 : (args.quick ? 4096 : 32768));
  return RouterLevelInternet(n, args.seed);
}

Graph MakeGeometric(const Args& args, NodeId def_n) {
  return ConnectedGeometric(args.NOr(args.quick ? 2048 : def_n), 8.0,
                            args.seed);
}

Graph MakeGnm(const Args& args, NodeId def_n) {
  const NodeId n = args.NOr(args.quick ? 2048 : def_n);
  return ConnectedGnm(n, 4ull * n, args.seed);
}

StateSeries CollectState(const Graph& g, const Params& p) {
  Disco disco(g, p);
  S4 s4(g, p);
  s4.ClusterSizes();  // one parallel pass over all nodes
  s4.PrewarmLandmarkTrees();

  StateSeries out;
  out.disco.resize(g.num_nodes());
  out.nddisco.resize(g.num_nodes());
  out.s4.resize(g.num_nodes());
  // Per-node state reads converged tables only; disjoint slots keep the
  // series thread-count-invariant.
  runtime::ParallelFor(0, g.num_nodes(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t vi = lo; vi < hi; ++vi) {
      const NodeId v = static_cast<NodeId>(vi);
      out.disco[vi] = static_cast<double>(disco.State(v).total());
      out.nddisco[vi] = static_cast<double>(
          disco.nd().State(v, &disco.resolution()).total());
      out.s4[vi] = static_cast<double>(s4.State(v).total());
    }
  });
  return out;
}

void RunThousandNodeComparison(const std::string& tag, const Graph& g,
                               const Args& args) {
  std::printf("\ntopology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());
  const Params p = args.MakeParams();
  Disco disco(g, p);
  S4 s4(g, p);
  const Vrr vrr(g, p);
  ShortestPathRouting spf(g, g.num_nodes());

  // This sweep routes from every node and toward most landmarks, so the
  // whole converged working set will be needed; bulk-compute it over the
  // pool up front rather than faulting it in one route at a time.
  disco.nd().PrewarmLandmarkTrees();
  s4.PrewarmLandmarkTrees();
  {
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    disco.nd().PrewarmVicinities(all);
  }

  // --- State (left panels) ---
  std::printf("\n[state: entries per node, CDF over nodes]\n");
  const StateSeries st = CollectState(g, p);
  std::vector<double> vrr_state;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    vrr_state.push_back(static_cast<double>(vrr.State(v).total()));
  }
  PrintCdf("Disco", st.disco, tag + "_state_disco");
  PrintCdf("ND-Disco", st.nddisco, tag + "_state_nddisco");
  PrintCdf("S4", st.s4, tag + "_state_s4");
  PrintCdf("VRR", vrr_state, tag + "_state_vrr");
  PrintSummary("Disco", st.disco);
  PrintSummary("ND-Disco", st.nddisco);
  PrintSummary("S4", st.s4);
  PrintSummary("VRR", vrr_state);

  // --- Stretch (middle panels) ---
  std::printf("\n[stretch: CDF over src-dest pairs]\n");
  StretchOptions opt;
  opt.num_pairs = args.SamplesOr(args.quick ? 300 : 2000);
  opt.seed = args.seed;
  const auto run_stretch = [&](const std::string& label, const RouteFn& fn) {
    PrintCdf(label, SampleStretch(g, fn, opt), tag + "_stretch_" + label);
  };
  run_stretch("Disco-First",
              [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); });
  run_stretch("Disco-Later",
              [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); });
  run_stretch("S4-First",
              [&](NodeId s, NodeId t) { return s4.RouteFirst(s, t); });
  run_stretch("S4-Later",
              [&](NodeId s, NodeId t) { return s4.RouteLater(s, t); });
  run_stretch("VRR",
              [&](NodeId s, NodeId t) { return vrr.RoutePacket(s, t); });

  // --- Congestion (right panels) ---
  std::printf("\n[congestion: routes crossing each edge, CDF over edges; "
              "one random destination per node]\n");
  const auto congestion = [&](const std::string& label, const RouteFn& fn) {
    const auto counts = CongestionCounts(g, fn, args.seed);
    std::vector<double> vals(counts.begin(), counts.end());
    PrintCdf(label, vals, tag + "_congestion_" + label);
    PrintSummary("  " + label, vals);
  };
  congestion("Disco",
             [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); });
  congestion("Path-vector",
             [&](NodeId s, NodeId t) { return spf.RoutePacket(s, t); });
  congestion("S4", [&](NodeId s, NodeId t) { return s4.RouteLater(s, t); });
  congestion("VRR",
             [&](NodeId s, NodeId t) { return vrr.RoutePacket(s, t); });
}

}  // namespace disco::bench
