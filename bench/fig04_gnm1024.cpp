// Fig. 4: state (left), stretch (middle), congestion (right) for Disco,
// NDDisco, S4, VRR and path vector on a 1,024-node G(n,m) random graph
// (m = 4n, average degree 8, unit weights).
//
// Paper result: VRR's state has by far the longest tail (it can exceed the
// path-vector baseline on a few nodes); VRR's stretch is unbounded and its
// curve sits right of Disco's and S4's; congestion for the compact schemes
// stays surprisingly close to shortest-path routing, with VRR worst.
#include "bench_common.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 4 — Disco vs VRR vs S4 on a 1,024-node G(n,m) graph",
         "VRR heavy state tail + highest stretch/congestion; Disco balanced "
         "state, stretch ≤7/3, congestion near shortest-path");
  RunThousandNodeComparison("fig04", MakeGnm(args, 1024), args);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
