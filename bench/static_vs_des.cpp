// §5.2 "Accuracy of static simulation": the large-topology results come
// from a static (converged-state) simulator; this bench cross-validates it
// against the discrete-event simulator on a 1,024-node G(n,m) graph.
//
// Paper result: static-vs-DES mean stretch differs by ≤0.9% for Disco's
// later packets and ≤0.7% for S4's. Our DES converges the same protocol
// the static simulator closes over, so we verify (a) landmark routes match
// exactly, (b) bounded vicinities overlap the ideal k-nearest sets almost
// everywhere, and (c) the later-packet stretch implied by DES tables is
// within a fraction of a percent of the static number.
#include "bench_common.h"

#include <cmath>
#include <cstdio>

#include "api/schemes.h"
#include "graph/shortest_path.h"
#include "sim/metrics.h"
#include "sim/pv_sim.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("§5.2 — static simulator vs discrete-event simulator (gnm-1024)",
         "mean later-packet stretch difference under ~1%");
  const Graph g = MakeGnm(args, 1024);

  Params p;
  p.seed = args.seed;
  // The DES cross-check needs the protocol internals (landmarks,
  // vicinities, addresses), so it holds the concrete adapter rather than
  // going through the registry.
  api::DiscoScheme scheme(g, p);
  Disco& disco = scheme.impl();
  const LandmarkSet& lms = disco.nd().landmarks();

  PvConfig cfg;
  cfg.mode = PvMode::kNdDisco;
  cfg.params = p;
  cfg.landmarks = &lms;
  const PvResult des = SimulatePathVector(g, cfg);

  // (a) Landmark routes: exact agreement.
  std::size_t landmark_checked = 0, landmark_exact = 0;
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    const auto truth = Dijkstra(g, v);
    for (const NodeId l : lms.landmarks) {
      ++landmark_checked;
      const auto it = des.tables[v].find(l);
      if (it != des.tables[v].end() &&
          std::abs(it->second - truth.dist[l]) < 1e-9) {
        ++landmark_exact;
      }
    }
  }
  std::printf("landmark routes exact: %zu/%zu\n", landmark_exact,
              landmark_checked);

  // (b) Vicinity overlap with the static simulator's ideal k-nearest.
  const std::size_t k = disco.nd().vicinity_size();
  std::size_t overlap = 0, ideal_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    const auto ideal = KNearest(g, v, k);
    ideal_total += ideal.size();
    for (const auto& m : ideal) {
      if (des.tables[v].count(m.node)) ++overlap;
    }
  }
  std::printf("vicinity overlap (DES vs static ideal): %.3f%%\n",
              100.0 * static_cast<double>(overlap) /
                  static_cast<double>(ideal_total));

  // (c) Later-packet stretch: static route lengths vs lengths implied by
  // the DES tables (d(s, l_t) from the DES landmark table + the address).
  StretchOptions opt;
  opt.num_pairs = args.SamplesOr(500);
  opt.seed = args.seed;
  std::vector<StretchSample> details;
  const auto static_stretch = SampleStretch(
      g,
      [&](NodeId s, NodeId t) {
        return disco.nd().RouteLater(s, t, Shortcut::kNone);
      },
      opt, &details);
  double des_sum = 0, static_sum = 0;
  std::size_t counted = 0;
  for (const auto& d : details) {
    if (d.failed || d.shortest <= 0) continue;
    // DES view of the same route choice.
    double des_len;
    if (des.tables[d.t].count(d.s)) {
      des_len = des.tables[d.t].at(d.s);  // handshake: direct path
    } else {
      const NodeId lt = disco.nd().addresses().closest_landmark(d.t);
      const double to_lt = des.tables[d.s].count(lt)
                               ? des.tables[d.s].at(lt)
                               : kInfDist;
      des_len = to_lt + disco.nd().addresses().landmark_distance(d.t);
    }
    des_sum += des_len / d.shortest;
    static_sum += d.routed / d.shortest;
    ++counted;
  }
  const double des_mean = des_sum / static_cast<double>(counted);
  const double static_mean = static_sum / static_cast<double>(counted);
  std::printf("mean later-packet stretch: static=%.4f  des=%.4f  "
              "difference=%.2f%%\n",
              static_mean, des_mean,
              100.0 * std::abs(des_mean - static_mean) / static_mean);
  (void)static_stretch;
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
