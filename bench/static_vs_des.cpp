// §5.2 "Accuracy of static simulation": the large-topology results come
// from a static (converged-state) simulator; this bench cross-validates it
// against the discrete-event simulator on a 1,024-node G(n,m) graph.
//
// Paper result: static-vs-DES mean stretch differs by ≤0.9% for Disco's
// later packets and ≤0.7% for S4's. Our DES converges the same protocol
// the static simulator closes over, so we verify (a) landmark routes match
// exactly, (b) bounded vicinities overlap the ideal k-nearest sets almost
// everywhere, and (c) the later-packet stretch implied by DES tables is
// within a fraction of a percent of the static number.
//
// The DES side is a replicated campaign (sim/campaign.h): each replica is
// one executor task that simulates its own seeded DES (optionally through
// a --scenario disturbance schedule) and computes the three checks against
// the shared static scheme; the parent reduces them to mean ± stddev. With
// --replicas=1 and the null scenario the output is byte-identical to the
// pre-campaign bench, and --backend=procs to the in-process run.
#include "bench_common.h"

#include <cmath>
#include <cstdio>

#include "api/schemes.h"
#include "exec/wire.h"
#include "graph/shortest_path.h"
#include "sim/campaign.h"
#include "sim/metrics.h"
#include "sim/pv_sim.h"

namespace disco::bench {
namespace {

// What one replica's task ships back to the parent.
struct ReplicaChecks {
  std::uint64_t landmark_exact = 0;
  std::uint64_t landmark_checked = 0;
  std::uint64_t overlap = 0;
  std::uint64_t ideal_total = 0;
  double static_mean = 0;
  double des_mean = 0;
};

std::string EncodeChecks(const ReplicaChecks& c) {
  std::string out;
  exec::PutU64(&out, c.landmark_exact);
  exec::PutU64(&out, c.landmark_checked);
  exec::PutU64(&out, c.overlap);
  exec::PutU64(&out, c.ideal_total);
  exec::PutDouble(&out, c.static_mean);
  exec::PutDouble(&out, c.des_mean);
  return out;
}

bool DecodeChecks(const std::string& bytes, ReplicaChecks* c) {
  exec::WireReader r(bytes);
  return r.GetU64(&c->landmark_exact) && r.GetU64(&c->landmark_checked) &&
         r.GetU64(&c->overlap) && r.GetU64(&c->ideal_total) &&
         r.GetDouble(&c->static_mean) && r.GetDouble(&c->des_mean);
}

int Main(int argc, char** argv) {
  CampaignArgs campaign;
  const Args args =
      Args::Parse(argc, argv, CampaignArgs::Usage(),
                  [&](const std::string& arg) {
                    return campaign.Consume(arg);
                  });
  Banner("§5.2 — static simulator vs discrete-event simulator (gnm-1024)",
         "mean later-packet stretch difference under ~1%");
  const Graph g = MakeGnm(args, 1024);

  Params p;
  p.seed = args.seed;
  // The DES cross-check needs the protocol internals (landmarks,
  // vicinities, addresses), so it holds the concrete adapter rather than
  // going through the registry. Built before the executor Run call, so a
  // worker process replaying this code path derives the identical scheme.
  api::DiscoScheme scheme(g, p);
  Disco& disco = scheme.impl();
  const LandmarkSet& lms = disco.nd().landmarks();

  CampaignSpec spec;
  spec.graph = &g;
  spec.base.mode = PvMode::kNdDisco;
  spec.base.params = p;
  spec.base.landmarks = &lms;
  spec.scenario = campaign.scenario;

  const exec::TaskFn task = [&](std::size_t replica) {
    PvResult des;
    RunReplica(spec, replica, &des);
    ReplicaChecks c;

    // (a) Landmark routes: exact agreement.
    for (NodeId v = 0; v < g.num_nodes(); v += 7) {
      const auto truth = Dijkstra(g, v);
      for (const NodeId l : lms.landmarks) {
        ++c.landmark_checked;
        const auto it = des.tables[v].find(l);
        if (it != des.tables[v].end() &&
            std::abs(it->second - truth.dist[l]) < 1e-9) {
          ++c.landmark_exact;
        }
      }
    }

    // (b) Vicinity overlap with the static simulator's ideal k-nearest.
    const std::size_t k = disco.nd().vicinity_size();
    for (NodeId v = 0; v < g.num_nodes(); v += 7) {
      const auto ideal = KNearest(g, v, k);
      c.ideal_total += ideal.size();
      for (const auto& m : ideal) {
        if (des.tables[v].count(m.node)) ++c.overlap;
      }
    }

    // (c) Later-packet stretch: static route lengths vs lengths implied
    // by the DES tables (d(s, l_t) from the DES landmark table + the
    // address).
    StretchOptions opt;
    opt.num_pairs = args.SamplesOr(500);
    opt.seed = args.seed;
    std::vector<StretchSample> details;
    const auto static_stretch = SampleStretch(
        g,
        [&](NodeId s, NodeId t) {
          return disco.nd().RouteLater(s, t, Shortcut::kNone);
        },
        opt, &details);
    double des_sum = 0, static_sum = 0;
    std::size_t counted = 0;
    for (const auto& d : details) {
      if (d.failed || d.shortest <= 0) continue;
      // DES view of the same route choice.
      double des_len;
      if (des.tables[d.t].count(d.s)) {
        des_len = des.tables[d.t].at(d.s);  // handshake: direct path
      } else {
        const NodeId lt = disco.nd().addresses().closest_landmark(d.t);
        const double to_lt = des.tables[d.s].count(lt)
                                 ? des.tables[d.s].at(lt)
                                 : kInfDist;
        des_len = to_lt + disco.nd().addresses().landmark_distance(d.t);
      }
      des_sum += des_len / d.shortest;
      static_sum += d.routed / d.shortest;
      ++counted;
    }
    c.des_mean = des_sum / static_cast<double>(counted);
    c.static_mean = static_sum / static_cast<double>(counted);
    (void)static_stretch;
    return EncodeChecks(c);
  };

  const std::vector<std::string> raw = RunTasksOrDie(
      args, campaign.replicas, task, nullptr, [](std::size_t r) {
        return "replica " + std::to_string(r);
      });
  std::vector<ReplicaChecks> checks(raw.size());
  for (std::size_t r = 0; r < raw.size(); ++r) {
    if (!DecodeChecks(raw[r], &checks[r])) {
      std::fprintf(stderr, "malformed result for replica %zu\n", r);
      return 1;
    }
  }

  if (campaign.replicas == 1) {
    const ReplicaChecks& c = checks[0];
    std::printf("landmark routes exact: %zu/%zu\n",
                static_cast<std::size_t>(c.landmark_exact),
                static_cast<std::size_t>(c.landmark_checked));
    std::printf("vicinity overlap (DES vs static ideal): %.3f%%\n",
                100.0 * static_cast<double>(c.overlap) /
                    static_cast<double>(c.ideal_total));
    std::printf("mean later-packet stretch: static=%.4f  des=%.4f  "
                "difference=%.2f%%\n",
                c.static_mean, c.des_mean,
                100.0 * std::abs(c.des_mean - c.static_mean) /
                    c.static_mean);
    return 0;
  }

  // Replicated campaign: reduce each check to mean ± stddev.
  std::vector<double> exact_pct, overlap_pct, diff_pct;
  for (const ReplicaChecks& c : checks) {
    exact_pct.push_back(100.0 * static_cast<double>(c.landmark_exact) /
                        static_cast<double>(c.landmark_checked));
    overlap_pct.push_back(100.0 * static_cast<double>(c.overlap) /
                          static_cast<double>(c.ideal_total));
    diff_pct.push_back(100.0 * std::abs(c.des_mean - c.static_mean) /
                       c.static_mean);
  }
  const MeanSd exact = MeanStddev(exact_pct);
  const MeanSd overlap = MeanStddev(overlap_pct);
  const MeanSd diff = MeanStddev(diff_pct);
  std::printf("campaign: %zu replicas, scenario=%s\n", campaign.replicas,
              campaign.scenario.kind.c_str());
  std::printf("landmark routes exact: %.3f%% ± %.3f\n", exact.mean,
              exact.sd);
  std::printf("vicinity overlap (DES vs static ideal): %.3f%% ± %.3f\n",
              overlap.mean, overlap.sd);
  std::printf("mean later-packet stretch difference: %.2f%% ± %.2f\n",
              diff.mean, diff.sd);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
