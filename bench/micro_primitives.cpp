// google-benchmark micro-benchmarks for the primitives every experiment is
// built on: hashing, shortest paths, the label codec, synopsis merging,
// consistent hashing, and overlay dissemination. These quantify the cost
// model behind the simulators rather than reproduce a paper figure.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "routing/address.h"
#include "util/compact_label.h"
#include "util/consistent_hash.h"
#include "util/hashring.h"
#include "util/sha256.h"
#include "util/synopsis.h"

namespace disco {
namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  const std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HashName(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashName(DefaultName(i++)));
  }
}
BENCHMARK(BM_HashName);

void BM_Dijkstra(benchmark::State& state) {
  const Graph g = ConnectedGnm(static_cast<NodeId>(state.range(0)),
                               4ull * state.range(0), 1);
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dijkstra(g, src));
    src = (src + 101) % g.num_nodes();
  }
}
BENCHMARK(BM_Dijkstra)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_KNearestVicinity(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = ConnectedGnm(n, 4ull * n, 1);
  const std::size_t k = VicinitySize(n);
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KNearest(g, src, k));
    src = (src + 101) % g.num_nodes();
  }
}
BENCHMARK(BM_KNearestVicinity)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_AddressEncode(benchmark::State& state) {
  const Graph g = RouterLevelInternet(8192, 1);
  Params p;
  const LandmarkSet lms = SelectLandmarks(g.num_nodes(), p);
  const AddressBook book(g, lms);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(book.AddressOf(v));
    v = (v + 37) % g.num_nodes();
  }
}
BENCHMARK(BM_AddressEncode);

void BM_LabelDecode(benchmark::State& state) {
  std::vector<HopLabel> hops;
  for (int i = 0; i < 16; ++i) {
    hops.push_back({static_cast<std::uint32_t>(i % 7),
                    static_cast<std::uint32_t>(8)});
  }
  const EncodedRoute route = EncodeRoute(hops);
  for (auto _ : state) {
    LabelDecoder dec(route);
    std::uint32_t sum = 0;
    while (dec.HasNext()) sum += dec.Next(8);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LabelDecode);

void BM_SynopsisMerge(benchmark::State& state) {
  Synopsis a = Synopsis::ForElement(1);
  const Synopsis b = Synopsis::ForElement(2);
  for (auto _ : state) {
    a.Merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SynopsisMerge);

void BM_ConsistentHashOwner(benchmark::State& state) {
  std::vector<std::uint32_t> members;
  for (std::uint32_t i = 0; i < 512; ++i) members.push_back(i);
  const ConsistentHashRing ring(members, 8);
  HashValue key = 0x123456789abcdef0ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Owner(key));
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}
BENCHMARK(BM_ConsistentHashOwner);

void BM_OverlayDisseminate(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  // ConnectedGnm keeps the largest component, so index by the *actual*
  // node count, not the requested one.
  const Graph g = ConnectedGnm(n, 4ull * n, 1);
  Params p;
  Disco disco(g, p);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disco.overlay().Disseminate(v));
    v = (v + 13) % g.num_nodes();
  }
}
BENCHMARK(BM_OverlayDisseminate)->Arg(1024)->Arg(4096);

void BM_DiscoRouteFirst(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = ConnectedGnm(n, 4ull * n, 1);
  Params p;
  Disco disco(g, p);
  NodeId s = 0, t = g.num_nodes() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disco.RouteFirst(s, t));
    s = (s + 17) % g.num_nodes();
    t = (t + 29) % g.num_nodes();
  }
}
BENCHMARK(BM_DiscoRouteFirst)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace disco

BENCHMARK_MAIN();
