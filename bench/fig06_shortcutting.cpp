// Fig. 6 (table): mean first-packet stretch for each shortcutting heuristic
// of §4.2, across the AS-level, router-level, geometric-16384 and gnm-16384
// topologies.
//
// Paper result (rows top to bottom): stretch falls monotonically from "No
// Shortcutting" (1.3–1.4 on Internet maps) through "No Path Knowledge"
// (the default, ~1.1–1.15) down to "Using Path Knowledge" (~1.01), with
// the geometric graph close to 1 throughout.
#include "bench_common.h"

#include "core/disco.h"

#include <cstdio>

#include "sim/metrics.h"
#include "util/stats.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 6 — mean first-packet stretch per shortcutting heuristic",
         "monotone improvement: none > to-dest > no-path-knowledge > "
         "up-down-stream ≳ path-knowledge (≈1.0)");

  struct Topo {
    const char* name;
    Graph graph;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"AS-Level", MakeAsLevel(args)});
  topologies.push_back({"Router-level", MakeRouterLevel(args)});
  topologies.push_back({"Geometric-16384", MakeGeometric(args, 16384)});
  topologies.push_back({"GNM-16384", MakeGnm(args, 16384)});

  const std::size_t pairs = args.SamplesOr(args.quick ? 100 : 400);
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  for (const Shortcut mode : kAllShortcuts) {
    rows.emplace_back(ShortcutName(mode), std::vector<double>{});
  }

  std::vector<std::string> columns;
  for (auto& topo : topologies) {
    columns.push_back(topo.name);
    std::printf("computing %s (n=%u)...\n", topo.name,
                topo.graph.num_nodes());
    Params p;
    p.seed = args.seed;
    // Fig. 6 varies the heuristics of §4.2, i.e. on the name-dependent
    // protocol's first packets (the destination's address is known; the
    // sloppy-group detour is orthogonal to shortcutting).
    NdDisco nd(topo.graph, p);
    StretchOptions opt;
    opt.num_pairs = pairs;
    opt.seed = args.seed;
    std::size_t row = 0;
    for (const Shortcut mode : kAllShortcuts) {
      const auto stretch = SampleStretch(
          topo.graph,
          [&](NodeId s, NodeId t) { return nd.RouteFirst(s, t, mode); },
          opt);
      rows[row++].second.push_back(Summarize(stretch).mean);
    }
  }

  PrintTable("mean first-packet stretch", columns, rows);
  std::printf("\npaper values (row x column): No Shortcutting 1.40/1.30/"
              "1.05/1.35; No Path Knowledge 1.15/1.09/1.00/1.18; Using Path "
              "Knowledge 1.01/1.02/1.00/1.16\n");
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
