// Fig. 7 (table): per-node state on the router-level Internet map measured
// in entries AND bytes, for S4, NDDisco and Disco, under 4-byte (IPv4-like)
// and 16-byte (IPv6-like) node names.
//
// Byte model (source routes use the compact §4.2 encoding):
//   landmark/vicinity/cluster route entry = name + 1B next-hop label
//   forwarding-label map entry            = 1B
//   resolution or group address record    = name (key) + name (landmark)
//                                           + explicit-route bytes
//   overlay neighbor                      = name
//
// Paper result: S4's *mean* is lowest but its max breaks the bound by an
// order of magnitude (3,124 mean / 40,339 max entries); NDDisco pays a
// slightly higher mean (3,620) for a tightly bounded max (4,310); Disco's
// name-independence costs roughly 2x NDDisco (6,592 / 7,309). Bytes follow
// the same ordering.
#include "bench_common.h"

#include <cstdio>

#include "baselines/s4.h"
#include "graph/shortest_path.h"

namespace disco::bench {
namespace {

struct ByteSeries {
  std::vector<double> entries;
  std::vector<double> bytes_v4;
  std::vector<double> bytes_v6;
};

// Explicit-route bytes of every node's address under `book`.
std::vector<std::size_t> RouteBytes(const AddressBook& book, NodeId n) {
  std::vector<std::size_t> out(n);
  for (NodeId v = 0; v < n; ++v) out[v] = book.AddressOf(v).route_bytes();
  return out;
}

double RecordBytes(const std::vector<NodeId>& stored,
                   const std::vector<std::size_t>& route_bytes,
                   double name_bytes) {
  double total = 0;
  for (const NodeId t : stored) {
    total += 2 * name_bytes + static_cast<double>(route_bytes[t]);
  }
  return total;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 7 (table) — state on the router-level map: entries and KB",
         "S4 best mean but ~10x worst-case blowup; NDDisco bounded; Disco "
         "≈2x NDDisco for name independence");
  const Graph g = MakeRouterLevel(args);
  std::printf("topology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());

  const Params p = args.MakeParams();
  Disco disco(g, p);
  S4 s4(g, p);
  s4.ClusterSizes();
  const auto disco_bytes = RouteBytes(disco.nd().addresses(), g.num_nodes());
  const auto s4_bytes = RouteBytes(s4.addresses(), g.num_nodes());

  ByteSeries series_s4, series_nd, series_disco;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const double nb : {4.0, 16.0}) {
      // --- S4 ---
      {
        const StateBreakdown b = s4.State(v);
        double bytes =
            (nb + 1) * static_cast<double>(b.landmark_entries +
                                           b.cluster_entries) +
            static_cast<double>(b.label_entries) +
            RecordBytes(s4.resolution().OwnedNodes(v), s4_bytes, nb);
        if (nb == 4.0) {
          series_s4.entries.push_back(static_cast<double>(b.total()));
          series_s4.bytes_v4.push_back(bytes);
        } else {
          series_s4.bytes_v6.push_back(bytes);
        }
      }
      // --- NDDisco ---
      {
        const StateBreakdown b = disco.nd().State(v, &disco.resolution());
        double bytes =
            (nb + 1) * static_cast<double>(b.landmark_entries +
                                           b.vicinity_entries) +
            static_cast<double>(b.label_entries) +
            RecordBytes(disco.resolution().OwnedNodes(v), disco_bytes, nb);
        if (nb == 4.0) {
          series_nd.entries.push_back(static_cast<double>(b.total()));
          series_nd.bytes_v4.push_back(bytes);
        } else {
          series_nd.bytes_v6.push_back(bytes);
        }
      }
      // --- Disco ---
      {
        const StateBreakdown b = disco.State(v);
        double bytes =
            (nb + 1) * static_cast<double>(b.landmark_entries +
                                           b.vicinity_entries) +
            static_cast<double>(b.label_entries) +
            RecordBytes(disco.resolution().OwnedNodes(v), disco_bytes, nb) +
            RecordBytes(disco.groups().StoredAddresses(v), disco_bytes,
                        nb) +
            nb * static_cast<double>(b.overlay_entries);
        if (nb == 4.0) {
          series_disco.entries.push_back(static_cast<double>(b.total()));
          series_disco.bytes_v4.push_back(bytes);
        } else {
          series_disco.bytes_v6.push_back(bytes);
        }
      }
    }
  }

  auto mean_max = [](const std::vector<double>& v) {
    const Summary s = Summarize(v);
    return std::pair<double, double>{s.mean, s.max};
  };
  auto row = [&](const char* name, const ByteSeries& s) {
    const auto [em, ex] = mean_max(s.entries);
    const auto [b4m, b4x] = mean_max(s.bytes_v4);
    const auto [b6m, b6x] = mean_max(s.bytes_v6);
    return std::pair<std::string, std::vector<double>>{
        name,
        {em, ex, b4m / 1024.0, b4x / 1024.0, b6m / 1024.0, b6x / 1024.0}};
  };
  PrintTable(
      "per-node state (KB = kilobytes of routing state)",
      {"entries mean", "entries max", "KB(v4) mean", "KB(v4) max",
       "KB(v6) mean", "KB(v6) max"},
      {row("S4", series_s4), row("ND-Disco", series_nd),
       row("Disco", series_disco)});
  std::printf("\npaper (192,244-node map): entries mean/max — S4 3123.9/"
              "40339, ND-Disco 3619.9/4310, Disco 6592.4/7309\n");
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
