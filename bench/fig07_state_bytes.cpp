// Fig. 7 (table): per-node state on the router-level Internet map measured
// in entries AND bytes, for S4, NDDisco and Disco, under 4-byte (IPv4-like)
// and 16-byte (IPv6-like) node names.
//
// The byte model (source routes use the compact §4.2 encoding) lives with
// each scheme — RoutingScheme::StateBytes:
//   landmark/vicinity/cluster route entry = name + 1B next-hop label
//   forwarding-label map entry            = 1B
//   resolution or group address record    = name (key) + name (landmark)
//                                           + explicit-route bytes
//   overlay neighbor                      = name
//
// Paper result: S4's *mean* is lowest but its max breaks the bound by an
// order of magnitude (3,124 mean / 40,339 max entries); NDDisco pays a
// slightly higher mean (3,620) for a tightly bounded max (4,310); Disco's
// name-independence costs roughly 2x NDDisco (6,592 / 7,309). Bytes follow
// the same ordering.
#include "bench_common.h"

#include <cstdio>

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 7 (table) — state on the router-level map: entries and KB",
         "S4 best mean but ~10x worst-case blowup; NDDisco bounded; Disco "
         "≈2x NDDisco for name independence");
  const Graph g = MakeRouterLevel(args);
  std::printf("topology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());

  const auto schemes = MakeSchemesOrDie(
      args.SchemesOr({"s4", "nddisco", "disco"}), g, args.MakeParams());

  auto mean_max = [](const std::vector<double>& v) {
    const Summary s = Summarize(v);
    return std::pair<double, double>{s.mean, s.max};
  };
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  for (const auto& scheme : schemes) {
    // One parallel pass fills the entries series (and any shared lazily
    // computed structures, e.g. S4 cluster sizes); the byte model then
    // reads the converged tables per node.
    const std::vector<double> entries = scheme->CollectState();
    std::vector<double> bytes_v4(g.num_nodes()), bytes_v6(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      bytes_v4[v] = scheme->StateBytes(v, 4.0);
      bytes_v6[v] = scheme->StateBytes(v, 16.0);
    }
    const auto [em, ex] = mean_max(entries);
    const auto [b4m, b4x] = mean_max(bytes_v4);
    const auto [b6m, b6x] = mean_max(bytes_v6);
    rows.push_back({scheme->label(),
                    {em, ex, b4m / 1024.0, b4x / 1024.0, b6m / 1024.0,
                     b6x / 1024.0}});
  }
  PrintTable(
      "per-node state (KB = kilobytes of routing state)",
      {"entries mean", "entries max", "KB(v4) mean", "KB(v4) max",
       "KB(v6) mean", "KB(v6) max"},
      rows);
  std::printf("\npaper (192,244-node map): entries mean/max — S4 3123.9/"
              "40339, ND-Disco 3619.9/4310, Disco 6592.4/7309\n");
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
