// disco_store — build and manage the on-disk artifact store (src/store/).
//
//   disco_store build  --store=<dir> [--topo=gnm|geo|as|router]
//                      [--graph=<file>] [--n=..] [--seed=..]
//                      [--quick|--full] [--threads=k]
//   disco_store ls     --store=<dir>
//   disco_store verify --store=<dir>
//   disco_store gc     --store=<dir> [--max-bytes=<n>]
//
// `build` constructs the same topology a bench would (identical
// generator, identical size/seed policy, including the --quick/--full
// scaling), selects the same landmark set, and publishes every landmark
// tree as a compressed artifact — the one-time cost that lets every
// later bench or sweep cell run with `--store=<dir>` and do zero landmark
// Dijkstras. Keys are shared with LandmarkTreeCache by construction
// (LandmarkTreeArtifactKey), so a bench on the same (topology, n, seed,
// params) resolves exactly the objects built here. Re-running build over
// a populated store is an incremental no-op: present trees are loaded
// (which verifies them) instead of recomputed.
//
// `--graph=` bypasses the generators and prebuilds for a real map: a
// binary snapshot (graph/io.h SaveGraphSnapshot), a text edge list, or —
// when given a 64-hex graph fingerprint — the snapshot artifact a
// previous build stored, so trees can be rebuilt (say, after a codec
// version bump, or post-gc) without the original map file.
//
// GC policy: `gc` always removes abandoned temp files (older than an
// hour; younger ones may be a live writer's in-flight Put) and corrupt
// objects; with --max-bytes it additionally evicts oldest-published
// objects until the store fits the budget (content-addressing makes
// eviction safe — an evicted tree is rebuilt and republished by the next
// run that needs it).
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "graph/io.h"
#include "routing/landmark_trees.h"
#include "routing/landmarks.h"
#include "runtime/parallel_for.h"
#include "store/artifact_store.h"
#include "store/tree_codec.h"

namespace disco::bench {
namespace {

constexpr const char* kUsage =
    "usage: disco_store <build|ls|verify|gc> --store=<dir> [flags]\n"
    "  build   prebuild landmark-tree artifacts for one topology\n"
    "  ls      list artifacts (id, bytes, kind, key)\n"
    "  verify  checksum-verify every artifact (exit 1 on corruption)\n"
    "  gc      drop temp files + corrupt objects; --max-bytes evicts\n"
    "          oldest objects down to the byte budget\n";

constexpr const char* kExtraUsage =
    "  --topo=<t>       topology family for build: gnm (default), geo,\n"
    "                   as, router — same size/seed policy as the benches\n"
    "  --graph=<g>      build for a graph snapshot file, an edge-list\n"
    "                   file, or a 64-hex graph fingerprint already\n"
    "                   stored, instead of a generated topology\n"
    "  --max-bytes=<n>  gc: evict oldest objects past this total size\n";

struct StoreArgs {
  std::string topo = "gnm";
  std::string graph_file;
  std::uint64_t max_bytes = 0;
};

Graph MakeTopology(const StoreArgs& sargs, const Args& args) {
  if (!sargs.graph_file.empty()) {
    // A 64-hex name is a graph fingerprint: resolve the snapshot
    // artifact an earlier build published instead of reading a file
    // (v2 artifacts come back as a zero-copy view over the store mmap).
    if (IsGraphFingerprint(sargs.graph_file)) {
      if (auto g = LoadStoredGraph(sargs.graph_file)) {
        return std::move(*g);
      }
      std::fprintf(stderr,
                   "no graph snapshot artifact for fingerprint %s in this "
                   "store (run a build with the original map first)\n",
                   sargs.graph_file.c_str());
      std::exit(2);
    }
    if (auto g = LoadGraphSnapshot(sargs.graph_file)) return std::move(*g);
    if (auto g = LoadEdgeList(sargs.graph_file)) return std::move(*g);
    std::fprintf(stderr,
                 "cannot load %s as a graph snapshot or edge list\n",
                 sargs.graph_file.c_str());
    std::exit(2);
  }
  if (sargs.topo == "gnm") return MakeGnm(args, 1024);
  if (sargs.topo == "geo") return MakeGeometric(args, 1024);
  if (sargs.topo == "as") return MakeAsLevel(args);
  if (sargs.topo == "router") return MakeRouterLevel(args);
  std::fprintf(stderr, "unknown --topo \"%s\" (gnm, geo, as, router)\n",
               sargs.topo.c_str());
  std::exit(2);
}

int Build(const StoreArgs& sargs, const Args& args) {
  store::ArtifactStore* const st = store::ProcessStore();
  const Graph g = MakeTopology(sargs, args);
  const Params params = args.MakeParams();
  const LandmarkSet landmarks = SelectLandmarks(g.num_nodes(), params);
  std::printf("disco_store build: n=%u m=%zu landmarks=%zu store=%s\n",
              g.num_nodes(), g.num_edges(), landmarks.count(),
              st->root().c_str());

  // Stash the graph itself: `build --graph=<this fingerprint>` can then
  // rebuild trees for the exact map — after a codec version bump or a
  // gc eviction — without the original file or generator replay.
  const std::string graph_fp = GraphFingerprintHex(g);
  std::printf("graph fingerprint: %s\n", graph_fp.c_str());
  std::string err;
  if (!st->Put(GraphSnapshotKey(graph_fp), {GraphSnapshotBytes(g)},
               &err)) {
    std::fprintf(stderr, "cannot store graph snapshot: %s\n", err.c_str());
    return 1;
  }

  // Resolving every tree through a tiny cache exercises exactly the
  // production load path: present artifacts are decoded (verifying them),
  // absent ones are computed and written back. Capacity 1 keeps the
  // resident set bounded, so a 192k-node full-scale build streams trees
  // to disk instead of holding all of them.
  LandmarkTreeCache cache(g, landmarks, 1);
  runtime::ParallelForTasks(landmarks.count(), [&](std::size_t i) {
    cache.Tree(landmarks.landmarks[i]);
  });
  const LandmarkTreeCache::TierStats stats = cache.tier_stats();

  std::uint64_t tree_bytes = 0, total_bytes = 0;
  for (const store::ListEntry& e : st->List()) {
    total_bytes += e.bytes;
    if (e.kind == "ltree") tree_bytes += e.bytes;
  }
  std::printf("built=%zu present=%zu tree_bytes=%" PRIu64
              " store_bytes=%" PRIu64 "\n",
              stats.dijkstras, stats.store_hits, tree_bytes, total_bytes);
  const std::size_t raw =
      landmarks.count() * static_cast<std::size_t>(g.num_nodes()) *
      (sizeof(Dist) + sizeof(NodeId));
  if (stats.writebacks > 0 && raw > 0) {
    std::printf("encoded size: %.1f%% of the in-memory tree footprint\n",
                100.0 * static_cast<double>(tree_bytes) /
                    static_cast<double>(raw));
  }
  return 0;
}

int Ls() {
  std::uint64_t total = 0;
  const auto entries = store::ProcessStore()->List();
  for (const store::ListEntry& e : entries) {
    total += e.bytes;
    std::printf("%.12s  %10" PRIu64 "  %-6s %s\n", e.id.c_str(), e.bytes,
                e.kind.empty() ? "?" : e.kind.c_str(),
                e.canonical.c_str());
  }
  std::printf("%zu artifacts, %" PRIu64 " bytes\n", entries.size(), total);
  return 0;
}

int Verify() {
  const auto result = store::ProcessStore()->Verify();
  for (const std::string& id : result.corrupt) {
    std::fprintf(stderr, "corrupt artifact: %s\n", id.c_str());
  }
  std::printf("verified %zu artifacts, %zu corrupt\n", result.checked,
              result.corrupt.size());
  return result.corrupt.empty() ? 0 : 1;
}

int Gc(const StoreArgs& sargs) {
  const auto result = store::ProcessStore()->Gc(sargs.max_bytes);
  std::printf("gc: removed %zu tmp files, %zu corrupt objects, evicted "
              "%zu; %" PRIu64 " bytes kept\n",
              result.removed_tmp, result.removed_corrupt, result.evicted,
              result.bytes_kept);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (cmd != "build" && cmd != "ls" && cmd != "verify" && cmd != "gc") {
    std::fprintf(stderr, "unknown subcommand \"%s\"\n%s", cmd.c_str(),
                 kUsage);
    return 2;
  }

  // Shift the subcommand out so the shared parser sees plain flags.
  std::vector<char*> shifted;
  shifted.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) shifted.push_back(argv[i]);

  StoreArgs sargs;
  const Args args = Args::Parse(
      static_cast<int>(shifted.size()), shifted.data(), kExtraUsage,
      [&sargs](const std::string& arg) {
        const auto value_of = [&arg](const char* prefix) -> const char* {
          const std::size_t len = std::strlen(prefix);
          return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len
                                                  : nullptr;
        };
        if (const char* v = value_of("--topo=")) {
          sargs.topo = v;
          return true;
        }
        if (const char* v = value_of("--graph=")) {
          sargs.graph_file = v;
          return true;
        }
        if (const char* v = value_of("--max-bytes=")) {
          char* end = nullptr;
          const unsigned long long b = std::strtoull(v, &end, 10);
          if (end == v || *end != '\0') {
            std::fprintf(stderr, "--max-bytes needs an integer\n");
            std::exit(2);
          }
          sargs.max_bytes = b;
          return true;
        }
        return false;
      });
  if (args.store.empty()) {
    std::fprintf(stderr, "disco_store %s needs --store=<dir>\n%s",
                 cmd.c_str(), kUsage);
    return 2;
  }

  if (cmd == "build") return Build(sargs, args);
  if (cmd == "ls") return Ls();
  if (cmd == "verify") return Verify();
  return Gc(sargs);
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
