// §5.2 "Error in Estimating Number of Nodes": inject bounded random error
// into every node's estimate of n, then measure (a) how often first-packet
// routing still finds a sloppy-group contact in the vicinity, and (b) the
// change in mean stretch. Also reports what synopsis diffusion actually
// achieves, to show the injected errors are far beyond realistic ones.
//
// Paper result (1,024-node random graph, 5 runs): with 40% error all nodes
// reach all destinations and mean stretch moves +0.6% (1.253 -> 1.261);
// with 60% error a single node failed to cover one sloppy group in one of
// five runs.
#include "bench_common.h"

#include "core/disco.h"

#include <cstdio>

#include "sim/metrics.h"
#include "util/rng.h"
#include "util/synopsis.h"

namespace disco::bench {
namespace {

struct RunResult {
  double contact_fraction = 0;  // pairs resolved via sloppy groups
  double mean_first_stretch = 0;
};

RunResult RunOnce(const Graph& g, double error, std::uint64_t seed,
                  std::size_t pairs, int gbits, int* distinct_bits) {
  const NodeId n = g.num_nodes();
  std::vector<double> estimates(n);
  Rng rng(seed * 7919 + 17);
  for (NodeId v = 0; v < n; ++v) {
    estimates[v] = n * (1.0 + error * 2.0 * (rng.NextDouble() - 0.5));
  }
  Params p;
  p.seed = seed;
  p.group_bits_offset = gbits;
  Disco disco(g, p, NameTable::Default(n), estimates);
  if (distinct_bits != nullptr) {
    int lo = 64, hi = 0;
    for (NodeId v = 0; v < n; ++v) {
      lo = std::min(lo, disco.groups().bits_of(v));
      hi = std::max(hi, disco.groups().bits_of(v));
    }
    *distinct_bits = hi - lo + 1;
  }

  StretchOptions opt;
  opt.num_pairs = pairs;
  opt.seed = seed;
  std::size_t fallbacks = 0, total = 0;
  const auto stretch = SampleStretch(
      g,
      [&](NodeId s, NodeId t) {
        const Route r = disco.RouteFirst(s, t);
        ++total;
        fallbacks += r.via_fallback ? 1 : 0;
        return r;
      },
      opt);
  RunResult out;
  out.contact_fraction =
      total == 0 ? 1.0
                 : 1.0 - static_cast<double>(fallbacks) /
                             static_cast<double>(total);
  out.mean_first_stretch = Summarize(stretch).mean;
  return out;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("§5.2 — error in estimating n (G(n,m), 5 runs)",
         "40% error: full reachability, mean stretch moves <1%; 60% error: "
         "isolated single-group misses only");
  // Default n = 2048 sits near a group-bits boundary, so ±60% estimates
  // actually split nodes across prefix lengths (at 1024 the grouping is
  // insensitive to 60% error — the sloppiness §4.4 banks on).
  const Graph g = MakeGnm(args, 2048);
  const std::size_t pairs = args.SamplesOr(args.quick ? 200 : 1000);
  const int runs = args.quick ? 2 : 5;

  for (const double error : {0.0, 0.2, 0.4, 0.6}) {
    double contact = 0, stretch = 0;
    double worst_contact = 1.0;
    int distinct_bits = 0;
    for (int r = 0; r < runs; ++r) {
      const RunResult res = RunOnce(g, error, args.seed + r, pairs,
                                    args.gbits, &distinct_bits);
      contact += res.contact_fraction;
      stretch += res.mean_first_stretch;
      worst_contact = std::min(worst_contact, res.contact_fraction);
    }
    std::printf("error=%.0f%%  group-contact success=%.4f (worst run "
                "%.4f)  mean first-packet stretch=%.4f  (%d distinct "
                "prefix lengths in use)\n",
                error * 100, contact / runs, worst_contact,
                stretch / runs, distinct_bits);
  }

  // Context: what synopsis diffusion actually delivers (§4.1).
  const auto estimates = GossipEstimates(g, 32);
  double max_err = 0;
  for (const double e : estimates) {
    max_err = std::max(max_err,
                       std::abs(e - g.num_nodes()) / g.num_nodes());
  }
  std::printf("\nsynopsis-diffusion estimate error after convergence: "
              "%.1f%% (injected errors above are adversarial)\n",
              max_err * 100);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
