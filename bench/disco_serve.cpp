// disco_serve — the online half of the paper: route-*serving* under load.
//
// Every other bench is an offline batch job; this one prewarms the
// selected schemes (from the artifact store when --store= is given, so a
// warm start does zero landmark Dijkstras) and then drives a heavy
// concurrent query workload against each scheme's route function:
// per-thread closed loops over deterministic per-stream TaskRng streams,
// Zipf-distributed destinations, and optional flash-crowd and churn
// phases (the churn departed set is compiled by the PR 4 scenario layer).
// Per-query latency lands in lock-free per-thread histograms merged at
// the end; live totals tick in cheap relaxed atomics (serve/counters.h).
//
// The query stream — destinations, phase schedule, per-stream failure
// counts — is byte-identical across thread counts and runs
// (--dump-stream= writes it for comparison; serve_smoke cmp's it), so
// correctness is checkable even though timings are not. Results go to
// stdout as an aligned table and to BENCH_serve.json (run metadata +
// per-scheme qps/p50/p95/p99/p999), the committed perf-trajectory
// baseline that CI compares fresh runs against via bench_compare.
#include "bench_common.h"

#include <cstdio>
#include <cstring>

#include "obs/trace.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "util/json.h"

namespace disco::bench {
namespace {

constexpr const char* kExtraUsage =
    "  --queries=<q>      queries per stream per phase (default 2000,\n"
    "                     --quick 250, --full 20000)\n"
    "  --streams=<k>      logical client streams, decoupled from threads\n"
    "                     (default 64, --quick 16)\n"
    "  --zipf=<s>         Zipf skew of the destination popularity\n"
    "                     (default 0.99; 0 = uniform)\n"
    "  --flash            add a flash-crowd phase (hot-set collapse)\n"
    "  --hot=<k>          flash-crowd hot-set size (default 8)\n"
    "  --churn            add a churn phase (scenario-compiled departed\n"
    "                     set; queries to departed nodes fail)\n"
    "  --json=<file>      result JSON path (default BENCH_serve.json in\n"
    "                     the --out directory)\n"
    "  --dump-stream=<f>  write the deterministic query stream and\n"
    "                     per-stream failure tallies to <f> (byte-stable\n"
    "                     across runs and thread counts)\n"
    "  --progress         live served/failure counters on stderr\n";

struct ServeArgs {
  serve::WorkloadSpec spec;
  bool queries_set = false;
  bool streams_set = false;
  std::string json_path;
  std::string dump_path;
  bool progress = false;

  bool Consume(const std::string& arg) {
    const auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len
                                              : nullptr;
    };
    const auto die = [&](const char* what) {
      std::fprintf(stderr, "%s in %s\n", what, arg.c_str());
      std::exit(2);
    };
    const auto uint_value = [&](const char* v, const char* what)
        -> unsigned long long {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || x == 0) die(what);
      return x;
    };
    if (const char* v = value_of("--queries=")) {
      spec.queries_per_stream =
          static_cast<std::size_t>(uint_value(v, "invalid query count"));
      queries_set = true;
      return true;
    }
    if (const char* v = value_of("--streams=")) {
      spec.streams =
          static_cast<std::size_t>(uint_value(v, "invalid stream count"));
      streams_set = true;
      return true;
    }
    if (const char* v = value_of("--zipf=")) {
      char* end = nullptr;
      const double s = std::strtod(v, &end);
      if (end == v || *end != '\0' || s < 0) die("invalid zipf skew");
      spec.zipf = s;
      return true;
    }
    if (const char* v = value_of("--hot=")) {
      spec.hot_set =
          static_cast<std::size_t>(uint_value(v, "invalid hot-set size"));
      return true;
    }
    if (const char* v = value_of("--json=")) {
      json_path = v;
      return true;
    }
    if (const char* v = value_of("--dump-stream=")) {
      dump_path = v;
      return true;
    }
    if (arg == "--flash") {
      spec.flash = true;
      return true;
    }
    if (arg == "--churn") {
      spec.churn = true;
      return true;
    }
    if (arg == "--progress") {
      progress = true;
      return true;
    }
    return false;
  }
};

int Main(int argc, char** argv) {
  ServeArgs serve_args;
  const Args args = Args::Parse(argc, argv, kExtraUsage,
                                [&](const std::string& arg) {
                                  return serve_args.Consume(arg);
                                });
  if (!serve_args.queries_set) {
    serve_args.spec.queries_per_stream =
        args.quick ? 250 : (args.full ? 20000 : 2000);
  }
  if (!serve_args.streams_set) {
    serve_args.spec.streams = args.quick ? 16 : 64;
  }
  Banner("Route serving — throughput and tail latency under load",
         "compact schemes answer queries at memory speed after prewarm; "
         "flash crowds stress the tail, churn adds deterministic failures");

  const Graph g = MakeGnm(args, 1024);
  std::printf("topology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());

  const serve::Workload workload =
      serve::Workload::Build(serve_args.spec, g, args.seed);
  std::string phase_names;
  for (const serve::PhaseKind p : workload.phases()) {
    if (!phase_names.empty()) phase_names += ",";
    phase_names += serve::PhaseName(p);
  }
  const std::string fingerprint = workload.FingerprintHex();
  std::printf("workload: %zu streams x %zu queries (%s), zipf=%g, "
              "sha256=%.16s…\n",
              workload.streams(), workload.queries_per_stream(),
              phase_names.c_str(), serve_args.spec.zipf,
              fingerprint.c_str());

  // Pregenerate every stream once: synthesis stays off the measured path
  // and the same immutable streams drive every scheme.
  std::vector<std::vector<serve::Query>> streams;
  streams.reserve(workload.streams());
  for (std::size_t s = 0; s < workload.streams(); ++s) {
    streams.push_back(workload.Stream(s));
  }

  const Params p = args.MakeParams();
  const std::vector<std::string> names =
      args.SchemesOr({"disco", "nddisco", "s4", "vrr", "spf"});
  auto schemes = MakeSchemesOrDie(names, g, p);
  {
    DISCO_TRACE_SPAN("serve.prewarm");
    for (const auto& scheme : schemes) {
      scheme->PrewarmFor(scheme->AllNodes());
    }
  }

  serve::ServeOptions opts;
  opts.threads = args.threads;
  opts.progress = serve_args.progress;

  std::vector<std::pair<std::string, std::vector<double>>> rows;
  std::vector<serve::ServeResult> results;
  int resolved_threads = 0;
  for (const auto& scheme : schemes) {
    obs::Span run_span(obs::InternName("serve.run." + scheme->name()));
    serve::ServeResult r = serve::ServeWorkload(
        scheme->route_fn(api::Phase::kLater), workload, streams, opts);
    resolved_threads = r.threads;
    rows.emplace_back(
        scheme->label(),
        std::vector<double>{
            r.qps(), r.latency.mean_ns() / 1e3,
            static_cast<double>(r.latency.ValueAtQuantile(0.50)) / 1e3,
            static_cast<double>(r.latency.ValueAtQuantile(0.95)) / 1e3,
            static_cast<double>(r.latency.ValueAtQuantile(0.99)) / 1e3,
            static_cast<double>(r.latency.ValueAtQuantile(0.999)) / 1e3,
            static_cast<double>(r.failures)});
    results.push_back(std::move(r));
  }

  PrintTable("[route serving: closed-loop throughput and latency "
             "(microseconds); failures are deterministic]",
             {"qps", "mean_us", "p50_us", "p95_us", "p99_us", "p999_us",
              "failures"},
             rows);

  // BENCH_serve.json — the machine-readable perf-trajectory record.
  json::Value root = json::Value::Object();
  root.Set("bench", json::Value::Str("disco_serve"));
  root.Set("schema_version", json::Value::Number(1));
  json::Value topo = json::Value::Object();
  topo.Set("kind", json::Value::Str("gnm"));
  topo.Set("n", json::Value::Number(g.num_nodes()));
  topo.Set("m", json::Value::Number(static_cast<double>(g.num_edges())));
  topo.Set("seed", json::Value::Number(static_cast<double>(args.seed)));
  root.Set("topology", std::move(topo));
  json::Value wl = json::Value::Object();
  wl.Set("streams",
         json::Value::Number(static_cast<double>(workload.streams())));
  wl.Set("queries_per_stream",
         json::Value::Number(
             static_cast<double>(workload.queries_per_stream())));
  json::Value phases = json::Value::Array();
  for (const serve::PhaseKind ph : workload.phases()) {
    phases.Push(json::Value::Str(serve::PhaseName(ph)));
  }
  wl.Set("phases", std::move(phases));
  wl.Set("zipf", json::Value::Number(serve_args.spec.zipf));
  wl.Set("sha256", json::Value::Str(fingerprint));
  wl.Set("total_queries",
         json::Value::Number(
             static_cast<double>(workload.total_queries())));
  root.Set("workload", std::move(wl));
  root.Set("threads", json::Value::Number(resolved_threads));
  json::Value scheme_list = json::Value::Array();
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const serve::ServeResult& r = results[i];
    json::Value s = json::Value::Object();
    s.Set("name", json::Value::Str(schemes[i]->name()));
    s.Set("qps", json::Value::Number(r.qps()));
    s.Set("mean_us", json::Value::Number(r.latency.mean_ns() / 1e3));
    s.Set("p50_us",
          json::Value::Number(
              static_cast<double>(r.latency.ValueAtQuantile(0.50)) / 1e3));
    s.Set("p95_us",
          json::Value::Number(
              static_cast<double>(r.latency.ValueAtQuantile(0.95)) / 1e3));
    s.Set("p99_us",
          json::Value::Number(
              static_cast<double>(r.latency.ValueAtQuantile(0.99)) / 1e3));
    s.Set("p999_us",
          json::Value::Number(
              static_cast<double>(r.latency.ValueAtQuantile(0.999)) /
              1e3));
    s.Set("max_us",
          json::Value::Number(
              static_cast<double>(r.latency.max_ns()) / 1e3));
    s.Set("served",
          json::Value::Number(static_cast<double>(r.served)));
    s.Set("failures",
          json::Value::Number(static_cast<double>(r.failures)));
    scheme_list.Push(std::move(s));
  }
  root.Set("schemes", std::move(scheme_list));
  const std::string json_path = serve_args.json_path.empty()
                                    ? args.OutPath("BENCH_serve.json")
                                    : serve_args.json_path;
  WriteFileOrWarn(json_path, root.Dump());
  std::printf("\nwrote %s\n", json_path.c_str());

  // The deterministic artifact: the full query stream plus per-scheme
  // per-stream tallies — byte-identical across runs and thread counts.
  if (!serve_args.dump_path.empty()) {
    std::string dump = "# workload sha256=" + fingerprint + "\n";
    dump += workload.DumpTsv();
    dump += "# scheme\tstream\tserved\tfailures\n";
    char line[128];
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const serve::ServeResult& r = results[i];
      for (std::size_t s = 0; s < workload.streams(); ++s) {
        std::snprintf(line, sizeof line, "%s\t%zu\t%llu\t%llu\n",
                      schemes[i]->name().c_str(), s,
                      static_cast<unsigned long long>(r.stream_served[s]),
                      static_cast<unsigned long long>(
                          r.stream_failures[s]));
        dump += line;
      }
    }
    WriteFileOrWarn(serve_args.dump_path, dump);
  }
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
