// §4.2 measurement: sizes of Disco's explicit-route addresses on the
// router-level Internet map, with landmarks chosen at random and shortest
// paths encoded as sequences of O(log d)-bit labels.
//
// Paper result (192,244-node CAIDA router map): maximum 10.625 bytes (less
// than one IPv6 address), 95th percentile 5 bytes, mean 2.93 bytes (less
// than one IPv4 address). The mean matters for the state bound, since many
// addresses are stored per node.
#include "bench_common.h"

#include "core/disco.h"

#include <cstdio>

#include "routing/address.h"
#include "routing/block_address.h"
#include "routing/landmarks.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("§4.2 — explicit-route address sizes on the router-level map",
         "max ≈ 10.6 B (< IPv6), p95 ≈ 5 B, mean ≈ 2.9 B (< IPv4)");
  const Graph g = MakeRouterLevel(args);
  std::printf("topology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());

  Params p;
  p.seed = args.seed;
  const LandmarkSet landmarks = SelectLandmarks(g.num_nodes(), p);
  const AddressBook book(g, landmarks);
  std::printf("landmarks: %zu\n", landmarks.count());

  std::vector<double> bytes, hops;
  bytes.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Address a = book.AddressOf(v);
    bytes.push_back(static_cast<double>(a.route_bytes()));
    hops.push_back(static_cast<double>(a.num_hops()));
  }
  PrintSummary("route bytes", bytes);
  PrintSummary("route hops", hops);
  PrintCdf("route bytes CDF", bytes, args.OutPath("addr_size_bytes"));
  std::printf("\nIPv4 address = 4 B, IPv6 address = 16 B\n");
  std::printf("paper: mean 2.93 B, p95 5 B, max 10.625 B\n");

  // The §4.2 design alternative: fixed-width hierarchical block addresses.
  // An exact (static) partition looks competitive, but the slack a dynamic
  // partition needs to absorb churn without renumbering widens it past the
  // explicit route's mean — the paper's reason for rejecting it.
  std::printf("\n[alternative O(log n) block addresses (§4.2)]\n");
  for (const int slack : {0, 1, 2}) {
    const BlockAddressing block(g, book, slack);
    std::printf("  slack=%d bits/level: %2d-bit addresses = %zu bytes "
                "fixed%s\n",
                slack, block.bits(), block.address_bytes(),
                block.slack_saturated() ? " (saturated)" : "");
  }

  // §6's operator policy: well-provisioned (high-degree) landmarks anchor
  // addresses closer to everything, shortening explicit routes.
  const LandmarkSet degree_lms = SelectDegreeBasedLandmarks(g, p);
  const AddressBook degree_book(g, degree_lms);
  std::vector<double> degree_bytes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree_bytes.push_back(
        static_cast<double>(degree_book.AddressOf(v).route_bytes()));
  }
  std::printf("\n[operator-chosen (degree-based) landmarks, §6]\n");
  PrintSummary("route bytes", degree_bytes);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
