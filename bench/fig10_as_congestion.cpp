// Fig. 10: congestion on the AS-level Internet topology — CDF over edges of
// the number of routes crossing each edge when every (sampled) node routes
// to one random destination; Disco vs shortest-path routing vs S4.
//
// Paper result: the curves are indistinguishable until the very top of the
// distribution; a small fraction (~0.05%) of edges near landmarks carry
// noticeably more load under Disco than under shortest-path routing.
#include "bench_common.h"

#include <algorithm>
#include <cstdio>

#include "sim/metrics.h"
#include "util/rng.h"

namespace disco::bench {
namespace {

// CongestionCounts routes one packet per source node; to keep the default
// run fast on the 30k-node map we sample sources (§5.1's methodology) by
// restricting to a random subset and scaling the comparison jointly.
std::vector<std::size_t> SampledCongestion(const Graph& g,
                                           const RouteFn& route,
                                           std::size_t sources,
                                           std::uint64_t seed) {
  std::vector<std::size_t> counts(g.num_edges(), 0);
  Rng rng(seed ^ 0xf16c049e5710ULL);
  for (std::size_t i = 0; i < sources; ++i) {
    const NodeId s = static_cast<NodeId>(rng.NextBelow(g.num_nodes()));
    NodeId t = s;
    while (t == s) t = static_cast<NodeId>(rng.NextBelow(g.num_nodes()));
    const Route r = route(s, t);
    for (std::size_t h = 0; h + 1 < r.path.size(); ++h) {
      // cheapest parallel edge, as PathLength costs it
      EdgeId best = kInvalidNode;
      Dist bw = kInfDist;
      for (const Neighbor& nb : g.neighbors(r.path[h])) {
        if (nb.to == r.path[h + 1] && nb.weight < bw) {
          bw = nb.weight;
          best = nb.edge;
        }
      }
      if (best != kInvalidNode) ++counts[best];
    }
  }
  return counts;
}

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 10 — congestion CDF over edges, AS-level topology",
         "curves coincide except the top ~0.05% of edges, where Disco "
         "exceeds shortest-path routing");
  const Graph g = MakeAsLevel(args);
  std::printf("topology: n=%u, m=%zu\n", g.num_nodes(), g.num_edges());

  const auto schemes = MakeSchemesOrDie(
      args.SchemesOr({"disco", "spf", "s4"}), g, args.MakeParams());

  const std::size_t sources =
      args.SamplesOr(args.quick ? 1000 : std::min<std::size_t>(
                                             g.num_nodes(), 8000));
  for (const auto& scheme : schemes) {
    const auto counts = SampledCongestion(
        g, scheme->route_fn(api::Phase::kLater), sources, args.seed);
    std::vector<double> vals(counts.begin(), counts.end());
    PrintCdf(scheme->label(), vals,
             args.OutPath("fig10_" + scheme->label()));
    // The action is in the extreme tail; print it explicitly.
    std::sort(vals.begin(), vals.end());
    std::printf("  top edges: p99.9=%.0f p99.95=%.0f max=%.0f\n",
                Percentile(vals, 0.999), Percentile(vals, 0.9995),
                vals.back());
  }
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
