// Fig. 9: scaling with network size on geometric random graphs — mean path
// stretch (left) and mean per-node state (right), n = 2k .. 16k. By
// default the paper's series: Disco and S4 stretch, Disco/NDDisco/S4
// state; --schemes=<a,b> swaps in any registered set (stretch AND state).
//
// Paper result: S4's first-packet stretch stays high (~2.5+) at every size
// while Disco's first/later and S4's later stretch hug 1; routing state for
// all three grows as ~sqrt(n log n), ordered S4 < NDDisco < Disco.
//
// --xl extends the axis past what scheme construction can reach: a
// graph-scale point (default n = 10^6) that generates the geometric
// topology once, publishes its v2 snapshot plus a spec→fingerprint ref to
// the --store, and on the next run loads the graph back as a zero-copy
// mmap view with zero generator work (the [graph] stderr counters prove
// it: warm runs show generated=0 mmap=1). A handful of spot Dijkstras
// exercise the borrowed CSR end to end; peak RSS is reported because at
// this scale memory, not time, is the capacity wall.
//
// --graph=<64-hex fingerprint> runs the normal stretch/state point on a
// stored snapshot (resolved through --store as an mmap view) instead of
// generating the topology.
#include "bench_common.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "exec/wire.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/shortest_path.h"
#include "runtime/rng_stream.h"
#include "sim/metrics.h"
#include "util/sha256.h"

namespace disco::bench {
namespace {

constexpr const char* kExtraUsage =
    "  --xl             one graph-scale point (default n=10^6): generate\n"
    "                   or mmap-load the topology, spot Dijkstras, RSS\n"
    "  --graph=<fp>     run on the stored snapshot with this 64-hex\n"
    "                   fingerprint (needs --store=) instead of generating\n";

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The spec→fingerprint ref an --xl cold run publishes: a warm run maps
// (family, n, seed) to the snapshot fingerprint without generating
// anything. Content is the 64-hex fingerprint itself.
store::ArtifactKey XlGraphRefKey(NodeId n, std::uint64_t seed) {
  char spec[96];
  std::snprintf(spec, sizeof spec, "fig09-xl:geo:n=%u:deg=8:seed=%" PRIu64,
                n, seed);
  store::ArtifactKey key;
  key.kind = "graphref";
  key.graph = Sha256HexOf(Sha256Hash(spec));
  key.scope = "fig09-xl";
  key.version = 1;
  return key;
}

int XlMain(const Args& args) {
  const NodeId n = args.NOr(1000000);
  Banner("Fig. 9 (--xl) — graph-scale point: out-of-core topology "
         "handling",
         "cold run generates and publishes the snapshot; warm run "
         "mmap-loads it with zero generator work (see the [graph] "
         "stderr counters)");

  store::ArtifactStore* const st = store::ProcessStore();
  if (st == nullptr) {
    std::fprintf(stderr,
                 "fig09 --xl needs --store=<dir> (the cold run publishes "
                 "the snapshot the warm run maps)\n");
    return 2;
  }

  std::optional<Graph> g;
  std::string fp;
  const char* mode = "cold";
  double build_s = 0;

  // Warm path: spec ref → fingerprint → mmap'd snapshot artifact.
  if (const auto ref = st->Open(XlGraphRefKey(n, args.seed));
      ref != nullptr && ref->frame_count() >= 1) {
    const auto frame = ref->frame(0);
    fp.assign(reinterpret_cast<const char*>(frame.data()), frame.size());
    if (IsGraphFingerprint(fp)) {
      const auto start = std::chrono::steady_clock::now();
      g = LoadStoredGraph(fp);
      build_s = SecondsSince(start);
      if (g) mode = "warm";
    }
  }

  if (!g) {
    const auto start = std::chrono::steady_clock::now();
    g = ConnectedGeometric(n, 8.0, args.seed);
    build_s = SecondsSince(start);
    fp = GraphFingerprintHex(*g);
    std::string err;
    if (!st->Put(GraphSnapshotKey(fp), {GraphSnapshotBytes(*g)}, &err) ||
        !st->Put(XlGraphRefKey(n, args.seed), {fp}, &err)) {
      std::fprintf(stderr, "cannot publish snapshot: %s\n", err.c_str());
      return 1;
    }
  }

  // Spot shortest-path trees: enough to touch every section of the
  // (possibly borrowed) CSR for real, cheap enough for a million nodes.
  constexpr std::size_t kSpotSources = 8;
  std::uint64_t reached = 0;
  double dist_sum = 0;
  const auto spot_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSpotSources; ++i) {
    const NodeId src = static_cast<NodeId>(
        runtime::TaskRng(args.seed, i).NextBelow(g->num_nodes()));
    const ShortestPathTree t = Dijkstra(*g, src);
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      if (t.reachable(v)) {
        ++reached;
        dist_sum += t.dist[v];
      }
    }
  }
  const double spot_s = SecondsSince(spot_start);

  std::printf("mode=%s n=%u m=%zu fingerprint=%s\n", mode, g->num_nodes(),
              g->num_edges(), fp.c_str());
  std::printf("%s: %.3f s\n",
              std::strcmp(mode, "warm") == 0 ? "mmap load" : "generate",
              build_s);
  std::printf("spot dijkstra (%zu sources): %.3f s  reached=%" PRIu64
              "  mean_dist=%.6f\n",
              kSpotSources, spot_s,
              reached, reached > 0 ? dist_sum / static_cast<double>(reached)
                                   : 0.0);
  std::printf("peak rss: %" PRIu64 " KB\n", PeakRssKb());

  char row[256];
  std::snprintf(row, sizeof row,
                "mode\tn\tm\tbuild_s\tspot_s\trss_kb\n"
                "%s\t%u\t%zu\t%f\t%f\t%" PRIu64 "\n",
                mode, g->num_nodes(), g->num_edges(), build_s, spot_s,
                PeakRssKb());
  WriteFileOrWarn(args.OutPath("fig09_scaling_xl.tsv"), row);
  return 0;
}

int Main(int argc, char** argv) {
  bool xl = false;
  std::string graph_fp;
  const Args args = Args::Parse(
      argc, argv, kExtraUsage, [&](const std::string& arg) {
        if (arg == "--xl") {
          xl = true;
          return true;
        }
        if (arg.compare(0, 8, "--graph=") == 0) {
          graph_fp = arg.substr(8);
          if (!IsGraphFingerprint(graph_fp)) {
            std::fprintf(stderr,
                         "--graph needs a 64-hex graph fingerprint\n");
            std::exit(2);
          }
          return true;
        }
        return false;
      });
  if (xl) return XlMain(args);
  Banner("Fig. 9 — mean stretch and mean state vs n (geometric graphs)",
         "S4-First stays ~2.5+; other stretch curves ≈1; state grows "
         "~sqrt(n log n) for all three");

  std::vector<NodeId> sizes = {2048, 4096, 8192, 16384};
  if (args.quick) sizes = {1024, 2048};
  if (args.n != 0) sizes = {args.n};
  // A stored snapshot is one fixed topology: a single trial whose row
  // takes its n from the loaded graph.
  if (!graph_fp.empty()) sizes = {0};
  const std::size_t pairs = args.SamplesOr(args.quick ? 150 : 500);

  // The paper's default plots stretch for Disco/S4 but state for
  // Disco/NDDisco/S4; an explicit --schemes list drives both.
  const std::vector<std::string> stretch_names =
      args.SchemesOr({"disco", "s4"});
  const std::vector<std::string> state_names =
      args.SchemesOr({"disco", "nddisco", "s4"});
  std::vector<std::string> build_names = stretch_names;
  for (const std::string& name : state_names) {
    if (std::find(build_names.begin(), build_names.end(), name) ==
        build_names.end()) {
      build_names.push_back(name);
    }
  }

  // Column headers come from registry metadata so they are printable
  // before any scheme is built.
  std::vector<std::string> columns, tsv_keys;
  for (const std::string& name : stretch_names) {
    const api::SchemeInfo* info = api::GetSchemeInfo(name);
    if (info->distinguishes_first_packet) {
      columns.push_back(info->short_name + "First");
      columns.push_back(info->short_name + "Later");
      tsv_keys.push_back(Lower(info->short_name) + "_first");
      tsv_keys.push_back(Lower(info->short_name) + "_later");
    } else {
      columns.push_back(info->short_name);
      tsv_keys.push_back(Lower(info->short_name));
    }
  }
  const std::size_t stretch_cols = columns.size();
  for (const std::string& name : state_names) {
    const api::SchemeInfo* info = api::GetSchemeInfo(name);
    columns.push_back("state:" + info->short_name);
    tsv_keys.push_back("state_" + Lower(info->short_name));
  }

  std::printf("%-8s", "n");
  for (const std::string& c : columns) std::printf(" %-12s", c.c_str());
  std::printf("\n");

  // Each size is one independent executor trial (--backend selects
  // in-process threads or worker subprocesses; each trial's own
  // construction/sampling fan-outs nest inside it either way); results are
  // printed in size order afterwards, so stdout and the TSV are
  // byte-identical no matter how many threads or workers ran. On the
  // thread backend, large sweeps run trials one at a time — concurrent
  // trials each hold a full graph plus two prewarmed tree caches, and the
  // inner fan-outs already saturate the cores — while small (--quick)
  // sweeps overlap whole trials too. Rows cross process boundaries
  // wire-encoded (doubles as bit patterns), never through text.
  struct Row {
    NodeId n = 0;
    std::vector<double> values;  // stretch means, then state means
  };
  const auto encode_row = [](const Row& row) {
    std::string out;
    exec::PutU64(&out, row.n);
    exec::PutU64(&out, row.values.size());
    for (const double v : row.values) exec::PutDouble(&out, v);
    return out;
  };
  const auto decode_row = [](const std::string& bytes) {
    exec::WireReader r(bytes);
    std::uint64_t n = 0, count = 0;
    Row row;
    bool ok = r.GetU64(&n) && r.GetU64(&count) && count <= bytes.size() / 8;
    if (ok) {
      row.n = static_cast<NodeId>(n);
      row.values.resize(static_cast<std::size_t>(count));
      for (double& v : row.values) ok = r.GetDouble(&v) && ok;
    }
    if (!ok) {
      // A malformed result must never become a silent zero-filled row in
      // the published table.
      std::fprintf(stderr, "fig09: malformed trial result (%zu bytes)\n",
                   bytes.size());
      std::exit(1);
    }
    return row;
  };
  runtime::ThreadPool serial_trials(1);
  const bool overlap_trials = sizes.back() <= 4096;
  const std::vector<Row> rows = RunTrials<Row>(
      args, sizes.size(),
      [&](std::size_t trial) {
        Graph g;
        if (graph_fp.empty()) {
          g = ConnectedGeometric(sizes[trial], 8.0, args.seed);
        } else if (auto stored = LoadStoredGraph(graph_fp)) {
          // Zero-copy view over the store's mmap; procs workers re-parse
          // this argv, so they resolve (and share) the same pages.
          g = std::move(*stored);
        } else {
          std::fprintf(stderr,
                       "no graph snapshot artifact for fingerprint %s in "
                       "this store (disco_store build publishes one)\n",
                       graph_fp.c_str());
          std::exit(2);
        }
        const Params p = args.MakeParams();
        auto schemes = MakeSchemesOrDie(build_names, g, p);
        // MakeSchemes preserves order, so look up by requested key rather
        // than instance name() (a custom-registered variant may be backed
        // by a built-in adapter).
        const auto scheme_of =
            [&](const std::string& name) -> api::RoutingScheme* {
          for (std::size_t i = 0; i < build_names.size(); ++i) {
            if (build_names[i] == name) return schemes[i].get();
          }
          return nullptr;
        };
        // The stretch samples and state pass below touch most landmark
        // trees and every vicinity; fan the Dijkstras out now instead of
        // faulting them in per route.
        for (const auto& s : schemes) s->PrewarmFor(s->AllNodes());

        StretchOptions opt;
        opt.num_pairs = pairs;
        opt.seed = args.seed;
        Row row;
        row.n = g.num_nodes();
        for (const std::string& name : stretch_names) {
          api::RoutingScheme* s = scheme_of(name);
          // Registry metadata decided the headers above; it must also
          // decide the per-row column count, or they could disagree.
          if (api::GetSchemeInfo(name)->distinguishes_first_packet) {
            row.values.push_back(Summarize(SampleStretch(
                g, s->route_fn(api::Phase::kFirst), opt)).mean);
          }
          row.values.push_back(Summarize(SampleStretch(
              g, s->route_fn(api::Phase::kLater), opt)).mean);
        }
        for (const std::string& name : state_names) {
          row.values.push_back(Summarize(scheme_of(name)->CollectState())
                                   .mean);
        }
        return row;
      },
      encode_row, decode_row, overlap_trials ? nullptr : &serial_trials);

  std::string tsv = "n";
  for (const std::string& key : tsv_keys) tsv += "\t" + key;
  tsv += "\n";
  for (const Row& row : rows) {
    std::printf("%-8u", row.n);
    for (std::size_t c = 0; c < row.values.size(); ++c) {
      std::printf(c < stretch_cols ? " %-12.3f" : " %-12.1f",
                  row.values[c]);
    }
    std::printf("\n");
    char cell[64];
    std::snprintf(cell, sizeof cell, "%u", row.n);
    tsv += cell;
    for (const double v : row.values) {
      std::snprintf(cell, sizeof cell, "\t%f", v);
      tsv += cell;
    }
    tsv += "\n";
  }
  WriteFileOrWarn(args.OutPath("fig09_scaling.tsv"), tsv);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
