// Fig. 9: scaling with network size on geometric random graphs — mean path
// stretch (left) and mean per-node state (right) for Disco, NDDisco and S4,
// n = 2k .. 16k.
//
// Paper result: S4's first-packet stretch stays high (~2.5+) at every size
// while Disco's first/later and S4's later stretch hug 1; routing state for
// all three grows as ~sqrt(n log n), ordered S4 < NDDisco < Disco.
#include "bench_common.h"

#include <cstdio>

#include "baselines/s4.h"
#include "graph/generators.h"
#include "sim/metrics.h"

namespace disco::bench {
namespace {

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 9 — mean stretch and mean state vs n (geometric graphs)",
         "S4-First stays ~2.5+; other stretch curves ≈1; state grows "
         "~sqrt(n log n) for all three");

  std::vector<NodeId> sizes = {2048, 4096, 8192, 16384};
  if (args.quick) sizes = {1024, 2048};
  if (args.n != 0) sizes = {args.n};
  const std::size_t pairs = args.SamplesOr(args.quick ? 150 : 500);

  std::printf("%-8s %-12s %-12s %-12s %-12s %-12s %-12s %-12s\n", "n",
              "DiscoFirst", "DiscoLater", "S4First", "S4Later",
              "state:Disco", "state:ND", "state:S4");

  // Each size is one independent trial dispatched over the thread pool
  // (and each trial's own construction/sampling fan-outs nest inside it);
  // results are printed in size order afterwards, so stdout and the TSV
  // are byte-identical no matter how many threads ran. Large sweeps run
  // trials one at a time — concurrent trials each hold a full graph plus
  // two prewarmed tree caches, and the inner fan-outs already saturate the
  // cores — while small (--quick) sweeps overlap whole trials too.
  struct Row {
    NodeId n = 0;
    double df = 0, dl = 0, sf = 0, sl = 0;
    double state_disco = 0, state_nd = 0, state_s4 = 0;
  };
  runtime::ThreadPool serial_trials(1);
  const bool overlap_trials = sizes.back() <= 4096;
  const std::vector<Row> rows = RunTrials<Row>(
      sizes.size(),
      [&](std::size_t trial) {
        const Graph g = ConnectedGeometric(sizes[trial], 8.0, args.seed);
        const Params p = args.MakeParams();
        Disco disco(g, p);
        S4 s4(g, p);
        // The stretch samples below touch most landmark trees; fan the
        // Dijkstras out now instead of faulting them in per route.
        disco.nd().PrewarmLandmarkTrees();
        s4.PrewarmLandmarkTrees();

        StretchOptions opt;
        opt.num_pairs = pairs;
        opt.seed = args.seed;
        Row row;
        row.n = g.num_nodes();
        row.df = Summarize(SampleStretch(
            g, [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); },
            opt)).mean;
        row.dl = Summarize(SampleStretch(
            g, [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); },
            opt)).mean;
        row.sf = Summarize(SampleStretch(
            g, [&](NodeId s, NodeId t) { return s4.RouteFirst(s, t); },
            opt)).mean;
        row.sl = Summarize(SampleStretch(
            g, [&](NodeId s, NodeId t) { return s4.RouteLater(s, t); },
            opt)).mean;

        const StateSeries st = CollectState(g, p);
        row.state_disco = Summarize(st.disco).mean;
        row.state_nd = Summarize(st.nddisco).mean;
        row.state_s4 = Summarize(st.s4).mean;
        return row;
      },
      overlap_trials ? nullptr : &serial_trials);

  std::string tsv =
      "n\tdisco_first\tdisco_later\ts4_first\ts4_later\tstate_disco\t"
      "state_nd\tstate_s4\n";
  for (const Row& row : rows) {
    std::printf("%-8u %-12.3f %-12.3f %-12.3f %-12.3f %-12.1f %-12.1f "
                "%-12.1f\n",
                row.n, row.df, row.dl, row.sf, row.sl, row.state_disco,
                row.state_nd, row.state_s4);
    char line[256];
    std::snprintf(line, sizeof line,
                  "%u\t%f\t%f\t%f\t%f\t%f\t%f\t%f\n", row.n, row.df,
                  row.dl, row.sf, row.sl, row.state_disco, row.state_nd,
                  row.state_s4);
    tsv += line;
  }
  WriteFile("fig09_scaling.tsv", tsv);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
