// Fig. 8: mean control messages per node until convergence, as a function
// of network size, for path vector, S4, NDDisco, and Disco with 1 and 3
// dissemination fingers, on G(n,m) graphs of increasing size.
//
// Paper result: path vector grows linearly in n (it was extrapolated beyond
// 512 nodes there; our simulator runs it directly); S4 and NDDisco grow as
// ~sqrt(n log n) with NDDisco slightly above S4 (larger vicinities); Disco
// adds only a small increment over NDDisco for flat-name dissemination,
// with 3 fingers marginally above 1.
//
// The DES runs are a campaign on the execution layer: every (size, series)
// pair is one CampaignSpec and all (campaign × replica) simulations fan
// across the --backend executor in a single Run call, so
// --replicas=8 --backend=procs is byte-identical to the threads run. With
// --replicas=1 and the default null scenario the output is byte-identical
// to the pre-campaign bench; --scenario=churn etc. adds re-convergence
// messaging (withdrawal cascades and triggered updates) to the counts and
// writes the reduced mean ± stddev campaign table.
#include "bench_common.h"

#include <cstdio>
#include <deque>

#include "api/schemes.h"
#include "graph/generators.h"
#include "sim/campaign.h"
#include "sim/disco_msg.h"
#include "sim/pv_sim.h"

namespace disco::bench {
namespace {

// Convergence messaging per DES protocol mode, in figure order (the
// printed/TSV headers below follow this order).
const PvMode kDesSeries[] = {PvMode::kPathVector, PvMode::kS4,
                             PvMode::kNdDisco};
const char* const kSeriesLabel[] = {"pv", "s4", "nddisco"};

int Main(int argc, char** argv) {
  CampaignArgs campaign;
  const Args args =
      Args::Parse(argc, argv, CampaignArgs::Usage(),
                  [&](const std::string& arg) {
                    return campaign.Consume(arg);
                  });
  Banner("Fig. 8 — messages/node until convergence vs network size",
         "PV linear; S4 < NDDisco (both ~sqrt-scale); Disco = NDDisco + "
         "small overlay increment (3 fingers slightly above 1)");

  std::vector<NodeId> sizes = {128, 256, 384, 512, 768, 1024};
  if (args.quick) sizes = {128, 256};
  if (args.n != 0) sizes = {args.n};

  // One campaign per (size, series); graphs live in a deque so the specs'
  // pointers stay stable. A worker process replays this same loop before
  // serving its task, so it derives identical campaigns from argv.
  std::deque<Graph> graphs;
  std::vector<CampaignSpec> campaigns;
  for (const NodeId n : sizes) {
    graphs.push_back(ConnectedGnm(n, 4ull * n, args.seed));
    for (const PvMode mode : kDesSeries) {
      CampaignSpec spec;
      spec.graph = &graphs.back();
      spec.base.mode = mode;
      spec.base.params.seed = args.seed;
      spec.scenario = campaign.scenario;
      campaigns.push_back(spec);
    }
  }

  std::vector<std::vector<ReplicaResult>> results;
  std::string error;
  if (!RunReplicas(campaigns, campaign.replicas, args.MakeExecOptions(),
                   &results, &error)) {
    std::fprintf(stderr, "campaign execution failed: %s\n", error.c_str());
    return 1;
  }

  const bool reduced = campaign.replicas > 1;
  if (reduced) {
    std::printf("campaign: %zu replicas, scenario=%s (mean over replicas; "
                "sd in the campaign TSV)\n",
                campaign.replicas, campaign.scenario.kind.c_str());
  }
  std::printf("%-8s %-14s %-14s %-14s %-16s %-16s\n", "n", "Path-vector",
              "S4", "ND-Disco", "Disco-1-Finger", "Disco-3-Finger");
  std::string tsv = reduced ? "n\tpv\tpv_sd\ts4\ts4_sd\tnddisco\t"
                              "nddisco_sd\tdisco1\tdisco3\n"
                            : "n\tpv\ts4\tnddisco\tdisco1\tdisco3\n";
  std::string campaign_tsv = CampaignTsvHeader();
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const Graph& g = graphs[si];

    MeanSd des_msgs[3];
    for (int i = 0; i < 3; ++i) {
      const auto& replicas = results[si * 3 + i];
      des_msgs[i] = ReduceMessagesPerNode(replicas);
      char label[64];
      std::snprintf(label, sizeof label, "%s-%u", kSeriesLabel[i],
                    g.num_nodes());
      campaign_tsv +=
          CampaignTsvRow(label, campaign.scenario.kind, replicas);
    }
    const double nd_msgs = des_msgs[2].mean;

    // Disco = NDDisco convergence + overlay joining/dissemination, costed
    // in underlay link messages.
    double disco_msgs[2] = {0, 0};
    const int finger_counts[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
      Params p = args.MakeParams();
      p.fingers = finger_counts[i];
      api::DiscoScheme scheme(g, p);
      const auto overlay = MeasureOverlayMessaging(g, scheme.impl());
      disco_msgs[i] = nd_msgs + static_cast<double>(overlay.total()) /
                                    static_cast<double>(g.num_nodes());
    }

    std::printf("%-8u %-14.1f %-14.1f %-14.1f %-16.1f %-16.1f\n",
                g.num_nodes(), des_msgs[0].mean, des_msgs[1].mean, nd_msgs,
                disco_msgs[0], disco_msgs[1]);
    char line[384];
    if (reduced) {
      std::snprintf(line, sizeof line,
                    "%u\t%f\t%f\t%f\t%f\t%f\t%f\t%f\t%f\n", g.num_nodes(),
                    des_msgs[0].mean, des_msgs[0].sd, des_msgs[1].mean,
                    des_msgs[1].sd, des_msgs[2].mean, des_msgs[2].sd,
                    disco_msgs[0], disco_msgs[1]);
    } else {
      std::snprintf(line, sizeof line, "%u\t%f\t%f\t%f\t%f\t%f\n",
                    g.num_nodes(), des_msgs[0].mean, des_msgs[1].mean,
                    nd_msgs, disco_msgs[0], disco_msgs[1]);
    }
    tsv += line;
  }
  WriteFileOrWarn(args.OutPath("fig08_convergence.tsv"), tsv);
  // The reduced campaign table (per-size, per-series mean ± stddev rows)
  // only exists for real campaigns; default runs write exactly the
  // pre-campaign file set.
  if (campaign.active()) {
    WriteFileOrWarn(args.OutPath("fig08_campaign.tsv"), campaign_tsv);
  }
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
