// Fig. 8: mean control messages per node until convergence, as a function
// of network size, for path vector, S4, NDDisco, and Disco with 1 and 3
// dissemination fingers, on G(n,m) graphs of increasing size.
//
// Paper result: path vector grows linearly in n (it was extrapolated beyond
// 512 nodes there; our simulator runs it directly); S4 and NDDisco grow as
// ~sqrt(n log n) with NDDisco slightly above S4 (larger vicinities); Disco
// adds only a small increment over NDDisco for flat-name dissemination,
// with 3 fingers marginally above 1.
#include "bench_common.h"

#include <cstdio>

#include "api/schemes.h"
#include "graph/generators.h"
#include "sim/disco_msg.h"
#include "sim/pv_sim.h"

namespace disco::bench {
namespace {

// Convergence messaging per DES protocol mode, in figure order (the
// printed/TSV headers below follow this order).
const PvMode kDesSeries[] = {PvMode::kPathVector, PvMode::kS4,
                             PvMode::kNdDisco};

int Main(int argc, char** argv) {
  const Args args = Args::Parse(argc, argv);
  Banner("Fig. 8 — messages/node until convergence vs network size",
         "PV linear; S4 < NDDisco (both ~sqrt-scale); Disco = NDDisco + "
         "small overlay increment (3 fingers slightly above 1)");

  std::vector<NodeId> sizes = {128, 256, 384, 512, 768, 1024};
  if (args.quick) sizes = {128, 256};
  if (args.n != 0) sizes = {args.n};

  std::printf("%-8s %-14s %-14s %-14s %-16s %-16s\n", "n", "Path-vector",
              "S4", "ND-Disco", "Disco-1-Finger", "Disco-3-Finger");
  std::string tsv = "n\tpv\ts4\tnddisco\tdisco1\tdisco3\n";
  for (const NodeId n : sizes) {
    const Graph g = ConnectedGnm(n, 4ull * n, args.seed);

    double des_msgs[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      PvConfig cfg;
      cfg.mode = kDesSeries[i];
      cfg.params.seed = args.seed;
      des_msgs[i] = SimulatePathVector(g, cfg).messages_per_node;
    }
    const double nd_msgs = des_msgs[2];

    // Disco = NDDisco convergence + overlay joining/dissemination, costed
    // in underlay link messages.
    double disco_msgs[2] = {0, 0};
    const int finger_counts[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
      Params p = args.MakeParams();
      p.fingers = finger_counts[i];
      api::DiscoScheme scheme(g, p);
      const auto overlay = MeasureOverlayMessaging(g, scheme.impl());
      disco_msgs[i] = nd_msgs + static_cast<double>(overlay.total()) /
                                    static_cast<double>(g.num_nodes());
    }

    std::printf("%-8u %-14.1f %-14.1f %-14.1f %-16.1f %-16.1f\n",
                g.num_nodes(), des_msgs[0], des_msgs[1], nd_msgs,
                disco_msgs[0], disco_msgs[1]);
    char line[256];
    std::snprintf(line, sizeof line, "%u\t%f\t%f\t%f\t%f\t%f\n",
                  g.num_nodes(), des_msgs[0], des_msgs[1], nd_msgs,
                  disco_msgs[0], disco_msgs[1]);
    tsv += line;
  }
  WriteFile(args.OutPath("fig08_convergence.tsv"), tsv);
  return 0;
}

}  // namespace
}  // namespace disco::bench

int main(int argc, char** argv) { return disco::bench::Main(argc, argv); }
