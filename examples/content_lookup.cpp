// Self-certifying names (§2): a content-centric scenario where node names
// are hashes of public keys, so a name proves ownership without any PKI —
// one of the flat-name use cases that motivates Disco (AIP, DONA, CCN).
//
// A peer-to-peer swarm of 1,024 nodes assigns each node the name
// "sha256:<hex of its 'public key'>". We look up replicas by their
// self-certifying names and show that (a) lookups route with bounded
// stretch even though names carry zero location information, and (b)
// nearby replicas are actually found nearby — the locality property that
// resolution-based designs (the paper's §2 critique) lose.
#include <cstdio>
#include <string>
#include <vector>

#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "util/sha256.h"

using namespace disco;

namespace {

std::string SelfCertifyingName(NodeId v) {
  // "Public key" stands in for a real keypair; the name is its hash.
  const Sha256Digest d = Sha256Hash("public-key-of-peer-" +
                                    std::to_string(v));
  static const char* kHex = "0123456789abcdef";
  std::string hex;
  for (int i = 0; i < 8; ++i) {  // 16 hex chars is plenty for a demo
    hex.push_back(kHex[d[i] >> 4]);
    hex.push_back(kHex[d[i] & 0xF]);
  }
  return "sha256:" + hex;
}

}  // namespace

int main() {
  const Graph g = ConnectedGeometric(1024, 8.0, 99);
  std::vector<std::string> names;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    names.push_back(SelfCertifyingName(v));
  }
  Params params;
  params.seed = 99;
  Disco router(g, params, NameTable::FromNames(names));
  std::printf("swarm: %u peers, self-certifying names like %s\n",
              g.num_nodes(), names[0].c_str());

  // A content object is replicated on several peers; a client looks up
  // each replica by name and picks the cheapest route.
  const NodeId client = 17;
  const std::vector<NodeId> replicas = {150, 480, 733, 901};
  const auto truth = Dijkstra(g, client);

  std::printf("\nclient node %u fetches from replicas:\n", client);
  double best_len = kInfDist;
  NodeId best_replica = kInvalidNode;
  for (const NodeId r : replicas) {
    const Route route = router.RouteFirst(client, r);
    std::printf("  %-24s route %.3f (shortest %.3f, stretch %.2f)\n",
                names[r].c_str(), route.length, truth.dist[r],
                truth.dist[r] > 0 ? route.length / truth.dist[r] : 1.0);
    if (route.length < best_len) {
      best_len = route.length;
      best_replica = r;
    }
  }
  std::printf("chosen replica: %s\n", names[best_replica].c_str());

  // Locality: the replica that is physically closest should also be the
  // cheapest to reach — a stretch-bounded routing layer preserves this,
  // while a remote resolution step (the §2 critique) would not.
  NodeId nearest = replicas[0];
  for (const NodeId r : replicas) {
    if (truth.dist[r] < truth.dist[nearest]) nearest = r;
  }
  std::printf("physically nearest replica: %s  %s\n",
              names[nearest].c_str(),
              nearest == best_replica
                  ? "(matches the routed choice: locality preserved)"
                  : "(differs: stretch shuffled the ordering)");
  return 0;
}
