// Quickstart: build a network, bring up Disco, and route between flat
// names.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: topology generation, protocol
// construction, name-keyed routing, the first-packet / later-packet
// distinction, and per-node state accounting.
#include <cstdio>

#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"

using namespace disco;

int main() {
  // 1. A network: 512 nodes in the plane, links between nearby nodes,
  //    link latency = distance. Any connected Graph works, including ones
  //    loaded from edge-list files (graph/io.h).
  const Graph g = ConnectedGeometric(512, 8.0, /*seed=*/42);
  std::printf("network: %u nodes, %zu links\n", g.num_nodes(),
              g.num_edges());

  // 2. Bring up Disco. Params controls the paper's constants; defaults
  //    match the published Θ(sqrt(n log n)) sizing.
  Params params;
  params.seed = 42;
  Disco router(g, params);
  std::printf("landmarks: %zu, vicinity size: %zu\n",
              router.nd().landmarks().count(),
              router.nd().vicinity_size());

  // 3. Route the first packet of a flow by *name*. The source does not
  //    know where "node-499" is; a sloppy-group contact in its vicinity
  //    supplies the address.
  const Route first = router.RouteFirstByName("node-3", "node-499");
  std::printf("\nfirst packet node-3 -> node-499: %zu hops, length %.3f\n",
              first.path.size() - 1, first.length);
  if (first.contact != kInvalidNode) {
    std::printf("  address learned from vicinity contact node-%u\n",
                first.contact);
  }

  // 4. Later packets use the handshake-optimized route (stretch ≤ 3).
  const NodeId s = *router.names().Find("node-3");
  const NodeId t = *router.names().Find("node-499");
  const Route later = router.RouteLater(s, t);
  const Dist shortest = Dijkstra(g, s).dist[t];
  std::printf("later packets: length %.3f | shortest %.3f | stretch "
              "first=%.3f later=%.3f\n",
              later.length, shortest, first.length / shortest,
              later.length / shortest);

  // 5. State stays O~(sqrt(n)) at every node.
  std::size_t max_state = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_state = std::max(max_state, router.State(v).total());
  }
  std::printf("\nmax routing-table entries at any node: %zu (vs %u for "
              "shortest-path routing)\n",
              max_state, g.num_nodes());
  return 0;
}
