// Protocol comparison: run any set of registered routing schemes side by
// side on a topology of your choice and print a compact scorecard — the
// evaluation of §5 in miniature, on your own graph.
//
//   $ ./protocol_comparison [gnm|geo|as|router] [n] [seed] [schemes]
//   $ ./protocol_comparison gnm 2048 7 disco,s4,vrr
//
// Schemes come from the registry (src/api/registry.h), so a protocol added
// there shows up here with no changes. Pass a file path as the first
// argument to load a real edge-list topology instead of a family name.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/registry.h"
#include "api/sweep.h"
#include "graph/io.h"
#include "sim/metrics.h"
#include "util/stats.h"

using namespace disco;

int main(int argc, char** argv) {
  // "2048x" as a size or seed must be a usage error, not a silently
  // truncated (or zero) value feeding a misleading scorecard.
  const auto uint_or_die = [&](const char* v,
                               const char* what) -> unsigned long long {
    char* end = nullptr;
    const unsigned long long x = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
      std::fprintf(stderr, "%s needs a non-negative integer, got \"%s\"\n",
                   what, v);
      std::exit(2);
    }
    return x;
  };
  const std::string family = argc > 1 ? argv[1] : "geo";
  const NodeId n =
      argc > 2 ? static_cast<NodeId>(uint_or_die(argv[2], "n")) : 1024;
  const std::uint64_t seed = argc > 3 ? uint_or_die(argv[3], "seed") : 1;
  const std::vector<std::string> names =
      argc > 4 ? api::SplitSchemeList(argv[4]) : api::RegisteredSchemes();

  Graph g = api::MakeSweepTopology(family, n, seed);
  if (g.num_nodes() == 0) {
    const auto loaded = LoadEdgeList(family);
    if (!loaded) {
      std::fprintf(stderr,
                   "usage: %s [gnm|geo|as|router|<edge-list-file>] [n] "
                   "[seed] [scheme,scheme,...]\n",
                   argv[0]);
      return 2;
    }
    g = *loaded;
  }
  std::printf("topology: %s, n=%u, m=%zu\n", family.c_str(), g.num_nodes(),
              g.num_edges());

  Params p;
  p.seed = seed;
  const auto schemes = api::MakeSchemes(names, g, p);
  if (schemes.empty()) {
    std::string registered;
    for (const auto& r : api::RegisteredSchemes()) {
      registered += registered.empty() ? r : "," + r;
    }
    std::fprintf(stderr, "unknown scheme (registered: %s)\n",
                 registered.c_str());
    return 2;
  }

  StretchOptions opt;
  opt.num_pairs = 500;
  opt.seed = seed;

  std::printf("\n%-22s %-12s %-12s %-12s %-12s %-12s\n", "protocol",
              "stretch.mean", "stretch.p95", "stretch.max", "state.mean",
              "state.max");
  for (const auto& scheme : schemes) {
    const Summary state = Summarize(scheme->CollectState());
    const auto print_row = [&](const std::string& row_label,
                               const RouteFn& fn) {
      const Summary st = Summarize(SampleStretch(g, fn, opt));
      std::printf("%-22s %-12.3f %-12.3f %-12.3f %-12.1f %-12.0f\n",
                  row_label.c_str(), st.mean, st.p95, st.max, state.mean,
                  state.max);
    };
    if (scheme->distinguishes_first_packet()) {
      print_row(scheme->label() + " (first pkt)",
                scheme->route_fn(api::Phase::kFirst));
      print_row(scheme->label() + " (later pkts)",
                scheme->route_fn(api::Phase::kLater));
    } else {
      print_row(scheme->label(), scheme->route_fn(api::Phase::kLater));
    }
  }
  return 0;
}
