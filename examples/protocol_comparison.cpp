// Protocol comparison: run Disco, NDDisco, S4, VRR and shortest-path
// routing side by side on a topology of your choice and print a compact
// scorecard — the evaluation of §5 in miniature, on your own graph.
//
//   $ ./protocol_comparison [gnm|geo|as|router] [n] [seed]
//
// Also demonstrates loading a real edge-list topology: pass a file path as
// the first argument instead of a family name.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/s4.h"
#include "baselines/spf.h"
#include "baselines/vrr.h"
#include "core/disco.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sim/metrics.h"
#include "util/stats.h"

using namespace disco;

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "geo";
  const NodeId n = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 1024;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 1;

  Graph g;
  if (family == "gnm") {
    g = ConnectedGnm(n, 4ull * n, seed);
  } else if (family == "geo") {
    g = ConnectedGeometric(n, 8.0, seed);
  } else if (family == "as") {
    g = AsLevelInternet(n, seed);
  } else if (family == "router") {
    g = RouterLevelInternet(n, seed);
  } else {
    const auto loaded = LoadEdgeList(family);
    if (!loaded) {
      std::fprintf(stderr,
                   "usage: %s [gnm|geo|as|router|<edge-list-file>] [n] "
                   "[seed]\n",
                   argv[0]);
      return 2;
    }
    g = *loaded;
  }
  std::printf("topology: %s, n=%u, m=%zu\n", family.c_str(), g.num_nodes(),
              g.num_edges());

  Params p;
  p.seed = seed;
  Disco disco(g, p);
  S4 s4(g, p);
  const Vrr vrr(g, p);
  ShortestPathRouting spf(g, 512);

  StretchOptions opt;
  opt.num_pairs = 500;
  opt.seed = seed;
  struct Row {
    const char* name;
    RouteFn route;
    std::function<std::size_t(NodeId)> state;
  };
  s4.ClusterSizes();
  const std::vector<Row> rows = {
      {"Disco (first pkt)",
       [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); },
       [&](NodeId v) { return disco.State(v).total(); }},
      {"Disco (later pkts)",
       [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); },
       [&](NodeId v) { return disco.State(v).total(); }},
      {"S4 (first pkt)",
       [&](NodeId s, NodeId t) { return s4.RouteFirst(s, t); },
       [&](NodeId v) { return s4.State(v).total(); }},
      {"S4 (later pkts)",
       [&](NodeId s, NodeId t) { return s4.RouteLater(s, t); },
       [&](NodeId v) { return s4.State(v).total(); }},
      {"VRR", [&](NodeId s, NodeId t) { return vrr.RoutePacket(s, t); },
       [&](NodeId v) { return vrr.State(v).total(); }},
      {"shortest-path",
       [&](NodeId s, NodeId t) { return spf.RoutePacket(s, t); },
       [&](NodeId v) { return spf.State(v).total(); }},
  };

  std::printf("\n%-20s %-12s %-12s %-12s %-12s %-12s\n", "protocol",
              "stretch.mean", "stretch.p95", "stretch.max", "state.mean",
              "state.max");
  for (const Row& row : rows) {
    const Summary st = Summarize(SampleStretch(g, row.route, opt));
    std::vector<double> state;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      state.push_back(static_cast<double>(row.state(v)));
    }
    const Summary ss = Summarize(state);
    std::printf("%-20s %-12.3f %-12.3f %-12.3f %-12.1f %-12.0f\n",
                row.name, st.mean, st.p95, st.max, ss.mean, ss.max);
  }
  return 0;
}
