// Mobility: the paper's motivating use of flat names (§2). A device keeps
// its name while its attachment point — and therefore its routing address —
// changes. With location-dependent addressing every correspondent must
// re-learn something global; with Disco the name never changes, the new
// address propagates only within the node's sloppy group, and routing keeps
// its stretch guarantee.
//
// We model a laptop ("ada-laptop") that detaches from one edge of a
// router-level network and reattaches at the far side, and show name-keyed
// flows from several correspondents before and after the move.
#include <cstdio>
#include <string>
#include <vector>

#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"

using namespace disco;

namespace {

// Rebuild the edge set with node `mobile` attached to different neighbors.
Graph Reattach(const Graph& g, NodeId mobile,
               const std::vector<NodeId>& new_neighbors) {
  std::vector<WeightedEdge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    if (we.a == mobile || we.b == mobile) continue;  // detach
    edges.push_back(we);
  }
  for (const NodeId nb : new_neighbors) edges.push_back({mobile, nb, 1.0});
  return Graph::FromEdges(g.num_nodes(), edges);
}

std::vector<std::string> MakeNames(NodeId n, NodeId mobile) {
  std::vector<std::string> names;
  for (NodeId v = 0; v < n; ++v) {
    names.push_back(v == mobile ? "ada-laptop" : DefaultName(v));
  }
  return names;
}

void Report(const char* phase, Disco& router, const Graph& g,
            const std::vector<std::string>& correspondents) {
  std::printf("\n[%s]\n", phase);
  const NodeId t = *router.names().Find("ada-laptop");
  const Address addr = router.nd().addresses().AddressOf(t);
  std::printf("  ada-laptop address: landmark node-%u + %zu-hop explicit "
              "route (%zu bytes)\n",
              addr.landmark, addr.num_hops(), addr.route_bytes());
  for (const std::string& c : correspondents) {
    const NodeId s = *router.names().Find(c);
    const Route r = router.RouteFirstByName(c, "ada-laptop");
    const Dist shortest = Dijkstra(g, s).dist[t];
    std::printf("  %-10s -> ada-laptop: %5.1f (shortest %5.1f, stretch "
                "%.2f)%s\n",
                c.c_str(), r.length, shortest,
                shortest > 0 ? r.length / shortest : 1.0,
                r.via_fallback ? "  [fallback]" : "");
  }
}

}  // namespace

int main() {
  const NodeId n = 2048;
  const Graph base = RouterLevelInternet(n, 7);
  const NodeId mobile = 100;
  const std::vector<std::string> correspondents = {"node-5", "node-900",
                                                   "node-1500"};
  Params params;
  params.seed = 7;

  // Before the move.
  Disco before(base, params, NameTable::FromNames(MakeNames(n, mobile)));
  Report("before move", before, base, correspondents);

  // The laptop reattaches across the network (new physical neighbors).
  const Graph moved = Reattach(base, mobile, {2000, 2001});
  Disco after(moved, params, NameTable::FromNames(MakeNames(n, mobile)));
  Report("after move (same name, new attachment)", after, moved,
         correspondents);

  std::printf("\nThe name 'ada-laptop' never changed; only its internal "
              "address did. Correspondents route by name with the same "
              "stretch guarantee in both positions.\n");
  return 0;
}
