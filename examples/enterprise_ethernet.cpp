// Enterprise Ethernet on flat MAC addresses — the SEATTLE scenario (§3 of
// the paper) done with guaranteed bounds. SEATTLE looks MAC addresses up
// in a one-hop DHT and then routes on shortest paths: scalable relative to
// flooding Ethernet, but still Θ(n) state per switch and unbounded
// first-packet stretch (the resolution hop). Disco routes on the MAC
// addresses themselves with O~(sqrt(n)) state and stretch ≤ 7/3.
//
// We build a two-level "campus" topology of switches, name each by a MAC
// address, and compare Disco against the SEATTLE-like model (resolution
// detour + shortest paths) and against per-switch state.
#include <cstdio>
#include <string>
#include <vector>

#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace disco;

namespace {

std::string MacAddress(Rng& rng) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>(rng.NextBelow(256)),
                static_cast<unsigned>(rng.NextBelow(256)),
                static_cast<unsigned>(rng.NextBelow(256)),
                static_cast<unsigned>(rng.NextBelow(256)),
                static_cast<unsigned>(rng.NextBelow(256)),
                static_cast<unsigned>(rng.NextBelow(256)));
  return buf;
}

}  // namespace

int main() {
  const NodeId n = 4096;
  const Graph g = RouterLevelInternet(n, 2026);  // campus-like two-level
  Rng rng(2026);
  std::vector<std::string> macs;
  macs.reserve(n);
  for (NodeId v = 0; v < n; ++v) macs.push_back(MacAddress(rng));
  std::printf("campus fabric: %u switches, %zu links; names like %s\n",
              g.num_nodes(), g.num_edges(), macs[0].c_str());

  Params params;
  params.seed = 2026;
  Disco disco(g, params, NameTable::FromNames(macs));

  // SEATTLE-like model: the first packet detours via the consistent-hash
  // resolution switch, then shortest paths — which is exactly what Disco's
  // *fallback* path does, so we can measure it directly.
  StretchOptions opt;
  opt.num_pairs = 600;
  opt.seed = 2026;
  const auto disco_first = SampleStretch(
      g, [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); }, opt);
  const auto seattle_like = SampleStretch(
      g,
      [&](NodeId s, NodeId t) {
        // resolution detour: s -> owner(h(t)) -> t over shortest paths
        const NodeId owner =
            disco.resolution().OwnerLandmark(disco.names().hash(t));
        auto to_owner = disco.nd().LandmarkTree(owner)->PathTo(s);
        std::reverse(to_owner.begin(), to_owner.end());
        auto to_t = disco.nd().LandmarkTree(owner)->PathTo(t);
        Route r;
        r.path = JoinPaths(std::move(to_owner), to_t);
        r.length = PathLength(g, r.path);
        return r;
      },
      opt);

  const Summary d = Summarize(disco_first);
  const Summary s = Summarize(seattle_like);
  std::printf("\nfirst-packet stretch (MAC-addressed flows):\n");
  std::printf("  %-28s mean=%.2f p95=%.2f max=%.2f (bounded ≤ 7)\n",
              "Disco", d.mean, d.p95, d.max);
  std::printf("  %-28s mean=%.2f p95=%.2f max=%.2f (unbounded)\n",
              "SEATTLE-like resolution", s.mean, s.p95, s.max);

  std::size_t disco_max_state = 0;
  for (NodeId v = 0; v < n; ++v) {
    disco_max_state = std::max(disco_max_state, disco.State(v).total());
  }
  std::printf("\nper-switch forwarding state:\n");
  std::printf("  %-28s %zu entries max (O~(sqrt(n)))\n", "Disco",
              disco_max_state);
  std::printf("  %-28s %u entries (one per MAC, Θ(n))\n",
              "SEATTLE-like / shortest-path", n);
  std::printf("\nSame flat MAC addresses, no location prefixes, no "
              "flooding — with guarantees SEATTLE's design cannot give.\n");
  return 0;
}
