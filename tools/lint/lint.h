// disco_lint — determinism-invariant static analysis for this repository.
//
// Every figure, sweep, and serving benchmark in this repo is required to
// be bit-identical across thread counts, executor backends, and cold/warm
// store starts; CI compares bytes, not tolerances. The sanitizers catch
// memory and race bugs, but a whole class of *determinism* bugs is
// invisible to them until a flaky diff fires: an accidental
// std::random_device, iteration over an unordered container feeding
// output, a strtoull whose end pointer is never looked at (the exact bug
// class fixed in the Args parser), ordering keyed on pointer values. This
// linter enforces those invariants statically, at every call site, on
// every build.
//
// Rules (all waiverable except `waiver` itself):
//   entropy         D1: nondeterministic entropy sources. std::random_device,
//                   std::rand/srand, the std::mt19937 family, time(0)-style
//                   calls, and wall-clock reads (`now()`) inside a statement
//                   that also touches Rng/TaskRng/seed. All randomness must
//                   flow through util/rng.h streams.
//   unordered-iter  D2: range-for or begin()/end() iteration over a
//                   std::unordered_map/unordered_set. Iteration order is a
//                   property of the standard library, not of the program;
//                   any use that can feed output must sort first or carry a
//                   waiver saying why order cannot matter.
//   strto-endptr    D3: every strto{l,ll,ul,ull,f,d,ld} call must pass a
//                   real end pointer and examine it afterwards. Passing
//                   nullptr (or never reading the end pointer) silently
//                   turns garbage into 0.
//   pointer-order   D4: no ordering or hashing keyed on pointer values:
//                   std::map/std::set keyed on a pointer type,
//                   std::hash/std::less/std::greater over pointers, or
//                   reinterpret_cast to (u)intptr_t. Addresses change run
//                   to run under ASLR.
//   relaxed-atomic  D5: std::memory_order_relaxed only in waivered
//                   stats/counter code, where the accumulation is
//                   commutative and a join orders the final read.
//   waiver          meta: malformed waivers (missing reason, unknown rule)
//                   and waivers that no longer suppress anything. Not
//                   itself waiverable — a waiver must always carry a live
//                   reason.
//
// Waiver syntax (the reason is mandatory):
//   // disco-lint: allow(<rule>[,<rule>...]): <reason>        (line or line above)
//   // disco-lint: allow-file(<rule>[,...]): <reason>         (whole file)
//
// The analysis is lexical (a real C++ tokenizer, no preprocessor or type
// checker). Unordered-container variables are tracked by declaration and
// propagated through quoted #includes of in-tree headers, so a range-for
// over `result.tables[v]` in a test is caught even though the declaration
// lives in sim/pv_sim.h. Known limits: macro bodies are not expanded, and
// aliases of unordered containers (`using M = std::unordered_map<...>`)
// are not tracked.
#pragma once

#include <string>
#include <vector>

namespace disco::lint {

struct Finding {
  std::string file;  // relative to the scan root, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
  std::string snippet;  // the offending source line, trimmed
};

struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t waivers_used = 0;
};

/// All rule identifiers accepted in waivers, sorted.
const std::vector<std::string>& RuleNames();

/// Lints `files` (paths relative to `root`, or absolute). Findings carry
/// root-relative paths.
Report LintFiles(const std::string& root, const std::vector<std::string>& files);

/// Collects .cpp/.cc/.h/.hpp files under root/<dir> for each dir, sorted.
/// A `dir` that is a single file is taken as-is.
std::vector<std::string> CollectSources(const std::string& root,
                                        const std::vector<std::string>& dirs);

/// Machine-readable report: {"version", "files_scanned", "waivers_used",
/// "findings": [{file,line,rule,message,snippet}...]} — byte-stable.
std::string ReportToJson(const Report& report);

}  // namespace disco::lint
