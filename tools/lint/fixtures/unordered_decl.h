// Lint fixture header: declares an unordered member that
// bad_unordered_iter.cpp iterates — exercises the transitive include
// propagation (same mechanism that catches `result.tables[v]` loops).
#pragma once

#include <unordered_map>

struct Holder {
  std::unordered_map<int, int> bucketed;
};
