// Lint fixture: memory_order_relaxed outside a waivered stats file that
// rule D5 (`relaxed-atomic`) must catch.
#include <atomic>

std::atomic<int> g_flag{0};

void Publish() {
  g_flag.store(1, std::memory_order_relaxed);  // finding
}

int Observe() {
  return g_flag.load(std::memory_order_relaxed);  // finding
}
