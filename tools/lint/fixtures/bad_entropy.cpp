// Lint fixture: every way of smuggling nondeterministic entropy into a
// run that rule D1 (`entropy`) must catch. Never compiled — lexed only.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned SeedFromDevice() {
  std::random_device rd;  // finding: random_device
  return rd();
}

double UniformFromEngine() {
  std::mt19937 gen(42);  // finding: banned engine
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

int LegacyRand() {
  std::srand(7);      // finding: srand
  return std::rand();  // finding: rand
}

unsigned long SeedFromClock() {
  return static_cast<unsigned long>(time(nullptr));  // finding: time()
}
