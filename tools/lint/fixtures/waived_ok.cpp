// Lint fixture: correctly waivered violations — must produce ZERO
// findings while counting every waiver as used.
// disco-lint: allow-file(relaxed-atomic): fixture counters, join-ordered
#include <atomic>
#include <cstdio>
#include <ctime>
#include <unordered_map>

std::atomic<int> g_count{0};

void CountEvent() {
  g_count.fetch_add(1, std::memory_order_relaxed);  // covered by allow-file
}

long StampLog() {
  // disco-lint: allow(entropy): wall-clock log stamp, never a seed
  return static_cast<long>(time(nullptr));
}

void DumpSorted(const std::unordered_map<int, int>& m) {
  long long sum = 0;
  // disco-lint: allow(unordered-iter): exact integer sum, order-free
  for (const auto& [k, v] : m) sum += v;
  std::printf("%lld\n", sum);
}
