// Lint fixture: ordering/hashing keyed on pointer values that rule D4
// (`pointer-order`) must catch — addresses change run to run under ASLR.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Widget {
  int id;
};

std::map<Widget*, int> g_by_address;            // finding: map on pointer
std::set<const Widget*> g_seen;                 // finding: set on pointer
std::hash<Widget*> g_hasher;                    // finding: hash on pointer

std::uintptr_t AsInteger(const Widget* w) {
  return reinterpret_cast<std::uintptr_t>(w);   // finding: pointer-to-int
}

std::map<int, Widget*> g_by_id;  // no finding: pointer value, integer key
