// Lint fixture: waiver misuse the meta rule (`waiver`) must catch — a
// missing reason, an unknown rule name, and a waiver suppressing nothing.
#include <atomic>

std::atomic<int> g_count{0};

void MissingReason() {
  // disco-lint: allow(relaxed-atomic)
  g_count.fetch_add(1, std::memory_order_relaxed);
}

void UnknownRule() {
  // disco-lint: allow(made-up-rule): not a real rule identifier
  g_count.fetch_add(1);
}

void StaleWaiver() {
  // disco-lint: allow(entropy): nothing on the next line needs this
  g_count.fetch_add(1);
}
