// Lint fixture: strto* misuse that rule D3 (`strto-endptr`) must catch —
// a null end pointer and an end pointer that is never examined.
#include <cstdlib>

unsigned long long ParseWithNull(const char* s) {
  return std::strtoull(s, nullptr, 10);  // finding: nullptr end pointer
}

double ParseAndIgnoreEnd(const char* s) {
  char* ignored_end = nullptr;
  const double v = std::strtod(s, &ignored_end);  // finding: never examined
  return v + 1.0;
}

long ParseChecked(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);  // no finding: end is checked
  if (end == s || *end != '\0') return -1;
  return v;
}
