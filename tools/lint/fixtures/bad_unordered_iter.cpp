// Lint fixture: iteration over unordered containers that rule D2
// (`unordered-iter`) must catch — range-for, explicit begin(), and a
// member declared in an included header (transitive propagation).
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "unordered_decl.h"

void DumpTable(const std::unordered_map<int, double>& m) {
  std::unordered_map<int, double> local = m;
  for (const auto& [k, v] : local) {  // finding: range-for
    std::printf("%d %f\n", k, v);
  }
}

void DumpSet(const std::unordered_set<int>& seen) {
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // finding: begin()
    std::printf("%d\n", *it);
  }
}

void DumpIncluded(const Holder& h) {
  for (const auto& [k, v] : h.bucketed) {  // finding: declared in header
    std::printf("%d %d\n", k, v);
  }
}

bool LookupOnlyIsFine(const std::unordered_map<int, double>& m, int k) {
  return m.find(k) != m.end();  // no finding: membership test, no iteration
}
