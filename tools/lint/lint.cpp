#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/json.h"

namespace disco::lint {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ lexer

enum class Tok { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct Waiver {
  int line = 0;        // line the waiver comment starts on
  bool file_level = false;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

struct FileScan {
  std::string path;  // root-relative
  std::vector<Token> tokens;
  std::vector<Waiver> waivers;
  std::vector<Finding> waiver_findings;  // malformed waiver syntax
  std::vector<std::string> includes;     // quoted #include targets
  std::set<std::string> unordered_names;
  std::vector<std::string> lines;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trimmed(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

const std::vector<std::string> kRules = {
    "entropy",       "pointer-order", "relaxed-atomic",
    "strto-endptr",  "unordered-iter", "waiver",
};

bool IsKnownRule(const std::string& r) {
  return std::find(kRules.begin(), kRules.end(), r) != kRules.end() &&
         r != "waiver";  // `waiver` findings cannot be waived
}

// Parses waiver comments. Returns false when the comment holds no
// disco-lint marker at all; malformed markers produce a `waiver` finding.
void ParseWaiverComment(const std::string& comment, int line,
                        FileScan* scan) {
  const std::size_t at = comment.find("disco-lint:");
  if (at == std::string::npos) return;
  std::string rest = Trimmed(comment.substr(at + 11));
  bool file_level = false;
  if (rest.rfind("allow-file(", 0) == 0) {
    file_level = true;
    rest = rest.substr(11);
  } else if (rest.rfind("allow(", 0) == 0) {
    rest = rest.substr(6);
  } else {
    scan->waiver_findings.push_back(
        {scan->path, line, "waiver",
         "malformed disco-lint marker (expected allow(...) or "
         "allow-file(...))",
         ""});
    return;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    scan->waiver_findings.push_back(
        {scan->path, line, "waiver", "unterminated waiver rule list", ""});
    return;
  }
  Waiver w;
  w.line = line;
  w.file_level = file_level;
  std::stringstream rules(rest.substr(0, close));
  std::string rule;
  while (std::getline(rules, rule, ',')) {
    rule = Trimmed(rule);
    if (rule.empty()) continue;
    if (!IsKnownRule(rule)) {
      scan->waiver_findings.push_back(
          {scan->path, line, "waiver",
           "waiver names unknown rule '" + rule + "'", ""});
      return;
    }
    w.rules.push_back(rule);
  }
  std::string tail = Trimmed(rest.substr(close + 1));
  if (tail.empty() || tail[0] != ':' ||
      Trimmed(tail.substr(1)).empty()) {
    scan->waiver_findings.push_back(
        {scan->path, line, "waiver",
         "waiver carries no reason (syntax: allow(<rule>): <why>)", ""});
    return;
  }
  if (w.rules.empty()) {
    scan->waiver_findings.push_back(
        {scan->path, line, "waiver", "waiver names no rule", ""});
    return;
  }
  w.reason = Trimmed(tail.substr(1));
  scan->waivers.push_back(w);
}

// Tokenizes one file: C++ tokens, comment-borne waivers, quoted includes.
// `<` and `>` are always single-char tokens (so template argument
// balancing survives `>>`); `::` and `->` are kept whole so they cannot
// be mistaken for `:` in a range-for or a stray `>`.
void Tokenize(const std::string& text, FileScan* scan) {
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = text.size();
  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? text[i + off] : '\0';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      const std::size_t eol = text.find('\n', i);
      const std::string comment =
          text.substr(i, (eol == std::string::npos ? n : eol) - i);
      ParseWaiverComment(comment, line, scan);
      i = eol == std::string::npos ? n : eol;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t stop = end == std::string::npos ? n : end + 2;
      ParseWaiverComment(text.substr(i, stop - i), line, scan);
      line += static_cast<int>(
          std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                     text.begin() + static_cast<std::ptrdiff_t>(stop),
                     '\n'));
      i = stop;
      continue;
    }
    if (c == '#') {
      // Preprocessor directive: consume the logical line (with
      // continuations), record quoted includes, emit no tokens.
      std::size_t j = i;
      std::string direct;
      while (j < n) {
        const std::size_t eol = text.find('\n', j);
        const std::size_t stop = eol == std::string::npos ? n : eol;
        direct.append(text, j, stop - j);
        if (!direct.empty() && direct.back() == '\\') {
          direct.pop_back();
          j = stop + 1;
          ++line;
          continue;
        }
        j = stop;
        break;
      }
      std::size_t inc = direct.find("include");
      if (inc != std::string::npos) {
        const std::size_t q1 = direct.find('"', inc);
        if (q1 != std::string::npos) {
          const std::size_t q2 = direct.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            scan->includes.push_back(direct.substr(q1 + 1, q2 - q1 - 1));
          }
        }
      }
      i = j;
      continue;
    }
    if (c == 'R' && peek(1) == '"') {
      // Raw string literal R"delim( ... )delim".
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = text.find(closer, p);
      const std::size_t stop =
          end == std::string::npos ? n : end + closer.size();
      line += static_cast<int>(
          std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                     text.begin() + static_cast<std::ptrdiff_t>(stop),
                     '\n'));
      scan->tokens.push_back({Tok::kString, "<raw>", line});
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      scan->tokens.push_back(
          {quote == '"' ? Tok::kString : Tok::kChar, "<lit>", line});
      i = j + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      scan->tokens.push_back({Tok::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      scan->tokens.push_back({Tok::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == ':' && peek(1) == ':') {
      scan->tokens.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      scan->tokens.push_back({Tok::kPunct, "->", line});
      i += 2;
      continue;
    }
    scan->tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
}

// ------------------------------------------------- declaration tracking

bool IsUnorderedContainer(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// Advances past a balanced <...> starting at tokens[i] == "<"; returns
// the index just after the matching ">", or `i` when unbalanced within a
// sane window (macro soup — give up silently).
std::size_t SkipTemplateArgs(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < t.size() && j < i + 400; ++j) {
    if (t[j].kind != Tok::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j + 1;
    if (t[j].text == ";") break;  // declarations never span statements
  }
  return i;
}

// Records names declared as (possibly nested) unordered containers:
//   std::unordered_map<K, V> name;
//   std::vector<std::unordered_map<K, V>> name;
//   const std::unordered_map<K, V>& name
void CollectUnorderedNames(FileScan* scan) {
  const std::vector<Token>& t = scan->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !IsUnorderedContainer(t[i].text)) {
      continue;
    }
    std::size_t j = SkipTemplateArgs(t, i + 1);
    if (j == i + 1) continue;  // no template args — not a declaration
    // Close any enclosing template layers, skip ref/ptr/const.
    while (j < t.size() &&
           (t[j].text == ">" || t[j].text == "&" || t[j].text == "*" ||
            t[j].text == "const")) {
      ++j;
    }
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;
    const std::string& name = t[j].text;
    if (j + 1 < t.size()) {
      const std::string& nxt = t[j + 1].text;
      // Declaration-ish continuations only; `(` would be a function
      // returning the container, not a variable.
      if (nxt == ";" || nxt == "=" || nxt == "{" || nxt == "," ||
          nxt == ")") {
        scan->unordered_names.insert(name);
      }
    } else {
      scan->unordered_names.insert(name);
    }
  }
}

// ------------------------------------------------------------ rule pass

struct RuleContext {
  const FileScan* scan;
  const std::set<std::string>* env;  // unordered names incl. includes
  std::vector<Finding>* findings;
};

void Emit(RuleContext* ctx, int line, const std::string& rule,
          const std::string& message) {
  std::string snippet;
  if (line >= 1 &&
      static_cast<std::size_t>(line) <= ctx->scan->lines.size()) {
    snippet = Trimmed(ctx->scan->lines[static_cast<std::size_t>(line) - 1]);
  }
  ctx->findings->push_back({ctx->scan->path, line, rule, message, snippet});
}

// Finds the matching ")" for the "(" at index i; npos-ish fallback.
std::size_t MatchParen(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Tok::kPunct) continue;
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

bool IsMemberAccess(const std::vector<Token>& t, std::size_t i) {
  return i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
}

// True when tokens[i] is `std`-qualified or unqualified (not foo::bar).
bool IsStdOrBare(const std::vector<Token>& t, std::size_t i) {
  if (IsMemberAccess(t, i)) return false;
  if (i > 0 && t[i - 1].text == "::") {
    return i > 1 && t[i - 2].text == "std";
  }
  return true;
}

// --- D1: entropy -------------------------------------------------------

const std::set<std::string> kBannedEngines = {
    "random_device", "mt19937",    "mt19937_64",       "minstd_rand",
    "minstd_rand0",  "knuth_b",    "default_random_engine",
    "ranlux24",      "ranlux24_base", "ranlux48",      "ranlux48_base",
    "random_shuffle"};

void RuleEntropy(RuleContext* ctx) {
  const std::vector<Token>& t = ctx->scan->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    if (kBannedEngines.count(s) && IsStdOrBare(t, i)) {
      Emit(ctx, t[i].line, "entropy",
           "nondeterministic or raw std engine '" + s +
               "' — all randomness must flow through util/rng.h "
               "(Rng/TaskRng)");
      continue;
    }
    if ((s == "rand" || s == "srand") && IsStdOrBare(t, i) &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      Emit(ctx, t[i].line, "entropy",
           "'" + s + "()' draws from hidden global state — use an "
           "explicitly seeded Rng");
      continue;
    }
    if (s == "time" && IsStdOrBare(t, i) && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      // time(), time(0), time(nullptr), time(NULL): a wall-clock seed.
      const std::size_t close = MatchParen(t, i + 1);
      const std::size_t args = close - (i + 2);
      if (args == 0 ||
          (args == 1 && (t[i + 2].text == "0" || t[i + 2].text == "NULL" ||
                         t[i + 2].text == "nullptr"))) {
        Emit(ctx, t[i].line, "entropy",
             "time() is a wall-clock entropy source — seeds must be "
             "explicit");
      }
    }
  }
  // Clock reads feeding a seed: `now()` in the same statement as
  // Rng/TaskRng/seed-ish identifiers. Timing measurements (no seed in
  // the statement) stay legal.
  std::size_t stmt_begin = 0;
  for (std::size_t i = 0; i <= t.size(); ++i) {
    const bool boundary =
        i == t.size() ||
        (t[i].kind == Tok::kPunct &&
         (t[i].text == ";" || t[i].text == "{" || t[i].text == "}"));
    if (!boundary) continue;
    int now_line = 0;
    bool seedish = false;
    for (std::size_t j = stmt_begin; j < i; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      if (t[j].text == "now" && j + 1 < i && t[j + 1].text == "(") {
        now_line = t[j].line;
      }
      std::string lower = t[j].text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (t[j].text == "Rng" || t[j].text == "TaskRng" ||
          lower.find("seed") != std::string::npos) {
        seedish = true;
      }
    }
    if (now_line != 0 && seedish) {
      Emit(ctx, now_line, "entropy",
           "clock read (now()) in a seed-bearing statement — seeds must "
           "not depend on wall time");
    }
    stmt_begin = i + 1;
  }
}

// --- D2: unordered-iter ------------------------------------------------

// Walks back from the token before `end` over trailing [...] index
// groups; returns the identifier that owns them, or "".
std::string TailName(const std::vector<Token>& t, std::size_t begin,
                     std::size_t end) {
  std::size_t j = end;
  while (j > begin) {
    const Token& tk = t[j - 1];
    if (tk.kind == Tok::kPunct && tk.text == "]") {
      int depth = 0;
      while (j > begin) {
        --j;
        if (t[j].text == "]") ++depth;
        if (t[j].text == "[" && --depth == 0) break;
      }
      continue;
    }
    if (tk.kind == Tok::kIdent) return tk.text;
    return "";
  }
  return "";
}

void RuleUnorderedIter(RuleContext* ctx) {
  const std::vector<Token>& t = ctx->scan->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for: for ( decl : expr )
    if (t[i].kind == Tok::kIdent && t[i].text == "for" &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      const std::size_t close = MatchParen(t, i + 1);
      std::size_t colon = close;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].kind != Tok::kPunct) continue;
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") {
          ++depth;
        }
        if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") {
          --depth;
        }
        if (t[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon != close) {
        const std::string name = TailName(t, colon + 1, close);
        if (!name.empty() && ctx->env->count(name)) {
          Emit(ctx, t[i].line, "unordered-iter",
               "range-for over unordered container '" + name +
                   "' — iteration order is stdlib-defined; sort first or "
                   "waive with why order cannot matter");
        }
      }
    }
    // Iterator access: name[...]* . begin()/end()/...
    if (t[i].kind == Tok::kIdent && ctx->env->count(t[i].text) &&
        !IsMemberAccess(t, i)) {
      std::size_t j = i + 1;
      while (j < t.size() && t[j].text == "[") {
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "[") ++depth;
          if (t[j].text == "]" && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      // Only begin() flavors: an iteration must start somewhere, while a
      // bare `.end()` is the harmless `find(x) != end()` idiom.
      if (j + 2 < t.size() && t[j].text == "." &&
          t[j + 1].kind == Tok::kIdent &&
          (t[j + 1].text == "begin" || t[j + 1].text == "cbegin" ||
           t[j + 1].text == "rbegin") &&
          t[j + 2].text == "(") {
        Emit(ctx, t[i].line, "unordered-iter",
             "iterator over unordered container '" + t[i].text +
                 "' (." + t[j + 1].text +
                 "()) — iteration order is stdlib-defined");
      }
    }
  }
}

// --- D3: strto-endptr --------------------------------------------------

bool IsStrtoName(const std::string& s) {
  if (s.rfind("strto", 0) != 0) return false;
  const std::string suffix = s.substr(5);
  return suffix == "l" || suffix == "ll" || suffix == "ul" ||
         suffix == "ull" || suffix == "f" || suffix == "d" ||
         suffix == "ld" || suffix == "imax" || suffix == "umax";
}

void RuleStrtoEndptr(RuleContext* ctx) {
  const std::vector<Token>& t = ctx->scan->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !IsStrtoName(t[i].text)) continue;
    if (!IsStdOrBare(t, i)) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
    const std::size_t close = MatchParen(t, i + 1);
    // Split top-level arguments.
    std::vector<std::pair<std::size_t, std::size_t>> args;
    std::size_t arg_begin = i + 2;
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].kind == Tok::kPunct) {
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") {
          ++depth;
        }
        if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") {
          --depth;
        }
        if (t[j].text == "," && depth == 0) {
          args.push_back({arg_begin, j});
          arg_begin = j + 1;
          continue;
        }
      }
    }
    if (arg_begin < close) args.push_back({arg_begin, close});
    if (args.size() < 2) {
      Emit(ctx, t[i].line, "strto-endptr",
           t[i].text + " without an end-pointer argument");
      continue;
    }
    const auto [eb, ee] = args[1];
    if (ee - eb == 1 &&
        (t[eb].text == "nullptr" || t[eb].text == "NULL" ||
         t[eb].text == "0")) {
      Emit(ctx, t[i].line, "strto-endptr",
           t[i].text + " called with a null end pointer — garbage "
           "input parses as 0; pass &end and check it");
      continue;
    }
    // Find the end-pointer variable (last identifier of the argument,
    // handles `&end` and `&state.end`).
    std::string endvar;
    for (std::size_t j = eb; j < ee; ++j) {
      if (t[j].kind == Tok::kIdent) endvar = t[j].text;
    }
    if (endvar.empty()) continue;  // expression — assume a wrapper checks
    bool examined = false;
    const std::size_t horizon = std::min(t.size(), close + 90);
    for (std::size_t j = close + 1; j < horizon; ++j) {
      if (t[j].kind == Tok::kIdent && t[j].text == endvar) {
        examined = true;
        break;
      }
    }
    if (!examined) {
      Emit(ctx, t[i].line, "strto-endptr",
           t[i].text + " end pointer '" + endvar +
               "' is never examined after the call");
    }
  }
}

// --- D4: pointer-order -------------------------------------------------

// True when the first top-level template argument after tokens[i] == "<"
// ends with `*` (a pointer type).
bool FirstTemplateArgIsPointer(const std::vector<Token>& t,
                               std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return false;
  int depth = 0;
  bool last_is_star = false;
  for (std::size_t j = i; j < t.size() && j < i + 200; ++j) {
    if (t[j].kind == Tok::kPunct) {
      if (t[j].text == "<" || t[j].text == "(") ++depth;
      if (t[j].text == ">" || t[j].text == ")") {
        --depth;
        if (depth == 0) return last_is_star;
      }
      if (t[j].text == "," && depth == 1) return last_is_star;
      if (t[j].text == ";") return false;
    }
    if (j > i) last_is_star = t[j].text == "*";
  }
  return false;
}

void RulePointerOrder(RuleContext* ctx) {
  const std::vector<Token>& t = ctx->scan->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    const bool ordered_container = s == "map" || s == "set" ||
                                   s == "multimap" || s == "multiset";
    const bool comparator_or_hash =
        s == "hash" || s == "less" || s == "greater";
    if ((ordered_container || comparator_or_hash) &&
        i > 0 && t[i - 1].text == "::" && i > 1 &&
        t[i - 2].text == "std" && i + 1 < t.size() &&
        FirstTemplateArgIsPointer(t, i + 1)) {
      Emit(ctx, t[i].line, "pointer-order",
           "std::" + s + " keyed on a pointer type — addresses are "
           "ASLR-dependent, so ordering/hashing by them is "
           "nondeterministic across runs");
      continue;
    }
    if (s == "reinterpret_cast" && i + 1 < t.size() &&
        t[i + 1].text == "<") {
      const std::size_t end = SkipTemplateArgs(t, i + 1);
      for (std::size_t j = i + 1; j < end; ++j) {
        if (t[j].kind == Tok::kIdent &&
            (t[j].text == "uintptr_t" || t[j].text == "intptr_t")) {
          Emit(ctx, t[i].line, "pointer-order",
               "pointer converted to integer — address-derived values "
               "must not feed ordering, hashing, or output");
          break;
        }
      }
    }
  }
}

// --- D5: relaxed-atomic ------------------------------------------------

void RuleRelaxedAtomic(RuleContext* ctx) {
  const std::vector<Token>& t = ctx->scan->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const bool spelled_enum = t[i].text == "memory_order_relaxed";
    const bool spelled_scoped =
        t[i].text == "memory_order" && i + 2 < t.size() &&
        t[i + 1].text == "::" && t[i + 2].text == "relaxed";
    if (spelled_enum || spelled_scoped) {
      Emit(ctx, t[i].line, "relaxed-atomic",
           "memory_order_relaxed outside a waivered stats/counter file — "
           "relaxed ops must never order data that reaches output");
    }
  }
}

// ------------------------------------------------------------- pipeline

std::string NormalizeSlashes(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp";
}

}  // namespace

const std::vector<std::string>& RuleNames() { return kRules; }

std::vector<std::string> CollectSources(const std::string& root,
                                        const std::vector<std::string>& dirs) {
  std::vector<std::string> out;
  for (const std::string& dir : dirs) {
    const fs::path full = fs::path(root) / dir;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      out.push_back(dir);
      continue;
    }
    if (!fs::is_directory(full, ec)) continue;
    for (fs::recursive_directory_iterator it(full, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file() || !HasSourceExtension(it->path())) {
        continue;
      }
      out.push_back(NormalizeSlashes(
          fs::relative(it->path(), root, ec).string()));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Report LintFiles(const std::string& root,
                 const std::vector<std::string>& files) {
  Report report;
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const std::string& rel : files) {
    const fs::path full =
        fs::path(rel).is_absolute() ? fs::path(rel) : fs::path(root) / rel;
    std::ifstream f(full);
    if (!f) continue;
    std::stringstream buf;
    buf << f.rdbuf();
    FileScan scan;
    scan.path = NormalizeSlashes(rel);
    const std::string text = buf.str();
    {
      std::stringstream ls(text);
      std::string ln;
      while (std::getline(ls, ln)) scan.lines.push_back(ln);
    }
    Tokenize(text, &scan);
    CollectUnorderedNames(&scan);
    scans.push_back(std::move(scan));
  }
  report.files_scanned = scans.size();

  // Resolve quoted includes to scanned files (suffix match), then
  // propagate unordered-container names transitively: a test iterating
  // `result.tables[v]` is caught even though `tables` is declared in
  // sim/pv_sim.h.
  auto resolve = [&](const std::string& inc) {
    std::vector<std::size_t> hits;
    for (std::size_t s = 0; s < scans.size(); ++s) {
      const std::string& p = scans[s].path;
      if (p == inc || (p.size() > inc.size() &&
                       p.compare(p.size() - inc.size() - 1, 1, "/") == 0 &&
                       p.compare(p.size() - inc.size(), inc.size(), inc) ==
                           0)) {
        hits.push_back(s);
      }
    }
    return hits;
  };
  std::vector<std::vector<std::size_t>> deps(scans.size());
  for (std::size_t s = 0; s < scans.size(); ++s) {
    for (const std::string& inc : scans[s].includes) {
      for (std::size_t d : resolve(NormalizeSlashes(inc))) {
        deps[s].push_back(d);
      }
    }
  }
  // Fixed-point union (the include graph is tiny).
  std::vector<std::set<std::string>> env(scans.size());
  for (std::size_t s = 0; s < scans.size(); ++s) {
    env[s] = scans[s].unordered_names;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t s = 0; s < scans.size(); ++s) {
      for (std::size_t d : deps[s]) {
        for (const std::string& name : env[d]) {
          if (env[s].insert(name).second) changed = true;
        }
      }
    }
  }

  std::vector<Finding> raw;
  for (std::size_t s = 0; s < scans.size(); ++s) {
    RuleContext ctx{&scans[s], &env[s], &raw};
    RuleEntropy(&ctx);
    RuleUnorderedIter(&ctx);
    RuleStrtoEndptr(&ctx);
    RulePointerOrder(&ctx);
    RuleRelaxedAtomic(&ctx);

    // Apply waivers: a line waiver covers its own line and the next; a
    // file waiver covers the whole file.
    for (Finding& f : raw) {
      if (f.file != scans[s].path || f.rule == "waiver") continue;
      for (Waiver& w : scans[s].waivers) {
        const bool rule_match =
            std::find(w.rules.begin(), w.rules.end(), f.rule) !=
            w.rules.end();
        if (!rule_match) continue;
        if (w.file_level || w.line == f.line || w.line + 1 == f.line) {
          w.used = true;
          f.rule.clear();  // mark suppressed
          ++report.waivers_used;
          break;
        }
      }
    }
    for (const Waiver& w : scans[s].waivers) {
      if (!w.used) {
        raw.push_back(
            {scans[s].path, w.line, "waiver",
             "waiver suppresses nothing (stale? fix the code or delete "
             "it)",
             ""});
      }
    }
    for (const Finding& f : scans[s].waiver_findings) raw.push_back(f);
  }
  for (Finding& f : raw) {
    if (!f.rule.empty()) report.findings.push_back(std::move(f));
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return report;
}

std::string ReportToJson(const Report& report) {
  json::Value root = json::Value::Object();
  root.Set("version", json::Value::Number(1));
  root.Set("files_scanned",
           json::Value::Number(static_cast<double>(report.files_scanned)));
  root.Set("waivers_used",
           json::Value::Number(static_cast<double>(report.waivers_used)));
  json::Value findings = json::Value::Array();
  for (const Finding& f : report.findings) {
    json::Value entry = json::Value::Object();
    entry.Set("file", json::Value::Str(f.file));
    entry.Set("line", json::Value::Number(f.line));
    entry.Set("rule", json::Value::Str(f.rule));
    entry.Set("message", json::Value::Str(f.message));
    entry.Set("snippet", json::Value::Str(f.snippet));
    findings.Push(std::move(entry));
  }
  root.Set("findings", std::move(findings));
  return root.Dump();
}

}  // namespace disco::lint
