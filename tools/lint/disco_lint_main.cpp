// disco_lint CLI — lints the tree (default: src/ bench/ tests/ examples/
// under --root) against the determinism rules in lint.h.
//
//   $ disco_lint --root=/path/to/repo              # human-readable, exit 1 on findings
//   $ disco_lint --root=. --json=lint.json src     # machine-readable, one dir only
//   $ disco_lint --list-rules
//
// Exit codes: 0 clean, 1 unwaivered findings, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root=<dir>] [--json=<file>] [--quiet] [--list-rules] "
      "[paths...]\n"
      "  --root=<dir>   repository root (default: .)\n"
      "  --json=<file>  write the machine-readable findings report\n"
      "  --quiet        suppress per-finding lines (summary only)\n"
      "  --list-rules   print rule identifiers and exit\n"
      "  paths          files/dirs relative to root (default: src bench "
      "tests examples)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : disco::lint::RuleNames()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (root.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (paths.empty()) paths = {"src", "bench", "tests", "examples"};

  const std::vector<std::string> files =
      disco::lint::CollectSources(root, paths);
  if (files.empty()) {
    std::fprintf(stderr, "disco_lint: no sources found under %s\n",
                 root.c_str());
    return 2;
  }
  const disco::lint::Report report = disco::lint::LintFiles(root, files);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << disco::lint::ReportToJson(report);
    if (!out.flush()) {
      std::fprintf(stderr, "disco_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }
  if (!quiet) {
    for (const disco::lint::Finding& f : report.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
      if (!f.snippet.empty()) std::printf("    %s\n", f.snippet.c_str());
    }
  }
  std::printf(
      "disco_lint: %zu file(s), %zu finding(s), %zu waiver(s) in use\n",
      report.files_scanned, report.findings.size(), report.waivers_used);
  return report.findings.empty() ? 0 : 1;
}
