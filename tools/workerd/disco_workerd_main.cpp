// disco_workerd: worker daemon for --backend=net (see exec/net_daemon.h).
#include <cstdio>
#include <cstring>
#include <string>

#include "exec/net_daemon.h"
#include "obs/trace.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: disco_workerd --listen=HOST:PORT [--trace=FILE]\n"
               "\n"
               "Worker daemon for disco's --backend=net executor. Binds\n"
               "HOST:PORT (PORT 0 = kernel-assigned; the actual endpoint\n"
               "is printed on startup) and serves coordinator connections\n"
               "until killed. Each connection spawns one worker process\n"
               "executing the argv the coordinator sends -- run only on\n"
               "trusted hosts/networks. --trace=FILE records the daemon's\n"
               "own spans to a pid-tagged sidecar next to FILE; SIGUSR1\n"
               "dumps the metrics registry to stderr.\n");
}

}  // namespace

int main(int argc, char** argv) {
  disco::exec::DaemonOptions opts;
  bool have_listen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg.rfind("--listen=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--listen="));
      if (!disco::exec::ParseHostPort(spec, &opts.host, &opts.port,
                                      /*allow_port_zero=*/true)) {
        std::fprintf(stderr,
                     "disco_workerd: bad --listen value \"%s\" "
                     "(want host:port)\n",
                     spec.c_str());
        return 2;
      }
      have_listen = true;
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      const std::string path = arg.substr(std::strlen("--trace="));
      if (path.empty()) {
        std::fprintf(stderr, "disco_workerd: --trace needs a file path\n");
        return 2;
      }
      // The daemon is never the merge point — its coordinator is — so it
      // always writes a pid-tagged sidecar.
      disco::obs::MarkTraceSidecarMode();
      disco::obs::ConfigureTracing(path);
      continue;
    }
    std::fprintf(stderr, "disco_workerd: unknown argument \"%s\"\n",
                 arg.c_str());
    PrintUsage(stderr);
    return 2;
  }
  if (!have_listen) {
    PrintUsage(stderr);
    return 2;
  }
  return disco::exec::RunWorkerDaemon(opts);
}
