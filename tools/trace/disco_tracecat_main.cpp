// disco_tracecat: inspect the Chrome trace_event files the span tracer
// writes (src/obs/trace.h). Subcommands:
//
//   validate <file>...         parse each file and check B/E nesting per
//                              (pid,tid); exits non-zero on the first bad
//                              file, naming it and the violation
//   merge <file>... --out=<f>  time-order every event from every input
//                              into one timeline (what the driver does
//                              with worker sidecars at flush)
//   summary <file>...          per-span-name count / total_ms / p95_ms
//                              table over the merged inputs
//
// All three accept any Chrome trace with a traceEvents array of B/E/i
// events, not just our own output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/tracefile.h"
#include "util/stats.h"

namespace {

using disco::obs::TraceDoc;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: disco_tracecat <command> [args]\n"
      "  validate <file>...          check parse + span nesting\n"
      "  merge --out=<f> <file>...   merge traces into one timeline\n"
      "  summary <file>...           per-span count/total/p95 table\n"
      "  --help                      this message\n");
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return f.good() || f.eof();
}

// Loads and parses one trace file; prints the failure and returns false
// when it cannot be used.
bool LoadTrace(const std::string& path, TraceDoc* doc) {
  std::string text;
  if (!ReadWholeFile(path, &text)) {
    std::fprintf(stderr, "disco_tracecat: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!disco::obs::ParseTraceJson(text, doc, &error)) {
    std::fprintf(stderr, "disco_tracecat: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

int RunValidate(const std::vector<std::string>& files) {
  for (const std::string& path : files) {
    TraceDoc doc;
    if (!LoadTrace(path, &doc)) return 1;
    std::string error;
    if (!disco::obs::ValidateTrace(doc, &error)) {
      std::fprintf(stderr, "disco_tracecat: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("%s: ok (%zu events", path.c_str(), doc.events.size());
    if (doc.dropped != 0) {
      std::printf(", %llu dropped",
                  static_cast<unsigned long long>(doc.dropped));
    }
    std::printf(")\n");
  }
  return 0;
}

int RunMerge(const std::string& out_path,
             const std::vector<std::string>& files) {
  std::vector<TraceDoc> docs(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!LoadTrace(files[i], &docs[i])) return 1;
  }
  const TraceDoc merged = disco::obs::MergeTraceDocs(docs);
  if (!disco::WriteFile(out_path, disco::obs::TraceJson(merged))) {
    std::fprintf(stderr, "disco_tracecat: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%s: %zu events from %zu file(s)\n", out_path.c_str(),
              merged.events.size(), files.size());
  return 0;
}

int RunSummary(const std::vector<std::string>& files) {
  std::vector<TraceDoc> docs(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!LoadTrace(files[i], &docs[i])) return 1;
  }
  std::fputs(
      disco::obs::SummarizeTrace(disco::obs::MergeTraceDocs(docs)).c_str(),
      stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(stdout);
    return 0;
  }
  std::string out_path;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
      if (out_path.empty()) {
        std::fprintf(stderr, "disco_tracecat: --out needs a file path\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "disco_tracecat: unknown flag \"%s\"\n",
                   arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "disco_tracecat: %s needs at least one file\n",
                 cmd.c_str());
    return 2;
  }
  if (cmd == "validate") return RunValidate(files);
  if (cmd == "merge") {
    if (out_path.empty()) {
      std::fprintf(stderr, "disco_tracecat: merge needs --out=<file>\n");
      return 2;
    }
    return RunMerge(out_path, files);
  }
  if (cmd == "summary") return RunSummary(files);
  std::fprintf(stderr, "disco_tracecat: unknown command \"%s\"\n",
               cmd.c_str());
  PrintUsage(stderr);
  return 2;
}
