#!/usr/bin/env bash
# CI smoke for the artifact store tier, end to end through the binaries:
#   1. a storeless bench run (the byte-level reference),
#   2. `disco_store build` prebuilding the same topology's landmark trees,
#   3. the same bench with --store= must print byte-identical stdout and
#      TSVs while performing ZERO landmark Dijkstras (stderr counter),
#   4. a cold run against an *empty* store must write artifacts back, and
#      a second run must then load them all (write-back tier contract),
#   5. `disco_store verify` must pass and `gc` must be clean.
#   usage: store_smoke.sh <path-to-disco_store> <path-to-fig04_gnm1024>
set -euo pipefail

STORE_BIN="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
BENCH_BIN="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
dir="$(mktemp -d)"
cleanup() { cd / && rm -rf "$dir"; }
trap cleanup EXIT
cd "$dir"

bench_flags=(--quick --schemes=disco --seed=5)

# 1. Reference run, no store anywhere.
"$BENCH_BIN" "${bench_flags[@]}" --out="$dir/cold" \
    > "$dir/cold.txt" 2> "$dir/cold.err"

# 2. Prebuild: same topology family/size policy/seed as the bench.
"$STORE_BIN" build --store="$dir/store" --topo=gnm --quick --seed=5 \
    > "$dir/build.txt" 2>/dev/null
grep -q 'landmarks=' "$dir/build.txt"

# 3. Warm run: byte-identical output, zero Dijkstras.
"$BENCH_BIN" "${bench_flags[@]}" --store="$dir/store" --out="$dir/warm" \
    > "$dir/warm.txt" 2> "$dir/warm.err"
if ! cmp "$dir/cold.txt" "$dir/warm.txt"; then
  echo "store_smoke: warm-store stdout differs from the storeless run" >&2
  exit 1
fi
for f in "$dir"/cold/*.tsv; do
  if ! cmp "$f" "$dir/warm/$(basename "$f")"; then
    echo "store_smoke: warm-store TSV $(basename "$f") differs" >&2
    exit 1
  fi
done
if ! grep -q 'dijkstra=0 ' "$dir/warm.err"; then
  echo "store_smoke: warm run still ran landmark Dijkstras:" >&2
  cat "$dir/warm.err" >&2
  exit 1
fi
if grep -q ' disk=0 ' "$dir/warm.err"; then
  echo "store_smoke: warm run loaded nothing from the store:" >&2
  cat "$dir/warm.err" >&2
  exit 1
fi

# 4. Write-back: a cold run against an empty store populates it...
"$BENCH_BIN" "${bench_flags[@]}" --store="$dir/store2" --out="$dir/wb1" \
    > "$dir/wb1.txt" 2> "$dir/wb1.err"
cmp "$dir/cold.txt" "$dir/wb1.txt"
if grep -q 'writeback=0$' "$dir/wb1.err"; then
  echo "store_smoke: cold store run wrote nothing back:" >&2
  cat "$dir/wb1.err" >&2
  exit 1
fi
# ...and the next run resolves everything from it.
"$BENCH_BIN" "${bench_flags[@]}" --store="$dir/store2" --out="$dir/wb2" \
    > "$dir/wb2.txt" 2> "$dir/wb2.err"
cmp "$dir/cold.txt" "$dir/wb2.txt"
if ! grep -q 'dijkstra=0 ' "$dir/wb2.err"; then
  echo "store_smoke: run after write-back still ran Dijkstras:" >&2
  cat "$dir/wb2.err" >&2
  exit 1
fi

# 5. Store hygiene: verify passes, ls sees artifacts, gc removes nothing
#    it should not.
"$STORE_BIN" verify --store="$dir/store" > "$dir/verify.txt"
grep -q ' 0 corrupt' "$dir/verify.txt"
"$STORE_BIN" ls --store="$dir/store" > "$dir/ls.txt"
grep -q 'ltree' "$dir/ls.txt"
"$STORE_BIN" gc --store="$dir/store" > "$dir/gc.txt"
"$STORE_BIN" verify --store="$dir/store" > "$dir/verify2.txt"
grep -q ' 0 corrupt' "$dir/verify2.txt"

trees=$(grep -c 'ltree' "$dir/ls.txt" || true)
echo "store_smoke OK: $trees tree artifacts, warm run byte-identical with 0 Dijkstras"
