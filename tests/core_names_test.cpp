#include "core/names.h"

#include <gtest/gtest.h>

namespace disco {
namespace {

TEST(NameTable, DefaultNames) {
  const NameTable t = NameTable::Default(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.name(0), "node-0");
  EXPECT_EQ(t.name(4), "node-4");
}

TEST(NameTable, HashesMatchHashName) {
  const NameTable t = NameTable::Default(10);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(t.hash(v), HashName(t.name(v)));
  }
}

TEST(NameTable, FindRoundTrip) {
  const NameTable t = NameTable::Default(100);
  for (NodeId v = 0; v < 100; v += 9) {
    const auto found = t.Find(t.name(v));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  }
  EXPECT_FALSE(t.Find("not-a-node").has_value());
}

TEST(NameTable, CustomFlatNames) {
  // Names are arbitrary bit strings: DNS-ish, MAC-ish, key-hash-ish.
  const NameTable t = NameTable::FromNames(
      {"printer.floor3.example.com", "02:42:ac:11:00:02",
       "sha256:9f86d081884c7d659a2feaa0c55ad015"});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(*t.Find("02:42:ac:11:00:02"), 1u);
  EXPECT_NE(t.hash(0), t.hash(1));
}

TEST(NameTable, HashesVectorExposed) {
  const NameTable t = NameTable::Default(7);
  ASSERT_EQ(t.hashes().size(), 7u);
  EXPECT_EQ(t.hashes()[3], t.hash(3));
}

}  // namespace
}  // namespace disco
