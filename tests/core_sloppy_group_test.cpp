#include "core/sloppy_group.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "routing/params.h"
#include "util/hashring.h"

namespace disco {
namespace {

TEST(SloppyGroups, ExactNGivesUniformBits) {
  const NameTable names = NameTable::Default(1024);
  const SloppyGroups groups(names, 1024);
  for (NodeId v = 0; v < 1024; ++v) {
    EXPECT_EQ(groups.bits_of(v), SloppyGroupBits(1024.0));
  }
}

TEST(SloppyGroups, GroupOfMatchesHashPrefix) {
  const NameTable names = NameTable::Default(1024);
  const SloppyGroups groups(names, 1024);
  for (NodeId v = 0; v < 1024; v += 37) {
    EXPECT_EQ(groups.group_of(v),
              GroupId(names.hash(v), groups.bits_of(v)));
  }
}

TEST(SloppyGroups, StoresIsSymmetricWithUniformBits) {
  const NameTable names = NameTable::Default(512);
  const SloppyGroups groups(names, 512);
  for (NodeId a = 0; a < 64; ++a) {
    for (NodeId b = 0; b < 64; ++b) {
      EXPECT_EQ(groups.Stores(a, b), groups.Stores(b, a));
    }
  }
}

TEST(SloppyGroups, MembersPartitionTheNetwork) {
  const NameTable names = NameTable::Default(2048);
  const SloppyGroups groups(names, 2048);
  std::set<NodeId> covered;
  std::set<std::uint64_t> gids;
  for (NodeId v = 0; v < 2048; ++v) gids.insert(groups.group_of(v));
  std::size_t total = 0;
  for (NodeId v = 0; v < 2048; ++v) {
    if (covered.count(v)) continue;
    const auto members = groups.GroupMembers(v);
    total += members.size();
    for (const NodeId m : members) {
      EXPECT_TRUE(covered.insert(m).second) << "node in two groups";
      EXPECT_EQ(groups.group_of(m), groups.group_of(v));
    }
  }
  EXPECT_EQ(total, 2048u);
  EXPECT_EQ(gids.size(), 1u << SloppyGroupBits(2048.0));
}

TEST(SloppyGroups, StoredAddressCountEqualsGroupSize) {
  const NameTable names = NameTable::Default(1024);
  const SloppyGroups groups(names, 1024);
  for (NodeId v = 0; v < 1024; v += 101) {
    EXPECT_EQ(groups.StoredAddressCount(v),
              groups.GroupMembers(v).size());
    EXPECT_EQ(groups.StoredAddresses(v).size(),
              groups.StoredAddressCount(v));
  }
}

TEST(SloppyGroups, GroupSizesNearExpectation) {
  const NodeId n = 16384;
  const NameTable names = NameTable::Default(n);
  const SloppyGroups groups(names, n);
  const int bits = SloppyGroupBits(n);
  const double expected = static_cast<double>(n) / (1 << bits);
  for (NodeId v = 0; v < n; v += 997) {
    const double size = static_cast<double>(groups.StoredAddressCount(v));
    EXPECT_GT(size, expected * 0.7);
    EXPECT_LT(size, expected * 1.3);
  }
}

TEST(SloppyGroups, SmallNMeansOneGroup) {
  const NameTable names = NameTable::Default(16);
  const SloppyGroups groups(names, 16);
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(groups.bits_of(v), 0);
    EXPECT_EQ(groups.StoredAddressCount(v), 16u);
  }
}

TEST(SloppyGroups, EstimateErrorWithinTwoKeepsOverlap) {
  // Estimates within a factor of 2 differ by at most one bit, so two nodes
  // in the same "true" group still mutually store each other when their
  // prefixes agree on the larger k — the §4.4 sloppiness argument.
  const NodeId n = 4096;
  const NameTable names = NameTable::Default(n);
  std::vector<double> estimates(n);
  for (NodeId v = 0; v < n; ++v) {
    estimates[v] = (v % 2 == 0) ? n * 0.75 : n * 1.4;  // within 2x overall
  }
  const SloppyGroups groups(names, estimates);
  for (NodeId v = 0; v < 32; ++v) {
    for (NodeId w = 0; w < 32; ++w) {
      EXPECT_LE(std::abs(groups.bits_of(v) - groups.bits_of(w)), 1);
    }
  }
}

TEST(SloppyGroups, FindContactPrefersLongestPrefix) {
  const NodeId n = 1024;
  const Graph g = ConnectedGnm(n, 4 * n, 3);
  const NameTable names = NameTable::Default(g.num_nodes());
  const SloppyGroups groups(names, g.num_nodes());
  const Vicinity vic(0, KNearest(g, 0, 85));
  for (NodeId t = 500; t < 520; ++t) {
    const auto w = groups.FindContact(vic, t);
    ASSERT_TRUE(w.has_value());
    const int got = CommonPrefixLength(names.hash(*w), names.hash(t));
    for (const NearNode& m : vic.members()) {
      EXPECT_LE(CommonPrefixLength(names.hash(m.node), names.hash(t)), got);
    }
  }
}

class GroupVicinityIntersection
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupVicinityIntersection, EveryVicinityMeetsEveryGroup) {
  // The w.h.p. core of Theorem 1: |V(s)| = Θ(sqrt(n log n)) and groups of
  // Θ(sqrt(n) log n) nodes must intersect, or first-packet routing falls
  // back. Verify exhaustively at n=1024 over sampled sources.
  const std::uint64_t seed = GetParam();
  const NodeId n = 1024;
  const Graph g = ConnectedGnm(n, 4 * n, seed);
  const NameTable names = NameTable::Default(g.num_nodes());
  const SloppyGroups groups(names, g.num_nodes());
  const std::size_t k = VicinitySize(g.num_nodes());

  std::set<std::uint64_t> all_groups;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    all_groups.insert(groups.group_of(v));
  }
  for (NodeId s = 0; s < g.num_nodes(); s += 83) {
    const Vicinity vic(s, KNearest(g, s, k));
    std::set<std::uint64_t> seen;
    for (const NearNode& m : vic.members()) {
      seen.insert(groups.group_of(m.node));
    }
    EXPECT_EQ(seen, all_groups) << "source " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupVicinityIntersection,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace disco
