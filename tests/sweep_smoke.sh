#!/usr/bin/env bash
# CI smoke for the sharded sweep driver: a 2-shard mini-grid, merged, must
# be byte-identical to the same grid run unsharded in one process.
#   usage: sweep_smoke.sh <path-to-disco_sweep>
set -euo pipefail

BIN="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
dir="$(mktemp -d)"
cleanup() { cd / && rm -rf "$dir"; }
trap cleanup EXIT
cd "$dir"

"$BIN" --quick --out="$dir/single" > /dev/null
"$BIN" --quick --shard=0/2 --out="$dir/sharded" > /dev/null
"$BIN" --quick --shard=1/2 --out="$dir/sharded" > /dev/null
"$BIN" --merge --out="$dir/sharded" > /dev/null

if ! cmp "$dir/single/sweep.tsv" "$dir/sharded/sweep.tsv"; then
  echo "sweep_smoke: merged shards differ from the unsharded run" >&2
  exit 1
fi
rows=$(grep -cv -e '^#' -e '^cell	' "$dir/single/sweep.tsv")
echo "sweep_smoke OK: $rows cells, merge byte-identical"
