// The serving layer's determinism contracts: workload streams are pure
// functions of (spec, graph, seed) and independent of everything else;
// histogram merging is exactly bucket addition, so merged counts are
// invariant under how samples were partitioned across threads; and
// ServeWorkload's deterministic outputs (served/failure tallies) are
// thread-count invariant even though its timings are not.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators.h"
#include "serve/counters.h"
#include "serve/latency_histogram.h"
#include "serve/workload.h"

namespace disco::serve {
namespace {

Graph TestGraph() { return ConnectedGnm(256, 1024, 11); }

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.streams = 8;
  spec.queries_per_stream = 100;
  spec.flash = true;
  spec.churn = true;
  return spec;
}

TEST(ServeWorkload, BuildIsDeterministic) {
  const Graph g = TestGraph();
  const Workload a = Workload::Build(SmallSpec(), g, 5);
  const Workload b = Workload::Build(SmallSpec(), g, 5);
  EXPECT_EQ(a.FingerprintHex(), b.FingerprintHex());
  EXPECT_EQ(a.DumpTsv(), b.DumpTsv());
  for (std::size_t s = 0; s < a.streams(); ++s) {
    const auto qa = a.Stream(s);
    const auto qb = b.Stream(s);
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t i = 0; i < qa.size(); ++i) {
      EXPECT_EQ(qa[i].src, qb[i].src);
      EXPECT_EQ(qa[i].dst, qb[i].dst);
      EXPECT_EQ(qa[i].phase, qb[i].phase);
      EXPECT_EQ(qa[i].dst_departed, qb[i].dst_departed);
    }
  }
}

TEST(ServeWorkload, SeedChangesTheStream) {
  const Graph g = TestGraph();
  const Workload a = Workload::Build(SmallSpec(), g, 5);
  const Workload b = Workload::Build(SmallSpec(), g, 6);
  EXPECT_NE(a.FingerprintHex(), b.FingerprintHex());
}

TEST(ServeWorkload, PhaseScheduleAndShape) {
  const Graph g = TestGraph();
  const Workload w = Workload::Build(SmallSpec(), g, 5);
  ASSERT_EQ(w.phases().size(), 3u);
  EXPECT_EQ(w.phases()[0], PhaseKind::kSteady);
  EXPECT_EQ(w.phases()[1], PhaseKind::kFlash);
  EXPECT_EQ(w.phases()[2], PhaseKind::kChurn);
  EXPECT_EQ(w.queries_per_stream(), 300u);
  EXPECT_EQ(w.total_queries(), 8u * 300u);
  const auto stream = w.Stream(0);
  ASSERT_EQ(stream.size(), 300u);
  // Phases appear in schedule order, 100 queries each.
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(stream[i].phase, w.phases()[i / 100]);
  }
}

TEST(ServeWorkload, SourcesDifferFromDestinations) {
  const Graph g = TestGraph();
  const Workload w = Workload::Build(SmallSpec(), g, 5);
  for (std::size_t s = 0; s < w.streams(); ++s) {
    for (const Query& q : w.Stream(s)) {
      EXPECT_NE(q.src, q.dst);
      EXPECT_LT(q.src, g.num_nodes());
      EXPECT_LT(q.dst, g.num_nodes());
    }
  }
}

TEST(ServeWorkload, ZipfSkewsDestinations) {
  const Graph g = TestGraph();
  WorkloadSpec spec;
  spec.streams = 8;
  spec.queries_per_stream = 2000;
  spec.zipf = 0.99;
  const Workload w = Workload::Build(spec, g, 5);
  std::map<NodeId, std::size_t> hits;
  for (std::size_t s = 0; s < w.streams(); ++s) {
    for (const Query& q : w.Stream(s)) ++hits[q.dst];
  }
  std::size_t max_hits = 0;
  for (const auto& [dst, count] : hits) max_hits = std::max(max_hits, count);
  const double uniform_share =
      static_cast<double>(w.total_queries()) / g.num_nodes();
  // The head of a 0.99-skew Zipf over 256 destinations draws an order of
  // magnitude more than the uniform share.
  EXPECT_GT(static_cast<double>(max_hits), 8 * uniform_share);
}

TEST(ServeWorkload, ChurnMarksOnlyDepartedDestinationsInChurnPhase) {
  const Graph g = TestGraph();
  const Workload w = Workload::Build(SmallSpec(), g, 5);
  std::size_t departed_queries = 0;
  for (std::size_t s = 0; s < w.streams(); ++s) {
    for (const Query& q : w.Stream(s)) {
      if (q.phase != PhaseKind::kChurn) {
        EXPECT_FALSE(q.dst_departed);
      } else {
        EXPECT_EQ(q.dst_departed, w.departed(q.dst));
        departed_queries += q.dst_departed ? 1 : 0;
      }
    }
  }
  // 5% churn over 256 nodes leaves some departed destinations in a
  // 2,400-query churn phase (deterministic for this seed).
  EXPECT_GT(departed_queries, 0u);
}

TEST(ServeHistogram, QuantilesOfKnownSample) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v * 1000);  // 1..1000us
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max_ns(), 1000000u);
  // Log-linear buckets guarantee ~1.6% relative accuracy.
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.50)), 500e3,
              500e3 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.99)), 990e3,
              990e3 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.999)), 999e3,
              999e3 * 0.02);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1000000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 500500.0);
}

TEST(ServeHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(63);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 63u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(ServeHistogram, MergeIsPartitionInvariant) {
  // The same 10,000 samples split across 1, 3, and 7 "threads" must merge
  // to identical counts, sums, and quantiles.
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(x % 5000000);
  }
  LatencyHistogram reference;
  for (const std::uint64_t v : samples) reference.Record(v);

  for (const std::size_t parts : {1u, 3u, 7u}) {
    std::vector<LatencyHistogram> shards(parts);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      shards[i % parts].Record(samples[i]);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram& s : shards) merged.Merge(s);
    EXPECT_EQ(merged.count(), reference.count());
    EXPECT_EQ(merged.sum_ns(), reference.sum_ns());
    EXPECT_EQ(merged.max_ns(), reference.max_ns());
    for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(merged.ValueAtQuantile(q), reference.ValueAtQuantile(q))
          << "q=" << q << " parts=" << parts;
    }
  }
}

TEST(ServeHistogram, SaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  h.Record(~0ull);  // absurd latency clamps into the last bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), ~0ull);  // capped at the observed max
}

// A deterministic fake route function: fails for destinations divisible
// by 7, succeeds otherwise. Purity mirrors the RoutingScheme contract.
Route FakeRoute(NodeId s, NodeId t) {
  Route r;
  if (t % 7 == 0) return r;  // empty path = failure
  r.path = {s, t};
  r.length = 1.0;
  return r;
}

TEST(ServeServer, DeterministicTalliesAreThreadCountInvariant) {
  const Graph g = TestGraph();
  const Workload w = Workload::Build(SmallSpec(), g, 5);
  std::vector<std::vector<Query>> streams;
  for (std::size_t s = 0; s < w.streams(); ++s) {
    streams.push_back(w.Stream(s));
  }
  ServeResult reference;
  for (const int threads : {1, 2, 4, 8}) {
    ServeOptions opts;
    opts.threads = threads;
    const ServeResult r = ServeWorkload(FakeRoute, w, streams, opts);
    EXPECT_EQ(r.served, w.total_queries());
    EXPECT_EQ(r.latency.count() + [&] {
      std::uint64_t departed = 0;
      for (const auto& stream : streams) {
        for (const Query& q : stream) departed += q.dst_departed ? 1 : 0;
      }
      return departed;
    }(), r.served);
    if (threads == 1) {
      reference = r;
      EXPECT_GT(r.failures, 0u);
      continue;
    }
    EXPECT_EQ(r.served, reference.served);
    EXPECT_EQ(r.failures, reference.failures);
    EXPECT_EQ(r.stream_served, reference.stream_served);
    EXPECT_EQ(r.stream_failures, reference.stream_failures);
    EXPECT_EQ(r.latency.count(), reference.latency.count());
  }
  // The live counters saw every query of the last run.
  EXPECT_EQ(Counters().queries.Value(), w.total_queries());
  EXPECT_EQ(Counters().failures.Value(), reference.failures);
  EXPECT_EQ(Counters().active_workers.Value(), 0);
}

}  // namespace
}  // namespace disco::serve
