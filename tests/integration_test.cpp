// End-to-end checks of the full Disco stack against S4, VRR and
// shortest-path routing on all four topology families of §5.1 —
// the invariants behind every figure, at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/s4.h"
#include "baselines/spf.h"
#include "baselines/vrr.h"
#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace disco {
namespace {

enum class Family { kGnm, kGeometric, kAsLevel, kRouterLevel };

Graph MakeFamily(Family f, NodeId n, std::uint64_t seed) {
  switch (f) {
    case Family::kGnm:
      return ConnectedGnm(n, 4 * n, seed);
    case Family::kGeometric:
      return ConnectedGeometric(n, 8.0, seed);
    case Family::kAsLevel:
      return AsLevelInternet(n, seed);
    case Family::kRouterLevel:
      return RouterLevelInternet(n, seed);
  }
  return Graph();
}

class FullStack : public ::testing::TestWithParam<Family> {
 protected:
  static constexpr NodeId kN = 512;
  static constexpr std::uint64_t kSeed = 4242;
};

TEST_P(FullStack, DiscoRoutesEverywhereWithBoundedStretch) {
  const Graph g = MakeFamily(GetParam(), kN, kSeed);
  Params p;
  p.seed = kSeed;
  Disco disco(g, p);

  StretchOptions opt;
  opt.num_pairs = 300;
  opt.seed = kSeed;
  std::vector<StretchSample> details;
  const auto first = SampleStretch(
      g, [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); }, opt,
      &details);
  for (const auto& d : details) EXPECT_FALSE(d.failed);
  ASSERT_FALSE(first.empty());
  const Summary s = Summarize(first);
  EXPECT_LE(s.max, 7.0 + 1e-9);
  EXPECT_LT(s.mean, 2.5);

  const auto later = SampleStretch(
      g, [&](NodeId s2, NodeId t2) { return disco.RouteLater(s2, t2); },
      opt);
  EXPECT_LE(Summarize(later).max, 3.0 + 1e-9);
}

TEST_P(FullStack, StateOrderingDiscoBalancedVrrSkewed) {
  const Graph g = MakeFamily(GetParam(), kN, kSeed + 1);
  Params p;
  p.seed = kSeed + 1;
  Disco disco(g, p);
  const Vrr vrr(g, p);

  std::vector<double> disco_state, vrr_state;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    disco_state.push_back(static_cast<double>(disco.State(v).total()));
    vrr_state.push_back(static_cast<double>(vrr.State(v).total()));
  }
  const Summary ds = Summarize(disco_state);
  const Summary vs = Summarize(vrr_state);
  // Disco's state distribution is tight; VRR's tail is long.
  EXPECT_LT(ds.max / ds.mean, 2.0);
  EXPECT_GT(vs.max / vs.mean, 3.0);
  // Disco stays well below the linear baseline at this size.
  const ShortestPathRouting spf(g);
  EXPECT_LT(ds.max, static_cast<double>(spf.State(0).total()) * 1.5);
}

TEST_P(FullStack, LaterPacketsBeatFirstOnAverage) {
  const Graph g = MakeFamily(GetParam(), kN, kSeed + 2);
  Params p;
  p.seed = kSeed + 2;
  Disco disco(g, p);
  StretchOptions opt;
  opt.num_pairs = 200;
  opt.seed = kSeed;
  const double mean_first = Summarize(SampleStretch(
      g, [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); },
      opt)).mean;
  const double mean_later = Summarize(SampleStretch(
      g, [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); },
      opt)).mean;
  EXPECT_LE(mean_later, mean_first + 1e-9);
}

TEST_P(FullStack, CongestionStaysNearShortestPath) {
  const Graph g = MakeFamily(GetParam(), kN, kSeed + 3);
  Params p;
  p.seed = kSeed + 3;
  Disco disco(g, p);
  ShortestPathRouting spf(g);

  const auto disco_counts = CongestionCounts(
      g, [&](NodeId s, NodeId t) { return disco.RouteLater(s, t); },
      kSeed);
  const auto spf_counts = CongestionCounts(
      g, [&](NodeId s, NodeId t) { return spf.RoutePacket(s, t); }, kSeed);
  std::size_t disco_max = 0, spf_max = 0;
  for (const auto c : disco_counts) disco_max = std::max(disco_max, c);
  for (const auto c : spf_counts) spf_max = std::max(spf_max, c);
  // §5.2: compact routing's worst edge stays within a small factor of
  // shortest-path routing's worst edge.
  EXPECT_LT(disco_max, 6 * spf_max + 10);
}

INSTANTIATE_TEST_SUITE_P(Families, FullStack,
                         ::testing::Values(Family::kGnm, Family::kGeometric,
                                           Family::kAsLevel,
                                           Family::kRouterLevel));

TEST(Integration, S4StateExplodesWhereNdDiscoDoesNot) {
  // The Fig. 2/7 story end to end: on a hub-dominated map, S4's maximum
  // state blows past its name-dependent counterpart NDDisco ("a fairer
  // comparison with S4 since both protocols are name-dependent", §5.2),
  // whose vicinities are capped by construction.
  const Graph g = AsLevelInternet(2048, 77);
  Params p;
  p.seed = 77;
  Disco disco(g, p);
  S4 s4(g, p);
  std::size_t s4_max = 0, nd_max = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    s4_max = std::max(s4_max, s4.State(v).total());
    nd_max = std::max(nd_max, disco.nd().State(v).total());
  }
  EXPECT_GT(s4_max, 2 * nd_max);
}

TEST(Integration, DiscoFirstPacketBeatsS4FirstPacketOnStretch) {
  // Fig. 3's qualitative claim on the latency-annotated topology.
  const Graph g = ConnectedGeometric(1024, 8.0, 99);
  Params p;
  p.seed = 99;
  Disco disco(g, p);
  S4 s4(g, p);
  StretchOptions opt;
  opt.num_pairs = 400;
  opt.seed = 99;
  const auto ds = Summarize(SampleStretch(
      g, [&](NodeId s, NodeId t) { return disco.RouteFirst(s, t); }, opt));
  const auto ss = Summarize(SampleStretch(
      g, [&](NodeId s, NodeId t) { return s4.RouteFirst(s, t); }, opt));
  EXPECT_LT(ds.max, ss.max);
  EXPECT_LT(ds.mean, ss.mean);
}

}  // namespace
}  // namespace disco
