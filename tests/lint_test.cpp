// disco_lint engine tests: the fixture corpus must reproduce its golden
// findings byte-for-byte, every rule must be exercised by at least one
// fixture violation, the real tree must lint clean (the same invariant the
// lint_tree CTest entry and the blocking CI job enforce), and the waiver
// grammar must behave exactly as documented.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace disco::lint {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Writes `text` to a fresh file under the gtest temp dir and lints it.
Report LintSnippet(const std::string& name, const std::string& text) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/" + name;
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
  }
  return LintFiles(dir, {name});
}

std::vector<std::string> RulesIn(const Report& r) {
  std::vector<std::string> out;
  for (const Finding& f : r.findings) out.push_back(f.rule);
  return out;
}

TEST(LintFixtures, GoldenFindingsByteIdentical) {
  const std::vector<std::string> files =
      CollectSources(LINT_FIXTURES_DIR, {"."});
  ASSERT_FALSE(files.empty());
  const Report report = LintFiles(LINT_FIXTURES_DIR, files);
  EXPECT_EQ(ReportToJson(report),
            Slurp(std::string(LINT_FIXTURES_DIR) + "/expected.json"))
      << "fixture findings drifted from the golden report; if the change "
         "is intended, regenerate with: disco_lint --root=tools/lint/"
         "fixtures . --json=tools/lint/fixtures/expected.json";
}

TEST(LintFixtures, EveryRuleFires) {
  // 100% rule coverage: each enforceable rule must be detected in the
  // corpus, so a rule can never silently stop firing.
  const Report report =
      LintFiles(LINT_FIXTURES_DIR, CollectSources(LINT_FIXTURES_DIR, {"."}));
  std::set<std::string> fired;
  for (const Finding& f : report.findings) fired.insert(f.rule);
  for (const std::string& rule : RuleNames()) {
    EXPECT_TRUE(fired.count(rule)) << "no fixture violates rule " << rule;
  }
}

TEST(LintFixtures, WaivedFileIsClean) {
  // waived_ok.cpp holds one violation per waiverable rule class, each
  // correctly waivered: no findings, three waivers in use.
  const Report report = LintFiles(LINT_FIXTURES_DIR, {"waived_ok.cpp"});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.waivers_used, 3u);
}

TEST(LintTree, RealTreeLintsClean) {
  const Report report = LintFiles(
      LINT_REPO_ROOT,
      CollectSources(LINT_REPO_ROOT, {"src", "bench", "tests", "examples"}));
  EXPECT_GT(report.files_scanned, 100u);  // the glob really found the tree
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

TEST(LintWaivers, LineWaiverCoversOwnAndNextLine) {
  const Report r = LintSnippet(
      "line_waiver.cpp",
      "#include <cstdlib>\n"
      "long F(const char* s) {\n"
      "  // disco-lint: allow(strto-endptr): fixture\n"
      "  return std::strtol(s, nullptr, 10);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.waivers_used, 1u);
}

TEST(LintWaivers, WaiverTwoLinesAwayDoesNotCover) {
  const Report r = LintSnippet(
      "far_waiver.cpp",
      "#include <cstdlib>\n"
      "long F(const char* s) {\n"
      "  // disco-lint: allow(strto-endptr): fixture\n"
      "  long unused = 0;\n"
      "  return std::strtol(s, nullptr, 10) + unused;\n"
      "}\n");
  // The violation stands AND the waiver reports itself as stale.
  EXPECT_EQ(RulesIn(r),
            (std::vector<std::string>{"waiver", "strto-endptr"}));
}

TEST(LintWaivers, ReasonIsMandatory) {
  const Report r = LintSnippet(
      "no_reason.cpp",
      "#include <cstdlib>\n"
      "// disco-lint: allow(strto-endptr)\n"
      "long F(const char* s) { return std::strtol(s, nullptr, 10); }\n");
  // Malformed waiver surfaces as a `waiver` finding and suppresses nothing.
  EXPECT_EQ(RulesIn(r),
            (std::vector<std::string>{"waiver", "strto-endptr"}));
}

TEST(LintWaivers, UnknownRuleIsAFinding) {
  const Report r = LintSnippet(
      "unknown_rule.cpp",
      "// disco-lint: allow(no-such-rule): reason here\n"
      "int x = 0;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "waiver");
}

TEST(LintWaivers, FileWaiverCoversWholeFile) {
  const Report r = LintSnippet(
      "file_waiver.cpp",
      "// disco-lint: allow-file(relaxed-atomic): fixture counters\n"
      "#include <atomic>\n"
      "std::atomic<int> a{0};\n"
      "void F() { a.store(1, std::memory_order_relaxed); }\n"
      "void G() { a.fetch_add(1, std::memory_order_relaxed); }\n");
  EXPECT_TRUE(r.findings.empty());
  // waivers_used counts suppressed findings, so one file-level waiver
  // covering two violations reports two uses.
  EXPECT_EQ(r.waivers_used, 2u);
}

TEST(LintWaivers, MetaRuleIsNotWaiverable) {
  // A waiver cannot waive the waiver rule itself: the stale-waiver finding
  // survives even when "waiver" is named in an allow list.
  const Report r = LintSnippet(
      "waive_waiver.cpp",
      "// disco-lint: allow(waiver): trying to silence the meta rule\n"
      "int x = 0;\n");
  ASSERT_FALSE(r.findings.empty());
  for (const Finding& f : r.findings) EXPECT_EQ(f.rule, "waiver");
}

TEST(LintReport, JsonIsByteStableAcrossRuns) {
  const std::vector<std::string> files =
      CollectSources(LINT_FIXTURES_DIR, {"."});
  const std::string a = ReportToJson(LintFiles(LINT_FIXTURES_DIR, files));
  const std::string b = ReportToJson(LintFiles(LINT_FIXTURES_DIR, files));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace disco::lint
