#include "util/consistent_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/hashring.h"

namespace disco {
namespace {

std::vector<std::uint32_t> Members(int count) {
  std::vector<std::uint32_t> m;
  for (int i = 0; i < count; ++i) m.push_back(static_cast<std::uint32_t>(i * 7 + 1));
  return m;
}

TEST(ConsistentHash, SingleMemberOwnsEverything) {
  ConsistentHashRing ring({42}, 4);
  EXPECT_EQ(ring.Owner(0), 42u);
  EXPECT_EQ(ring.Owner(HashName("anything")), 42u);
  EXPECT_EQ(ring.Owner(~0ULL), 42u);
}

TEST(ConsistentHash, OwnerIsAlwaysAMember) {
  const auto members = Members(16);
  ConsistentHashRing ring(members, 8);
  const std::set<std::uint32_t> mset(members.begin(), members.end());
  for (std::uint64_t i = 0; i < 2000; ++i) {
    EXPECT_TRUE(mset.count(ring.Owner(HashName(DefaultName(i)))));
  }
}

TEST(ConsistentHash, OwnerIsDeterministic) {
  ConsistentHashRing a(Members(16), 8), b(Members(16), 8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const HashValue h = HashName(DefaultName(i));
    EXPECT_EQ(a.Owner(h), b.Owner(h));
  }
}

TEST(ConsistentHash, OwnersReturnsDistinctMembers) {
  ConsistentHashRing ring(Members(8), 8);
  const auto owners = ring.Owners(HashName("key"), 3);
  ASSERT_EQ(owners.size(), 3u);
  const std::set<std::uint32_t> distinct(owners.begin(), owners.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(owners[0], ring.Owner(HashName("key")));
}

TEST(ConsistentHash, OwnersClampsToMemberCount) {
  ConsistentHashRing ring(Members(3), 4);
  EXPECT_EQ(ring.Owners(1234, 10).size(), 3u);
}

TEST(ConsistentHash, ConsistencyUnderMemberRemoval) {
  // Consistent hashing's defining property: removing one member only moves
  // keys that it owned.
  auto members = Members(16);
  ConsistentHashRing before(members, 8);
  const std::uint32_t removed = members.back();
  members.pop_back();
  ConsistentHashRing after(members, 8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const HashValue h = HashName(DefaultName(i));
    if (before.Owner(h) != removed) {
      EXPECT_EQ(after.Owner(h), before.Owner(h)) << "key " << i;
    }
  }
}

TEST(ConsistentHash, CountOwnershipCoversAllKeys) {
  ConsistentHashRing ring(Members(16), 8);
  std::vector<HashValue> keys;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    keys.push_back(HashName(DefaultName(i)));
  }
  const auto counts = ring.CountOwnership(keys);
  EXPECT_EQ(counts.size(), 16u);  // every member appears
  std::size_t total = 0;
  for (const auto& [m, c] : counts) total += c;
  EXPECT_EQ(total, keys.size());
}

class VirtualPointBalance : public ::testing::TestWithParam<int> {};

TEST_P(VirtualPointBalance, MoreVirtualPointsImproveBalance) {
  const int vpoints = GetParam();
  ConsistentHashRing ring(Members(32), vpoints);
  std::vector<HashValue> keys;
  for (std::uint64_t i = 0; i < 32000; ++i) {
    keys.push_back(HashName(DefaultName(i)));
  }
  const auto counts = ring.CountOwnership(keys);
  std::size_t max_count = 0;
  for (const auto& [m, c] : counts) max_count = std::max(max_count, c);
  const double fair = 32000.0 / 32.0;
  // The §4.5 argument: single-hash imbalance is Θ(log n)x; multiple
  // virtual points pull the max toward fair share. Generous envelopes.
  const double allowed = vpoints >= 32 ? 2.0 : (vpoints >= 8 ? 3.5 : 8.0);
  EXPECT_LE(static_cast<double>(max_count), fair * allowed)
      << "virtual points: " << vpoints;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VirtualPointBalance,
                         ::testing::Values(1, 8, 32, 128));

}  // namespace
}  // namespace disco
