#include "core/nddisco.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace disco {
namespace {

Params WithSeed(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  return p;
}

TEST(NdDisco, DirectPathWithinVicinity) {
  const Graph g = testing::PathGraph(16);
  NdDisco nd(g, WithSeed(1));
  // Adjacent nodes are always in each other's vicinity.
  EXPECT_TRUE(nd.KnowsDirect(3, 4));
  const auto p = nd.DirectPath(3, 4);
  EXPECT_EQ(p, (std::vector<NodeId>{3, 4}));
}

TEST(NdDisco, DirectPathToLandmark) {
  const Graph g = ConnectedGnm(512, 2048, 3);
  NdDisco nd(g, WithSeed(3));
  const NodeId l = nd.landmarks().landmarks.front();
  const auto truth = Dijkstra(g, l);
  for (NodeId u = 0; u < g.num_nodes(); u += 97) {
    ASSERT_TRUE(nd.KnowsDirect(u, l));
    const auto p = nd.DirectPath(u, l);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), u);
    EXPECT_EQ(p.back(), l);
    EXPECT_NEAR(PathLength(g, p), truth.dist[u], 1e-9);
  }
}

TEST(NdDisco, SelfRouteIsTrivial) {
  const Graph g = ConnectedGnm(128, 512, 5);
  NdDisco nd(g, WithSeed(5));
  const Route r = nd.RouteFirst(7, 7);
  EXPECT_EQ(r.path, std::vector<NodeId>{7});
  EXPECT_DOUBLE_EQ(r.length, 0.0);
}

TEST(NdDisco, FirstPacketPlanGoesViaLandmark) {
  const Graph g = ConnectedGnm(1024, 4096, 7);
  NdDisco nd(g, WithSeed(7));
  // Find a pair with no direct knowledge.
  for (NodeId s = 0, found = 0; s < 64 && found < 5; ++s) {
    for (NodeId t = 512; t < 576; ++t) {
      if (nd.KnowsDirect(s, t)) continue;
      const auto plan = nd.FirstPacketPlan(s, t);
      const NodeId lt = nd.addresses().closest_landmark(t);
      EXPECT_EQ(plan.front(), s);
      EXPECT_EQ(plan.back(), t);
      EXPECT_NE(std::find(plan.begin(), plan.end(), lt), plan.end())
          << "plan must pass through l_t";
      ++found;
      break;
    }
  }
}

TEST(NdDisco, RouteEndpointsAlwaysCorrect) {
  const Graph g = ConnectedGeometric(512, 8.0, 9);
  NdDisco nd(g, WithSeed(9));
  for (NodeId s = 0; s < g.num_nodes(); s += 131) {
    for (NodeId t = 1; t < g.num_nodes(); t += 137) {
      const Route first = nd.RouteFirst(s, t);
      const Route later = nd.RouteLater(s, t);
      ASSERT_TRUE(first.ok());
      ASSERT_TRUE(later.ok());
      EXPECT_EQ(first.path.front(), s);
      EXPECT_EQ(first.path.back(), t);
      EXPECT_EQ(later.path.front(), s);
      EXPECT_EQ(later.path.back(), t);
      EXPECT_LE(later.length, first.length + 1e-9);
    }
  }
}

TEST(NdDisco, HandshakeGivesShortestWhenSourceInDestVicinity) {
  const Graph g = ConnectedGnm(512, 2048, 11);
  NdDisco nd(g, WithSeed(11));
  const auto vic_t = nd.vicinity(100);
  // Pick an s inside V(100) that is not trivially adjacent.
  for (const NearNode& m : vic_t->members()) {
    if (m.dist < 2.0 || m.node == 100) continue;
    const Route later = nd.RouteLater(m.node, 100);
    EXPECT_NEAR(later.length, m.dist, 1e-9);
    break;
  }
}

class NdDiscoStretchBounds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(NdDiscoStretchBounds, TheoremBoundsHold) {
  // Stretch ≤ 5 (first) / ≤ 3 (later) whenever the w.h.p. precondition —
  // a landmark inside each relevant vicinity — holds; we assert the bound
  // on qualifying pairs and that nearly all pairs qualify.
  const std::uint64_t seed = GetParam();
  const Graph g = ConnectedGeometric(768, 8.0, seed);
  NdDisco nd(g, WithSeed(seed));

  auto vicinity_has_landmark = [&](NodeId v) {
    for (const NearNode& m : nd.vicinity(v)->members()) {
      if (nd.landmarks().Contains(m.node)) return true;
    }
    return false;
  };

  int qualifying = 0, total = 0;
  for (NodeId s = 1; s < g.num_nodes(); s += 61) {
    const auto truth = Dijkstra(g, s);
    for (NodeId t = 3; t < g.num_nodes(); t += 67) {
      if (s == t || truth.dist[t] <= 0) continue;
      ++total;
      if (!vicinity_has_landmark(s) || !vicinity_has_landmark(t)) continue;
      ++qualifying;
      const double first =
          nd.RouteFirst(s, t, Shortcut::kNone).length / truth.dist[t];
      const double later =
          nd.RouteLater(s, t, Shortcut::kNone).length / truth.dist[t];
      EXPECT_LE(first, 5.0 + 1e-9) << s << "->" << t;
      EXPECT_LE(later, 3.0 + 1e-9) << s << "->" << t;
    }
  }
  EXPECT_GT(qualifying, total * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdDiscoStretchBounds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(NdDisco, StateIsBalancedAndBounded) {
  const Graph g = ConnectedGnm(1024, 4096, 13);
  NdDisco nd(g, WithSeed(13));
  const std::size_t L = nd.landmarks().count();
  const std::size_t k = nd.vicinity_size();
  for (NodeId v = 0; v < g.num_nodes(); v += 111) {
    const StateBreakdown b = nd.State(v);
    EXPECT_EQ(b.landmark_entries, L);
    EXPECT_EQ(b.vicinity_entries, k);
    EXPECT_LE(b.label_entries, L + k);
    EXPECT_EQ(b.cluster_entries, 0u);
    // Total bounded by the O(sqrt(n log n)) promise with a small constant.
    EXPECT_LE(b.total(), 4 * (L + k));
  }
}

TEST(NdDisco, ResolutionEntriesOnlyAtLandmarks) {
  const Graph g = ConnectedGnm(512, 2048, 17);
  NdDisco nd(g, WithSeed(17));
  const NameTable names = NameTable::Default(g.num_nodes());
  const ResolutionDb db(names, nd.landmarks());
  std::size_t hosted = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const StateBreakdown b = nd.State(v, &db);
    if (!nd.landmarks().Contains(v)) {
      EXPECT_EQ(b.resolution_entries, 0u);
    }
    hosted += b.resolution_entries;
  }
  EXPECT_EQ(hosted, g.num_nodes());
}

TEST(NdDisco, OperatorChosenLandmarksStillRoute) {
  // §6: the guarantees survive non-random landmark choice as long as each
  // node keeps a landmark in its vicinity. Degree-based landmarks on a
  // hub-heavy map are the paper's "well-provisioned" example.
  const Graph g = BarabasiAlbert(1024, 2, 23);
  NdDisco nd(g, WithSeed(23), SelectDegreeBasedLandmarks(g, WithSeed(23)));
  const auto truth = Dijkstra(g, 1);
  for (NodeId t = 5; t < g.num_nodes(); t += 37) {
    const Route first = nd.RouteFirst(1, t);
    const Route later = nd.RouteLater(1, t);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.path.back(), t);
    if (truth.dist[t] > 0) {
      EXPECT_LE(later.length / truth.dist[t], 3.0 + 1e-9);
    }
  }
}

TEST(NdDisco, DegreeLandmarksShortenAddressesOnHubMaps) {
  // Hubs are close to everything, so anchoring addresses at them shortens
  // explicit routes versus random landmarks.
  const Graph g = BarabasiAlbert(4096, 2, 29);
  NdDisco random(g, WithSeed(29));
  NdDisco degree(g, WithSeed(29), SelectDegreeBasedLandmarks(g, WithSeed(29)));
  double random_hops = 0, degree_hops = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    random_hops += static_cast<double>(random.addresses().AddressOf(v).num_hops());
    degree_hops += static_cast<double>(degree.addresses().AddressOf(v).num_hops());
  }
  EXPECT_LT(degree_hops, random_hops);
}

TEST(NdDisco, WorksOnRings) {
  const Graph g = Ring(128);
  NdDisco nd(g, WithSeed(19));
  const auto truth = Dijkstra(g, 0);
  for (NodeId t = 1; t < 128; t += 13) {
    const Route r = nd.RouteLater(0, t);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.length / truth.dist[t], 3.0 + 1e-9);
  }
}

}  // namespace
}  // namespace disco
