// Shared helpers for the test suite: small canonical graphs and reference
// (brute-force) implementations to check the optimized code against.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/generators.h"

namespace disco::testing {

/// Path graph 0-1-2-...-(n-1), unit weights.
inline Graph PathGraph(NodeId n) {
  std::vector<WeightedEdge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1.0});
  return Graph::FromEdges(n, edges);
}

/// Star with `leaves` leaves around center 0, unit weights.
inline Graph StarGraph(NodeId leaves) {
  std::vector<WeightedEdge> edges;
  for (NodeId v = 1; v <= leaves; ++v) edges.push_back({0, v, 1.0});
  return Graph::FromEdges(leaves + 1, edges);
}

/// The weighted diamond used for shortest-path disambiguation tests:
///      1
///    /   \        0-1 = 1, 1-3 = 1 (top, length 2)
///  0       3      0-2 = 1.5, 2-3 = 1.5 (bottom, length 3)
///    \   /        0-3 via top is strictly shorter
///      2
inline Graph DiamondGraph() {
  const std::vector<WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 1.5}, {2, 3, 1.5}};
  return Graph::FromEdges(4, edges);
}

/// Reference Bellman–Ford distances (O(nm), for validating Dijkstra).
inline std::vector<Dist> BellmanFord(const Graph& g, NodeId src) {
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  dist[src] = 0;
  for (NodeId round = 0; round + 1 < g.num_nodes(); ++round) {
    bool changed = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] >= kInfDist) continue;
      for (const Neighbor& nb : g.neighbors(v)) {
        if (dist[v] + nb.weight < dist[nb.to]) {
          dist[nb.to] = dist[v] + nb.weight;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace disco::testing
