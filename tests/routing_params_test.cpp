#include "routing/params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace disco {
namespace {

TEST(Params, LandmarkProbabilityFormula) {
  const NodeId n = 10000;
  EXPECT_NEAR(LandmarkProbability(n),
              std::sqrt(std::log(10000.0) / 10000.0), 1e-12);
}

TEST(Params, LandmarkProbabilityClamped) {
  EXPECT_EQ(LandmarkProbability(1), 1.0);
  EXPECT_LE(LandmarkProbability(2), 1.0);
  EXPECT_GT(LandmarkProbability(1u << 20), 0.0);
  EXPECT_LT(LandmarkProbability(1u << 20), 0.01);
}

TEST(Params, LandmarkProbabilityScalesWithFactor) {
  EXPECT_NEAR(LandmarkProbability(10000, 2.0),
              2.0 * LandmarkProbability(10000, 1.0), 1e-12);
}

TEST(Params, VicinitySizeFormula) {
  const NodeId n = 16384;
  const double expected = std::sqrt(16384.0 * std::log(16384.0));
  EXPECT_EQ(VicinitySize(n), static_cast<std::size_t>(std::ceil(expected)));
}

TEST(Params, VicinitySizeClampedToN) {
  EXPECT_LE(VicinitySize(4), 4u);
  EXPECT_GE(VicinitySize(4), 1u);
  EXPECT_EQ(VicinitySize(1), 1u);
}

TEST(Params, ExpectedLandmarksMatchVicinitySize) {
  // n * p ≈ k: both are sqrt(n ln n) — the coupling the stretch proof
  // needs (a landmark lands in every vicinity w.h.p.).
  const NodeId n = 65536;
  const double expected_landmarks = n * LandmarkProbability(n);
  EXPECT_NEAR(expected_landmarks, static_cast<double>(VicinitySize(n)),
              expected_landmarks * 0.01);
}

TEST(Params, SloppyGroupBitsSmallN) {
  EXPECT_EQ(SloppyGroupBits(1), 0);
  EXPECT_EQ(SloppyGroupBits(4), 0);
  EXPECT_EQ(SloppyGroupBits(16), 0);  // sqrt(16)/log2(16) = 1 -> 0 bits
}

TEST(Params, SloppyGroupBitsGrowth) {
  // k = floor(log2(sqrt(n)/log2 n)).
  EXPECT_EQ(SloppyGroupBits(16384), 3);   // 128/14 = 9.14 -> 3
  EXPECT_EQ(SloppyGroupBits(1024), 1);    // 32/10 = 3.2 -> 1
  EXPECT_EQ(SloppyGroupBits(1 << 20), 5);  // 1024/20 = 51.2 -> 5
}

TEST(Params, GroupCountTracksSqrtScaling) {
  // Group size n / 2^bits must stay within a constant factor of
  // sqrt(n) * log2(n).
  for (const double n : {1024.0, 16384.0, 262144.0, 4194304.0}) {
    const int bits = SloppyGroupBits(n);
    const double group_size = n / std::pow(2.0, bits);
    const double target = std::sqrt(n) * std::log2(n);
    EXPECT_GE(group_size, target * 0.9) << n;
    EXPECT_LE(group_size, target * 2.1) << n;
  }
}

TEST(Params, DoublingNChangesBitsByAtMostOne) {
  // Nodes whose estimates differ by <2x must agree on the grouping within
  // one bit — the sloppiness bound of §4.4.
  for (double n = 64; n < 1e9; n *= 2) {
    EXPECT_LE(std::abs(SloppyGroupBits(2 * n) - SloppyGroupBits(n)), 1)
        << n;
  }
}

}  // namespace
}  // namespace disco
