// Cross-protocol route-validity properties: every route any protocol emits
// must be a physically realizable walk with correct endpoints, finite
// length consistent with its hop weights, and stretch ≥ 1. These are the
// invariants the stretch/congestion measurements silently rely on, so they
// get their own exhaustive sweep across protocols, topologies and seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/s4.h"
#include "baselines/spf.h"
#include "baselines/vrr.h"
#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace disco {
namespace {

struct Case {
  int family;          // 0 gnm, 1 geometric, 2 as-level, 3 router-level
  std::uint64_t seed;
};

Graph MakeGraph(const Case& c, NodeId n) {
  switch (c.family) {
    case 0:
      return ConnectedGnm(n, 4ull * n, c.seed);
    case 1:
      return ConnectedGeometric(n, 8.0, c.seed);
    case 2:
      return AsLevelInternet(n, c.seed);
    default:
      return RouterLevelInternet(n, c.seed);
  }
}

void CheckRoute(const Graph& g, const Route& r, NodeId s, NodeId t,
                Dist shortest, const char* label) {
  ASSERT_TRUE(r.ok()) << label << " " << s << "->" << t;
  ASSERT_EQ(r.path.front(), s) << label;
  ASSERT_EQ(r.path.back(), t) << label;
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    ASSERT_GE(g.InterfaceTo(r.path[i], r.path[i + 1]), 0)
        << label << ": hop " << r.path[i] << "->" << r.path[i + 1]
        << " is not an edge";
  }
  ASSERT_NEAR(r.length, PathLength(g, r.path), 1e-9) << label;
  ASSERT_GE(r.length, shortest - 1e-9) << label << " beats shortest path";
}

class RouteValidity
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RouteValidity, AllProtocolsEmitPhysicalWalks) {
  const Case c{std::get<0>(GetParam()), std::get<1>(GetParam())};
  const Graph g = MakeGraph(c, 384);
  Params p;
  p.seed = c.seed;
  Disco disco(g, p);
  S4 s4(g, p);
  const Vrr vrr(g, p);
  ShortestPathRouting spf(g);

  for (NodeId s = 0; s < g.num_nodes(); s += 61) {
    const auto truth = Dijkstra(g, s);
    for (NodeId t = 1; t < g.num_nodes(); t += 67) {
      if (s == t) continue;
      const Dist d = truth.dist[t];
      CheckRoute(g, disco.RouteFirst(s, t), s, t, d, "Disco-first");
      CheckRoute(g, disco.RouteLater(s, t), s, t, d, "Disco-later");
      CheckRoute(g, s4.RouteFirst(s, t), s, t, d, "S4-first");
      CheckRoute(g, s4.RouteLater(s, t), s, t, d, "S4-later");
      CheckRoute(g, vrr.RoutePacket(s, t), s, t, d, "VRR");
      CheckRoute(g, spf.RoutePacket(s, t), s, t, d, "SPF");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, RouteValidity,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(11ull, 22ull, 33ull)));

TEST(RouteValidityModes, EveryShortcutModeEmitsPhysicalWalks) {
  const Graph g = ConnectedGeometric(384, 8.0, 44);
  Params p;
  p.seed = 44;
  Disco disco(g, p);
  for (NodeId s = 0; s < g.num_nodes(); s += 53) {
    const auto truth = Dijkstra(g, s);
    for (NodeId t = 2; t < g.num_nodes(); t += 59) {
      if (s == t) continue;
      for (const Shortcut mode : kAllShortcuts) {
        CheckRoute(g, disco.RouteFirst(s, t, mode), s, t, truth.dist[t],
                   ShortcutName(mode));
      }
    }
  }
}

TEST(RouteValidityGbits, SmallerGroupsStillRoute) {
  // group_bits_offset trades state for a thinner vicinity∩group margin;
  // routes must stay valid, falling back (not failing) if the margin
  // breaks.
  const Graph g = ConnectedGnm(1024, 4096, 55);
  Params p;
  p.seed = 55;
  p.group_bits_offset = 2;
  Disco disco(g, p);
  std::size_t fallbacks = 0;
  for (NodeId s = 0; s < g.num_nodes(); s += 47) {
    const auto truth = Dijkstra(g, s);
    for (NodeId t = 3; t < g.num_nodes(); t += 43) {
      if (s == t) continue;
      const Route r = disco.RouteFirst(s, t);
      CheckRoute(g, r, s, t, truth.dist[t], "Disco-gbits2");
      fallbacks += r.via_fallback ? 1 : 0;
    }
  }
  // Smaller groups shrink state by 4x while the contact success rate stays
  // near 1 (the +O(1) constant the paper tunes).
  EXPECT_LT(fallbacks, 20u);
}

}  // namespace
}  // namespace disco
