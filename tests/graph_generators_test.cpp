#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "graph/components.h"
#include "graph/io.h"
#include "graph/shortest_path.h"
#include "runtime/thread_pool.h"

namespace disco {
namespace {

// Runs `make` under a 1-thread pool and a wide pool and asserts the two
// graphs are bit-identical — the contract of the chunked parallel
// generators (per-chunk RNG streams, chunk-major merges).
void ExpectThreadCountInvariant(const std::function<Graph()>& make) {
  runtime::ThreadPool::ResetShared(1);
  const Graph sequential = make();
  runtime::ThreadPool::ResetShared(8);
  const Graph parallel = make();
  runtime::ThreadPool::ResetShared(runtime::DefaultThreadCount());
  ASSERT_EQ(sequential.num_nodes(), parallel.num_nodes());
  ASSERT_EQ(sequential.num_edges(), parallel.num_edges());
  for (EdgeId e = 0; e < sequential.num_edges(); ++e) {
    ASSERT_EQ(sequential.edge(e).a, parallel.edge(e).a) << "edge " << e;
    ASSERT_EQ(sequential.edge(e).b, parallel.edge(e).b) << "edge " << e;
    ASSERT_EQ(sequential.edge(e).weight, parallel.edge(e).weight)
        << "edge " << e;
  }
}

TEST(Gnm, ExactEdgeCount) {
  const Graph g = Gnm(100, 400, 1);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 400u);
}

TEST(Gnm, NoDuplicateEdgesOrSelfLoops) {
  const Graph g = Gnm(50, 200, 2);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auto [a, b, w] = g.edge(e);
    EXPECT_NE(a, b);
    const auto key = std::minmax(a, b);
    EXPECT_TRUE(seen.insert(key).second) << a << "-" << b;
  }
}

TEST(Gnm, DeterministicPerSeed) {
  const Graph a = Gnm(64, 256, 5), b = Gnm(64, 256, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).a, b.edge(e).a);
    EXPECT_EQ(a.edge(e).b, b.edge(e).b);
  }
}

TEST(Gnm, BitIdenticalAcrossThreadCounts) {
  // Multi-chunk (m > one 8192-edge chunk), so the parallel path really
  // fans out and the cross-chunk dedup + top-up stream is exercised.
  ExpectThreadCountInvariant([] { return Gnm(20000, 40000, 3); });
}

TEST(Gnm, ConnectedVariantIsConnected) {
  // Sparse enough that G(n,m) is often disconnected.
  const Graph g = ConnectedGnm(200, 220, 3);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_LE(g.num_nodes(), 200u);
  EXPECT_GT(g.num_nodes(), 100u);  // the LCC should dominate at this density
}

TEST(Geometric, WeightsAreEuclidean) {
  const Graph g = RandomGeometric(500, 8.0, 7);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GT(g.edge(e).weight, 0.0);
    EXPECT_LT(g.edge(e).weight, 0.2);  // radius for avg degree 8 at n=500
  }
}

TEST(Geometric, AverageDegreeNearTarget) {
  const Graph g = RandomGeometric(4096, 8.0, 11);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_nodes());
  EXPECT_GT(avg, 5.5);
  EXPECT_LT(avg, 10.5);
}

TEST(Geometric, BitIdenticalAcrossThreadCounts) {
  // Multi-chunk (n > one 8192-node chunk): per-chunk coordinate streams
  // and the chunk-major edge concatenation must be schedule-independent.
  ExpectThreadCountInvariant(
      [] { return RandomGeometric(20000, 8.0, 3); });
}

TEST(Geometric, ConnectedVariantIsConnected) {
  EXPECT_TRUE(IsConnected(ConnectedGeometric(1024, 8.0, 13)));
}

TEST(BarabasiAlbert, ConnectedWithHeavyTail) {
  const Graph g = BarabasiAlbert(2048, 2, 17);
  EXPECT_TRUE(IsConnected(g));
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  // Preferential attachment: hubs with degree ~sqrt(n) scale.
  EXPECT_GT(max_degree, 40u);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_nodes());
  EXPECT_NEAR(avg, 4.0, 0.5);  // m = 2 -> avg degree ~4
}

TEST(BarabasiAlbert, MinimumDegreeIsM) {
  const Graph g = BarabasiAlbert(256, 3, 19);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_GE(g.degree(v), 3u);
}

TEST(AsLevel, MatchesBarabasiAlbertShape) {
  const Graph g = AsLevelInternet(1024, 23);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_nodes(), 1024u);
}

TEST(RouterLevel, ConnectedAndModerateDegrees) {
  const Graph g = RouterLevelInternet(4096, 29);
  EXPECT_EQ(g.num_nodes(), 4096u);
  EXPECT_TRUE(IsConnected(g));
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  // Router maps have bounded hubs compared to AS maps.
  EXPECT_LT(max_degree, 200u);
}

TEST(RouterLevel, PathsLongerThanAsLevel) {
  // The two-level structure must produce longer typical paths than the
  // AS-like map at the same size (this drives address sizes, §4.2).
  const Graph router = RouterLevelInternet(2048, 31);
  const Graph as = AsLevelInternet(2048, 31);
  const auto rt = Dijkstra(router, 0);
  const auto at = Dijkstra(as, 0);
  double rsum = 0, asum = 0;
  for (NodeId v = 0; v < 2048; ++v) {
    rsum += rt.dist[v];
    asum += at.dist[v];
  }
  EXPECT_GT(rsum, asum);
}

TEST(Ring, StructureAndDiameter) {
  const Graph g = Ring(16);
  EXPECT_EQ(g.num_edges(), 16u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_DOUBLE_EQ(Dijkstra(g, 0).dist[8], 8.0);
}

TEST(Grid, StructureAndDistances) {
  const Graph g = Grid(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 3u * 5);  // horizontal + vertical
  EXPECT_DOUBLE_EQ(Dijkstra(g, 0).dist[19], 3.0 + 4.0);  // Manhattan
}

TEST(S4WorstCaseTree, ShapeMatchesFootnote6) {
  const NodeId b = 10;
  const Graph g = S4WorstCaseTree(b);
  EXPECT_EQ(g.num_nodes(), 1 + b + b * b);
  EXPECT_EQ(g.degree(0), b);  // root
  const auto t = Dijkstra(g, 0);
  for (NodeId c = 1; c <= b; ++c) EXPECT_DOUBLE_EQ(t.dist[c], 1.0);
  for (NodeId gc = b + 1; gc < g.num_nodes(); ++gc) {
    EXPECT_DOUBLE_EQ(t.dist[gc], 3.0);  // 1 (root-child) + 2 (child-gc)
  }
}

// Golden fingerprints captured from the edge-vector builds that predate
// the streaming-CSR generator rewrite. Every generator family at every
// interesting scale — single-chunk, multi-chunk (>8192 nodes/edges, so
// the chunked RNG streams and the parallel CSR build really engage), the
// connected variants, and the fixed topologies — must reproduce these
// graphs bit for bit: same edge order, same weights, same everything the
// fingerprint serializes.
struct GoldenGraph {
  const char* name;
  std::function<Graph()> make;
  NodeId n;
  std::size_t m;
  const char* fingerprint;
};

const std::vector<GoldenGraph>& Goldens() {
  static const std::vector<GoldenGraph> rows = {
      {"gnm_small", [] { return Gnm(100, 400, 1); }, 100, 400,
       "b50f5056944ce7752a8366b2a2147ff309c0200e3efda1c7ad9372a29d6e35f4"},
      {"gnm_multi", [] { return Gnm(20000, 40000, 3); }, 20000, 40000,
       "781732040f6f0f73e91a9cf9a48e3649160990689cfd9e4039dd6c11e0933b69"},
      {"geo_small", [] { return RandomGeometric(500, 8.0, 7); }, 500, 1879,
       "e3db46f86f24fcf6fe76083dc55fac43d9693b650204e7aea31128b517204c4a"},
      {"geo_multi", [] { return RandomGeometric(20000, 8.0, 3); }, 20000,
       79231,
       "9d7e2064e75d9cf06b4024ed57c4719ed413568dd5e9262386bf83ed04b60b09"},
      {"ba_small", [] { return BarabasiAlbert(256, 3, 19); }, 256, 762,
       "821228809a8a1730bfe980b9d4afe3fbc32edfda3436622fcb437d9636b1a9d3"},
      {"ba_multi", [] { return BarabasiAlbert(20000, 2, 7); }, 20000, 39997,
       "527e8bf55b5fffd41edddafd71fa8cb27199b5e8ea83869c0fa57d35d91836ed"},
      {"router_small", [] { return RouterLevelInternet(256, 4); }, 256, 364,
       "3a054310fad8f8d79b0dc72c2e74ea493ed2c6095c4405df2196d403ccd9eca4"},
      {"router_multi", [] { return RouterLevelInternet(20000, 11); }, 20000,
       28309,
       "1903cb827ba98901fcf32b6e3808824ecf8d01628d8c5a05502069e894524bf8"},
      {"cgnm_multi", [] { return ConnectedGnm(20000, 30000, 9); }, 18845,
       29897,
       "c759466ece0d267db9054bc756dba132ec295cd64515aeb61dbd5b69a5a445ec"},
      {"cgeo_multi", [] { return ConnectedGeometric(20000, 8.0, 5); },
       19964, 78852,
       "968b3c0118326f29a33958fc053954e585142d4f857889dba6578eef5a795618"},
      {"ring", [] { return Ring(16); }, 16, 16,
       "88aa775ca7d8d2438204aebe7b29a44226e201ea7b5970694a68481e20dab371"},
      {"grid", [] { return Grid(4, 5); }, 20, 31,
       "2ce73f0d93769efafbd87f659f0de9e4dbe1b14d9f642528b7b44ea8406ac476"},
      {"s4tree", [] { return S4WorstCaseTree(10); }, 111, 110,
       "1711dbc78ffeaad0b1846e0e739c6d706bee8068adb1cec5dda7ce0fdc0912de"},
  };
  return rows;
}

TEST(GeneratorGoldens, FingerprintsMatchPreCsrBuilds) {
  for (const GoldenGraph& row : Goldens()) {
    const Graph g = row.make();
    EXPECT_EQ(g.num_nodes(), row.n) << row.name;
    EXPECT_EQ(g.num_edges(), row.m) << row.name;
    EXPECT_EQ(GraphFingerprintHex(g), row.fingerprint) << row.name;
  }
}

TEST(GeneratorGoldens, FingerprintsInvariantAcrossThreadCounts) {
  // The same goldens under a 1-thread and a wide pool: neither the
  // chunked generator fan-outs nor the parallel CSR build may let the
  // schedule leak into the graph.
  for (const int threads : {1, 8}) {
    runtime::ThreadPool::ResetShared(threads);
    for (const GoldenGraph& row : Goldens()) {
      EXPECT_EQ(GraphFingerprintHex(row.make()), row.fingerprint)
          << row.name << " with " << threads << " thread(s)";
    }
  }
  runtime::ThreadPool::ResetShared(runtime::DefaultThreadCount());
}

class GeneratorConnectivitySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorConnectivitySweep, AllFamiliesYieldUsableGraphs) {
  const std::uint64_t seed = GetParam();
  EXPECT_TRUE(IsConnected(ConnectedGnm(256, 1024, seed)));
  EXPECT_TRUE(IsConnected(ConnectedGeometric(256, 8.0, seed)));
  EXPECT_TRUE(IsConnected(BarabasiAlbert(256, 2, seed)));
  EXPECT_TRUE(IsConnected(RouterLevelInternet(256, seed)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorConnectivitySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace disco
