#!/usr/bin/env bash
# CI smoke for the observability layer, end to end through the binaries:
#   1. a trace-off bench run (the byte-level reference),
#   2. the same run with --trace= must print byte-identical stdout and
#      TSVs (tracing is determinism-neutral) while writing a Chrome trace
#      that disco_tracecat validates and summarizes,
#   3. a --backend=procs run with --trace= must merge its worker sidecars
#      into one valid timeline spanning >= 2 pids, again byte-identical,
#   4. disco_tracecat merge must combine the two traces into one valid
#      timeline.
#   usage: trace_smoke.sh <path-to-fig04_gnm1024> <path-to-disco_tracecat>
set -euo pipefail

BENCH_BIN="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
TRACECAT_BIN="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
dir="$(mktemp -d)"
cleanup() { cd / && rm -rf "$dir"; }
trap cleanup EXIT
cd "$dir"

bench_flags=(--quick --schemes=disco,s4 --seed=3)

# 1. Reference run, tracing off.
"$BENCH_BIN" "${bench_flags[@]}" --out="$dir/base" \
    > "$dir/base.txt" 2> "$dir/base.err"

# 2. Traced run (thread backend): identical bytes, valid trace.
"$BENCH_BIN" "${bench_flags[@]}" --out="$dir/tr" \
    --trace="$dir/run.trace.json" \
    > "$dir/tr.txt" 2> "$dir/tr.err"
if ! cmp "$dir/base.txt" "$dir/tr.txt"; then
  echo "trace_smoke: --trace= changed stdout" >&2
  exit 1
fi
for f in "$dir"/base/*.tsv; do
  if ! cmp "$f" "$dir/tr/$(basename "$f")"; then
    echo "trace_smoke: --trace= changed TSV $(basename "$f")" >&2
    exit 1
  fi
done
test -s "$dir/run.trace.json"
"$TRACECAT_BIN" validate "$dir/run.trace.json" > "$dir/validate.txt"
grep -q ': ok (' "$dir/validate.txt"
"$TRACECAT_BIN" summary "$dir/run.trace.json" > "$dir/summary.txt"
if ! grep -q 'exec.task' "$dir/summary.txt"; then
  echo "trace_smoke: summary is missing the exec.task span:" >&2
  cat "$dir/summary.txt" >&2
  exit 1
fi

# 3. Procs backend: identical bytes, and the merged timeline must span
#    the driver plus at least one worker process.
"$BENCH_BIN" "${bench_flags[@]}" --out="$dir/procs" \
    --backend=procs --workers=2 --trace="$dir/procs.trace.json" \
    > "$dir/procs.txt" 2> "$dir/procs.err"
if ! cmp "$dir/base.txt" "$dir/procs.txt"; then
  echo "trace_smoke: traced procs run stdout differs from baseline" >&2
  exit 1
fi
for f in "$dir"/base/*.tsv; do
  if ! cmp "$f" "$dir/procs/$(basename "$f")"; then
    echo "trace_smoke: traced procs TSV $(basename "$f") differs" >&2
    exit 1
  fi
done
"$TRACECAT_BIN" validate "$dir/procs.trace.json" > /dev/null
pids=$(grep -o '"pid":[0-9]*' "$dir/procs.trace.json" | sort -u | wc -l)
if [ "$pids" -lt 2 ]; then
  echo "trace_smoke: procs trace has $pids pid(s); expected >= 2" >&2
  exit 1
fi

# 4. The toolchain merges multiple traces into one valid timeline.
"$TRACECAT_BIN" merge --out="$dir/merged.json" \
    "$dir/run.trace.json" "$dir/procs.trace.json" > /dev/null
"$TRACECAT_BIN" validate "$dir/merged.json" > /dev/null

echo "trace_smoke OK: byte-identical with tracing on, $pids processes in the procs timeline"
