#include "routing/landmarks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace disco {
namespace {

Params WithSeed(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  return p;
}

TEST(Landmarks, AtLeastOneLandmarkAlways) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const LandmarkSet set = SelectLandmarks(8, WithSeed(seed));
    EXPECT_GE(set.count(), 1u) << "seed " << seed;
  }
}

TEST(Landmarks, FlagsMatchList) {
  const LandmarkSet set = SelectLandmarks(1000, WithSeed(3));
  std::size_t flagged = 0;
  for (NodeId v = 0; v < 1000; ++v) {
    if (set.Contains(v)) ++flagged;
  }
  EXPECT_EQ(flagged, set.count());
  for (const NodeId l : set.landmarks) EXPECT_TRUE(set.Contains(l));
}

TEST(Landmarks, ListIsSortedUnique) {
  const LandmarkSet set = SelectLandmarks(5000, WithSeed(7));
  for (std::size_t i = 1; i < set.landmarks.size(); ++i) {
    EXPECT_LT(set.landmarks[i - 1], set.landmarks[i]);
  }
}

TEST(Landmarks, DeterministicPerSeed) {
  const LandmarkSet a = SelectLandmarks(2000, WithSeed(11));
  const LandmarkSet b = SelectLandmarks(2000, WithSeed(11));
  EXPECT_EQ(a.landmarks, b.landmarks);
}

TEST(Landmarks, DifferentSeedsDiffer) {
  const LandmarkSet a = SelectLandmarks(2000, WithSeed(1));
  const LandmarkSet b = SelectLandmarks(2000, WithSeed(2));
  EXPECT_NE(a.landmarks, b.landmarks);
}

TEST(Landmarks, LocalDecisions) {
  // Node v's coin must not depend on n: growing the network does not flip
  // existing nodes (the amortized-churn property of §4.2 relies on
  // decisions being local; only the probability threshold moves).
  const Params p = WithSeed(13);
  const double p_small = LandmarkProbability(1000);
  const double p_large = LandmarkProbability(4000);
  ASSERT_GT(p_small, p_large);
  const LandmarkSet small = SelectLandmarks(1000, p);
  const LandmarkSet large = SelectLandmarks(4000, p);
  // Every landmark of the large (lower-probability) run that is < 1000
  // must also be a landmark of the small run.
  for (const NodeId l : large.landmarks) {
    if (l < 1000) {
      EXPECT_TRUE(small.Contains(l)) << l;
    }
  }
}

class LandmarkConcentration : public ::testing::TestWithParam<NodeId> {};

TEST_P(LandmarkConcentration, CountNearExpectation) {
  const NodeId n = GetParam();
  const double expected = n * LandmarkProbability(n);
  double total = 0;
  const int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    total += static_cast<double>(
        SelectLandmarks(n, WithSeed(100 + run)).count());
  }
  const double mean = total / kRuns;
  // Chernoff concentration: the mean over runs should sit well within
  // 25% of sqrt(n ln n).
  EXPECT_GT(mean, expected * 0.75) << "n=" << n;
  EXPECT_LT(mean, expected * 1.25) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LandmarkConcentration,
                         ::testing::Values(1024, 4096, 16384, 65536));

TEST(OperatorLandmarks, FromListDeduplicatesAndSorts) {
  const LandmarkSet set = LandmarksFromList(100, {5, 3, 5, 99, 3});
  EXPECT_EQ(set.landmarks, (std::vector<NodeId>{3, 5, 99}));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(4));
}

TEST(OperatorLandmarks, DegreeBasedPicksHubs) {
  // A star: the hub must be the first landmark chosen.
  std::vector<WeightedEdge> edges;
  for (NodeId v = 1; v < 64; ++v) edges.push_back({0, v, 1.0});
  const Graph g = Graph::FromEdges(64, edges);
  const LandmarkSet set = SelectDegreeBasedLandmarks(g, WithSeed(1));
  EXPECT_TRUE(set.Contains(0));
}

TEST(OperatorLandmarks, DegreeBasedCountMatchesRandomRule) {
  const Graph g = BarabasiAlbert(4096, 2, 3);
  const LandmarkSet degree = SelectDegreeBasedLandmarks(g, WithSeed(3));
  const double expected = 4096 * LandmarkProbability(4096);
  EXPECT_NEAR(static_cast<double>(degree.count()), expected, 1.0);
}

TEST(Landmarks, ProbFactorScalesCount) {
  Params dense = WithSeed(5);
  dense.landmark_prob_factor = 2.0;
  const std::size_t base = SelectLandmarks(16384, WithSeed(5)).count();
  const std::size_t doubled = SelectLandmarks(16384, dense).count();
  EXPECT_GT(doubled, base * 3 / 2);
  EXPECT_LT(doubled, base * 5 / 2);
}

}  // namespace
}  // namespace disco
