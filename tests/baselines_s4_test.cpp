#include "baselines/s4.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace disco {
namespace {

Params WithSeed(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  return p;
}

TEST(S4, BallContainsDestinationAndLandmark) {
  const Graph g = ConnectedGnm(512, 2048, 1);
  S4 s4(g, WithSeed(1));
  for (NodeId t = 0; t < g.num_nodes(); t += 67) {
    const auto ball = s4.Ball(t);
    EXPECT_TRUE(ball->Contains(t));
    // l_t is at distance exactly ClusterRadius(t), so the ≤ rule admits it.
    EXPECT_TRUE(ball->Contains(s4.addresses().closest_landmark(t)))
        << "dest " << t;
  }
}

TEST(S4, BallIsTheClusterPreimage) {
  // u ∈ Ball(t) ⇔ d(u,t) ≤ d(t,l_t): verify against a fresh Dijkstra.
  const Graph g = ConnectedGeometric(256, 8.0, 3);
  S4 s4(g, WithSeed(3));
  const NodeId t = 42 % g.num_nodes();
  const auto truth = Dijkstra(g, t);
  const auto ball = s4.Ball(t);
  const Dist radius = s4.ClusterRadius(t);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // Skip knife-edge nodes: the radius is summed from the landmark side
    // and d(t,u) from t's side, so the last ulp can differ on exact ties.
    if (std::abs(truth.dist[u] - radius) < 1e-9) continue;
    EXPECT_EQ(ball->Contains(u), truth.dist[u] < radius) << "node " << u;
  }
}

TEST(S4, RouteEndpointsAndValidity) {
  const Graph g = ConnectedGnm(512, 2048, 5);
  S4 s4(g, WithSeed(5));
  for (NodeId s = 0; s < g.num_nodes(); s += 73) {
    for (NodeId t = 1; t < g.num_nodes(); t += 71) {
      if (s == t) continue;
      const Route later = s4.RouteLater(s, t);
      const Route first = s4.RouteFirst(s, t);
      ASSERT_TRUE(later.ok());
      ASSERT_TRUE(first.ok());
      EXPECT_EQ(later.path.front(), s);
      EXPECT_EQ(later.path.back(), t);
      EXPECT_EQ(first.path.front(), s);
      EXPECT_EQ(first.path.back(), t);
      // The first packet detours via resolution, never beating later ones.
      EXPECT_LE(later.length, first.length + 1e-9);
    }
  }
}

class S4StretchBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(S4StretchBound, LaterPacketsWithinStretch3) {
  // With the destination's address known, S4 inherits TZ stretch ≤ 3
  // (cluster version needs no extra qualification beyond l_t existing).
  const std::uint64_t seed = GetParam();
  const Graph g = ConnectedGeometric(512, 8.0, seed);
  S4 s4(g, WithSeed(seed));
  for (NodeId s = 1; s < g.num_nodes(); s += 53) {
    const auto truth = Dijkstra(g, s);
    for (NodeId t = 2; t < g.num_nodes(); t += 59) {
      if (s == t || truth.dist[t] <= 0) continue;
      const Route r = s4.RouteLater(s, t);
      EXPECT_LE(r.length / truth.dist[t], 3.0 + 1e-9) << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, S4StretchBound,
                         ::testing::Values(1, 2, 3, 4));

TEST(S4, FirstPacketStretchCanExplode) {
  // The resolution detour produces large first-packet stretch for nearby
  // pairs — the qualitative S4-First behavior of Fig. 3.
  const Graph g = ConnectedGeometric(1024, 8.0, 7);
  S4 s4(g, WithSeed(7));
  double worst_first = 0, worst_later = 0;
  for (NodeId s = 0; s < g.num_nodes(); s += 29) {
    const auto truth = Dijkstra(g, s);
    for (NodeId t = 1; t < g.num_nodes(); t += 31) {
      if (s == t || truth.dist[t] <= 0) continue;
      worst_first = std::max(
          worst_first, s4.RouteFirst(s, t).length / truth.dist[t]);
      worst_later = std::max(
          worst_later, s4.RouteLater(s, t).length / truth.dist[t]);
    }
  }
  EXPECT_GT(worst_first, 3.0);   // far beyond the later-packet bound
  EXPECT_LE(worst_later, 3.0 + 1e-9);
}

TEST(S4, WorstCaseTreeExplodesRootCluster) {
  // Footnote 6: on the sqrt(n)-branching tree, most grandchildren land in
  // the root's cluster, so S4's root state is Θ(n) while its vicinity-based
  // counterpart would stay at O(sqrt(n log n)).
  const NodeId b = 32;  // n = 1 + 32 + 1024 = 1057
  const Graph g = S4WorstCaseTree(b);
  S4 s4(g, WithSeed(11));
  const auto& sizes = s4.ClusterSizes();
  EXPECT_GT(sizes[0], g.num_nodes() / 3)
      << "root cluster should hold most grandchildren";
  const std::size_t vicinity_equivalent = VicinitySize(g.num_nodes());
  EXPECT_GT(sizes[0], 2 * vicinity_equivalent);
}

TEST(S4, ClusterSizesConsistentWithDefinition) {
  const Graph g = ConnectedGnm(256, 1024, 13);
  S4 s4(g, WithSeed(13));
  const auto& sizes = s4.ClusterSizes();
  // Spot-check: recompute node 5's cluster by definition.
  std::size_t expected = 0;
  const auto from5 = Dijkstra(g, 5);
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (from5.dist[w] <= s4.ClusterRadius(w) + 1e-12) ++expected;
  }
  EXPECT_EQ(sizes[5], expected);
}

TEST(S4, StateBreakdownComponents) {
  const Graph g = ConnectedGnm(512, 2048, 15);
  S4 s4(g, WithSeed(15));
  const StateBreakdown b = s4.State(9);
  EXPECT_EQ(b.landmark_entries, s4.landmarks().count());
  EXPECT_EQ(b.cluster_entries, s4.ClusterSizes()[9]);
  EXPECT_EQ(b.vicinity_entries, 0u);
  EXPECT_EQ(b.group_entries, 0u);
}

}  // namespace
}  // namespace disco
