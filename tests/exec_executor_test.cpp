// Executor-layer tests: thread-backend semantics, wire round-trips, the
// transport-agnostic TaskScheduler's failure accounting, and — through
// the exec_test_worker helper binary — the process backend's failure
// handling: a SIGKILLed worker's task rescheduled onto a survivor
// (converging to the same bytes as the in-process run), a poison task
// exhausting its retries with the failing task named, a drained pool
// surfacing an error, a straggler past the deadline getting a
// speculative duplicate, and misbehaving workers (forged frame index,
// protocol-error frames) failing the run instead of corrupting it.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "exec/executor.h"
#include "exec/task_scheduler.h"
#include "exec/wire.h"

#ifndef EXEC_TEST_WORKER_PATH
#error "build must define EXEC_TEST_WORKER_PATH (see CMakeLists.txt)"
#endif

namespace disco {
namespace {

std::vector<std::string> ExpectedResults(std::size_t count) {
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < count; ++i) {
    expected.push_back("result-" + std::to_string(i));
  }
  return expected;
}

class ExecutorTest : public ::testing::Test {
 protected:
  // Each test is one independent "driver" process as far as job numbering
  // is concerned: its first Run call must claim job 0, because that is the
  // job its helper workers are told to serve.
  void SetUp() override { exec::ResetJobNumberingForTest(); }

  std::string TempPath(const std::string& name) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string path = ::testing::TempDir() + "exec_" +
                             info->name() + "_" + name + "_" +
                             std::to_string(::getpid());
    std::remove(path.c_str());
    return path;
  }

  exec::ExecOptions ProcOpts(std::size_t workers,
                             std::vector<std::string> helper_flags) {
    exec::ExecOptions opts;
    opts.backend = exec::Backend::kProcs;
    opts.workers = workers;
    opts.max_retries = 2;
    opts.straggler_ms = 0;
    opts.worker_argv = {EXEC_TEST_WORKER_PATH};
    for (std::string& f : helper_flags) {
      opts.worker_argv.push_back(std::move(f));
    }
    return opts;
  }

  // The process backend never evaluates the task function driver-side.
  exec::TaskFn NotCalled() {
    return [](std::size_t) -> std::string {
      throw std::logic_error("driver-side task function must not run");
    };
  }
};

TEST_F(ExecutorTest, WireRoundTripsExactly) {
  std::string buf;
  exec::PutU64(&buf, 0x0123456789abcdefULL);
  exec::PutDouble(&buf, 0.1);  // not exactly representable: bits must ship
  exec::PutString(&buf, std::string("with\0byte\n", 10));
  exec::WireReader r(buf);
  std::uint64_t u = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.GetU64(&u));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u, 0x0123456789abcdefULL);
  EXPECT_EQ(d, 0.1);
  EXPECT_EQ(s, std::string("with\0byte\n", 10));
  EXPECT_FALSE(r.GetU64(&u));  // exhausted
  EXPECT_FALSE(r.ok());

  exec::TextBundle bundle;
  bundle.parts = {"line one\n", ""};
  bundle.files = {{"a.tsv", "1\t2\n"}, {"b.tsv", ""}};
  exec::TextBundle parsed;
  ASSERT_TRUE(exec::TextBundle::Parse(bundle.Serialize(), &parsed));
  EXPECT_EQ(parsed.parts, bundle.parts);
  EXPECT_EQ(parsed.files, bundle.files);
  EXPECT_FALSE(exec::TextBundle::Parse("truncated", &parsed));
}

TEST_F(ExecutorTest, ThreadBackendReturnsResultsInTaskOrder) {
  const auto executor = exec::MakeExecutor(exec::ExecOptions{});
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(
      64, [](std::size_t i) { return "result-" + std::to_string(i); },
      &results);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(results, ExpectedResults(64));
}

TEST_F(ExecutorTest, ThreadBackendNamesTheLowestFailingTask) {
  const auto executor = exec::MakeExecutor(exec::ExecOptions{});
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(
      16,
      [](std::size_t i) -> std::string {
        if (i == 5 || i == 11) throw std::runtime_error("boom");
        return "ok";
      },
      &results);
  ASSERT_FALSE(status.ok);
  ASSERT_TRUE(status.task_known);
  EXPECT_EQ(status.failed_task, 5u);
  EXPECT_NE(status.error.find("task 5"), std::string::npos) << status.error;
}

TEST_F(ExecutorTest, ProcsBackendMatchesThreadBackendBytes) {
  const auto executor = exec::MakeExecutor(ProcOpts(3, {"--mode=echo"}));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(8, NotCalled(), &results);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(results, ExpectedResults(8));
}

TEST_F(ExecutorTest, SigkilledWorkerTaskReschedulesAndBytesConverge) {
  const std::string marker = TempPath("marker");
  const auto executor = exec::MakeExecutor(
      ProcOpts(2, {"--mode=kill-self-task2", "--marker=" + marker}));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(6, NotCalled(), &results);
  ASSERT_TRUE(status.ok) << status.error;
  // One worker really did die mid-task 2...
  struct stat st;
  EXPECT_EQ(::stat(marker.c_str(), &st), 0)
      << "the kill-self marker was never created: no worker died";
  // ...and the run still converged to exactly the in-process bytes,
  // task 2 included (rescheduled onto the surviving worker).
  EXPECT_EQ(results, ExpectedResults(6));
  std::remove(marker.c_str());
}

TEST_F(ExecutorTest, PoisonTaskExhaustsRetriesAndIsNamed) {
  exec::ExecOptions opts = ProcOpts(2, {"--mode=fail-task1"});
  opts.max_retries = 1;
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(4, NotCalled(), &results);
  ASSERT_FALSE(status.ok);
  ASSERT_TRUE(status.task_known);
  EXPECT_EQ(status.failed_task, 1u);
  EXPECT_NE(status.error.find("task 1"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("2 attempt"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find("poisoned"), std::string::npos)
      << status.error;
}

TEST_F(ExecutorTest, DrainedWorkerPoolSurfacesAnError) {
  // Task 2 kills every worker that touches it; with retries to spare the
  // pool itself runs dry, which must be an error, not a hang.
  exec::ExecOptions opts = ProcOpts(2, {"--mode=kill-always-task2"});
  opts.max_retries = 5;
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(6, NotCalled(), &results);
  ASSERT_FALSE(status.ok);
  EXPECT_FALSE(status.error.empty());
}

TEST_F(ExecutorTest, SchedulerSkipsStaleDoneEntriesInPending) {
  // A task can sit in the pending queue after it already finished (the
  // straggler path re-queues an in-flight task; the original may then
  // complete first). Handing out the stale entry would run a done task
  // again and stall a live one; returning "no task" on first pop — the
  // old dispatch-loop bug — idles the slot while real work waits behind
  // the stale entry.
  std::vector<std::string> results;
  exec::TaskScheduler sched(3, /*max_retries=*/2, /*straggler_ms=*/0,
                            &results);
  const std::size_t s0 = sched.AddSlot();
  const std::size_t s1 = sched.AddSlot();
  const auto now = std::chrono::steady_clock::now();
  ASSERT_EQ(sched.NextTask(s0, now), 0u);
  sched.PushPendingFrontForTest(0);  // straggler-style duplicate entry
  ASSERT_TRUE(sched.OnResult(s0, 0, "r0"));  // original finishes first
  // The stale 0 at the queue front must be skipped, not dispensed and
  // not treated as "queue empty".
  EXPECT_EQ(sched.NextTask(s1, now), 1u);
  EXPECT_EQ(sched.NextTask(s0, now), 2u);
  ASSERT_TRUE(sched.OnResult(s1, 1, "r1"));
  ASSERT_TRUE(sched.OnResult(s0, 2, "r2"));
  EXPECT_TRUE(sched.done());
  EXPECT_EQ(results, (std::vector<std::string>{"r0", "r1", "r2"}));
}

TEST_F(ExecutorTest, SchedulerRejectsFramesForTasksTheSlotDoesNotHold) {
  // A frame index is only trusted when it names the task the slot was
  // handed. Crediting a worker-reported index blindly let a buggy worker
  // drive a task's inflight count negative and strand the run.
  std::vector<std::string> results;
  exec::TaskScheduler sched(2, 2, 0, &results);
  const std::size_t s0 = sched.AddSlot();
  ASSERT_EQ(sched.NextTask(s0, std::chrono::steady_clock::now()), 0u);
  EXPECT_FALSE(sched.OnResult(s0, 1, "forged"));
  EXPECT_NE(sched.error().find("task 1 while running task 0"),
            std::string::npos)
      << sched.error();

  std::vector<std::string> results2;
  exec::TaskScheduler idle(2, 2, 0, &results2);
  const std::size_t i0 = idle.AddSlot();
  EXPECT_FALSE(idle.OnResult(i0, 0, "unsolicited"));
  EXPECT_NE(idle.error().find("while idle"), std::string::npos)
      << idle.error();
}

TEST_F(ExecutorTest, EnvKnobsRejectOverflowAndGarbage) {
  // The env fallbacks must clamp-check exactly like flag parsing:
  // strtol on "99999999999" saturates to LONG_MAX (no ERANGE check meant
  // it was truncated into whatever int cast fell out) and garbage must
  // not read as 0.
  ASSERT_EQ(::setenv("DISCO_EXEC_RETRIES", "99999999999", 1), 0);
  EXPECT_EQ(exec::EffectiveMaxRetries(-1), 2);  // overflow -> default
  ASSERT_EQ(::setenv("DISCO_EXEC_RETRIES", "7x", 1), 0);
  EXPECT_EQ(exec::EffectiveMaxRetries(-1), 2);  // garbage -> default
  ASSERT_EQ(::setenv("DISCO_EXEC_RETRIES", "-3", 1), 0);
  EXPECT_EQ(exec::EffectiveMaxRetries(-1), 2);  // negative -> default
  ASSERT_EQ(::setenv("DISCO_EXEC_RETRIES", "7", 1), 0);
  EXPECT_EQ(exec::EffectiveMaxRetries(-1), 7);  // sane value honored
  ASSERT_EQ(::unsetenv("DISCO_EXEC_RETRIES"), 0);
  EXPECT_EQ(exec::EffectiveMaxRetries(-1), 2);  // unset -> default

  ASSERT_EQ(::setenv("DISCO_EXEC_NET_RECONNECTS", "99999999999", 1), 0);
  EXPECT_EQ(exec::EffectiveNetReconnects(), 5);
  ASSERT_EQ(::unsetenv("DISCO_EXEC_NET_RECONNECTS"), 0);
}

TEST_F(ExecutorTest, WorkerForgingAWrongIndexFrameFailsTheRun) {
  // Task 1's worker emits a result frame claiming to be task 0 (which
  // another slot holds or already finished). The run must fail with the
  // mismatch named — not credit task 0 with bytes it never produced.
  const auto executor =
      exec::MakeExecutor(ProcOpts(2, {"--mode=wrong-index-task1"}));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(4, NotCalled(), &results);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("while running task"), std::string::npos)
      << status.error;
}

TEST_F(ExecutorTest, WorkerProtocolErrorFrameFailsTheRun) {
  // A protocol-error frame is attributable to no task, so it must fail
  // the whole run — the old text protocol echoed the garbage back as a
  // task error and charged an innocent task a retry.
  const auto executor =
      exec::MakeExecutor(ProcOpts(2, {"--mode=badreq-task1"}));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(4, NotCalled(), &results);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("protocol error"), std::string::npos)
      << status.error;
}

TEST_F(ExecutorTest, StragglerIsSpeculativelyDuplicated) {
  const std::string marker = TempPath("marker");
  exec::ExecOptions opts =
      ProcOpts(2, {"--mode=sleep-task0", "--marker=" + marker});
  opts.straggler_ms = 100;  // task 0 sleeps 1200 ms: far past the deadline
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(2, NotCalled(), &results);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(results, ExpectedResults(2));
  // Task 0 appends one marker byte per attempt: the original plus the
  // speculative duplicate the idle worker picked up.
  std::ifstream in(marker, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str().size(), 2u)
      << "expected the straggling task to run exactly twice";
  std::remove(marker.c_str());
}

}  // namespace
}  // namespace disco
