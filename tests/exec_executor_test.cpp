// Executor-layer tests: thread-backend semantics, wire round-trips, and —
// through the exec_test_worker helper binary — the process backend's
// failure handling: a SIGKILLed worker's task rescheduled onto a survivor
// (converging to the same bytes as the in-process run), a poison task
// exhausting its retries with the failing task named, a drained pool
// surfacing an error, and a straggler past the deadline getting a
// speculative duplicate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "exec/executor.h"
#include "exec/wire.h"

#ifndef EXEC_TEST_WORKER_PATH
#error "build must define EXEC_TEST_WORKER_PATH (see CMakeLists.txt)"
#endif

namespace disco {
namespace {

std::vector<std::string> ExpectedResults(std::size_t count) {
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < count; ++i) {
    expected.push_back("result-" + std::to_string(i));
  }
  return expected;
}

class ExecutorTest : public ::testing::Test {
 protected:
  // Each test is one independent "driver" process as far as job numbering
  // is concerned: its first Run call must claim job 0, because that is the
  // job its helper workers are told to serve.
  void SetUp() override { exec::ResetJobNumberingForTest(); }

  std::string TempPath(const std::string& name) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string path = ::testing::TempDir() + "exec_" +
                             info->name() + "_" + name + "_" +
                             std::to_string(::getpid());
    std::remove(path.c_str());
    return path;
  }

  exec::ExecOptions ProcOpts(std::size_t workers,
                             std::vector<std::string> helper_flags) {
    exec::ExecOptions opts;
    opts.backend = exec::Backend::kProcs;
    opts.workers = workers;
    opts.max_retries = 2;
    opts.straggler_ms = 0;
    opts.worker_argv = {EXEC_TEST_WORKER_PATH};
    for (std::string& f : helper_flags) {
      opts.worker_argv.push_back(std::move(f));
    }
    return opts;
  }

  // The process backend never evaluates the task function driver-side.
  exec::TaskFn NotCalled() {
    return [](std::size_t) -> std::string {
      throw std::logic_error("driver-side task function must not run");
    };
  }
};

TEST_F(ExecutorTest, WireRoundTripsExactly) {
  std::string buf;
  exec::PutU64(&buf, 0x0123456789abcdefULL);
  exec::PutDouble(&buf, 0.1);  // not exactly representable: bits must ship
  exec::PutString(&buf, std::string("with\0byte\n", 10));
  exec::WireReader r(buf);
  std::uint64_t u = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.GetU64(&u));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u, 0x0123456789abcdefULL);
  EXPECT_EQ(d, 0.1);
  EXPECT_EQ(s, std::string("with\0byte\n", 10));
  EXPECT_FALSE(r.GetU64(&u));  // exhausted
  EXPECT_FALSE(r.ok());

  exec::TextBundle bundle;
  bundle.parts = {"line one\n", ""};
  bundle.files = {{"a.tsv", "1\t2\n"}, {"b.tsv", ""}};
  exec::TextBundle parsed;
  ASSERT_TRUE(exec::TextBundle::Parse(bundle.Serialize(), &parsed));
  EXPECT_EQ(parsed.parts, bundle.parts);
  EXPECT_EQ(parsed.files, bundle.files);
  EXPECT_FALSE(exec::TextBundle::Parse("truncated", &parsed));
}

TEST_F(ExecutorTest, ThreadBackendReturnsResultsInTaskOrder) {
  const auto executor = exec::MakeExecutor(exec::ExecOptions{});
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(
      64, [](std::size_t i) { return "result-" + std::to_string(i); },
      &results);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(results, ExpectedResults(64));
}

TEST_F(ExecutorTest, ThreadBackendNamesTheLowestFailingTask) {
  const auto executor = exec::MakeExecutor(exec::ExecOptions{});
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(
      16,
      [](std::size_t i) -> std::string {
        if (i == 5 || i == 11) throw std::runtime_error("boom");
        return "ok";
      },
      &results);
  ASSERT_FALSE(status.ok);
  ASSERT_TRUE(status.task_known);
  EXPECT_EQ(status.failed_task, 5u);
  EXPECT_NE(status.error.find("task 5"), std::string::npos) << status.error;
}

TEST_F(ExecutorTest, ProcsBackendMatchesThreadBackendBytes) {
  const auto executor = exec::MakeExecutor(ProcOpts(3, {"--mode=echo"}));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(8, NotCalled(), &results);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(results, ExpectedResults(8));
}

TEST_F(ExecutorTest, SigkilledWorkerTaskReschedulesAndBytesConverge) {
  const std::string marker = TempPath("marker");
  const auto executor = exec::MakeExecutor(
      ProcOpts(2, {"--mode=kill-self-task2", "--marker=" + marker}));
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(6, NotCalled(), &results);
  ASSERT_TRUE(status.ok) << status.error;
  // One worker really did die mid-task 2...
  struct stat st;
  EXPECT_EQ(::stat(marker.c_str(), &st), 0)
      << "the kill-self marker was never created: no worker died";
  // ...and the run still converged to exactly the in-process bytes,
  // task 2 included (rescheduled onto the surviving worker).
  EXPECT_EQ(results, ExpectedResults(6));
  std::remove(marker.c_str());
}

TEST_F(ExecutorTest, PoisonTaskExhaustsRetriesAndIsNamed) {
  exec::ExecOptions opts = ProcOpts(2, {"--mode=fail-task1"});
  opts.max_retries = 1;
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(4, NotCalled(), &results);
  ASSERT_FALSE(status.ok);
  ASSERT_TRUE(status.task_known);
  EXPECT_EQ(status.failed_task, 1u);
  EXPECT_NE(status.error.find("task 1"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("2 attempt"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find("poisoned"), std::string::npos)
      << status.error;
}

TEST_F(ExecutorTest, DrainedWorkerPoolSurfacesAnError) {
  // Task 2 kills every worker that touches it; with retries to spare the
  // pool itself runs dry, which must be an error, not a hang.
  exec::ExecOptions opts = ProcOpts(2, {"--mode=kill-always-task2"});
  opts.max_retries = 5;
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(6, NotCalled(), &results);
  ASSERT_FALSE(status.ok);
  EXPECT_FALSE(status.error.empty());
}

TEST_F(ExecutorTest, StragglerIsSpeculativelyDuplicated) {
  const std::string marker = TempPath("marker");
  exec::ExecOptions opts =
      ProcOpts(2, {"--mode=sleep-task0", "--marker=" + marker});
  opts.straggler_ms = 100;  // task 0 sleeps 1200 ms: far past the deadline
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(2, NotCalled(), &results);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(results, ExpectedResults(2));
  // Task 0 appends one marker byte per attempt: the original plus the
  // speculative duplicate the idle worker picked up.
  std::ifstream in(marker, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(bytes.str().size(), 2u)
      << "expected the straggling task to run exactly twice";
  std::remove(marker.c_str());
}

}  // namespace
}  // namespace disco
