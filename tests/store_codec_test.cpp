// Tree codec (src/store/tree_codec.h): decode(encode(tree)) must be the
// identity — bit-exact distances included — the compression target must
// hold, and malformed frames must be rejected, never misdecoded.
#include "store/tree_codec.h"

#include <gtest/gtest.h>

#include <cstring>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "runtime/thread_pool.h"
#include "test_util.h"

namespace disco {
namespace {

using testing::DiamondGraph;
using testing::PathGraph;

// Bitwise equality: the acceptance bar is byte-identical bench output, so
// value equality (which 0.0 == -0.0 would satisfy) is not enough.
void ExpectTreesIdentical(const ShortestPathTree& a,
                          const ShortestPathTree& b) {
  ASSERT_EQ(a.dist.size(), b.dist.size());
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.parent, b.parent);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t v = 0; v < a.dist.size(); ++v) {
    EXPECT_EQ(std::memcmp(&a.dist[v], &b.dist[v], sizeof(Dist)), 0)
        << "dist bits differ at node " << v;
  }
}

void ExpectRoundTrip(const Graph& g, NodeId source) {
  const ShortestPathTree t = Dijkstra(g, source);
  const std::string frame = store::EncodeTree(g, t);
  ASSERT_FALSE(frame.empty());
  ShortestPathTree back;
  ASSERT_TRUE(store::DecodeTree(g, frame, &back));
  ExpectTreesIdentical(t, back);
}

TEST(TreeCodec, RoundTripSmallCanonicalGraphs) {
  ExpectRoundTrip(PathGraph(6), 0);
  ExpectRoundTrip(PathGraph(6), 5);
  ExpectRoundTrip(DiamondGraph(), 0);
  ExpectRoundTrip(DiamondGraph(), 3);
}

TEST(TreeCodec, RoundTripRandomGraphsManySeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    // The connected generators may land slightly under the requested
    // size; derive sources from the actual node count.
    const Graph g = ConnectedGnm(512, 2048, seed);
    for (const NodeId src :
         {NodeId{0}, g.num_nodes() / 3, g.num_nodes() - 1}) {
      ExpectRoundTrip(g, src);
    }
  }
}

TEST(TreeCodec, RoundTripFloatWeights) {
  // Geometric graphs have irrational-looking distances; exact float
  // reproduction is the whole point of interface-index coding.
  const Graph g = ConnectedGeometric(256, 8.0, 7);
  for (const NodeId src :
       {NodeId{0}, g.num_nodes() / 2, g.num_nodes() - 1}) {
    ExpectRoundTrip(g, src);
  }
}

TEST(TreeCodec, RoundTripParallelEdges) {
  // FromEdges keeps parallel edges; the codec must pin the exact arc so
  // the decoded distance uses the right weight.
  const std::vector<WeightedEdge> edges = {
      {0, 1, 2.0}, {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}, {0, 2, 5.0}};
  const Graph g = Graph::FromEdges(3, edges);
  ExpectRoundTrip(g, 0);
  ExpectRoundTrip(g, 2);
}

TEST(TreeCodec, RoundTripUnreachableNodes) {
  // Two components plus an isolated node: unreachability must survive.
  const std::vector<WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 2.5}};
  const Graph g = Graph::FromEdges(6, edges);
  const ShortestPathTree t = Dijkstra(g, 0);
  const std::string frame = store::EncodeTree(g, t);
  ASSERT_FALSE(frame.empty());
  ShortestPathTree back;
  ASSERT_TRUE(store::DecodeTree(g, frame, &back));
  ExpectTreesIdentical(t, back);
  EXPECT_FALSE(back.reachable(3));
  EXPECT_FALSE(back.reachable(5));
  EXPECT_EQ(back.parent[4], kInvalidNode);
}

TEST(TreeCodec, RoundTripSingleNodeGraph) {
  const Graph g = Graph::FromEdges(1, {});
  ExpectRoundTrip(g, 0);
}

TEST(TreeCodec, MeetsCompressionTargetOn4096NodeGnm) {
  // Acceptance criterion: encoded trees at most half the in-memory
  // ShortestPathTree footprint on a 4096-node Gnm graph. The codec
  // actually lands near 4% (about 4.5 bits/node at average degree 8).
  const Graph g = ConnectedGnm(4096, 4ull * 4096, 1);
  for (const NodeId src : {NodeId{0}, g.num_nodes() / 2}) {
    const ShortestPathTree t = Dijkstra(g, src);
    const std::string frame = store::EncodeTree(g, t);
    ASSERT_FALSE(frame.empty());
    EXPECT_LE(frame.size(), store::TreeMemoryBytes(t) / 2)
        << "encoded " << frame.size() << "B vs "
        << store::TreeMemoryBytes(t) << "B in memory";
  }
}

TEST(TreeCodec, EncodingIsByteStableAcrossThreadCounts) {
  // Trees may be produced under any pool width (Prewarm fan-out); their
  // encodings must be identical bytes regardless.
  const Graph g = ConnectedGnm(256, 1024, 9);
  runtime::ThreadPool::ResetShared(1);
  const std::string narrow = store::EncodeTree(g, Dijkstra(g, 3));
  runtime::ThreadPool::ResetShared(4);
  const std::string wide = store::EncodeTree(g, Dijkstra(g, 3));
  runtime::ThreadPool::ResetShared(runtime::DefaultThreadCount());
  EXPECT_EQ(narrow, wide);
}

TEST(TreeCodec, RejectsMalformedFrames) {
  const Graph g = ConnectedGnm(128, 512, 4);
  const std::string frame = store::EncodeTree(g, Dijkstra(g, 5));
  ShortestPathTree out;
  EXPECT_FALSE(store::DecodeTree(g, std::string(), &out));
  EXPECT_FALSE(store::DecodeTree(g, std::string("junkjunkjunk"), &out));
  // Truncation at any prefix length must fail cleanly, never crash or
  // fabricate a tree.
  for (std::size_t cut = 0; cut + 1 < frame.size(); cut += 7) {
    EXPECT_FALSE(store::DecodeTree(g, frame.substr(0, cut), &out));
  }
}

TEST(TreeCodec, RejectsFrameForDifferentGraphSize) {
  const Graph g = ConnectedGnm(128, 512, 4);
  const Graph other = ConnectedGnm(256, 1024, 4);
  const std::string frame = store::EncodeTree(g, Dijkstra(g, 5));
  ShortestPathTree out;
  EXPECT_FALSE(store::DecodeTree(other, frame, &out));
}

TEST(TreeCodec, EncodeRejectsForeignTree) {
  // A tree computed on one graph is not encodable against another of the
  // same size whose arcs cannot explain it.
  const Graph g = PathGraph(8);
  const std::vector<WeightedEdge> edges = {
      {0, 2, 1.0}, {2, 4, 1.0}, {4, 6, 1.0}, {6, 7, 1.0},
      {1, 3, 1.0}, {3, 5, 1.0}, {5, 7, 1.0}, {0, 1, 1.0}};
  const Graph other = Graph::FromEdges(8, edges);
  const ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_EQ(store::EncodeTree(other, t), "");
}

}  // namespace
}  // namespace disco
