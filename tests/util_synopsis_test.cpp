#include "util/synopsis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace disco {
namespace {

TEST(Synopsis, EmptyEstimatesSmall) {
  Synopsis s(32);
  EXPECT_LT(s.Estimate(), 2.0);
}

TEST(Synopsis, ByteSizeMatchesPaper) {
  // The paper cites ~10% accuracy with 256-byte synopses.
  EXPECT_EQ(Synopsis(32).byte_size(), 256u);
}

TEST(Synopsis, MergeIsIdempotent) {
  Synopsis a = Synopsis::ForElement(1);
  Synopsis b = a;
  b.Merge(a);
  EXPECT_EQ(a, b);
}

TEST(Synopsis, MergeIsCommutativeAndDuplicateInsensitive) {
  Synopsis ab(32), ba(32), ab_dup(32);
  const Synopsis ea = Synopsis::ForElement(1), eb = Synopsis::ForElement(2);
  ab.Merge(ea);
  ab.Merge(eb);
  ba.Merge(eb);
  ba.Merge(ea);
  ab_dup.Merge(ea);
  ab_dup.Merge(eb);
  ab_dup.Merge(ea);  // duplicate contribution must not change anything
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab, ab_dup);
}

class SynopsisAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(SynopsisAccuracy, EstimateWithinConstantFactor) {
  const int n = GetParam();
  Synopsis all(32);
  for (int i = 0; i < n; ++i) all.Merge(Synopsis::ForElement(i));
  const double est = all.Estimate();
  // Disco only needs a constant-factor estimate (§4.1); 32 bitmaps give
  // much better than 2x in practice.
  EXPECT_GT(est, n / 2.0) << "n=" << n;
  EXPECT_LT(est, n * 2.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SynopsisAccuracy,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

TEST(SynopsisGossip, ConvergesToUniformEstimate) {
  const Graph g = ConnectedGnm(256, 1024, 7);
  // After enough rounds (≥ diameter) every node holds the same union
  // synopsis, hence identical estimates.
  const auto estimates = GossipEstimates(g, 32);
  for (std::size_t v = 1; v < estimates.size(); ++v) {
    ASSERT_DOUBLE_EQ(estimates[v], estimates[0]);
  }
  EXPECT_GT(estimates[0], g.num_nodes() / 2.0);
  EXPECT_LT(estimates[0], g.num_nodes() * 2.0);
}

TEST(SynopsisGossip, PartialGossipUndercounts) {
  // A ring has diameter n/2; after 3 rounds each node has seen only its
  // 3-hop neighborhood, so estimates must be far below n.
  const Graph g = Ring(512);
  const auto estimates = GossipEstimates(g, 3);
  for (const double e : estimates) EXPECT_LT(e, 64.0);
}

TEST(SynopsisGossip, EstimatesImproveWithRounds) {
  const Graph g = Ring(64);
  const auto early = GossipEstimates(g, 2);
  const auto late = GossipEstimates(g, 32);  // full cover
  EXPECT_LT(early[0], late[0]);
  EXPECT_GT(late[0], 32.0);
  EXPECT_LT(late[0], 128.0);
}

}  // namespace
}  // namespace disco
