#!/usr/bin/env bash
# CI smoke for the out-of-core graph pipeline, end to end through the
# binaries:
#   1. disco_graphbench at n=10^5 runs the full cycle — generate,
#      snapshot-encode, decode, save, mmap reload, spot-route — and its
#      two self-checks (fingerprint and bit-identical Dijkstras over the
#      borrowed view) must print OK; the emitted JSON must carry the
#      graphbench schema markers,
#   2. peak RSS of that run must stay under a generous ceiling — a
#      regression that materializes adjacency copies at graph scale
#      shows up here long before the million-node runs,
#   3. a fig09 --xl cold run must publish the snapshot into the store
#      and the warm re-run must mmap it back with ZERO generator work
#      (stderr [graph] counters: generated=0, mmap=1) and report the
#      same fingerprint.
#   usage: graph_smoke.sh <disco_graphbench> <fig09_scaling>
set -euo pipefail

GRAPHBENCH_BIN="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
FIG09_BIN="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
dir="$(mktemp -d)"
cleanup() { cd / && rm -rf "$dir"; }
trap cleanup EXIT
cd "$dir"

# 1. Full pipeline at n=10^5. The binary itself exits non-zero if a
#    self-check fails; grep anyway so a silent early exit cannot pass.
"$GRAPHBENCH_BIN" --n=100000 --seed=3 --out="$dir" \
    --json="$dir/graph.json" > "$dir/bench.txt"
grep -q '^self-check fingerprint: OK$' "$dir/bench.txt" || {
  echo "graph_smoke: fingerprint self-check did not pass:" >&2
  cat "$dir/bench.txt" >&2
  exit 1
}
grep -q '^self-check spot-routes: OK$' "$dir/bench.txt" || {
  echo "graph_smoke: spot-route self-check did not pass:" >&2
  cat "$dir/bench.txt" >&2
  exit 1
}
grep -q '"bench": "disco_graphbench"' "$dir/graph.json"
grep -q '"mmap_speedup"' "$dir/graph.json"

# 2. Peak-RSS guard: n=10^5 needs tens of MB of CSR; a 1 GB ceiling only
#    trips on wholesale duplication of the graph at scale.
rss_kb="$(awk '/^peak rss:/ { print $3 }' "$dir/bench.txt")"
if [ -z "$rss_kb" ] || [ "$rss_kb" -le 0 ]; then
  echo "graph_smoke: no peak rss line in bench output" >&2
  exit 1
fi
if [ "$rss_kb" -gt 1000000 ]; then
  echo "graph_smoke: peak RSS ${rss_kb} KB exceeds the 1 GB guard" >&2
  exit 1
fi

# 3. Cold then warm fig09 --xl against the same store (small n to stay in
#    the smoke budget; the flow is scale-independent).
"$FIG09_BIN" --xl --n=30000 --seed=5 --store="$dir/store" --out="$dir" \
    > "$dir/cold.txt" 2> "$dir/cold.err"
grep -q '^mode=cold ' "$dir/cold.txt"
"$FIG09_BIN" --xl --n=30000 --seed=5 --store="$dir/store" --out="$dir" \
    > "$dir/warm.txt" 2> "$dir/warm.err"
grep -q '^mode=warm ' "$dir/warm.txt" || {
  echo "graph_smoke: second --xl run did not go warm:" >&2
  cat "$dir/warm.txt" >&2
  exit 1
}
# Zero generator work on the warm run, and the graph arrived via mmap.
grep -q 'sources: generated=0 mmap=1 decode=0' "$dir/warm.err" || {
  echo "graph_smoke: warm --xl run still generated (or decoded):" >&2
  cat "$dir/warm.err" >&2
  exit 1
}
fp_cold="$(grep -o 'fingerprint=[0-9a-f]*' "$dir/cold.txt")"
fp_warm="$(grep -o 'fingerprint=[0-9a-f]*' "$dir/warm.txt")"
if [ -z "$fp_cold" ] || [ "$fp_cold" != "$fp_warm" ]; then
  echo "graph_smoke: warm fingerprint differs from cold" >&2
  exit 1
fi

echo "graph_smoke: ok"
