#include "routing/vicinity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace disco {
namespace {

using testing::PathGraph;

TEST(Vicinity, ContainsOwnerAtZero) {
  const Graph g = PathGraph(10);
  const Vicinity vic(5, KNearest(g, 5, 4));
  EXPECT_EQ(vic.owner(), 5u);
  EXPECT_TRUE(vic.Contains(5));
  EXPECT_DOUBLE_EQ(vic.DistanceTo(5), 0.0);
}

TEST(Vicinity, MembershipAndDistances) {
  const Graph g = PathGraph(10);
  const Vicinity vic(5, KNearest(g, 5, 5));  // 5,4,6,3,7 (ties by id)
  EXPECT_TRUE(vic.Contains(4));
  EXPECT_TRUE(vic.Contains(6));
  EXPECT_DOUBLE_EQ(vic.DistanceTo(7), 2.0);
  EXPECT_FALSE(vic.Contains(9));
  EXPECT_EQ(vic.DistanceTo(9), kInfDist);
}

TEST(Vicinity, RadiusIsFarthestMember) {
  const Graph g = PathGraph(20);
  const Vicinity vic(10, KNearest(g, 10, 7));
  EXPECT_DOUBLE_EQ(vic.radius(), 3.0);
}

TEST(Vicinity, PathToMemberIsShortest) {
  const Graph g = ConnectedGeometric(256, 8.0, 3);
  const Vicinity vic(9, KNearest(g, 9, 40));
  for (const NearNode& m : vic.members()) {
    const auto path = vic.PathTo(m.node);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 9u);
    EXPECT_EQ(path.back(), m.node);
    EXPECT_NEAR(PathLength(g, path), m.dist, 1e-9);
  }
}

TEST(Vicinity, PathToNonMemberIsEmpty) {
  const Graph g = PathGraph(10);
  const Vicinity vic(0, KNearest(g, 0, 3));
  EXPECT_TRUE(vic.PathTo(9).empty());
}

TEST(VicinityCache, ReturnsConsistentResults) {
  const Graph g = ConnectedGnm(128, 512, 5);
  VicinityCache cache(g, 20, 4);
  const auto first = cache.Get(7);
  // Evict by touching more nodes than the capacity.
  for (NodeId v = 0; v < 10; ++v) cache.Get(v);
  const auto second = cache.Get(7);
  ASSERT_EQ(first->size(), second->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(first->members()[i].node, second->members()[i].node);
  }
}

TEST(VicinityCache, CachesHits) {
  const Graph g = ConnectedGnm(128, 512, 5);
  VicinityCache cache(g, 20, 64);
  cache.Get(3);
  cache.Get(3);
  cache.Get(3);
  EXPECT_EQ(cache.computed_count(), 1u);
}

TEST(VicinityCache, EvictsLeastRecentlyUsed) {
  const Graph g = ConnectedGnm(128, 512, 5);
  VicinityCache cache(g, 10, 2);
  cache.Get(1);
  cache.Get(2);
  cache.Get(1);       // 1 is now most recent
  cache.Get(3);       // evicts 2
  cache.Get(1);       // still cached
  EXPECT_EQ(cache.computed_count(), 3u);
  cache.Get(2);       // recompute
  EXPECT_EQ(cache.computed_count(), 4u);
}

TEST(VicinityCache, SharedPtrSurvivesEviction) {
  const Graph g = ConnectedGnm(128, 512, 5);
  VicinityCache cache(g, 10, 1);
  const auto held = cache.Get(0);
  cache.Get(1);  // evicts 0 from the cache
  cache.Get(2);
  EXPECT_EQ(held->owner(), 0u);  // still valid through shared ownership
  EXPECT_TRUE(held->Contains(0));
}

TEST(VicinityCache, KClampedToGraphSize) {
  const Graph g = PathGraph(5);
  VicinityCache cache(g, 100, 4);
  EXPECT_EQ(cache.k(), 5u);
  EXPECT_EQ(cache.Get(0)->size(), 5u);
}

TEST(Vicinity, AsymmetryIsPossible) {
  // s ∈ V(t) does not imply t ∈ V(s) (the paper leans on this asymmetry in
  // the handshake): build a star where the hub's vicinity is tiny but each
  // leaf sees the hub first.
  const Graph g = testing::StarGraph(30);
  VicinityCache cache(g, 3, 64);
  const auto hub = cache.Get(0);
  const auto leaf = cache.Get(25);
  EXPECT_TRUE(leaf->Contains(0));        // hub is every leaf's closest
  EXPECT_FALSE(hub->Contains(25));       // hub kept only 3 of 31 nodes
}

}  // namespace
}  // namespace disco
