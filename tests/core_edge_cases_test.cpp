// Degenerate and extreme topologies: the places protocol implementations
// usually break. Every protocol must behave on 2-node graphs, complete
// graphs (every node in every vicinity), stars (maximum degree skew),
// grids, and rings (maximum address length), and the overlay must still
// cover groups when nodes disagree about n.
#include <gtest/gtest.h>

#include "baselines/s4.h"
#include "baselines/spf.h"
#include "baselines/vrr.h"
#include "core/disco.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"
#include "util/rng.h"

namespace disco {
namespace {

Params WithSeed(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  return p;
}

Graph CompleteGraph(NodeId n) {
  std::vector<WeightedEdge> edges;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) edges.push_back({a, b, 1.0});
  }
  return Graph::FromEdges(n, edges);
}

TEST(EdgeCases, TwoNodeGraph) {
  const Graph g = testing::PathGraph(2);
  Disco disco(g, WithSeed(1));
  const Route r = disco.RouteFirst(0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1}));
  EXPECT_DOUBLE_EQ(r.length, 1.0);
  EXPECT_LE(disco.RouteLater(1, 0).length, 1.0 + 1e-9);
}

TEST(EdgeCases, TriangleAllPairs) {
  const Graph g = Ring(3);
  Disco disco(g, WithSeed(2));
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = 0; t < 3; ++t) {
      const Route r = disco.RouteFirst(s, t);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.path.front(), s);
      EXPECT_EQ(r.path.back(), t);
    }
  }
}

TEST(EdgeCases, CompleteGraphBoundsHold) {
  // Note vicinities do NOT cover even a complete graph (k = ceil(sqrt(
  // n ln n)) < n), so some first packets legitimately detour; the stretch
  // bounds still apply with every distance equal to 1.
  const Graph g = CompleteGraph(16);
  Disco disco(g, WithSeed(3));
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId t = 0; t < 16; ++t) {
      if (s == t) continue;
      const Route first = disco.RouteFirst(s, t);
      ASSERT_TRUE(first.ok());
      EXPECT_LE(first.length, 7.0) << s << "->" << t;
      EXPECT_LE(disco.RouteLater(s, t).length, 3.0) << s << "->" << t;
    }
  }
}

TEST(EdgeCases, StarHubNeverBreaksStateBound) {
  // Degree skew: the hub's label map must stay bounded by L + k even
  // though its degree is n-1 (the §4.5 label-mapping argument).
  const Graph g = testing::StarGraph(500);
  Disco disco(g, WithSeed(4));
  const StateBreakdown hub = disco.State(0);
  EXPECT_LE(hub.label_entries,
            hub.landmark_entries + hub.vicinity_entries);
  const Route r = disco.RouteFirst(1, 500);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.length, 2.0);  // leaf-hub-leaf is forced
}

TEST(EdgeCases, GridRoutesWithBoundedStretch) {
  const Graph g = Grid(16, 16);
  Disco disco(g, WithSeed(5));
  const auto truth = Dijkstra(g, 0);
  for (NodeId t = 17; t < 256; t += 23) {
    const Route later = disco.RouteLater(0, t);
    ASSERT_TRUE(later.ok());
    EXPECT_LE(later.length / truth.dist[t], 3.0 + 1e-9) << t;
  }
}

TEST(EdgeCases, RingAddressesStillRoute) {
  // Θ(n/L)-hop explicit routes (the worst case §4.2 discusses) must not
  // break routing or the later-packet bound.
  const Graph g = Ring(256);
  Disco disco(g, WithSeed(6));
  const auto truth = Dijkstra(g, 10);
  for (NodeId t = 20; t < 256; t += 31) {
    const Route later = disco.RouteLater(10, t);
    ASSERT_TRUE(later.ok());
    EXPECT_LE(later.length / truth.dist[t], 3.0 + 1e-9);
  }
}

TEST(EdgeCases, BaselinesOnDegenerateGraphs) {
  for (const NodeId n : {2u, 3u, 5u}) {
    const Graph g = n == 2 ? testing::PathGraph(2) : Ring(n);
    S4 s4(g, WithSeed(7));
    const Vrr vrr(g, WithSeed(7));
    ShortestPathRouting spf(g);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        EXPECT_TRUE(s4.RouteFirst(s, t).ok()) << "S4 " << n;
        EXPECT_TRUE(vrr.RoutePacket(s, t).ok()) << "VRR " << n;
        EXPECT_TRUE(spf.RoutePacket(s, t).ok()) << "SPF " << n;
      }
    }
  }
}

TEST(EdgeCases, OverlayCoversGroupsUnderMixedEstimates) {
  // Nodes disagreeing about n (within 2x) still disseminate addresses to
  // everyone who should store them — the core-group argument of §4.4.
  const NodeId n = 2048;
  const NameTable names = NameTable::Default(n);
  std::vector<double> estimates(n);
  Rng rng(321);
  for (NodeId v = 0; v < n; ++v) {
    estimates[v] = n * (0.7 + 0.6 * rng.NextDouble());  // [0.7n, 1.3n]
  }
  const SloppyGroups groups(names, estimates);
  Params p = WithSeed(8);
  p.fingers = 2;
  const Overlay overlay(names, groups, p);
  for (NodeId v = 0; v < n; v += 37) {
    const auto d = overlay.Disseminate(v);
    // §4.4 guarantees the *core group* G'(v) — nodes that all agree they
    // share v's group — is fully covered; nodes outside the core may or
    // may not receive the announcement.
    EXPECT_TRUE(d.covered_core)
        << "node " << v << ": core " << d.core_reached << "/"
        << d.core_size;
    EXPECT_GE(d.reached, d.core_reached);
  }
}

TEST(EdgeCases, ZeroLengthFlows) {
  const Graph g = ConnectedGnm(64, 256, 9);
  Disco disco(g, WithSeed(9));
  for (NodeId v = 0; v < 64; v += 7) {
    const Route r = disco.RouteFirst(v, v);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.path, std::vector<NodeId>{v});
    EXPECT_DOUBLE_EQ(r.length, 0.0);
  }
}

}  // namespace
}  // namespace disco
