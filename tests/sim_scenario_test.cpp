// Scenario + campaign layer tests: schedules are deterministic per
// (seed, replica) and replayable, replica results are independent of the
// replica count and of the executor's thread count, every scenario kind
// re-converges, and the wire round-trip for replica results is the
// identity.
#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "runtime/thread_pool.h"
#include "sim/campaign.h"
#include "sim/pv_sim.h"

namespace disco {
namespace {

ScenarioSpec Spec(const std::string& kind) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.events = 2;
  spec.fraction = 0.08;
  spec.start = 30.0;
  spec.spacing = 4.0;
  return spec;
}

bool SameEvents(const std::vector<ScenarioEvent>& a,
                const std::vector<ScenarioEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].node_leaves != b[i].node_leaves ||
        a[i].node_joins != b[i].node_joins ||
        a[i].link_fails != b[i].link_fails ||
        a[i].link_heals != b[i].link_heals) {
      return false;
    }
  }
  return true;
}

TEST(ScenarioTest, NullAndEmptySpecsCompileToNoEvents) {
  const Graph g = ConnectedGnm(64, 256, 1);
  EXPECT_TRUE(Scenario::Compile(Spec("null"), g, 1, 0).empty());
  ScenarioSpec zero = Spec("churn");
  zero.events = 0;
  EXPECT_TRUE(Scenario::Compile(zero, g, 1, 0).empty());
}

TEST(ScenarioTest, EdgelessGraphsCompileToNoLinkEvents) {
  // A graph with nodes but no links has nothing for the link-drawing
  // kinds to disturb; Compile must return an empty schedule instead of
  // drawing from an empty edge set.
  const Graph g = Graph::FromEdges(4, {});
  for (const std::string& kind : {"linkfail", "correlated", "partition"}) {
    ScenarioSpec spec = Spec(kind);
    EXPECT_TRUE(Scenario::Compile(spec, g, 1, 0).empty()) << kind;
  }
  EXPECT_FALSE(Scenario::Compile(Spec("churn"), g, 1, 0).empty());
}

TEST(ScenarioTest, KindsAreRegistered) {
  for (const std::string& kind : ScenarioKinds()) {
    EXPECT_TRUE(IsScenarioKind(kind)) << kind;
  }
  EXPECT_FALSE(IsScenarioKind("no-such-scenario"));
}

TEST(ScenarioTest, CompileIsDeterministicAndReplayable) {
  const Graph g = ConnectedGnm(96, 384, 3);
  for (const std::string& kind : ScenarioKinds()) {
    if (kind == "null") continue;
    const Scenario a = Scenario::Compile(Spec(kind), g, 7, 2);
    const Scenario b = Scenario::Compile(Spec(kind), g, 7, 2);
    EXPECT_TRUE(SameEvents(a.events(), b.events())) << kind;
    ASSERT_FALSE(a.empty()) << kind;
  }
}

TEST(ScenarioTest, ReplicasAndSeedsDrawIndependentSchedules) {
  const Graph g = ConnectedGnm(96, 384, 3);
  const Scenario base = Scenario::Compile(Spec("churn"), g, 7, 0);
  const Scenario other_replica = Scenario::Compile(Spec("churn"), g, 7, 1);
  const Scenario other_seed = Scenario::Compile(Spec("churn"), g, 8, 0);
  EXPECT_FALSE(SameEvents(base.events(), other_replica.events()));
  EXPECT_FALSE(SameEvents(base.events(), other_seed.events()));
}

TEST(ScenarioTest, EventsAreOrderedAndPaired) {
  const Graph g = ConnectedGnm(96, 384, 5);
  for (const std::string& kind : ScenarioKinds()) {
    if (kind == "null") continue;
    const Scenario sc = Scenario::Compile(Spec(kind), g, 9, 1);
    double last = 0;
    for (const ScenarioEvent& ev : sc.events()) {
      EXPECT_GT(ev.time, last) << kind;
      last = ev.time;
    }
    // Healing scenarios restore the original topology exactly.
    EXPECT_TRUE(sc.FinalDepartedNodes().empty()) << kind;
    EXPECT_TRUE(sc.FinalFailedLinks().empty()) << kind;
  }
}

TEST(ScenarioTest, NoHealLeavesAResidualDisturbance) {
  const Graph g = ConnectedGnm(96, 384, 5);
  ScenarioSpec spec = Spec("churn");
  spec.heal = false;
  const Scenario sc = Scenario::Compile(spec, g, 9, 0);
  EXPECT_FALSE(sc.FinalDepartedNodes().empty());

  ScenarioSpec links = Spec("linkfail");
  links.heal = false;
  EXPECT_FALSE(Scenario::Compile(links, g, 9, 0).FinalFailedLinks()
                   .empty());
}

// Every scenario kind must run to quiescence with re-validated tables:
// after a healing scenario the path-vector plane ends on exactly the
// static shortest-path tables it would have converged to without any
// disturbance.
TEST(ScenarioTest, EveryKindReconvergesToShortestPaths) {
  const Graph g = ConnectedGnm(80, 320, 11);
  for (const std::string& kind : ScenarioKinds()) {
    if (kind == "null") continue;
    CampaignSpec spec;
    spec.graph = &g;
    spec.base.mode = PvMode::kPathVector;
    spec.base.params.seed = 11;
    spec.scenario = Spec(kind);
    PvResult sim;
    RunReplica(spec, 0, &sim);
    for (NodeId v = 0; v < g.num_nodes(); v += 7) {
      const auto truth = Dijkstra(g, v);
      ASSERT_EQ(sim.tables[v].size(), g.num_nodes()) << kind << " " << v;
      for (const auto& [origin, dist] : sim.tables[v]) {
        EXPECT_NEAR(dist, truth.dist[origin], 1e-9)
            << kind << ": " << v << " -> " << origin;
      }
    }
    ASSERT_GE(sim.trace.size(), 2u) << kind;
  }
}

TEST(ScenarioTest, ChurnWithoutHealEndsWithDepartedNodesFlushed) {
  const Graph g = ConnectedGnm(80, 320, 13);
  CampaignSpec spec;
  spec.graph = &g;
  spec.base.mode = PvMode::kPathVector;
  spec.base.params.seed = 13;
  spec.scenario = Spec("churn");
  spec.scenario.heal = false;
  PvResult sim;
  RunReplica(spec, 0, &sim);
  const Scenario sc = Scenario::Compile(spec.scenario, g, 13, 0);
  const auto departed = sc.FinalDepartedNodes();
  ASSERT_FALSE(departed.empty());
  for (const NodeId v : departed) {
    EXPECT_EQ(sim.alive[v], 0) << v;
    EXPECT_TRUE(sim.tables[v].empty()) << v;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!sim.alive[v]) continue;
    for (const auto& [origin, dist] : sim.tables[v]) {
      EXPECT_TRUE(sim.alive[origin])
          << v << " still routes to departed " << origin;
      (void)dist;
    }
  }
}

// Replica r's result may depend on nothing but (campaign, r): running 2 or
// 5 replicas must reproduce the same leading results bit for bit.
TEST(CampaignTest, ReplicaResultsAreIndependentOfReplicaCount) {
  const Graph g = ConnectedGnm(64, 256, 17);
  CampaignSpec spec;
  spec.graph = &g;
  spec.base.mode = PvMode::kNdDisco;
  spec.base.params.seed = 17;
  spec.scenario = Spec("linkfail");
  exec::ExecOptions opts;  // thread backend
  std::vector<std::vector<ReplicaResult>> two, five;
  std::string error;
  ASSERT_TRUE(RunReplicas({spec}, 2, opts, &two, &error)) << error;
  ASSERT_TRUE(RunReplicas({spec}, 5, opts, &five, &error)) << error;
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(EncodeReplicaResult(two[0][r]),
              EncodeReplicaResult(five[0][r]))
        << "replica " << r;
  }
}

TEST(CampaignTest, ResultsAreInvariantToExecutorThreadCount) {
  const Graph g = ConnectedGnm(64, 256, 19);
  CampaignSpec spec;
  spec.graph = &g;
  spec.base.mode = PvMode::kS4;
  spec.base.params.seed = 19;
  spec.scenario = Spec("correlated");
  runtime::ThreadPool one(1);
  exec::ExecOptions serial;
  serial.pool = &one;
  exec::ExecOptions wide;  // shared pool
  std::vector<std::vector<ReplicaResult>> a, b;
  std::string error;
  ASSERT_TRUE(RunReplicas({spec}, 4, serial, &a, &error)) << error;
  ASSERT_TRUE(RunReplicas({spec}, 4, wide, &b, &error)) << error;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(EncodeReplicaResult(a[0][r]), EncodeReplicaResult(b[0][r]));
  }
}

TEST(CampaignTest, ReplicaSeedContinuesBaseStreamAtZero) {
  EXPECT_EQ(ReplicaSeed(42, 0), 42u);
  EXPECT_NE(ReplicaSeed(42, 1), ReplicaSeed(42, 2));
  EXPECT_NE(ReplicaSeed(42, 1), ReplicaSeed(43, 1));
}

TEST(CampaignTest, WireRoundTripIsIdentity) {
  ReplicaResult r;
  r.convergence_time = 123.456;
  r.total_messages = 98765;
  r.messages_per_node = 1.5e-3;
  r.total_withdrawals = 17;
  r.table_stretch = 1.0000001;
  r.table_coverage = 0.75;
  r.trace = {{30.0, 100, 3, 640}, {34.5, 180, 9, 512}};
  ReplicaResult back;
  ASSERT_TRUE(DecodeReplicaResult(EncodeReplicaResult(r), &back));
  EXPECT_EQ(EncodeReplicaResult(back), EncodeReplicaResult(r));
  ASSERT_EQ(back.trace.size(), 2u);
  EXPECT_EQ(back.trace[1].messages, 180u);

  ReplicaResult bad;
  EXPECT_FALSE(DecodeReplicaResult("short", &bad));
}

TEST(CampaignTest, TracesAreMonotoneInMessagesAndTime) {
  const Graph g = ConnectedGnm(80, 320, 23);
  for (const std::string& kind : {"churn", "partition"}) {
    CampaignSpec spec;
    spec.graph = &g;
    spec.base.mode = PvMode::kPathVector;
    spec.base.params.seed = 23;
    spec.scenario = Spec(kind);
    const ReplicaResult r = RunReplica(spec, 0);
    ASSERT_GE(r.trace.size(), 2u);
    for (std::size_t i = 1; i < r.trace.size(); ++i) {
      EXPECT_GE(r.trace[i].messages, r.trace[i - 1].messages) << kind;
      EXPECT_GE(r.trace[i].withdrawals, r.trace[i - 1].withdrawals)
          << kind;
      EXPECT_GE(r.trace[i].time, r.trace[i - 1].time) << kind;
    }
    EXPECT_EQ(r.trace.back().messages, r.total_messages) << kind;
  }
}

TEST(CampaignTest, HealedCampaignStretchIsExactlyOne) {
  const Graph g = ConnectedGnm(64, 256, 29);
  CampaignSpec spec;
  spec.graph = &g;
  spec.base.mode = PvMode::kPathVector;
  spec.base.params.seed = 29;
  spec.scenario = Spec("linkfail");
  const ReplicaResult r = RunReplica(spec, 0);
  EXPECT_GT(r.table_coverage, 0.99);
  EXPECT_NEAR(r.table_stretch, 1.0, 1e-9);
}

TEST(CampaignTest, TsvReductionFormatsMeanAndSd) {
  ReplicaResult a, b;
  a.convergence_time = 10;
  b.convergence_time = 20;
  a.messages_per_node = 4;
  b.messages_per_node = 6;
  const MeanSd conv = ReduceConvergenceTime({a, b});
  EXPECT_DOUBLE_EQ(conv.mean, 15.0);
  EXPECT_DOUBLE_EQ(conv.sd, 5.0);
  const std::string header = CampaignTsvHeader();
  const std::string row = CampaignTsvRow("pv-128", "churn", {a, b});
  EXPECT_EQ(std::count(header.begin(), header.end(), '\t'),
            std::count(row.begin(), row.end(), '\t'));
  EXPECT_EQ(row.compare(0, 16, "pv-128\tchurn\t2\t1"), 0) << row;
  EXPECT_EQ(row.back(), '\n');
  EXPECT_TRUE(MeanStddev({}).mean == 0 && MeanStddev({}).sd == 0);
}

TEST(CampaignTest, PvModeForSchemeMapsTheBuiltins) {
  EXPECT_EQ(PvModeForScheme("disco"), PvMode::kNdDisco);
  EXPECT_EQ(PvModeForScheme("nddisco"), PvMode::kNdDisco);
  EXPECT_EQ(PvModeForScheme("s4"), PvMode::kS4);
  EXPECT_EQ(PvModeForScheme("vrr"), PvMode::kPathVector);
  EXPECT_EQ(PvModeForScheme("spf"), PvMode::kPathVector);
  EXPECT_EQ(PvModeForScheme("custom-thing"), PvMode::kPathVector);
}

}  // namespace
}  // namespace disco
