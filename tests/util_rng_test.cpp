#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace disco {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng r(5);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.NextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.NextInRange(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ForksAreIndependent) {
  Rng base(17);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (f1.Next() == f2.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsStable) {
  // Forking must not perturb the parent, and the same stream id must give
  // the same sequence (landmark coins rely on this).
  Rng base(21);
  const std::uint64_t first_a = base.Fork(5).Next();
  const std::uint64_t first_b = base.Fork(5).Next();
  EXPECT_EQ(first_a, first_b);
}

}  // namespace
}  // namespace disco
