#!/usr/bin/env bash
# CI smoke for the network executor backend (--backend=net):
#   1. two localhost disco_workerd daemons (kernel-assigned ports) serve a
#      quick fig04 run that must be byte-identical — stdout and TSVs — to
#      the in-process --backend=threads run;
#   2. a disco_sweep mini-grid through the same two daemons must produce
#      a merged sweep.tsv byte-identical to the in-process run;
#   3. one daemon is SIGKILLed mid-run: the fig04 run must still finish
#      on the surviving daemon without changing a byte (the in-flight
#      task is charged one retry and rescheduled).
# Daemons and scratch files are torn down by the EXIT trap on every path.
#   usage: net_smoke.sh <disco_workerd> <fig04_gnm1024> <disco_sweep>
set -euo pipefail

WORKERD="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
FIG04="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
SWEEP="$(cd "$(dirname "$3")" && pwd)/$(basename "$3")"
dir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2> /dev/null || true
  done
  cd / && rm -rf "$dir"
}
trap cleanup EXIT
cd "$dir"

# Launch a daemon on a kernel-assigned port (pid lands in `pids`); the
# endpoint is parsed from its startup line separately, because a $(...)
# capture would grow the array in a throwaway subshell.
start_daemon() {
  "$WORKERD" --listen=127.0.0.1:0 > "$1" 2>&1 &
  pids+=($!)
  disown $!  # keep bash's "Killed" job notices out of the test log
}
endpoint_of() {
  for _ in $(seq 100); do
    if grep -q 'listening on' "$1"; then break; fi
    sleep 0.05
  done
  sed -n 's/.*listening on //p' "$1" | head -n1
}

start_daemon "$dir/d1.log"
start_daemon "$dir/d2.log"
host1="$(endpoint_of "$dir/d1.log")"
host2="$(endpoint_of "$dir/d2.log")"
if [ -z "$host1" ] || [ -z "$host2" ]; then
  echo "net_smoke: daemons failed to start" >&2
  exit 1
fi

# 1. fig04 through the daemons vs in-process.
"$FIG04" --quick --backend=threads --out="$dir/thr" > "$dir/thr.out"
"$FIG04" --quick --backend=net --hosts="$host1,$host2" \
  --out="$dir/net" > "$dir/net.out"
if ! cmp "$dir/thr.out" "$dir/net.out" || ! diff -r "$dir/thr" "$dir/net" > /dev/null; then
  echo "net_smoke: net backend fig04 output differs from threads" >&2
  exit 1
fi

# 2. sweep mini-grid through the daemons vs in-process.
"$SWEEP" --quick --backend=threads --out="$dir/s_thr" > /dev/null
"$SWEEP" --quick --backend=net --hosts="$host1,$host2" \
  --out="$dir/s_net" > /dev/null
if ! cmp "$dir/s_thr/sweep.tsv" "$dir/s_net/sweep.tsv"; then
  echo "net_smoke: net backend sweep.tsv differs from threads" >&2
  exit 1
fi
rows=$(grep -cv -e '^#' -e '^cell	' "$dir/s_thr/sweep.tsv")

# 3. failover: SIGKILL daemon 2 shortly after the run starts; the run must
# finish on daemon 1 with byte-identical output. Short backoff keeps the
# abandoned endpoint from stretching the run.
export DISCO_EXEC_NET_BACKOFF_MS=20
export DISCO_EXEC_NET_BACKOFF_MAX_MS=200
export DISCO_EXEC_NET_RECONNECTS=2
"$FIG04" --quick --backend=net --hosts="$host1,$host2" \
  --out="$dir/failover" > "$dir/failover.out" &
run_pid=$!
sleep 0.4
kill -9 "${pids[1]}" 2> /dev/null || true
if ! wait "$run_pid"; then
  echo "net_smoke: fig04 run failed after daemon SIGKILL" >&2
  exit 1
fi
if ! cmp "$dir/thr.out" "$dir/failover.out" || ! diff -r "$dir/thr" "$dir/failover" > /dev/null; then
  echo "net_smoke: output changed after mid-run daemon SIGKILL" >&2
  exit 1
fi

echo "net_smoke OK: fig04 and $rows sweep cells byte-identical over 2" \
     "daemons, incl. after a mid-run daemon SIGKILL"
