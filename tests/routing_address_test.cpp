#include "routing/address.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace disco {
namespace {

Params WithSeed(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  return p;
}

TEST(AddressBook, LandmarkAddressesAreTrivial) {
  const Graph g = ConnectedGnm(256, 1024, 3);
  const LandmarkSet landmarks = SelectLandmarks(g.num_nodes(), WithSeed(3));
  const AddressBook book(g, landmarks);
  for (const NodeId l : landmarks.landmarks) {
    const Address a = book.AddressOf(l);
    EXPECT_EQ(a.landmark, l);
    EXPECT_DOUBLE_EQ(a.landmark_dist, 0.0);
    EXPECT_EQ(a.route, std::vector<NodeId>{l});
    EXPECT_EQ(a.num_hops(), 0u);
    EXPECT_EQ(a.route_bytes(), 0u);
  }
}

TEST(AddressBook, ClosestLandmarkIsActuallyClosest) {
  const Graph g = ConnectedGeometric(256, 8.0, 5);
  const LandmarkSet landmarks = SelectLandmarks(g.num_nodes(), WithSeed(5));
  const AddressBook book(g, landmarks);
  for (NodeId v = 0; v < g.num_nodes(); v += 17) {
    const auto tree = Dijkstra(g, v);
    Dist best = kInfDist;
    for (const NodeId l : landmarks.landmarks) {
      best = std::min(best, tree.dist[l]);
    }
    EXPECT_NEAR(book.landmark_distance(v), best, 1e-9) << "node " << v;
  }
}

TEST(AddressBook, RouteIsShortestFromLandmark) {
  const Graph g = ConnectedGnm(200, 800, 7);
  const LandmarkSet landmarks = SelectLandmarks(g.num_nodes(), WithSeed(7));
  const AddressBook book(g, landmarks);
  for (NodeId v = 0; v < g.num_nodes(); v += 11) {
    const Address a = book.AddressOf(v);
    ASSERT_FALSE(a.route.empty());
    EXPECT_EQ(a.route.front(), a.landmark);
    EXPECT_EQ(a.route.back(), v);
    EXPECT_NEAR(PathLength(g, a.route), a.landmark_dist, 1e-9);
  }
}

TEST(AddressBook, EncodedRouteReplaysToDestination) {
  // The heart of the compact address (§4.2): the bit-packed labels must
  // steer a packet from the landmark to the node, hop by hop.
  const Graph g = ConnectedGeometric(300, 8.0, 9);
  const LandmarkSet landmarks = SelectLandmarks(g.num_nodes(), WithSeed(9));
  const AddressBook book(g, landmarks);
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    const Address a = book.AddressOf(v);
    EXPECT_EQ(FollowEncodedRoute(g, a.landmark, a.labels), a.route)
        << "node " << v;
  }
}

TEST(AddressBook, RingAddressesCanBeLong) {
  // Worst case called out in §4.2: on a ring, explicit routes are
  // Θ(n / #landmarks) hops.
  const Graph g = Ring(64);
  LandmarkSet one;
  one.is_landmark.assign(64, 0);
  one.is_landmark[0] = 1;
  one.landmarks = {0};
  const AddressBook book(g, one);
  const Address far = book.AddressOf(32);
  EXPECT_EQ(far.num_hops(), 32u);
  EXPECT_EQ(far.route_bytes(), 4u);  // 32 hops x 1 bit (degree 2)
}

TEST(AddressBook, TotalBytesAddsLandmarkId) {
  const Graph g = Ring(16);
  LandmarkSet one;
  one.is_landmark.assign(16, 0);
  one.is_landmark[0] = 1;
  one.landmarks = {0};
  const AddressBook book(g, one);
  const Address a = book.AddressOf(4);
  EXPECT_EQ(a.total_bytes(4), 4 + a.route_bytes());
  EXPECT_EQ(a.total_bytes(16), 16 + a.route_bytes());
}

TEST(AddressBook, MeanAddressSizeIsCompact) {
  // §4.2's headline: mean explicit-route size beats an IPv4 address on
  // Internet-like maps. Verify the same qualitative result on the
  // synthetic router-level stand-in.
  const Graph g = RouterLevelInternet(4096, 11);
  const LandmarkSet landmarks =
      SelectLandmarks(g.num_nodes(), WithSeed(11));
  const AddressBook book(g, landmarks);
  double total_bytes = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    total_bytes += static_cast<double>(book.AddressOf(v).route_bytes());
  }
  const double mean = total_bytes / g.num_nodes();
  EXPECT_LT(mean, 8.0);  // far smaller than an IPv6 address (16B)
  EXPECT_GT(mean, 0.0);
}

}  // namespace
}  // namespace disco
