#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "baselines/spf.h"
#include "graph/generators.h"
#include "sim/disco_msg.h"
#include "test_util.h"

namespace disco {
namespace {

RouteFn SpfRoute(ShortestPathRouting& spf) {
  return [&spf](NodeId s, NodeId t) { return spf.RoutePacket(s, t); };
}

TEST(Metrics, ShortestPathStretchIsOne) {
  const Graph g = ConnectedGeometric(256, 8.0, 1);
  ShortestPathRouting spf(g);
  StretchOptions opt;
  opt.num_pairs = 200;
  const auto stretches = SampleStretch(g, SpfRoute(spf), opt);
  ASSERT_FALSE(stretches.empty());
  for (const double s : stretches) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Metrics, FailedRoutesAreReported) {
  const Graph g = ConnectedGnm(64, 256, 3);
  auto failing = [](NodeId, NodeId) { return Route{}; };
  StretchOptions opt;
  opt.num_pairs = 50;
  std::vector<StretchSample> details;
  const auto stretches = SampleStretch(g, failing, opt, &details);
  EXPECT_TRUE(stretches.empty());
  ASSERT_FALSE(details.empty());
  for (const auto& d : details) EXPECT_TRUE(d.failed);
}

TEST(Metrics, SamplingIsDeterministic) {
  const Graph g = ConnectedGnm(128, 512, 5);
  ShortestPathRouting spf(g);
  StretchOptions opt;
  opt.num_pairs = 64;
  opt.seed = 42;
  std::vector<StretchSample> d1, d2;
  SampleStretch(g, SpfRoute(spf), opt, &d1);
  SampleStretch(g, SpfRoute(spf), opt, &d2);
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].s, d2[i].s);
    EXPECT_EQ(d1[i].t, d2[i].t);
  }
}

TEST(Metrics, CongestionCountsOneRoutePerNode) {
  const Graph g = ConnectedGnm(128, 512, 7);
  ShortestPathRouting spf(g);
  const auto counts = CongestionCounts(g, SpfRoute(spf), 7);
  EXPECT_EQ(counts.size(), g.num_edges());
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  // Each of n routes uses at least one edge (s != t in a connected graph).
  EXPECT_GE(total, g.num_nodes());
}

TEST(Metrics, CongestionOnPathGraphIsCentered) {
  // On a path, central edges must carry more random-pair routes than
  // peripheral ones.
  const Graph g = testing::PathGraph(64);
  ShortestPathRouting spf(g);
  const auto counts = CongestionCounts(g, SpfRoute(spf), 9);
  const std::size_t mid = counts[31];
  const std::size_t edge0 = counts[0];
  EXPECT_GT(mid, edge0);
}

TEST(Metrics, SampleNodesUniqueAndInRange) {
  const auto sample = SampleNodes(1000, 100, 3);
  EXPECT_EQ(sample.size(), 100u);
  std::set<NodeId> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 100u);
  for (const NodeId v : sample) EXPECT_LT(v, 1000u);
}

TEST(Metrics, SampleNodesReturnsAllWhenCountExceedsN) {
  const auto sample = SampleNodes(10, 50, 3);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(OverlayMessaging, ScalesGentlyAndIsPositive) {
  const Graph g = ConnectedGnm(256, 1024, 11);
  Params p;
  p.seed = 11;
  p.fingers = 1;
  Disco one(g, p);
  const auto m1 = MeasureOverlayMessaging(g, one);
  EXPECT_GT(m1.dissemination_messages, 0u);
  EXPECT_GT(m1.lookup_messages, 0u);

  p.fingers = 3;
  Disco three(g, p);
  const auto m3 = MeasureOverlayMessaging(g, three);
  // More fingers -> more lookups/links, same order of dissemination.
  EXPECT_GT(m3.lookup_messages, m1.lookup_messages);
  EXPECT_GT(m3.total(), m1.total());
}

}  // namespace
}  // namespace disco
