// Span tracer tests: a fixed injected clock makes the flushed trace JSON
// byte-stable (and parseable by the util/json-backed reader); begin/end
// events nest per (pid,tid); ring-buffer overflow drops-and-counts instead
// of reallocating; and — through the exec_test_worker helper — a procs
// backend run merges its workers' pid-tagged sidecars into one valid
// timeline spanning multiple processes.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "exec/executor.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracefile.h"

#ifndef EXEC_TEST_WORKER_PATH
#error "build must define EXEC_TEST_WORKER_PATH (see CMakeLists.txt)"
#endif

namespace disco {
namespace {

// Deterministic test clock: advances 1 microsecond per read.
std::uint64_t g_fake_now_ns = 0;
std::uint64_t FakeClock() { return g_fake_now_ns += 1000; }

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetTracingForTest();
    exec::ResetJobNumberingForTest();
  }
  void TearDown() override {
    obs::SetClockForTest(nullptr);
    obs::ResetTracingForTest();
  }

  std::string TempPath(const std::string& name) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string path = ::testing::TempDir() + "obs_" + info->name() +
                             "_" + name + "_" + std::to_string(::getpid());
    std::remove(path.c_str());
    return path;
  }
};

void EmitSampleSpans() {
  DISCO_TRACE_SPAN("outer");
  {
    DISCO_TRACE_SPAN("inner");
    obs::TracePoint("tick");
  }
}

TEST_F(ObsTraceTest, FixedClockProducesByteStableParseableJson) {
  const std::string path = TempPath("trace.json");
  obs::SetClockForTest(&FakeClock);

  g_fake_now_ns = 0;
  obs::ConfigureTracing(path);
  EmitSampleSpans();
  ASSERT_EQ(obs::FlushTrace(), path);
  const std::string first = ReadFileOrEmpty(path);
  ASSERT_FALSE(first.empty());

  // Same clock sequence, same spans: identical bytes.
  obs::ResetTracingForTest();
  g_fake_now_ns = 0;
  obs::ConfigureTracing(path);
  EmitSampleSpans();
  ASSERT_EQ(obs::FlushTrace(), path);
  EXPECT_EQ(ReadFileOrEmpty(path), first);

  // The file round-trips through the util/json-backed parser with every
  // event and its fixed-point timestamp intact.
  obs::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(obs::ParseTraceJson(first, &doc, &error)) << error;
  ASSERT_EQ(doc.events.size(), 5u);  // outer B, inner B, tick i, inner E, outer E
  EXPECT_EQ(doc.events[0].name, "outer");
  EXPECT_EQ(doc.events[0].phase, 'B');
  EXPECT_EQ(doc.events[0].ts_ns, 1000u);
  EXPECT_EQ(doc.events[2].phase, 'i');
  EXPECT_EQ(doc.events[4].name, "outer");
  EXPECT_EQ(doc.events[4].phase, 'E');
  EXPECT_EQ(doc.dropped, 0u);
  EXPECT_TRUE(obs::ValidateTrace(doc, &error)) << error;
}

TEST_F(ObsTraceTest, SpansNestPerThread) {
  const std::string path = TempPath("trace.json");
  obs::ConfigureTracing(path);
  {
    DISCO_TRACE_SPAN("main.outer");
    std::thread t1([] { EmitSampleSpans(); });
    std::thread t2([] { EmitSampleSpans(); });
    t1.join();
    t2.join();
  }
  ASSERT_EQ(obs::FlushTrace(), path);

  obs::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(obs::ParseTraceJson(ReadFileOrEmpty(path), &doc, &error))
      << error;
  ASSERT_TRUE(obs::ValidateTrace(doc, &error)) << error;

  // Three distinct tids (main + two workers), and within each tid the
  // B/E sequence nests: replay it with an explicit stack.
  std::set<std::uint64_t> tids;
  std::map<std::uint64_t, std::vector<std::string>> stacks;
  for (const obs::TraceEvent& e : doc.events) {
    tids.insert(e.tid);
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  EXPECT_EQ(tids.size(), 3u);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST_F(ObsTraceTest, OverflowDropsAndCountsInsteadOfGrowing) {
  const std::string path = TempPath("trace.json");
  obs::ConfigureTracing(path, /*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    DISCO_TRACE_SPAN("tight");
  }
  // Two spans fit (B+E each); the other eight dropped their B.
  EXPECT_EQ(obs::DroppedTraceEvents(), 8u);
  ASSERT_EQ(obs::FlushTrace(), path);

  obs::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(obs::ParseTraceJson(ReadFileOrEmpty(path), &doc, &error))
      << error;
  EXPECT_EQ(doc.events.size(), 4u);
  EXPECT_EQ(doc.dropped, 8u);
  EXPECT_TRUE(obs::ValidateTrace(doc, &error)) << error;
  // The drop count survives the JSON round trip via otherData.
  EXPECT_NE(ReadFileOrEmpty(path).find("\"droppedEvents\":\"8\""),
            std::string::npos);
}

TEST_F(ObsTraceTest, ProcsRunMergesWorkerSidecarsIntoOneTimeline) {
  const std::string path = TempPath("trace.json");
  obs::ConfigureTracing(path);

  exec::ExecOptions opts;
  opts.backend = exec::Backend::kProcs;
  opts.workers = 2;
  opts.worker_argv = {EXEC_TEST_WORKER_PATH, "--mode=echo",
                      "--trace=" + path};
  const auto executor = exec::MakeExecutor(opts);
  std::vector<std::string> results;
  const exec::RunResult status = executor->Run(
      8,
      [](std::size_t) -> std::string {
        throw std::logic_error("driver-side task function must not run");
      },
      &results);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(results.size(), 8u);

  ASSERT_EQ(obs::FlushTrace(), path);
  obs::TraceDoc doc;
  std::string error;
  ASSERT_TRUE(obs::ParseTraceJson(ReadFileOrEmpty(path), &doc, &error))
      << error;
  ASSERT_TRUE(obs::ValidateTrace(doc, &error)) << error;

  // The merged timeline spans the driver plus both worker processes, is
  // time-ordered, and carries the workers' per-task spans.
  std::set<std::uint64_t> pids;
  std::size_t task_spans = 0;
  std::uint64_t last_ts = 0;
  for (const obs::TraceEvent& e : doc.events) {
    pids.insert(e.pid);
    if (e.name == "exec.task" && e.phase == 'B') ++task_spans;
    EXPECT_GE(e.ts_ns, last_ts);
    last_ts = e.ts_ns;
  }
  EXPECT_GE(pids.size(), 3u);  // driver + 2 workers
  EXPECT_EQ(task_spans, 8u);
}

}  // namespace
}  // namespace disco
